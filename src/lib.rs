//! # mspcg — m-step preconditioned conjugate gradient for parallel computation
//!
//! Facade crate for the reproduction of **L. Adams, “An M-Step
//! Preconditioned Conjugate Gradient Method for Parallel Computation”,
//! ICPP 1983 / NASA CR-172150**. It re-exports the workspace crates so an
//! application needs a single dependency:
//!
//! * [`sparse`] — sparse/dense linear algebra substrate,
//! * [`coloring`] — multicolor orderings (Adams–Ortega),
//! * [`fem`] — plane-stress finite-element model problems,
//! * [`core`] — PCG, splittings and the m-step parametrized preconditioners,
//! * [`machine`] — CYBER 203/205 and Finite Element Machine simulators,
//! * [`parallel`] — real threaded executor for the multicolor method.
//!
//! ## Quickstart
//!
//! ```
//! use mspcg::fem::plate::PlaneStressProblem;
//! use mspcg::core::mstep::MStepSsorPreconditioner;
//! use mspcg::core::pcg::{pcg_solve, PcgOptions};
//!
//! // The paper's test problem: a unit-square plate, clamped on the left
//! // edge, loaded on the right, discretized with linear triangles.
//! let problem = PlaneStressProblem::unit_square(8).assemble().unwrap();
//! let ordered = problem.multicolor().unwrap();
//!
//! // 3-step parametrized SSOR preconditioner (least-squares coefficients).
//! let pre = MStepSsorPreconditioner::parametrized(&ordered.matrix, &ordered.colors, 3).unwrap();
//! let sol = pcg_solve(&ordered.matrix, &ordered.rhs, &pre, &PcgOptions::default()).unwrap();
//! assert!(sol.converged);
//! ```

pub use mspcg_coloring as coloring;
pub use mspcg_core as core;
pub use mspcg_fem as fem;
pub use mspcg_machine as machine;
pub use mspcg_parallel as parallel;
pub use mspcg_sparse as sparse;
