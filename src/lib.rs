//! # mspcg — m-step preconditioned conjugate gradient for parallel computation
//!
//! Facade crate for the reproduction of **L. Adams, “An M-Step
//! Preconditioned Conjugate Gradient Method for Parallel Computation”,
//! ICPP 1983 / NASA CR-172150**. It re-exports the workspace crates so an
//! application needs a single dependency:
//!
//! * [`sparse`] — sparse/dense linear algebra substrate,
//! * [`coloring`] — multicolor orderings (Adams–Ortega),
//! * [`fem`] — plane-stress finite-element model problems,
//! * [`core`] — PCG, splittings and the m-step parametrized preconditioners,
//! * [`machine`] — CYBER 203/205 and Finite Element Machine simulators,
//! * [`parallel`] — real threaded executor for the multicolor method.
//!
//! ## Quickstart
//!
//! ```
//! use mspcg::fem::plate::PlaneStressProblem;
//! use mspcg::core::mstep::MStepSsorPreconditioner;
//! use mspcg::core::pcg::{pcg_solve, PcgOptions};
//!
//! // The paper's test problem: a unit-square plate, clamped on the left
//! // edge, loaded on the right, discretized with linear triangles.
//! let problem = PlaneStressProblem::unit_square(8).assemble().unwrap();
//! let ordered = problem.multicolor().unwrap();
//!
//! // 3-step parametrized SSOR preconditioner (least-squares coefficients).
//! let pre = MStepSsorPreconditioner::parametrized(&ordered.matrix, &ordered.colors, 3).unwrap();
//! let sol = pcg_solve(&ordered.matrix, &ordered.rhs, &pre, &PcgOptions::default()).unwrap();
//! assert!(sol.converged);
//! ```
//!
//! ## Performance
//!
//! The solver stack runs on a shared **data-parallel kernel layer** in
//! `mspcg-sparse` (the `par` feature, on by default): CSR SpMV and the
//! BLAS-1 reductions are row/chunk parallel, and the per-color row loops
//! of the multicolor SSOR sweeps — the loops the paper identifies as
//! embarrassingly parallel — run on a persistent `std::thread` worker
//! pool. The contracts:
//!
//! * **Determinism** — chunk boundaries depend only on problem size and
//!   reductions combine per-chunk partials in a fixed order, so results
//!   are bitwise identical across thread counts and between the serial
//!   and parallel paths (`tests/par_determinism.rs` asserts this for a
//!   full PCG solve). Thread budget: hardware default, `MSPCG_THREADS`
//!   env var (positive integers only — `0`/garbage pins the budget to one
//!   thread, with a debug assertion), or
//!   `mspcg::sparse::par::set_max_threads`.
//! * **Fused iteration kernels** — the CG hot loop computes `u += αp`,
//!   `r −= α·Kp` and the `‖p‖∞`/`‖r‖∞` stopping-test partials in **one
//!   pass** per iteration (`vecops::fused_axpy_axpy_norm`; the direction
//!   initialization uses `vecops::fused_xpby_dot`), bitwise identical to
//!   the unfused sweeps. The SPMD `ParallelMStepPcg` fuses every
//!   reduction into the phase producing its operands and replicates the
//!   scalar reductions across workers: `m·(2C−1) + 3` barriers per
//!   iteration (C colors, m steps), down from `m·(2C−1) + 9`.
//! * **Single-reduction (communication-avoiding) variant** — classic PCG
//!   serializes two inner products per iteration: `(p, Kp)` before α,
//!   `(r̂, r)` before β. `PcgVariant::SingleReduction` runs the
//!   Chronopoulos–Gear two-term recurrence instead — carry `s = Kp` and
//!   `w = Kz`, reconstruct `α = γ′/(δ − β·γ′/α)` — so both scalars come
//!   out of **one** fused reduction phase (`vecops::fused_dot3_norm`:
//!   `(r, z)`, `(w, z)`, the `(p, s)` breakdown guard and the stopping
//!   norm, in one sweep). Per-iteration cost model:
//!
//!   | schedule | reduction phases | SPMD barriers | reduction overlap window |
//!   |---|---|---|---|
//!   | classic | 2 (serialized) | `m·(2C−1) + 3` | — (both block) |
//!   | single-reduction | **1** | `m·(2C−1) + 2` | — (fused, still blocks) |
//!   | pipelined | **1, in flight** | **`m·(2C−1)`** + 1 split crossing | the whole `M⁻¹w` + `K·mv` phase |
//!   | classic, plain CG (`m = 0`) | 2 | 4 | — |
//!   | single-reduction, plain CG | **1** | **2** (`z ≡ r`) | — |
//!   | pipelined, plain CG | **1, in flight** | **1** + 1 split crossing | the `K·w` SpMV |
//!   | classic, polynomial degree `k` | 2 | **`k + 3`** | — |
//!   | single-reduction, polynomial | **1** | **`k + 2`** | — |
//!   | pipelined, polynomial | **1, in flight** | **`k + 1`** + 1 split crossing | the `p(G)D⁻¹w` chain + `K·mv` |
//!   | s-step, block size `s` | **1 per `s` iterations** | `s·m(2C−1) + 2s` per block | — (fused block Gram) |
//!   | s-step, plain CG | **1 per `s` iterations** | **`s + 1`** per block (`v₁ ≡ r`) | — |
//!   | s-step, polynomial | **1 per `s` iterations** | **`s·(k + 2)`** per block | — |
//!
//!   Both counts are *measured*, not asserted: `PcgStats` carries
//!   `reduction_phases` (and `fallbacks`), the SPMD report carries
//!   `barrier_crossings` / `reduction_phases` / `split_crossings` from
//!   instrumented barriers, and `BENCH_pr5.json` records them per
//!   variant on the Table-3 family. The recurrences have
//!   different-but-bounded rounding paths, so the contract is bitwise
//!   determinism across thread counts *within* each variant and
//!   cross-variant agreement to a residual tolerance
//!   (`tests/pcg_variants.rs`, `tests/variant_conformance.rs`); on
//!   recurrence breakdown (`(p, s) ≤ 0`, a nonpositive reconstructed
//!   denominator, or — pipelined — a nonpositive carried `γ′`) every
//!   entry point falls back to the classic loop — serial solves continue
//!   from the current iterate, the SPMD solver reruns the solve.
//!   Selection: `PcgOptions::variant` / `ParallelSolverOptions::variant`,
//!   with the validated
//!   `MSPCG_PCG_VARIANT=classic|single_reduction|pipelined|sstep:S`
//!   environment override resolving the `Auto` default; CI runs the
//!   whole suite once under `single_reduction`, once under `pipelined`
//!   and once under `sstep:4`.
//! * **Pipelined (Ghysels–Vanroose) variant** — the single-reduction
//!   schedule still *blocks* at its one reduction barrier.
//!   `PcgVariant::Pipelined` carries two more recurrence vectors
//!   (`q = M⁻¹s`, `K·q`) and recomputes `mv = M⁻¹w` / `nv = K·mv` each
//!   iteration, so the γ/δ reduction reads only vectors finished in the
//!   update phase: the SPMD executor **initiates** it there
//!   (`SplitBarrier::arrive`, a new split-phase primitive in
//!   `mspcg-parallel`) and **consumes** it (`wait`) only after the
//!   preconditioner + SpMV — the reduction latency hides behind the
//!   heaviest phase, and the update mega-phase needs *no trailing
//!   barrier at all* (own-strip analysis + parity-rotated `mv`/partial
//!   banks), which is why the pipelined iteration runs on `m·(2C−1)`
//!   full barriers where single-reduction needs `+ 2`. Costs: one
//!   speculative heavy phase on the converging iteration, ~4 extra
//!   vector carries, and faster drift (hence the stricter guards). The
//!   exact schedule — full-barrier, split-crossing and reduction-phase
//!   formulas at `m ∈ {0..3}` — is pinned by counter tests; honest
//!   1-core caveat: this container cannot show the latency win, only the
//!   counter proof (`BENCH_pr5.json` records both).
//! * **s-step (communication-avoiding) variant** — the pipelined
//!   schedule still pays one reduction *per iteration*; it merely hides
//!   the latency. `PcgVariant::SStep { s }` amortizes the count itself:
//!   each outer step builds an `s`-dimensional Krylov block with the
//!   **Chebyshev three-term recurrence** on the cached Lanczos interval
//!   (well-conditioned where the naive monomial basis collapses —
//!   Chronopoulos–Gear blocked, Carson/Demmel-style basis), then fuses
//!   *every* inner product of the next `s` iterations — the `s(s+1)/2`
//!   block Gram entries, the `s×s` direction coupling, the projections
//!   and the stopping norm — into **ONE** reduction phase, solved
//!   replicated by a small dense Cholesky (with a rank-revealing pivot
//!   floor: an endgame-degenerate block truncates to its numerical rank
//!   and restarts the recurrence instead of dividing by noise). The
//!   serial solver, the multi-RHS driver and the SPMD executor share the
//!   code path; the SPMD block runs on `s·m(2C−1) + 2s` barriers (table
//!   above) with **zero** split crossings and no init phase. Breakdown
//!   steps down warm onto the pipelined rung. The exact block schedule
//!   is pinned by counter tests at `s ∈ {2, 4}` × 1/4 threads × CSR /
//!   SELL-C-σ, bitwise-deterministic across runs and formats;
//!   `BENCH_pr10.json` records the `s`-sweep against the ladder, with
//!   the formulas asserted in-run.
//! * **Barrier-free polynomial (Newton–Chebyshev) preconditioning** — the
//!   multicolor SSOR sweeps cost `2C−1` barriers per step: the
//!   *color structure itself* is the synchronization bill.
//!   `mspcg::core::poly::PolynomialPreconditioner` replaces the sweeps
//!   with `z = p(G)·D⁻¹r`, `G = D⁻¹K`, evaluated as a degree-`k` chain of
//!   fused SpMV + BLAS-1 kernels (`vecops::fused_poly_seed` /
//!   `fused_poly_step`): **`k` barriers per application, zero color
//!   sweeps**, allocation-free after setup (`scratch_len`/`apply_with`),
//!   generic over `SparseOp`, and bitwise identical across thread counts
//!   and storage formats. The coefficient schedule (Chebyshev min-max on
//!   the estimated interval, or Newton/scaled-Richardson) is built once
//!   from a Lanczos estimate of the Jacobi-scaled spectrum
//!   (`poly::jacobi_spectrum`, cached on the preconditioner for reuse at
//!   other degrees) and shared verbatim by the serial evaluator and the
//!   SPMD `ParallelMStepPcg::poly` msolve — `k` fused SpMV phases, whose
//!   exact barrier/split/reduction formulas (table above; the pipelined
//!   overlap window pays one input-finalization barrier) are pinned by
//!   counter tests at every variant. Selection:
//!   `PrecondKind::{Auto, MStepSsor, Poly}` on the auto constructors
//!   (`core::poly::auto_preconditioner`, `ParallelMStepPcg::auto`) with
//!   the validated `MSPCG_PRECOND=mstep:M|ssor:M|chebyshev:K|newton:K`
//!   env override; the `Auto` heuristic picks the polynomial at matched
//!   flops (degree `2m` ≈ `m` sweeps) whenever `2C−1 > 2`, i.e. for
//!   every genuinely multicolor matrix. The `par-poly` CI job runs the
//!   whole suite under `chebyshev:4` × 4 threads, and `BENCH_pr8.json`
//!   records iterations / barriers / wall time of degree-`k` vs m-step
//!   at matched flops.
//! * **Operator abstraction + SELL-C-σ** — every solver entry point
//!   (`pcg_solve_into`, `pcg_solve_multi`, the SPMD `ParallelMStepPcg`,
//!   the splitting/preconditioner constructors) is generic over
//!   `mspcg::sparse::SparseOp`, so the storage format is a pure
//!   performance decision: CSR by default, SELL-C-σ
//!   (`mspcg::sparse::SellCsMatrix`, sliced ELL with slice height C and
//!   sort window σ) for wide/irregular rows — ~1.3–1.6× CSR throughput on
//!   the arrow-matrix family (`BENCH_pr3.json`) with bitwise-identical
//!   products and solver runs. `AutoOp` picks the format from the row
//!   shape (longest row ≥ 4× mean, padding ≤ 50 %); the
//!   `MSPCG_FORCE_FORMAT` env var pins it, and CI runs the whole suite
//!   once under `MSPCG_FORCE_FORMAT=sellcs`. Future formats (blocked CSR,
//!   NUMA-partitioned) implement one trait and drop in.
//! * **nnz-weighted SpMV chunking** — parallel SpMV splits rows at
//!   `row_ptr` prefix-sum boundaries (`par::spmv_layout`), so a run of
//!   dense-ish rows on an irregular FEM matrix cannot serialize the pool;
//!   layouts stay thread-count independent. The multicolor SSOR color
//!   sweeps chunk the same way (`par::spmv_chunk_rows_range` within each
//!   color block). All thresholds live in `mspcg::sparse::tuning` with
//!   validated `MSPCG_PAR_MIN_ELEMS` / `MSPCG_PAR_MIN_NNZ` /
//!   `MSPCG_MIN_SPMV_CHUNK_NNZ` overrides.
//! * **Adaptive fallback** — small kernels run serially; a
//!   `--no-default-features` build is strictly serial with identical
//!   results.
//! * **Zero-allocation hot loop** — `pcg_solve_into` with a reusable
//!   `PcgWorkspace` performs no heap allocation per solve (verified by a
//!   counting-allocator test over the ω sweep); `MulticolorSsor` shares
//!   the matrix/partition via `Arc` instead of deep-cloning.
//! * **Batched multi-RHS** — `mspcg::core::multi::pcg_solve_multi` solves
//!   many load cases against one matrix + preconditioner
//!   (`MultiRhsWorkspace` holds per-lane scratch, so the shared SSOR
//!   cache is never a lock point): right-hand sides become the unit of
//!   parallelism for small matrices, kernels for large ones, with zero
//!   per-solve allocation after warm-up and bitwise-standalone-identical
//!   solutions. See `examples/multi_load_cases.rs`.
//!
//! ## Robustness
//!
//! `mspcg::core::recovery` makes every solver entry point fault-tolerant,
//! with the same discipline as the performance work: every rescue is
//! *counted*, every cost is *pinned*.
//!
//! * **Input validation** — a NaN/Inf right-hand side or initial guess is
//!   rejected up front as `SparseError::NonFinite { phase, .. }`, a
//!   nonpositive or non-finite tolerance as
//!   `SparseError::InvalidTolerance`, before any kernel runs.
//! * **Residual audit + replacement** — every `audit_period` iterations
//!   the solver recomputes the TRUE residual `f − K·u` and compares it to
//!   the recurrence residual. Deviation beyond
//!   `max(10·tol, 10³·ε)·‖f‖` replaces the recurrence state from the
//!   recomputed residual (van der Vorst/Ye-style). Cost model, asserted
//!   by counter tests and recorded in `BENCH_pr6.json`: the SPMD audit is
//!   ONE fused extra phase — **+1 barrier crossing, zero extra reduction
//!   phases** — and a clean audited solve stays *bitwise identical* to
//!   the unaudited run (an audit that finds no drift only observes).
//!   Policy: `RecoveryPolicy` on `PcgOptions` / `ParallelSolverOptions`
//!   (`Auto` enables auditing for the drift-prone single-reduction and
//!   pipelined recurrences at tolerances ≤ 1e-11), with validated
//!   `MSPCG_RESIDUAL_REPLACEMENT=0|1` / `MSPCG_AUDIT_PERIOD=n` env
//!   overrides; the `par-recovery` CI job runs the whole suite under
//!   forced replacement + pipelined + 4 threads.
//! * **Recovery ladder** — a non-finite reduction scalar (or an audit
//!   divergence in a recurrence schedule) walks SStep → Pipelined →
//!   SingleReduction → Classic: the recurrence rungs are *detectors*
//!   (they hand the current iterate down one rung, counted as a
//!   `recovery`/`fallback`), the classic rung *self-heals in place*
//!   (recompute `f − K·u`, re-derive the direction, counted as a
//!   `replacement`, budget `max_replacements`); an exhausted budget
//!   surfaces `SparseError::NonFinite { phase, iteration }` instead of
//!   silent garbage. All of it lands in `PcgStats` /
//!   `ParallelSolveReport` (`audits`, `replacements`, `recoveries`,
//!   `faults_detected`), and per-RHS in `multi::SolveStatus::{Recovered,
//!   Replaced}`.
//! * **Fault injection, first-class** — `FaultyOp` /
//!   `FaultyPreconditioner` wrap any operator/preconditioner with
//!   application-indexed faults (bit-flips, NaN/Inf, scaled noise) for
//!   the serial stack; `ParallelMStepPcg::solve_with_faults` takes an
//!   iteration-indexed `FaultPlan` injected deterministically at every
//!   thread count. The two models differ on purpose: a wrapper fault is
//!   consumed once (lower rungs run clean), a plan fault is *persistent*
//!   (it re-fires on every ladder rung, so the full walk is exercised —
//!   a pipelined start under a NaN preconditioner fault proves exactly 3
//!   detections, 2 step-downs, 1 classic in-place replacement; an s-step
//!   start proves the full 4-rung walk: 4 detections, 3 step-downs, 1
//!   replacement).
//!   `tests/fault_injection.rs` runs every variant × executor × family
//!   under both fault classes with bitwise replay and exact counters.
//!
//! Measure with
//! `cargo bench -p mspcg-bench --bench spmv -- --json BENCH_pr3.json`
//! (CSR vs DIA vs SELL-C-σ, serial and parallel),
//! `… --bench precond …`, and the fused-kernel / multi-RHS bench
//! `cargo bench -p mspcg-bench --bench multi_rhs -- --json
//! BENCH_pr2.json` (committed reference numbers in `BENCH_pr1.json` /
//! `BENCH_pr2.json` / `BENCH_pr3.json`; this container is single-core —
//! re-record on a multi-core runner for parallel speedups).

pub use mspcg_coloring as coloring;
pub use mspcg_core as core;
pub use mspcg_fem as fem;
pub use mspcg_machine as machine;
pub use mspcg_parallel as parallel;
pub use mspcg_sparse as sparse;
