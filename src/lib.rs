//! # mspcg — m-step preconditioned conjugate gradient for parallel computation
//!
//! Facade crate for the reproduction of **L. Adams, “An M-Step
//! Preconditioned Conjugate Gradient Method for Parallel Computation”,
//! ICPP 1983 / NASA CR-172150**. It re-exports the workspace crates so an
//! application needs a single dependency:
//!
//! * [`sparse`] — sparse/dense linear algebra substrate,
//! * [`coloring`] — multicolor orderings (Adams–Ortega),
//! * [`fem`] — plane-stress finite-element model problems,
//! * [`core`] — PCG, splittings and the m-step parametrized preconditioners,
//! * [`machine`] — CYBER 203/205 and Finite Element Machine simulators,
//! * [`parallel`] — real threaded executor for the multicolor method.
//!
//! ## Quickstart
//!
//! ```
//! use mspcg::fem::plate::PlaneStressProblem;
//! use mspcg::core::mstep::MStepSsorPreconditioner;
//! use mspcg::core::pcg::{pcg_solve, PcgOptions};
//!
//! // The paper's test problem: a unit-square plate, clamped on the left
//! // edge, loaded on the right, discretized with linear triangles.
//! let problem = PlaneStressProblem::unit_square(8).assemble().unwrap();
//! let ordered = problem.multicolor().unwrap();
//!
//! // 3-step parametrized SSOR preconditioner (least-squares coefficients).
//! let pre = MStepSsorPreconditioner::parametrized(&ordered.matrix, &ordered.colors, 3).unwrap();
//! let sol = pcg_solve(&ordered.matrix, &ordered.rhs, &pre, &PcgOptions::default()).unwrap();
//! assert!(sol.converged);
//! ```
//!
//! ## Performance
//!
//! The solver stack runs on a shared **data-parallel kernel layer** in
//! `mspcg-sparse` (the `par` feature, on by default): CSR SpMV and the
//! BLAS-1 reductions are row/chunk parallel, and the per-color row loops
//! of the multicolor SSOR sweeps — the loops the paper identifies as
//! embarrassingly parallel — run on a persistent `std::thread` worker
//! pool. Three contracts hold throughout:
//!
//! * **Determinism** — chunk boundaries depend only on problem size and
//!   reductions combine per-chunk partials in a fixed order, so results
//!   are bitwise identical across thread counts and between the serial
//!   and parallel paths (`tests/par_determinism.rs` asserts this for a
//!   full PCG solve). Thread budget: hardware default, `MSPCG_THREADS`
//!   env var, or `mspcg::sparse::par::set_max_threads`.
//! * **Adaptive fallback** — small kernels run serially; a
//!   `--no-default-features` build is strictly serial with identical
//!   results.
//! * **Zero-allocation hot loop** — `pcg_solve_into` with a reusable
//!   `PcgWorkspace` performs no heap allocation per solve (verified by a
//!   counting-allocator test over the ω sweep); `MulticolorSsor` shares
//!   the matrix/partition via `Arc` instead of deep-cloning.
//!
//! Measure the kernels with
//! `cargo bench -p mspcg-bench --bench spmv -- --json BENCH_pr1.json` and
//! `… --bench precond -- --json BENCH_pr1.json` (serial vs parallel
//! groups on a 512×512 red/black Poisson problem; committed reference
//! numbers in `BENCH_pr1.json`).

pub use mspcg_coloring as coloring;
pub use mspcg_core as core;
pub use mspcg_fem as fem;
pub use mspcg_machine as machine;
pub use mspcg_parallel as parallel;
pub use mspcg_sparse as sparse;
