//! Generality beyond elasticity: the 5-point Poisson problem with a
//! red/black (2-color) ordering, comparing the m-step SSOR preconditioner
//! against the m-step Jacobi family — including the truncated Neumann
//! series of Dubois–Greenbaum–Rodrigue (1979) and the polynomial
//! preconditioner of Johnson–Micchelli–Paul (1982) that §2.2 builds on.
//!
//! ```sh
//! cargo run --release --example poisson_multicolor [n]
//! ```

use mspcg::core::mstep::{MStepJacobiPreconditioner, MStepSsorPreconditioner};
use mspcg::core::pcg::{cg_solve, pcg_solve, PcgOptions};
use mspcg::fem::poisson::poisson5;

fn main() {
    let n = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40usize);
    let problem = poisson5(n).expect("poisson");
    println!(
        "-Δu = f on an {n}x{n} interior grid ({} unknowns), manufactured solution",
        problem.matrix.rows()
    );

    // Red/black multicolor ordering (the smallest multicolor family).
    let ordering = problem.coloring.ordering();
    let matrix = ordering.permute_matrix(&problem.matrix).expect("permute");
    let rhs = ordering.permutation.gather(&problem.rhs);
    let opts = PcgOptions {
        tol: 1e-8,
        ..Default::default()
    };

    println!("\npreconditioner                       iterations");
    let cg = cg_solve(&matrix, &rhs, &opts).expect("CG");
    println!("none (plain CG)                      {:6}", cg.iterations);

    for m in [1usize, 2, 4] {
        let neumann = MStepJacobiPreconditioner::neumann(&matrix, m).expect("neumann");
        let sn = pcg_solve(&matrix, &rhs, &neumann, &opts).expect("PCG");
        println!("{m}-step Jacobi (truncated Neumann)    {:6}", sn.iterations);
    }
    for m in [2usize, 4] {
        let jmp = MStepJacobiPreconditioner::parametrized_jacobi(&matrix, m).expect("jmp");
        let sj = pcg_solve(&matrix, &rhs, &jmp, &opts).expect("PCG");
        println!("{m}-step Jacobi (parametrized, JMP)    {:6}", sj.iterations);
    }
    for m in [1usize, 2, 4] {
        let ssor =
            MStepSsorPreconditioner::unparametrized(&matrix, &ordering.partition, m).expect("ssor");
        let ss = pcg_solve(&matrix, &rhs, &ssor, &opts).expect("PCG");
        println!("{m}-step red/black SSOR                {:6}", ss.iterations);
    }
    for m in [2usize, 4] {
        let ssor =
            MStepSsorPreconditioner::parametrized(&matrix, &ordering.partition, m).expect("ssor");
        let ss = pcg_solve(&matrix, &rhs, &ssor, &opts).expect("PCG");
        println!("{m}-step red/black SSOR (param)        {:6}", ss.iterations);
    }

    // Accuracy against the manufactured solution (discretization-limited).
    let ssor =
        MStepSsorPreconditioner::parametrized(&matrix, &ordering.partition, 2).expect("ssor");
    let sol = pcg_solve(&matrix, &rhs, &ssor, &opts).expect("PCG");
    let natural = ordering.permutation.scatter(&sol.x);
    let err = natural
        .iter()
        .zip(&problem.exact)
        .map(|(u, v)| (u - v).abs())
        .fold(0.0f64, f64::max);
    println!("\nmax |u_h - u_exact| = {err:.3e} (stencil is exact for this polynomial solution)");
    assert!(err < 1e-6, "solver error too large: {err}");
}
