//! Batched multi-RHS workload: one plate stiffness matrix, 32 load cases,
//! one `pcg_solve_multi` call — the "many load cases on one factored
//! system" pattern of structural analysis. The matrix, multicolor
//! ordering and m-step SSOR preconditioner are built once and shared
//! (`Arc`) across every case; each case reports its iteration count and
//! the batch reports the roll-up.
//!
//! ```sh
//! cargo run --release --example multi_load_cases [a] [cases]
//! ```

use mspcg::core::mstep::MStepSsorPreconditioner;
use mspcg::core::multi::{pcg_solve_multi, MultiRhsWorkspace, SolveStatus};
use mspcg::core::pcg::PcgOptions;
use mspcg::fem::plate::PlaneStressProblem;
use mspcg::sparse::par;
use std::sync::Arc;

fn main() {
    let a = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24usize);
    let cases = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(32usize);

    let asm = PlaneStressProblem::unit_square(a)
        .assemble()
        .expect("assembly");
    let ord = asm.multicolor().expect("ordering");
    let n = ord.matrix.rows();
    let matrix = Arc::new(ord.matrix);
    let colors = Arc::new(ord.colors);
    let pre =
        MStepSsorPreconditioner::unparametrized_shared(Arc::clone(&matrix), Arc::clone(&colors), 2)
            .expect("preconditioner");

    println!(
        "plate a = {a}: {n} unknowns, {} stored entries, {cases} load cases, \
         {} worker thread(s)",
        matrix.nnz(),
        par::max_threads()
    );

    // Load cases: the assembled edge load rotated through per-case scale
    // factors (a stand-in for a real load-case book).
    let f: Vec<f64> = (0..cases)
        .flat_map(|j| {
            let scale = 1.0 + 0.2 * (j as f64) * (-1.0f64).powi(j as i32);
            ord.rhs.iter().map(move |v| v * scale)
        })
        .collect();
    let mut u = vec![0.0; cases * n];

    let opts = PcgOptions {
        tol: 1e-8,
        ..Default::default()
    };
    let mut ws = MultiRhsWorkspace::new(n, cases);
    let start = std::time::Instant::now();
    let summary = pcg_solve_multi(&matrix, &f, &mut u, &pre, &opts, &mut ws).expect("batch solve");
    let elapsed = start.elapsed();

    for (j, outcome) in ws.outcomes().iter().enumerate() {
        let tag = match outcome.status {
            SolveStatus::Converged => "ok",
            SolveStatus::Recovered => "ok (recovered)",
            SolveStatus::Replaced => "ok (replaced)",
            SolveStatus::BudgetExhausted => "BUDGET",
            SolveStatus::Breakdown => "BREAKDOWN",
        };
        println!(
            "  case {j:>2}: {:>4} iterations, final rel. residual {:9.2e}  [{tag}]",
            outcome.report.iterations, outcome.report.final_relative_residual
        );
    }
    println!(
        "batch: {}/{} converged, {} total iterations, worst rel. residual {:9.2e}, {:.1} ms",
        summary.converged,
        summary.solved,
        summary.total_iterations,
        summary.max_final_relative_residual,
        elapsed.as_secs_f64() * 1e3
    );
    assert_eq!(summary.converged, cases, "a load case failed to converge");
}
