//! Three machines, one algorithm: run the same m-step SSOR PCG solve on
//! the simulated CYBER 203 pipeline, the simulated Finite Element Machine
//! array, and the host machine's real threads — and compare where each
//! spends its time.
//!
//! ```sh
//! cargo run --release --example machine_comparison [a]
//! ```

use mspcg::fem::plate::PlaneStressProblem;
use mspcg::machine::array::run_fem_machine;
use mspcg::machine::vector::{run_cyber_pcg, CoefficientChoice};
use mspcg::machine::{ArrayMachineParams, VectorMachineParams};
use mspcg::parallel::{ParallelMStepPcg, ParallelSolverOptions};
use std::time::Instant;

fn main() {
    let a = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(56usize);
    let m = 3usize;
    let asm = PlaneStressProblem::unit_square(a)
        .assemble()
        .expect("assembly");
    let ord = asm.multicolor().expect("ordering");
    println!(
        "plate a = {a} ({} unknowns), preconditioner: {m}-step parametrized SSOR\n",
        asm.num_unknowns()
    );

    // --- CYBER 203 (simulated pipeline) ---------------------------------
    let vparams = VectorMachineParams::default();
    let cyber = run_cyber_pcg(
        &asm,
        &ord,
        m,
        CoefficientChoice::Parametrized,
        &vparams,
        1e-6,
    )
    .expect("cyber run");
    println!("CYBER 203 (simulated):");
    println!(
        "  {} iterations, {:.4} modelled s (max vector length {})",
        cyber.iterations, cyber.seconds, cyber.max_vector_length
    );
    println!(
        "  breakdown: spmv {:.1}%, dots {:.1}%, updates {:.1}%, precond {:.1}%",
        100.0 * cyber.breakdown.spmv / cyber.seconds,
        100.0 * cyber.breakdown.dots / cyber.seconds,
        100.0 * (cyber.breakdown.updates + cyber.breakdown.convergence) / cyber.seconds,
        100.0 * cyber.breakdown.preconditioner / cyber.seconds
    );

    // --- Finite Element Machine (simulated array) ------------------------
    let aparams = ArrayMachineParams::default();
    println!("\nFinite Element Machine (simulated):");
    let mut t1 = 0.0;
    for p in [1usize, 2, 5] {
        let rep = run_fem_machine(
            &asm,
            &ord,
            m,
            CoefficientChoice::Parametrized,
            p,
            &aparams,
            1e-6,
        )
        .expect("fem run");
        if p == 1 {
            t1 = rep.seconds;
        }
        println!(
            "  {p} proc(s): {:8.2} modelled s   speedup {:.2}   overhead {:.1}%",
            rep.seconds,
            t1 / rep.seconds,
            100.0 * rep.breakdown.overhead_fraction()
        );
    }

    // --- this machine (real threads) --------------------------------------
    println!("\nhost machine (real threads, SPMD with barriers):");
    let solver = ParallelMStepPcg::new(&ord.matrix, &ord.colors, vec![1.0; m]).expect("solver");
    let mut base = 0.0f64;
    for threads in [1usize, 2, 4] {
        let opts = ParallelSolverOptions {
            threads,
            tol: 1e-6,
            max_iterations: 50_000,
            ..Default::default()
        };
        // Warm up once, then time a few repeats.
        let rep = solver.solve(&ord.rhs, &opts).expect("solve");
        let reps = 5;
        let t0 = Instant::now();
        for _ in 0..reps {
            let _ = solver.solve(&ord.rhs, &opts).expect("solve");
        }
        let secs = t0.elapsed().as_secs_f64() / reps as f64;
        if threads == 1 {
            base = secs;
        }
        println!(
            "  {threads} thread(s): {:9.4} real s   speedup {:.2}   ({} iterations)",
            secs,
            base / secs,
            rep.iterations
        );
    }
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!("\nNote: this host reports {cores} CPU core(s). Real-thread speedup needs");
    println!("(a) multiple physical cores and (b) a plate large enough that the");
    println!("per-color work dwarfs the barrier cost (a ≳ 80) — the same");
    println!("surface-to-volume economics that governed the Finite Element Machine.");
}
