//! Quickstart: solve the paper's plane-stress plate with the m-step
//! multicolor SSOR preconditioned conjugate gradient method.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mspcg::core::mstep::MStepSsorPreconditioner;
use mspcg::core::pcg::{cg_solve, pcg_solve, PcgOptions};
use mspcg::fem::plate::PlaneStressProblem;

fn main() {
    // 1. The model problem: a unit-square plate, 20×20 nodes, clamped on
    //    the left edge, unit tension on the right (paper §3).
    let problem = PlaneStressProblem::unit_square(20);
    let assembled = problem.assemble().expect("assembly");
    println!(
        "assembled K: {} unknowns, {} nonzeros (≤ {} per row)",
        assembled.num_unknowns(),
        assembled.matrix.nnz(),
        assembled.matrix.max_row_nnz()
    );

    // 2. Multicolor ordering: 6 colors (R/B/G × u/v) — every diagonal
    //    color block becomes diagonal, so SSOR parallelizes.
    let ordered = assembled.multicolor().expect("multicolor ordering");
    println!(
        "multicolor blocks: {:?}",
        (0..ordered.colors.num_blocks())
            .map(|b| ordered.colors.block_len(b))
            .collect::<Vec<_>>()
    );

    // 3. Solve three ways: plain CG, unparametrized 3-step, parametrized
    //    3-step (least-squares coefficients fitted to the estimated
    //    spectrum of P⁻¹K).
    let opts = PcgOptions {
        tol: 1e-6,
        ..Default::default()
    };
    let cg = cg_solve(&ordered.matrix, &ordered.rhs, &opts).expect("CG");
    println!("\nplain CG            : {:4} iterations", cg.iterations);

    let un = MStepSsorPreconditioner::unparametrized(&ordered.matrix, &ordered.colors, 3)
        .expect("preconditioner");
    let sol_un = pcg_solve(&ordered.matrix, &ordered.rhs, &un, &opts).expect("PCG");
    println!("3-step SSOR         : {:4} iterations", sol_un.iterations);

    let pa = MStepSsorPreconditioner::parametrized(&ordered.matrix, &ordered.colors, 3)
        .expect("preconditioner");
    println!(
        "fitted alphas       : {:?} on sigma(P^-1 K) in {:?}",
        pa.alphas()
            .iter()
            .map(|a| (a * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>(),
        pa.interval().unwrap()
    );
    let sol_pa = pcg_solve(&ordered.matrix, &ordered.rhs, &pa, &opts).expect("PCG");
    println!("3-step SSOR (param) : {:4} iterations", sol_pa.iterations);

    // 4. Read out the physics: tip displacement of the loaded edge.
    let nodal = ordered.to_nodal(&sol_pa.x);
    let full = assembled.free_map.expand(&nodal);
    let mesh = assembled.mesh;
    let tip = mesh.node_index(mesh.rows / 2, mesh.cols - 1);
    println!(
        "\nmid-edge tip displacement: u = {:+.5e}, v = {:+.5e}",
        full[2 * tip],
        full[2 * tip + 1]
    );
    println!(
        "converged: {} (final |du|_inf = {:.2e})",
        sol_pa.converged, sol_pa.final_change
    );
}
