//! The paper's closing "future work" item, implemented: *"A problem still
//! remains in applying the method to irregular regions since the grid must
//! be colored."* We solve a Poisson problem on an **L-shaped** domain,
//! color its graph with the greedy multicoloring of `mspcg-coloring`, and
//! run the m-step SSOR PCG on the resulting ordering.
//!
//! ```sh
//! cargo run --release --example irregular_region [n]
//! ```

use mspcg::coloring::{greedy_coloring, GreedyStrategy};
use mspcg::core::mstep::MStepSsorPreconditioner;
use mspcg::core::pcg::{cg_solve, pcg_solve, PcgOptions};
use mspcg::sparse::CooMatrix;

fn main() {
    let n = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24usize);

    // L-shaped domain: the full n×n square minus its upper-right quadrant.
    let inside = |i: usize, j: usize| -> bool { i < n / 2 || j < n / 2 };
    let mut index = vec![usize::MAX; n * n];
    let mut count = 0usize;
    for i in 0..n {
        for j in 0..n {
            if inside(i, j) {
                index[i * n + j] = count;
                count += 1;
            }
        }
    }
    println!(
        "L-shaped Poisson domain: {count} interior unknowns (of {})",
        n * n
    );

    // 5-point Laplacian restricted to the L.
    let mut coo = CooMatrix::new(count, count);
    for i in 0..n {
        for j in 0..n {
            if !inside(i, j) {
                continue;
            }
            let me = index[i * n + j];
            coo.push(me, me, 4.0).expect("push");
            let mut link = |ii: isize, jj: isize| {
                if ii >= 0 && jj >= 0 && (ii as usize) < n && (jj as usize) < n {
                    let (ii, jj) = (ii as usize, jj as usize);
                    if inside(ii, jj) {
                        coo.push(me, index[ii * n + jj], -1.0).expect("push");
                    }
                }
            };
            link(i as isize - 1, j as isize);
            link(i as isize + 1, j as isize);
            link(i as isize, j as isize - 1);
            link(i as isize, j as isize + 1);
        }
    }
    let matrix = coo.to_csr();

    // Greedy multicoloring — the machinery the paper says was missing.
    for strategy in [
        GreedyStrategy::Natural,
        GreedyStrategy::LargestDegreeFirst,
        GreedyStrategy::SmallestDegreeLast,
    ] {
        let coloring = greedy_coloring(&matrix, strategy).expect("coloring");
        println!("greedy {strategy:?}: {} colors", coloring.num_colors());
    }
    let coloring = greedy_coloring(&matrix, GreedyStrategy::Natural).expect("coloring");
    coloring
        .verify_for(&matrix)
        .expect("coloring must decouple");
    let ordering = coloring.ordering();
    let blocked = ordering.permute_matrix(&matrix).expect("permute");

    // Manufactured right-hand side and the m sweep.
    let rhs_nat: Vec<f64> = (0..count).map(|k| ((k % 7) as f64) - 3.0).collect();
    let rhs = ordering.permutation.gather(&rhs_nat);
    let opts = PcgOptions {
        tol: 1e-8,
        ..Default::default()
    };
    println!("\n  m     iterations");
    let cg = cg_solve(&blocked, &rhs, &opts).expect("CG");
    println!("  0     {:6}", cg.iterations);
    for m in [1usize, 2, 3, 4] {
        let pre = if m >= 2 {
            MStepSsorPreconditioner::parametrized(&blocked, &ordering.partition, m)
                .expect("preconditioner")
        } else {
            MStepSsorPreconditioner::unparametrized(&blocked, &ordering.partition, m)
                .expect("preconditioner")
        };
        let sol = pcg_solve(&blocked, &rhs, &pre, &opts).expect("PCG");
        println!(
            "  {m}{}    {:6}",
            if m >= 2 { "P" } else { " " },
            sol.iterations
        );
    }

    // Validate against a dense direct solve.
    let pre = MStepSsorPreconditioner::parametrized(&blocked, &ordering.partition, 2)
        .expect("preconditioner");
    let sol = pcg_solve(&blocked, &rhs, &pre, &opts).expect("PCG");
    if count <= 700 {
        let exact = blocked.to_dense().cholesky().unwrap().solve(&rhs);
        let err = sol
            .x
            .iter()
            .zip(&exact)
            .map(|(u, v)| (u - v).abs())
            .fold(0.0f64, f64::max);
        println!("\nmax |PCG - direct| = {err:.2e}");
        assert!(err < 1e-5, "solver disagreement on the L-domain");
    }
    println!("the multicolor m-step method runs unchanged on the irregular region.");
}
