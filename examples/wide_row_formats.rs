//! The operator abstraction layer, end to end: one solver stack, three
//! storage formats.
//!
//! Every solver entry point (`pcg_solve_into`, `pcg_solve_multi`, the SPMD
//! `ParallelMStepPcg`) is generic over `SparseOp`, so the storage format is
//! a pure performance decision — the iterates are **bitwise identical**
//! across formats. This example
//!
//! 1. solves a red/black Poisson system through CSR, SELL-C-σ and the
//!    automatic dispatcher (`AutoOp`, overridable with
//!    `MSPCG_FORCE_FORMAT=csr|sellcs`) and verifies the runs replay
//!    bitwise,
//! 2. times CSR against SELL-C-σ on a wide-row "arrow" matrix — the
//!    row-length-irregular family the sliced, sorted layout exists for —
//!    and prints the padding the σ-sort left behind.
//!
//! ```sh
//! cargo run --release --example wide_row_formats [n]
//! ```

use mspcg::core::mstep::MStepSsorPreconditioner;
use mspcg::core::pcg::{pcg_solve_into, PcgOptions, PcgWorkspace};
use mspcg::fem::poisson::poisson5;
use mspcg::sparse::{AutoOp, CooMatrix, SellCsMatrix, SparseOp};
use std::time::Instant;

fn main() {
    let n = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(96usize);

    // --- 1. One solve, three formats, one answer --------------------------
    let p = poisson5(n).expect("poisson");
    let ord = p.coloring.ordering();
    let matrix = ord.permute_matrix(&p.matrix).expect("permute");
    let rhs = ord.permutation.gather(&p.rhs);
    let colors = ord.partition;
    let dim = matrix.rows();

    let sell = SellCsMatrix::from_csr_default(&matrix);
    let auto = AutoOp::from_csr(matrix.clone());
    println!(
        "red/black Poisson {n}×{n}: {dim} unknowns, {} stored entries",
        matrix.nnz()
    );
    println!(
        "  SELL-C-{}-σ{}: {} slices, padding {:.2}%  |  AutoOp chose {:?}",
        sell.chunk_height(),
        sell.sigma(),
        sell.num_slices(),
        sell.padding_ratio() * 100.0,
        auto.format()
    );

    let opts = PcgOptions {
        tol: 1e-8,
        ..Default::default()
    };
    let mut ws = PcgWorkspace::new(dim);
    let mut solve = |name: &str, op: &dyn Fn(&mut [f64], &mut PcgWorkspace) -> usize| {
        let mut u = vec![0.0; dim];
        let iters = op(&mut u, &mut ws);
        println!("  {name:<10} {iters:>4} iterations");
        u
    };
    let pre_csr = MStepSsorPreconditioner::unparametrized(&matrix, &colors, 2).expect("pre");
    let pre_sell = MStepSsorPreconditioner::unparametrized_op(&sell, &colors, 2).expect("pre");
    let pre_auto = MStepSsorPreconditioner::unparametrized_op(&auto, &colors, 2).expect("pre");
    let u_csr = solve("CSR", &|u, ws| {
        pcg_solve_into(&matrix, &rhs, u, &pre_csr, &opts, ws)
            .expect("solve")
            .iterations
    });
    let u_sell = solve("SELL-C-σ", &|u, ws| {
        pcg_solve_into(&sell, &rhs, u, &pre_sell, &opts, ws)
            .expect("solve")
            .iterations
    });
    let u_auto = solve("AutoOp", &|u, ws| {
        pcg_solve_into(&auto, &rhs, u, &pre_auto, &opts, ws)
            .expect("solve")
            .iterations
    });
    let bitwise = |a: &[f64], b: &[f64]| a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits());
    assert!(bitwise(&u_csr, &u_sell) && bitwise(&u_csr, &u_auto));
    println!("  all three runs are bitwise identical.\n");

    // --- 2. The wide-row family: where SELL-C-σ pays ----------------------
    let an = 60_000usize;
    let head = 8usize;
    let mut coo = CooMatrix::new(an, an);
    for i in 0..an {
        coo.push(i, i, 8.0).expect("push");
        if i + 1 < an {
            coo.push_sym(i, i + 1, -1.0).expect("push");
        }
    }
    for d in 0..head {
        for j in head..an {
            coo.push(d, j, -1e-3).expect("push");
        }
    }
    let arrow = coo.to_csr();
    let arrow_sell = SellCsMatrix::from_csr_default(&arrow);
    println!(
        "arrow matrix: {an} rows, {head} dense head rows, {} stored entries, SELL padding {:.2}%",
        arrow.nnz(),
        arrow_sell.padding_ratio() * 100.0
    );
    let x: Vec<f64> = (0..an)
        .map(|i| ((i * 31 + 7) % 1013) as f64 * 1e-3)
        .collect();
    let mut y = vec![0.0; an];
    let reps = 200;
    let time = |f: &mut dyn FnMut()| {
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        t0.elapsed().as_secs_f64() / reps as f64
    };
    let t_csr = time(&mut || arrow.mul_vec_into(&x, &mut y));
    let t_sell = time(&mut || SparseOp::mul_vec_into(&arrow_sell, &x, &mut y));
    println!(
        "  SpMV mean: CSR {:.3} ms, SELL-C-σ {:.3} ms  ({:.2}x)",
        t_csr * 1e3,
        t_sell * 1e3,
        t_csr / t_sell
    );
}
