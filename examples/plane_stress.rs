//! The paper's structural-engineering workload, end to end: a cantilevered
//! plate under edge shear, solved with the full m sweep, with a
//! displacement-field report and a direct-solve cross-check.
//!
//! ```sh
//! cargo run --release --example plane_stress [a]
//! ```

use mspcg::core::mstep::MStepSsorPreconditioner;
use mspcg::core::pcg::{cg_solve, pcg_solve, PcgOptions, StoppingCriterion};
use mspcg::fem::element::Material;
use mspcg::fem::plate::{EdgeLoad, PlaneStressProblem};

fn main() {
    let a = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24usize);

    // A steel-like cantilever loaded in shear at the free edge: the
    // "loaded on one edge and constrained on another" configuration of §3.
    let problem = PlaneStressProblem {
        load: EdgeLoad::TractionY(-1e3), // downward shear, 1 kN total
        material: Material {
            youngs: 200e9,
            poisson: 0.3,
            thickness: 0.01,
        },
        ..PlaneStressProblem::unit_square(a)
    };
    let asm = problem.assemble().expect("assembly");
    let ord = asm.multicolor().expect("ordering");
    println!(
        "cantilever plate: {}x{} nodes, {} unknowns",
        a,
        a,
        asm.num_unknowns()
    );

    // m sweep, Table-2 style, on this stiffer (badly scaled) system.
    // With E = 200 GPa the displacements are ~1e-6 m, so the paper's
    // absolute displacement-change test needs problem-specific tuning; the
    // scale-free relative-residual criterion is the robust choice here.
    let opts = PcgOptions {
        tol: 1e-10,
        criterion: StoppingCriterion::RelativeResidual,
        ..Default::default()
    };
    println!("\n  m      iterations");
    let cg = cg_solve(&ord.matrix, &ord.rhs, &opts).expect("CG");
    println!("  0      {:6}", cg.iterations);
    let mut best = (0usize, false, cg.iterations);
    for m in 1..=6usize {
        let un = MStepSsorPreconditioner::unparametrized(&ord.matrix, &ord.colors, m)
            .expect("preconditioner");
        let su = pcg_solve(&ord.matrix, &ord.rhs, &un, &opts).expect("PCG");
        let mut line = format!("  {m}      {:6}", su.iterations);
        if m >= 2 {
            let pa = MStepSsorPreconditioner::parametrized(&ord.matrix, &ord.colors, m)
                .expect("preconditioner");
            let sp = pcg_solve(&ord.matrix, &ord.rhs, &pa, &opts).expect("PCG");
            line.push_str(&format!("    {m}P {:6}", sp.iterations));
            if sp.stats.precond_steps < best.2 * best.0.max(1) {
                // keep simple: track min iterations among parametrized
            }
            if sp.iterations < best.2 {
                best = (m, true, sp.iterations);
            }
        }
        if su.iterations < best.2 {
            best = (m, false, su.iterations);
        }
        println!("{line}");
    }
    println!(
        "\nbest configuration: m = {}{} at {} iterations",
        best.0,
        if best.1 { "P" } else { "" },
        best.2
    );

    // Displacement field: the cantilever tip deflection, compared with the
    // Euler–Bernoulli beam estimate δ = PL³/(3EI) as a physical sanity
    // check (the plate is shear-flexible, so expect the same magnitude,
    // not equality).
    let pre = MStepSsorPreconditioner::parametrized(&ord.matrix, &ord.colors, best.0.max(2))
        .expect("preconditioner");
    let sol = pcg_solve(&ord.matrix, &ord.rhs, &pre, &opts).expect("PCG");
    let full = asm.free_map.expand(&ord.to_nodal(&sol.x));
    let mesh = asm.mesh;
    let tip = mesh.node_index(mesh.rows / 2, mesh.cols - 1);
    let v_tip = full[2 * tip + 1];
    let (e, t, l, p) = (200e9, 0.01, 1.0, -1e3);
    let i_beam = t * l * l * l / 12.0;
    let beam = p * l * l * l / (3.0 * e * i_beam);
    println!("tip deflection  (FEM) : {v_tip:+.4e} m");
    println!("beam-theory estimate  : {beam:+.4e} m");
    assert!(
        (v_tip / beam) > 0.5 && (v_tip / beam) < 2.0,
        "FEM and beam theory disagree by more than 2x"
    );

    // Cross-check against a dense direct solve on a small version.
    if a <= 12 {
        let exact = ord.matrix.to_dense().cholesky().unwrap().solve(&ord.rhs);
        let err = sol
            .x
            .iter()
            .zip(&exact)
            .map(|(u, v)| (u - v).abs())
            .fold(0.0f64, f64::max);
        println!("max |PCG - direct| = {err:.2e}");
    }
    println!("done.");
}
