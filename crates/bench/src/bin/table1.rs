//! Regenerates **Table 1** of the paper: the α coefficients of the
//! parametrized m-step SSOR preconditioner, m = 2, 3, 4 (extended to 6),
//! for both fit criteria.
//!
//! The published table is computed for the SSOR splitting of the plate
//! problem; we estimate the spectral interval of `P⁻¹K` from the actual
//! matrix (a = 20 plate by default) and fit on it. The scan of the 1983
//! report is OCR-damaged in Table 1, so EXPERIMENTS.md compares criteria
//! qualitatively (parametrized must beat unparametrized — Tables 2/3 do
//! that comparison end to end).

use mspcg_bench::TextTable;
use mspcg_core::splitting::Splitting;
use mspcg_core::ssor::MulticolorSsor;
use mspcg_core::{least_squares_alphas, minimax_alphas, Weight};
use mspcg_fem::plate::PlaneStressProblem;

fn main() {
    let a = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20usize);
    let asm = PlaneStressProblem::unit_square(a)
        .assemble()
        .expect("assembly");
    let ord = asm.multicolor().expect("ordering");
    let ssor = MulticolorSsor::new(ord.matrix.clone(), ord.colors.clone(), 1.0).expect("splitting");
    let (lo, hi) = ssor.spectrum_interval(80).expect("spectrum");
    println!("Table 1: alpha values for the m-step SSOR PCG method");
    println!("plate a = {a}, sigma(P^-1 K) in [{lo:.4}, {hi:.4}]\n");

    for (name, fit) in [
        (
            "least squares (uniform weight)",
            Box::new(|m: usize| least_squares_alphas(m, (lo, hi), Weight::Uniform).unwrap())
                as Box<dyn Fn(usize) -> Vec<f64>>,
        ),
        (
            "min-max (Chebyshev)",
            Box::new(|m: usize| minimax_alphas(m, (lo, hi)).unwrap()),
        ),
    ] {
        println!("criterion: {name}");
        let mut t = TextTable::new(vec!["m", "a0", "a1", "a2", "a3", "a4", "a5"]);
        for m in 2..=6usize {
            let alphas = fit(m);
            let mut cells = vec![m.to_string()];
            for i in 0..6 {
                cells.push(alphas.get(i).map(|v| format!("{v:.3}")).unwrap_or_default());
            }
            t.row(cells);
        }
        println!("{}", t.render());
    }
    println!("(paper Table 1 row shape: a0, a1, …, a_{{m-1}} per m; the 1983 scan's");
    println!(" numeric values are OCR-damaged — see EXPERIMENTS.md E1 discussion)");
}
