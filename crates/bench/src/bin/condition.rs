//! The §2.1 condition-number study (experiment E9): κ(M_m⁻¹K) as a
//! function of m, computed exactly with the dense symmetric eigensolver.
//!
//! Verifies the two theoretical claims the paper cites from Adams (1982):
//! κ decreases monotonically with m, and the improvement over one step is
//! at most a factor of m. Also shows the parametrized coefficients beating
//! the unparametrized ones spectrally — the mechanism behind Tables 2/3.
//!
//! Usage: `cargo run --release -p mspcg-bench --bin condition [a]`
//! (default plate a = 8; keep a ≲ 12 — the analysis is O(n³)).

use mspcg_bench::{condition_study, TextTable};
use mspcg_core::analysis::cg_iteration_bound;
use mspcg_fem::plate::PlaneStressProblem;

fn main() {
    let a = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8usize);
    let asm = PlaneStressProblem::unit_square(a)
        .assemble()
        .expect("assembly");
    let kappa_k = asm
        .matrix
        .to_dense()
        .sym_condition_number()
        .expect("kappa(K)");
    println!("plate a = {a}, N = {}", asm.num_unknowns());
    println!("kappa(K) = {kappa_k:.2}\n");

    let rows = condition_study(a, &[1, 2, 3, 4, 5, 6]).expect("study");
    let k1 = rows
        .iter()
        .find(|r| r.m == 1 && !r.parametrized)
        .unwrap()
        .kappa;

    let mut t = TextTable::new(vec![
        "m",
        "kappa(Mm^-1 K)",
        "improvement vs m=1",
        "bound m",
        "CG bound (eps=1e-6)",
    ]);
    for r in &rows {
        let label = if r.parametrized {
            format!("{}P", r.m)
        } else {
            r.m.to_string()
        };
        t.row(vec![
            label,
            format!("{:.3}", r.kappa),
            format!("{:.2}x", k1 / r.kappa),
            r.m.to_string(),
            cg_iteration_bound(r.kappa.max(1.0), 1e-6).to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("claims checked:");
    let un: Vec<f64> = rows
        .iter()
        .filter(|r| !r.parametrized)
        .map(|r| r.kappa)
        .collect();
    let monotone = un.windows(2).all(|w| w[1] <= w[0] * 1.0001);
    println!("  kappa monotone nonincreasing in m: {monotone}");
    let bound = rows
        .iter()
        .filter(|r| !r.parametrized && r.m >= 1)
        .all(|r| k1 / r.kappa <= r.m as f64 * 1.1);
    println!("  improvement ratio <= m (10% slack): {bound}");
    let param_wins = rows.iter().filter(|r| r.parametrized).all(|r| {
        let un_same_m = rows
            .iter()
            .find(|q| q.m == r.m && !q.parametrized)
            .unwrap()
            .kappa;
        r.kappa <= un_same_m * 1.0001
    });
    println!("  parametrized kappa <= unparametrized kappa at equal m: {param_wins}");
}
