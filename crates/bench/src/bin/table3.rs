//! Regenerates **Table 3**: Finite Element Machine iterations, timings
//! and speedups for the 6×6-node plate (60 equations) on 1, 2 and 5
//! simulated processors.
//!
//! Usage: `cargo run --release -p mspcg-bench --bin table3`
//!
//! Also prints the paper's three observations: (1) the preconditioner's
//! effectiveness ordering is processor-independent, (2) multi-step
//! unparametrized preconditioning does not pay off on this small problem,
//! (3) for PCG the preconditioner communication — not the inner products —
//! dominates the parallel overhead.

use mspcg_bench::{run_table3, TextTable, MS_TABLE3};
use mspcg_machine::ArrayMachineParams;

fn label(m: usize, parametrized: bool) -> String {
    if parametrized {
        format!("{m}P")
    } else {
        format!("{m}")
    }
}

fn main() {
    let params = ArrayMachineParams::default();
    let tol = 1e-6;
    let procs = [1usize, 2, 5];
    let data = run_table3(6, MS_TABLE3, &procs, &params, tol).expect("table 3 run");

    println!("Table 3. Finite Element Machine (simulated): 6x6-node plate, 60 equations");
    println!("m-step SSOR PCG, stopping test |u(k+1) - u(k)|_inf < {tol:e}\n");

    let mut t = TextTable::new(vec![
        "m", "I", "T1 (s)", "T2 (s)", "Speedup2", "T5 (s)", "Speedup5",
    ]);
    for r in &data.rows {
        t.row(vec![
            label(r.m, r.parametrized),
            r.iterations.to_string(),
            format!("{:.2}", r.seconds[0]),
            format!("{:.2}", r.seconds[1]),
            format!("{:.2}", r.speedups[1]),
            format!("{:.2}", r.seconds[2]),
            format!("{:.2}", r.speedups[2]),
        ]);
    }
    println!("{}", t.render());

    // Observation (1): effectiveness ordering (by time) is the same for
    // every processor count.
    for (pi, &p) in procs.iter().enumerate() {
        let mut order: Vec<(String, f64)> = data
            .rows
            .iter()
            .map(|r| (label(r.m, r.parametrized), r.seconds[pi]))
            .collect();
        order.sort_by(|x, y| x.1.partial_cmp(&y.1).unwrap());
        let names: Vec<&str> = order.iter().map(|(n, _)| n.as_str()).collect();
        println!(
            "effectiveness order (fastest first) on {p} proc(s): {}",
            names.join(" < ")
        );
    }

    // Observation (3): overhead decomposition at 5 processors.
    println!("\noverhead at 5 processors (fraction of total time that is not arithmetic):");
    let mut t = TextTable::new(vec![
        "m",
        "overhead",
        "precond comm (s)",
        "inner-product comm (s)",
    ]);
    for r in &data.rows {
        t.row(vec![
            label(r.m, r.parametrized),
            format!("{:.1}%", 100.0 * r.overhead[2]),
            format!("{:.2}", r.breakdown_last.precond_comm),
            format!("{:.2}", r.breakdown_last.reductions + r.breakdown_last.flag),
        ]);
    }
    println!("{}", t.render());
    println!("For every m > 0 row the preconditioner communication exceeds the");
    println!("inner-product overhead — the paper's observation (3).");
}
