//! Regenerates **Figures 1–5** as ASCII art from the live data
//! structures: the R/B/G plate coloring, the grid-point stencil, the
//! processor assignments and the link usage of the Finite Element Machine.

use mspcg_coloring::grid::render_plate;
use mspcg_fem::plate::PlaneStressProblem;
use mspcg_fem::stencil::render_stencil;
use mspcg_machine::ProcessorAssignment;

fn main() {
    println!("Figure 1. Plate (triangular elements), R/B/G node coloring");
    println!("(6x6 node grid; row 0 at the bottom; every triangle sees 3 colors)\n");
    println!("{}", render_plate(6, 6));

    println!("Figure 2. Grid point stencil (linear triangles, anti-diagonal split)");
    println!("7 coupled nodes x (u,v) = at most 14 nonzeros per row\n");
    println!("{}", render_stencil());

    // Figures 3a/3b: larger plate split among processors (18 and 9 nodes
    // per processor in the paper's illustration).
    let asm12 = PlaneStressProblem::unit_square(13)
        .assemble()
        .expect("plate");
    for (p, fig) in [(8usize, "3a"), (16usize, "3b")] {
        let assign = ProcessorAssignment::strips(&asm12, p).expect("assignment");
        let per = 13 * 12 / p;
        println!("Figure {fig}. {per} nodes/processor ({p} processors, digits = owner mod 10)\n");
        println!("{}", assign.render());
    }

    // Figure 4: links used by a processor — with the 2-D block assignment
    // an interior processor talks over exactly six of the eight links
    // (N, S, E, W plus the two anti-diagonal triangulation neighbours).
    let asm16 = PlaneStressProblem::unit_square(16)
        .assemble()
        .expect("plate");
    let blocks = ProcessorAssignment::blocks(&asm16, 3, 3).expect("assignment");
    println!("Figure 4. FEM local links (3x3 block assignment on a 16x16 plate)\n");
    println!("{}", blocks.render());
    for q in 0..9 {
        let nbrs = blocks.neighbor_procs(q);
        println!(
            "processor {q}: talks to {:?}  ({} of 8 links used)",
            nbrs,
            nbrs.len()
        );
    }
    println!(
        "\ninterior processor uses 6 links, as in the paper's Figure 4;\nmax links used = {} <= 8\n",
        blocks.max_links_used()
    );

    let asm = PlaneStressProblem::unit_square(6)
        .assemble()
        .expect("plate");

    // Figure 5: the paper's 2- and 5-processor assignments of the 6x6 plate.
    for p in [2usize, 5] {
        let assign = ProcessorAssignment::strips(&asm, p).expect("assignment");
        println!("Figure 5 ({p} processors). '.' = constrained left column\n");
        println!("{}", assign.render());
        for q in 0..p {
            let c = assign.color_counts(q);
            println!("  processor {q}: R = {}, B = {}, G = {}", c[0], c[1], c[2]);
        }
        println!(
            "  colors balanced: {}\n",
            if assign.colors_balanced() {
                "yes"
            } else {
                "no"
            }
        );
    }
}
