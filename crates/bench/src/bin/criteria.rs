//! Ablation: least-squares vs min-max (Chebyshev) parametrization — the
//! two criteria §2.2 mentions ("the min-max or the least squares
//! criteria") — plus the unparametrized baseline, across m, measured in
//! PCG iterations on the plate problem.
//!
//! Usage: `cargo run --release -p mspcg-bench --bin criteria [a]`

use mspcg_bench::experiments::ordered_plate;
use mspcg_bench::TextTable;
use mspcg_core::{pcg_solve, IncompleteCholesky, MStepSsorPreconditioner, PcgOptions};

fn main() {
    let a = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24usize);
    let (_, ord) = ordered_plate(a).expect("plate");
    let opts = PcgOptions {
        tol: 1e-6,
        ..Default::default()
    };
    println!(
        "plate a = {a} ({} unknowns): PCG iterations by fit criterion\n",
        ord.matrix.rows()
    );
    let mut t = TextTable::new(vec!["m", "unparametrized", "least squares", "min-max"]);
    for m in 1..=8usize {
        let un = MStepSsorPreconditioner::unparametrized(&ord.matrix, &ord.colors, m).unwrap();
        let iu = pcg_solve(&ord.matrix, &ord.rhs, &un, &opts)
            .unwrap()
            .iterations;
        let (ils, imm) = if m >= 2 {
            let ls = MStepSsorPreconditioner::parametrized(&ord.matrix, &ord.colors, m).unwrap();
            let mm =
                MStepSsorPreconditioner::parametrized_minimax(&ord.matrix, &ord.colors, m).unwrap();
            (
                pcg_solve(&ord.matrix, &ord.rhs, &ls, &opts)
                    .unwrap()
                    .iterations
                    .to_string(),
                pcg_solve(&ord.matrix, &ord.rhs, &mm, &opts)
                    .unwrap()
                    .iterations
                    .to_string(),
            )
        } else {
            ("-".into(), "-".into())
        };
        t.row(vec![m.to_string(), iu.to_string(), ils, imm]);
    }
    println!("{}", t.render());
    println!("Both criteria should track each other closely and beat αᵢ = 1;");
    println!("min-max optimizes the worst-case eigenvalue, least squares the");
    println!("average — on smooth FEM spectra the difference is small, which is");
    println!("why the paper reports only the least-squares values in Table 1.");

    // The 1983 state of the art the method competes with: IC(0) — factored
    // on the natural ordering (where it is strong) and on the multicolor
    // ordering (where it famously degrades: the decoupling that makes SSOR
    // parallel strips IC of its fill-path accuracy).
    let (asm, _) = ordered_plate(a).expect("plate");
    println!();
    for (name, mat, rhs) in [
        ("natural ordering", &asm.matrix, &asm.rhs),
        ("multicolor ordering", &ord.matrix, &ord.rhs),
    ] {
        match IncompleteCholesky::new(mat) {
            Ok(ic) => {
                let sol = pcg_solve(mat, rhs, &ic, &opts).unwrap();
                println!(
                    "baseline IC(0), {name:20}: {:4} iterations ({} factor entries)",
                    sol.iterations,
                    ic.nnz()
                );
            }
            Err(e) => println!("baseline IC(0), {name}: breakdown ({e})"),
        }
    }
    println!("\nIC(0) on the natural ordering is the iteration-count benchmark, but");
    println!("its triangular solves are sequential recurrences: they neither");
    println!("vectorize (CYBER) nor distribute (FEM array). Reordering for");
    println!("parallelism (multicolor) costs IC much of its advantage — the gap");
    println!("the m-step multicolor SSOR method fills.");
}
