//! The §5 remark, tested (experiment E10): for multicolor orderings with
//! few colors, ω = 1 is a good SSOR relaxation parameter — the method
//! "does not face the usual difficulty in choosing the optimal relaxation
//! parameter".
//!
//! Usage: `cargo run --release -p mspcg-bench --bin omega_sweep [a]`

use mspcg_bench::{omega_sweep, TextTable};

fn main() {
    let a = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20usize);
    let omegas: Vec<f64> = (3..=18).map(|k| k as f64 * 0.1).collect();
    let sweep = omega_sweep(a, &omegas).expect("sweep");

    println!("1-step multicolor SSOR PCG iterations vs omega (plate a = {a})\n");
    let mut t = TextTable::new(vec!["omega", "iterations"]);
    let best = sweep.iter().map(|&(_, i)| i).min().unwrap();
    for &(w, i) in &sweep {
        let marker = if i == best { " <- best" } else { "" };
        t.row(vec![format!("{w:.1}"), format!("{i}{marker}")]);
    }
    println!("{}", t.render());
    let at_one = sweep
        .iter()
        .find(|(w, _)| (w - 1.0).abs() < 1e-9)
        .unwrap()
        .1;
    println!(
        "omega = 1.0 gives {at_one} iterations vs sweep best {best} \
         ({:.0}% above optimum) — confirming the paper's choice.",
        100.0 * (at_one as f64 - best as f64) / best as f64
    );
}
