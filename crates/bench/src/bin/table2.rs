//! Regenerates **Table 2**: CYBER 203 iterations and timings of the
//! m-step SSOR PCG for unit-square plates of increasing size.
//!
//! Usage: `cargo run --release -p mspcg-bench --bin table2 [--quick]`
//!
//! Prints, per plate size (paper: a = 20, 41, 62, 80 with max vector
//! lengths ~133, 561, 1282, 2134): the iteration count `I` and simulated
//! time `T` for m = 0…4 unparametrized and m = 2…10 parametrized, then the
//! two observations the paper draws (parametrized wins; optimal m grows
//! with vector length).

use mspcg_bench::{run_table2, table2_sizes, TextTable, MS_TABLE2};
use mspcg_machine::VectorMachineParams;

fn label(m: usize, parametrized: bool) -> String {
    if parametrized {
        format!("{m}P")
    } else {
        format!("{m}")
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = VectorMachineParams::default();
    let tol = 1e-6;

    println!("Table 2. CYBER 203 (simulated) iterations and timings, m-step SSOR PCG");
    println!("stopping test |u(k+1) - u(k)|_inf < {tol:e}\n");

    let mut optimal = Vec::new();
    for a in table2_sizes(quick) {
        let data = run_table2(a, MS_TABLE2, &params, tol).expect("table 2 run");
        println!(
            "a = {a}   N = {}   max vector length v = {}",
            data.n, data.max_vector_length
        );
        let mut t = TextTable::new(vec!["m", "I", "T (s)"]);
        for c in &data.cells {
            t.row(vec![
                label(c.m, c.parametrized),
                c.iterations.to_string(),
                format!("{:.4}", c.seconds),
            ]);
        }
        println!("{}", t.render());
        let best = data.best();
        println!(
            "optimal row: m = {} ({} iterations, {:.4} s); B/A = {:.3}\n",
            label(best.m, best.parametrized),
            best.iterations,
            best.seconds,
            best.b_cost / best.a_cost
        );
        optimal.push((a, data.max_vector_length, label(best.m, best.parametrized)));
    }

    println!("Observation (1): the parametrized preconditioner beats the");
    println!("unparametrized one at equal m in both iterations and time.");
    println!("Observation (2): the optimal number of steps by vector length:");
    let mut t = TextTable::new(vec!["a", "v", "optimal m"]);
    for (a, v, m) in optimal {
        t.row(vec![a.to_string(), v.to_string(), m]);
    }
    println!("{}", t.render());
}
