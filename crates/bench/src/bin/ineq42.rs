//! Regenerates the paper's **Eq. (4.1)/(4.2)** analysis: when does taking
//! m+1 preconditioner steps beat m?
//!
//! The paper evaluates the two sides of inequality (4.2)-(2) for the
//! m = 9 → 10 transition at a = 41, 62, 80 and concludes ten steps pay off
//! only for the largest plate. We rebuild the whole decision table from
//! measured iteration counts and the simulated CYBER cost model.
//!
//! Usage: `cargo run --release -p mspcg-bench --bin ineq42 [--quick]`

use mspcg_bench::experiments::{cyber_cost_model, iterations_on, ordered_plate};
use mspcg_bench::{table2_sizes, TextTable};
use mspcg_core::analysis::{optimal_m, step_increase_beneficial};
use mspcg_machine::VectorMachineParams;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = VectorMachineParams::default();
    let tol = 1e-6;
    let max_m = if quick { 5 } else { 10 };

    for a in table2_sizes(quick) {
        let (asm, ord) = ordered_plate(a).expect("plate");
        let model = cyber_cost_model(&asm, &ord, &params).expect("cost model");
        println!(
            "a = {a}: cost model A = {:.3e} s/iter, B = {:.3e} s/step, B/A = {:.3}",
            model.a,
            model.b,
            model.b_over_a()
        );
        // Parametrized iteration counts N_m for m = 1..max_m.
        let mut counts = Vec::new();
        for m in 1..=max_m {
            let n = iterations_on(&ord, m, m >= 2, tol).expect("solve");
            counts.push((m, n));
        }
        let mut t = TextTable::new(vec![
            "m -> m+1",
            "N_m",
            "N_m+1",
            "cond(1)",
            "B/A",
            "rhs (4.2)",
            "beneficial",
        ]);
        for w in counts.windows(2) {
            let (m, nm) = w[0];
            let (_, nm1) = w[1];
            if nm1 > nm {
                t.row(vec![
                    format!("{m} -> {}", m + 1),
                    nm.to_string(),
                    nm1.to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "no (N increased)".into(),
                ]);
                continue;
            }
            let d = step_increase_beneficial(m, nm, nm1, model);
            t.row(vec![
                format!("{m} -> {}", m + 1),
                nm.to_string(),
                nm1.to_string(),
                if d.inner_loops_decrease { "yes" } else { "no" }.to_string(),
                format!("{:.3}", d.lhs),
                if d.rhs.is_infinite() {
                    "∞".to_string()
                } else {
                    format!("{:.3}", d.rhs)
                },
                if d.beneficial { "YES" } else { "no" }.to_string(),
            ]);
        }
        println!("{}", t.render());
        let (m_star, t_star) = optimal_m(&counts, model);
        println!("predicted optimal m = {m_star} (T = {t_star:.4} s by the (4.1) model)\n");
    }
    println!("Paper: for the m = 9 -> 10 transition the (lhs, rhs) pairs at");
    println!("a = 41, 62, 80 made 10 steps preferable only for a = 80 — i.e. the");
    println!("beneficial-m frontier moves right as the problem grows. The trend");
    println!("above reproduces that: larger a ⇒ larger beneficial m.");
}
