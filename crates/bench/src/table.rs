//! Minimal fixed-width text table formatter for the experiment binaries.

/// A text table with a header row and aligned columns.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with column alignment and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for c in 0..cols {
                if c > 0 {
                    line.push_str("  ");
                }
                let cell = cells.get(c).map(String::as_str).unwrap_or("");
                // Right-align numeric-looking cells, left-align text.
                let numeric = cell
                    .chars()
                    .all(|ch| ch.is_ascii_digit() || ".-+eE%∞".contains(ch))
                    && !cell.is_empty();
                if numeric {
                    line.push_str(&format!("{cell:>width$}", width = widths[c]));
                } else {
                    line.push_str(&format!("{cell:<width$}", width = widths[c]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["m", "I", "T"]);
        t.row(vec!["0", "271", "0.565"]);
        t.row(vec!["10P", "21", "0.375"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('m'));
        assert!(lines[2].contains("271"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn rows_are_padded_to_header_width() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["1"]);
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TextTable::new(vec!["x"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }
}
