//! Experiment runners shared by the table binaries and the Criterion
//! benches.

use mspcg_core::analysis::{preconditioned_condition_number, CostModel};
use mspcg_core::{
    cg_solve, pcg_solve, pcg_solve_into, MStepSsorPreconditioner, PcgOptions, PcgWorkspace,
    StoppingCriterion,
};
use mspcg_fem::plate::{AssembledProblem, OrderedProblem, PlaneStressProblem};
use mspcg_fem::poisson::poisson5;
use mspcg_machine::array::{run_fem_machine, ArrayBreakdown};
use mspcg_machine::vector::{run_cyber_pcg, CoefficientChoice};
use mspcg_machine::{ArrayMachineParams, VectorMachineParams};
use mspcg_sparse::{CsrMatrix, Partition, SparseError};
use std::sync::Arc;

/// The m-rows of Table 2: unparametrized 0–4, parametrized 2P–10P.
pub const MS_TABLE2: &[(usize, bool)] = &[
    (0, false),
    (1, false),
    (2, false),
    (2, true),
    (3, false),
    (3, true),
    (4, false),
    (4, true),
    (5, true),
    (6, true),
    (7, true),
    (8, true),
    (9, true),
    (10, true),
];

/// The m-rows of Table 3.
pub const MS_TABLE3: &[(usize, bool)] = &[
    (0, false),
    (1, false),
    (2, false),
    (2, true),
    (3, false),
    (3, true),
    (4, false),
    (4, true),
    (5, true),
    (6, true),
];

/// Plate sizes of Table 2 (`--quick` trims the sweep for smoke runs).
pub fn table2_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![12, 20]
    } else {
        vec![20, 41, 62, 80]
    }
}

/// One `(m, I, T)` cell of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Cell {
    /// Preconditioner steps (0 = plain CG).
    pub m: usize,
    /// Parametrized coefficients (`mP` rows).
    pub parametrized: bool,
    /// Iterations (paper column `I`).
    pub iterations: usize,
    /// Simulated CYBER seconds (paper column `T`).
    pub seconds: f64,
    /// Per-iteration cost `A` of the cost model (4.1).
    pub a_cost: f64,
    /// Per-step cost `B` of the cost model (4.1).
    pub b_cost: f64,
}

/// One plate-size column group of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Data {
    /// Rows of nodes (paper's `a`).
    pub a: usize,
    /// Number of unknowns `2·a·(a−1)`.
    pub n: usize,
    /// Max (padded) vector length (paper's `v`).
    pub max_vector_length: usize,
    /// Cells in [`MS_TABLE2`] order (rows that failed to construct are
    /// skipped).
    pub cells: Vec<Table2Cell>,
}

impl Table2Data {
    /// The time-minimizing row.
    pub fn best(&self) -> &Table2Cell {
        self.cells
            .iter()
            .min_by(|x, y| x.seconds.partial_cmp(&y.seconds).unwrap())
            .expect("table has rows")
    }
}

/// Run one plate size of Table 2 on the simulated CYBER.
///
/// # Errors
/// Propagates assembly/solver failures.
pub fn run_table2(
    a: usize,
    rows: &[(usize, bool)],
    params: &VectorMachineParams,
    tol: f64,
) -> Result<Table2Data, SparseError> {
    let asm = PlaneStressProblem::unit_square(a).assemble()?;
    let ord = asm.multicolor()?;
    let mut cells = Vec::with_capacity(rows.len());
    let mut max_v = 0;
    for &(m, parametrized) in rows {
        let choice = if parametrized {
            CoefficientChoice::Parametrized
        } else {
            CoefficientChoice::Unparametrized
        };
        let rep = run_cyber_pcg(&asm, &ord, m, choice, params, tol)?;
        max_v = rep.max_vector_length;
        cells.push(Table2Cell {
            m,
            parametrized: rep.parametrized,
            iterations: rep.iterations,
            seconds: rep.seconds,
            a_cost: rep.a_per_iteration,
            b_cost: rep.b_per_step,
        });
    }
    Ok(Table2Data {
        a,
        n: asm.num_unknowns(),
        max_vector_length: max_v,
        cells,
    })
}

/// One m-row of Table 3 across processor counts.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Preconditioner steps.
    pub m: usize,
    /// Parametrized?
    pub parametrized: bool,
    /// Iterations (processor-independent).
    pub iterations: usize,
    /// Seconds per processor count, aligned with the `procs` argument.
    pub seconds: Vec<f64>,
    /// Speedups vs the first processor count.
    pub speedups: Vec<f64>,
    /// Overhead fraction per processor count (non-arithmetic share).
    pub overhead: Vec<f64>,
    /// Full breakdown at the largest processor count.
    pub breakdown_last: ArrayBreakdown,
}

/// Table 3 data (all m-rows for fixed processor counts).
#[derive(Debug, Clone)]
pub struct Table3Data {
    /// Processor counts (paper: 1, 2, 5).
    pub procs: Vec<usize>,
    /// Rows in [`MS_TABLE3`] order.
    pub rows: Vec<Table3Row>,
}

/// Run Table 3 on the simulated Finite Element Machine.
///
/// # Errors
/// Propagates assembly/solver/assignment failures.
pub fn run_table3(
    a: usize,
    rows: &[(usize, bool)],
    procs: &[usize],
    params: &ArrayMachineParams,
    tol: f64,
) -> Result<Table3Data, SparseError> {
    let asm = PlaneStressProblem::unit_square(a).assemble()?;
    let ord = asm.multicolor()?;
    let mut out = Vec::with_capacity(rows.len());
    for &(m, parametrized) in rows {
        let choice = if parametrized {
            CoefficientChoice::Parametrized
        } else {
            CoefficientChoice::Unparametrized
        };
        let mut seconds = Vec::with_capacity(procs.len());
        let mut overhead = Vec::with_capacity(procs.len());
        let mut iterations = 0;
        let mut breakdown_last = ArrayBreakdown::default();
        for &p in procs {
            let rep = run_fem_machine(&asm, &ord, m, choice, p, params, tol)?;
            iterations = rep.iterations;
            seconds.push(rep.seconds);
            overhead.push(rep.breakdown.overhead_fraction());
            breakdown_last = rep.breakdown;
        }
        let speedups = seconds.iter().map(|&s| seconds[0] / s).collect();
        out.push(Table3Row {
            m,
            parametrized: parametrized && m > 0,
            iterations,
            seconds,
            speedups,
            overhead,
            breakdown_last,
        });
    }
    Ok(Table3Data {
        procs: procs.to_vec(),
        rows: out,
    })
}

/// One row of the condition-number study (§2.1 / E9).
#[derive(Debug, Clone, Copy)]
pub struct ConditionRow {
    /// Steps.
    pub m: usize,
    /// Parametrized?
    pub parametrized: bool,
    /// κ(M_m⁻¹ K), computed densely.
    pub kappa: f64,
}

/// Exact condition numbers of the preconditioned operator for a small
/// plate, for m in `ms`, both unparametrized and parametrized.
///
/// # Errors
/// Propagates dense eigensolver failures.
pub fn condition_study(a: usize, ms: &[usize]) -> Result<Vec<ConditionRow>, SparseError> {
    let asm = PlaneStressProblem::unit_square(a).assemble()?;
    let ord = asm.multicolor()?;
    let mut rows = Vec::new();
    for &m in ms {
        let un = MStepSsorPreconditioner::unparametrized(&ord.matrix, &ord.colors, m)?;
        rows.push(ConditionRow {
            m,
            parametrized: false,
            kappa: preconditioned_condition_number(&ord.matrix, &un)?,
        });
        if m >= 2 {
            let pa = MStepSsorPreconditioner::parametrized(&ord.matrix, &ord.colors, m)?;
            rows.push(ConditionRow {
                m,
                parametrized: true,
                kappa: preconditioned_condition_number(&ord.matrix, &pa)?,
            });
        }
    }
    Ok(rows)
}

/// Iterations of the 1-step multicolor SSOR PCG as a function of ω
/// (§5: ω = 1 is a good choice for multicolor orderings).
///
/// The sweep is the repeated-solve showcase: the matrix and partition are
/// shared via `Arc` across every ω (no deep copies), and all solves reuse
/// one [`PcgWorkspace`] — after the first, each point costs zero heap
/// allocation.
///
/// # Errors
/// Propagates solver failures.
pub fn omega_sweep(a: usize, omegas: &[f64]) -> Result<Vec<(f64, usize)>, SparseError> {
    let asm = PlaneStressProblem::unit_square(a).assemble()?;
    let ord = asm.multicolor()?;
    let matrix = Arc::new(ord.matrix);
    let colors = Arc::new(ord.colors);
    let opts = PcgOptions {
        tol: 1e-6,
        criterion: StoppingCriterion::DisplacementChange,
        ..Default::default()
    };
    let n = matrix.rows();
    let mut ws = PcgWorkspace::new(n);
    let mut u = vec![0.0; n];
    let mut out = Vec::with_capacity(omegas.len());
    for &w in omegas {
        let pre = MStepSsorPreconditioner::unparametrized_omega_shared(
            Arc::clone(&matrix),
            Arc::clone(&colors),
            1,
            w,
        )?;
        u.fill(0.0);
        let rep = pcg_solve_into(&matrix, &ord.rhs, &mut u, &pre, &opts, &mut ws)?;
        out.push((w, rep.iterations));
    }
    Ok(out)
}

/// Assemble the `n × n` red/black 5-point Poisson problem and permute it
/// into its two color blocks — the serial-vs-parallel kernel benches run
/// on the 512 × 512 instance (262 144 unknowns).
///
/// # Errors
/// Propagates assembly/permutation failures.
pub fn ordered_poisson(n: usize) -> Result<(CsrMatrix, Partition, Vec<f64>), SparseError> {
    let p = poisson5(n)?;
    let ord = p.coloring.ordering();
    let matrix = ord.permute_matrix(&p.matrix)?;
    let rhs = ord.permutation.gather(&p.rhs);
    Ok((matrix, ord.partition, rhs))
}

/// Iteration count for a given configuration on the ordered problem
/// (used by the Criterion benches and by `ineq42`).
///
/// # Errors
/// Propagates solver failures.
pub fn iterations_on(
    ord: &OrderedProblem,
    m: usize,
    parametrized: bool,
    tol: f64,
) -> Result<usize, SparseError> {
    let opts = PcgOptions {
        tol,
        ..Default::default()
    };
    if m == 0 {
        return Ok(cg_solve(&ord.matrix, &ord.rhs, &opts)?.iterations);
    }
    let pre = if parametrized {
        MStepSsorPreconditioner::parametrized(&ord.matrix, &ord.colors, m)?
    } else {
        MStepSsorPreconditioner::unparametrized(&ord.matrix, &ord.colors, m)?
    };
    Ok(pcg_solve(&ord.matrix, &ord.rhs, &pre, &opts)?.iterations)
}

/// Assemble + order a plate (convenience for benches).
///
/// # Errors
/// Propagates assembly failures.
pub fn ordered_plate(a: usize) -> Result<(AssembledProblem, OrderedProblem), SparseError> {
    let asm = PlaneStressProblem::unit_square(a).assemble()?;
    let ord = asm.multicolor()?;
    Ok((asm, ord))
}

/// Cost model of the simulated CYBER for a given plate (from a 1-step
/// probe run), for the Eq. (4.2) analysis.
///
/// # Errors
/// Propagates simulator failures.
pub fn cyber_cost_model(
    asm: &AssembledProblem,
    ord: &OrderedProblem,
    params: &VectorMachineParams,
) -> Result<CostModel, SparseError> {
    let rep = run_cyber_pcg(asm, ord, 1, CoefficientChoice::Unparametrized, params, 1e-3)?;
    Ok(CostModel {
        a: rep.a_per_iteration,
        b: rep.b_per_step,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_quick_run_has_expected_shape() {
        let rows: &[(usize, bool)] = &[(0, false), (1, false), (2, false), (2, true)];
        let t = run_table2(10, rows, &VectorMachineParams::default(), 1e-6).unwrap();
        assert_eq!(t.n, 180);
        assert_eq!(t.cells.len(), 4);
        let i: Vec<usize> = t.cells.iter().map(|c| c.iterations).collect();
        assert!(i[1] < i[0], "m=1 beats CG");
        assert!(i[3] <= i[2], "2P beats 2");
    }

    #[test]
    fn table3_speedups_increase_with_processors() {
        let rows: &[(usize, bool)] = &[(0, false), (1, false)];
        let t = run_table3(6, rows, &[1, 2, 5], &ArrayMachineParams::default(), 1e-6).unwrap();
        for row in &t.rows {
            assert!(row.speedups[0] == 1.0);
            assert!(row.speedups[1] > 1.0);
            assert!(row.speedups[2] > row.speedups[1]);
        }
    }

    #[test]
    fn condition_study_monotone() {
        let rows = condition_study(5, &[1, 2, 3]).unwrap();
        let un: Vec<f64> = rows
            .iter()
            .filter(|r| !r.parametrized)
            .map(|r| r.kappa)
            .collect();
        assert!(un.windows(2).all(|w| w[1] <= w[0] * 1.0001), "{un:?}");
    }

    #[test]
    fn omega_one_is_near_optimal() {
        let sweep = omega_sweep(8, &[0.7, 1.0, 1.3, 1.6]).unwrap();
        let at = |w: f64| sweep.iter().find(|(x, _)| (x - w).abs() < 1e-12).unwrap().1;
        let best = sweep.iter().map(|&(_, i)| i).min().unwrap();
        // ω = 1 within 20% of the best of the sweep.
        assert!(
            at(1.0) as f64 <= best as f64 * 1.2 + 2.0,
            "omega=1: {} vs best {}",
            at(1.0),
            best
        );
    }
}
