//! Minimal wall-clock bench harness.
//!
//! The container has no external bench framework, so the `benches/`
//! binaries (declared `harness = false`) use this module instead: warm up,
//! auto-calibrate a sample count against a time budget, report mean/min
//! per iteration, and optionally record everything as JSON
//! (`cargo bench -p mspcg-bench --bench spmv -- --json BENCH_pr1.json`).
//!
//! The JSON is hand-rolled (flat array of objects, append-merge on reruns)
//! — enough for the committed `BENCH_pr1.json` record and for plotting,
//! without a serializer dependency.

use std::time::Instant;

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Bench group (e.g. `spmv_poisson512`).
    pub group: String,
    /// Configuration label within the group (e.g. `par4`).
    pub label: String,
    /// Samples taken.
    pub samples: u64,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest observed iteration.
    pub min_ns: f64,
    /// Worker-pool thread budget while the sample ran.
    pub threads: usize,
    /// Extra numeric counters recorded alongside the timing (e.g.
    /// `iterations`, `barriers_per_iter`, `reductions_per_iter`): the
    /// quantities that stay meaningful on a single-core container where
    /// wall-clock parallel wins cannot show. Each becomes a JSON field.
    pub extras: Vec<(String, f64)>,
}

impl BenchResult {
    /// `group/label` identifier.
    pub fn id(&self) -> String {
        format!("{}/{}", self.group, self.label)
    }

    /// Attach an extra numeric counter to the record (builder style).
    #[must_use]
    pub fn with_extra(mut self, key: &str, value: f64) -> Self {
        self.extras.push((key.to_string(), value));
        self
    }
}

/// Time budget per measurement, overridable with `MSPCG_BENCH_MS`.
fn budget_nanos() -> u128 {
    let ms = std::env::var("MSPCG_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(250);
    u128::from(ms) * 1_000_000
}

/// Measure `f`, printing the result line and returning the record.
pub fn bench(group: &str, label: &str, mut f: impl FnMut()) -> BenchResult {
    // Warmup (also primes caches and the worker pool).
    f();
    let budget = budget_nanos();
    let mut samples = 0u64;
    let mut total_ns = 0u128;
    let mut min_ns = u128::MAX;
    // At least 5 samples, then until the budget is spent (cap 10k).
    while (samples < 5 || total_ns < budget) && samples < 10_000 {
        let start = Instant::now();
        f();
        let dt = start.elapsed().as_nanos().max(1);
        samples += 1;
        total_ns += dt;
        if dt < min_ns {
            min_ns = dt;
        }
        if total_ns >= budget && samples >= 5 {
            break;
        }
    }
    let result = BenchResult {
        group: group.to_string(),
        label: label.to_string(),
        samples,
        mean_ns: total_ns as f64 / samples as f64,
        min_ns: min_ns as f64,
        threads: mspcg_sparse::par::max_threads(),
        extras: Vec::new(),
    };
    println!(
        "{:<40} mean {:>12}  min {:>12}  ({} samples, {} thread(s))",
        result.id(),
        fmt_ns(result.mean_ns),
        fmt_ns(result.min_ns),
        result.samples,
        result.threads,
    );
    result
}

/// Human-readable nanoseconds.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn json_object(r: &BenchResult) -> String {
    let mut extras = String::new();
    for (key, value) in &r.extras {
        extras.push_str(&format!(", {}: {}", json_string(key), json_number(*value)));
    }
    format!(
        "  {{\"group\": {}, \"label\": {}, \"samples\": {}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"threads\": {}{}}}",
        json_string(&r.group),
        json_string(&r.label),
        r.samples,
        r.mean_ns,
        r.min_ns,
        r.threads,
        extras,
    )
}

/// Render a counter value as valid JSON (no NaN/inf literals).
fn json_number(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v:.4}")
        }
    } else {
        "null".to_string()
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Append results to a JSON array file (created if absent). Only files
/// written by this function are understood — the merge keeps the existing
/// entries verbatim and adds the new ones.
///
/// # Errors
/// Propagates I/O failures.
pub fn append_json(path: &std::path::Path, results: &[BenchResult]) -> std::io::Result<()> {
    let rendered: Vec<String> = results.iter().map(json_object).collect();
    let body = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end().trim_end_matches(']').trim_end();
            let sep = if trimmed.ends_with('[') { "\n" } else { ",\n" };
            format!("{}{}{}\n]\n", trimmed, sep, rendered.join(",\n"))
        }
        Err(_) => format!("[\n{}\n]\n", rendered.join(",\n")),
    };
    std::fs::write(path, body)
}

/// Scan argv for `--json <path>` (other args — e.g. cargo's `--bench` —
/// are ignored).
pub fn json_path_from_args() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            return args.next().map(std::path::PathBuf::from);
        }
    }
    None
}

/// Print the closing summary and record JSON when requested via `--json`.
pub fn finish(results: &[BenchResult]) {
    if let Some(path) = json_path_from_args() {
        match append_json(&path, results) {
            Ok(()) => println!("recorded {} result(s) to {}", results.len(), path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_counts() {
        std::env::set_var("MSPCG_BENCH_MS", "1");
        let mut calls = 0u64;
        let r = bench("unit", "noop", || calls += 1);
        assert!(r.samples >= 5);
        assert_eq!(calls, r.samples + 1); // + warmup
        assert!(r.min_ns <= r.mean_ns);
        std::env::remove_var("MSPCG_BENCH_MS");
    }

    #[test]
    fn json_round_trips_through_append() {
        let dir = std::env::temp_dir().join("mspcg_bench_test_json");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("out.json");
        let _ = std::fs::remove_file(&path);
        let r = BenchResult {
            group: "g".into(),
            label: "l\"x".into(),
            samples: 3,
            mean_ns: 1.5,
            min_ns: 1.0,
            threads: 2,
            extras: vec![
                ("iterations".into(), 41.0),
                ("barriers_per_iter".into(), 7.5),
            ],
        };
        append_json(&path, std::slice::from_ref(&r)).unwrap();
        append_json(&path, std::slice::from_ref(&r)).unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert_eq!(s.matches("\"group\"").count(), 2);
        assert!(s.trim_start().starts_with('['));
        assert!(s.trim_end().ends_with(']'));
        // Extras become plain JSON fields (integers stay integers).
        assert!(s.contains("\"iterations\": 41"));
        assert!(s.contains("\"barriers_per_iter\": 7.5000"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn json_number_renders_valid_json() {
        assert_eq!(json_number(3.0), "3");
        assert_eq!(json_number(-12.0), "-12");
        assert_eq!(json_number(2.25), "2.2500");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(f64::INFINITY), "null");
    }
}
