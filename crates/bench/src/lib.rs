//! # mspcg-bench
//!
//! Experiment harness regenerating **every table and figure** of Adams
//! (ICPP 1983). Each paper artifact has a dedicated binary (see
//! DESIGN.md §4 for the full index):
//!
//! | artifact | binary |
//! |---|---|
//! | Table 1 (α values) | `cargo run --release -p mspcg-bench --bin table1` |
//! | Table 2 (CYBER iterations/timings) | `… --bin table2` |
//! | Table 3 (FEM iterations/timings/speedups) | `… --bin table3` |
//! | Eq. (4.2) crossover analysis | `… --bin ineq42` |
//! | Figures 1–5 (plate, stencil, assignments, links) | `… --bin figures` |
//! | κ(M⁻¹K) vs m study (§2.1) | `… --bin condition` |
//! | ω sweep (§5 remark) | `… --bin omega_sweep` |
//!
//! Criterion benches (in `benches/`) measure the *real* wall-clock cost of
//! the kernels and solvers on the host machine — the modern analogue of
//! the timing columns.

// Indexed `for i in 0..n` loops are deliberate throughout the numeric
// kernels: they address several parallel arrays (CSR structure, split
// points, diagonals) by the same row index, where iterator zips would
// obscure the math. Clippy's needless_range_loop lint fires on exactly
// this pattern, so it is allowed crate-wide.
#![allow(clippy::needless_range_loop)]
pub mod experiments;
pub mod table;
pub mod timing;

pub use experiments::{
    condition_study, omega_sweep, run_table2, run_table3, table2_sizes, ConditionRow, Table2Cell,
    Table2Data, Table3Data, Table3Row, MS_TABLE2, MS_TABLE3,
};
pub use table::TextTable;
