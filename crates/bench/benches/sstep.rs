//! s-step (communication-avoiding) PCG sweep on the Table-3 FEM family:
//! `s ∈ {2, 4}` against the classic / single-reduction / pipelined
//! ladder, serial and SPMD.
//!
//! On this repo's single-core container the wall-clock gap is noise —
//! the s-step win is *synchronization*, so every record carries the
//! counters that prove the amortization instead: `reductions_per_iter`
//! (≈ 1/s for the s-step schedule — ONE fused block-Gram phase per `s`
//! iterations, no init phase — against 1 for single-reduction/pipelined
//! and 2 for classic) and `barriers_per_iter` (SPMD; `s·m(2C−1) + 2s`
//! crossings per outer step amortize to `m(2C−1) + 2` per iteration,
//! against classic's `m(2C−1) + 3`). The counter claims are *asserted*
//! in-run, not just recorded — a schedule regression fails the bench.
//!
//! Record results: `cargo bench -p mspcg-bench --bench sstep --
//! --json BENCH_pr10.json`.

use mspcg_bench::experiments::ordered_plate;
use mspcg_bench::timing::{bench, finish, BenchResult};
use mspcg_core::{
    pcg_try_solve_into, MStepSsorPreconditioner, PcgOptions, PcgVariant, PcgWorkspace,
};
use mspcg_parallel::{ParallelMStepPcg, ParallelSolverOptions};
use std::sync::Arc;

const SWEEP: [usize; 2] = [2, 4];

/// Serial s-sweep on one Table-3 plate, with the classic baseline for
/// the reduction-economy ratio.
fn bench_serial(results: &mut Vec<BenchResult>, a: usize, m: usize) {
    let (_, ord) = ordered_plate(a).expect("plate");
    let n = ord.matrix.rows();
    let matrix = Arc::new(ord.matrix);
    let colors = Arc::new(ord.colors);
    let pre =
        MStepSsorPreconditioner::unparametrized_shared(Arc::clone(&matrix), Arc::clone(&colors), m)
            .expect("preconditioner");
    let mut ws = PcgWorkspace::new(n);
    let mut u = vec![0.0; n];
    let group = format!("sstep_serial_plate{a}_m{m}");
    let variants: Vec<(String, PcgVariant)> =
        std::iter::once(("classic".into(), PcgVariant::Classic))
            .chain(
                SWEEP
                    .iter()
                    .map(|&s| (format!("sstep{s}"), PcgVariant::SStep { s })),
            )
            .collect();
    for (name, variant) in variants {
        let opts = PcgOptions {
            tol: 1e-8,
            variant,
            ..Default::default()
        };
        let mut record = bench(&group, &name, || {
            u.fill(0.0);
            pcg_try_solve_into(&matrix, &ord.rhs, &mut u, &pre, &opts, &mut ws).expect("solve");
        });
        u.fill(0.0);
        let rep =
            pcg_try_solve_into(&matrix, &ord.rhs, &mut u, &pre, &opts, &mut ws).expect("solve");
        assert!(rep.converged, "{group}/{name} did not converge");
        if let PcgVariant::SStep { s } = variant {
            // The acceptance counter: ONE fused block-Gram reduction
            // phase per `s` iterations (an endgame rank truncation may
            // split the terminal block once).
            assert_eq!(rep.stats.fallbacks, 0, "{group}/{name} fell back");
            let blocks = rep.iterations.div_ceil(s);
            assert!(
                rep.stats.reduction_phases >= blocks && rep.stats.reduction_phases <= blocks + 1,
                "{group}/{name}: {} reduction phases over {} iterations",
                rep.stats.reduction_phases,
                rep.iterations
            );
        }
        let iters = rep.iterations as f64;
        record = record
            .with_extra("iterations", iters)
            .with_extra(
                "reductions_per_iter",
                rep.stats.reduction_phases as f64 / iters,
            )
            .with_extra(
                "inner_products_per_iter",
                rep.stats.inner_products as f64 / iters,
            )
            .with_extra("fallbacks", rep.stats.fallbacks as f64);
        results.push(record);
    }
}

/// SPMD s-sweep: the instrumented barrier proves the
/// `s·m(2C−1) + 2s`-per-block schedule even at 1 core.
fn bench_spmd(results: &mut Vec<BenchResult>, a: usize, m: usize, threads: usize) {
    let (_, ord) = ordered_plate(a).expect("plate");
    let c = ord.colors.num_blocks();
    let solver = ParallelMStepPcg::new(&ord.matrix, &ord.colors, vec![1.0; m]).expect("solver");
    let sweep = m * (2 * c - 1);
    let group = format!("sstep_spmd_plate{a}_m{m}_t{threads}");
    let variants: Vec<(String, PcgVariant)> =
        std::iter::once(("classic".into(), PcgVariant::Classic))
            .chain(
                SWEEP
                    .iter()
                    .map(|&s| (format!("sstep{s}"), PcgVariant::SStep { s })),
            )
            .collect();
    for (name, variant) in variants {
        let opts = ParallelSolverOptions {
            threads,
            tol: 1e-8,
            max_iterations: 100_000,
            variant,
            // Pin the exact schedule: the counter assertions below must
            // not absorb audit phases from environment overrides.
            recovery: mspcg_core::RecoveryPolicy::off(),
        };
        let mut record = bench(&group, &name, || {
            solver.solve(&ord.rhs, &opts).expect("spmd solve");
        });
        let rep = solver.solve(&ord.rhs, &opts).expect("spmd solve");
        if let PcgVariant::SStep { s } = variant {
            // The acceptance schedule, asserted in-run: per outer step,
            // `s` basis msolves (`s·sweep` crossings), `s` SpMV/Chebyshev
            // phases and ONE fused block-Gram reduction + the update
            // mega-phase (`2s` crossings; for m = 0 the whole block runs
            // on `s + 1`).
            assert_eq!(rep.variant, variant, "{group}/{name}: fell back");
            let blocks = rep.iterations.div_ceil(s);
            assert_eq!(
                rep.reduction_phases, blocks,
                "{group}/{name}: s-step must run ONE reduction phase per {s} iterations"
            );
            let per_block = if m == 0 { s + 1 } else { s * sweep + 2 * s };
            assert_eq!(
                rep.barrier_crossings,
                blocks * per_block,
                "{group}/{name}: s-step barrier schedule changed"
            );
            assert_eq!(rep.split_crossings, 0, "{group}/{name}");
        }
        let iters = rep.iterations as f64;
        record = record
            .with_extra("iterations", iters)
            .with_extra("barriers_per_iter", rep.barrier_crossings as f64 / iters)
            .with_extra("reductions_per_iter", rep.reduction_phases as f64 / iters)
            .with_extra("colors", c as f64);
        results.push(record);
    }
}

fn main() {
    let mut results = Vec::new();
    bench_serial(&mut results, 40, 2);
    bench_spmd(&mut results, 40, 2, 2);
    bench_spmd(&mut results, 20, 0, 2);
    finish(&results);
}
