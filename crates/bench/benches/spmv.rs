//! Kernel bench: (a) CSR row-wise SpMV vs DIA multiplication-by-diagonals
//! on the color-blocked plate matrix — the §3.1 storage decision, measured
//! on modern hardware; (b) serial vs pool-parallel CSR SpMV on a 512×512
//! red/black Poisson problem (262 144 unknowns, ~1.3 M stored entries) —
//! the data-parallel kernel layer's headline speedup; (c) CSR vs SELL-C-σ
//! on the wide-row (arrow) family — the row-length-irregular shapes the
//! SELL layout exists for.
//!
//! Record results: `cargo bench -p mspcg-bench --bench spmv -- --json
//! BENCH_pr3.json` (PR 1 recorded groups (a)/(b) as BENCH_pr1.json).

use mspcg_bench::experiments::{ordered_plate, ordered_poisson};
use mspcg_bench::timing::{bench, finish, BenchResult};
use mspcg_sparse::{par, CooMatrix, DiaMatrix, SellCsMatrix, SparseOp};
use std::hint::black_box;

fn bench_csr_vs_dia(results: &mut Vec<BenchResult>) {
    for a in [20usize, 40, 60] {
        let (_, ord) = ordered_plate(a).expect("plate");
        let n = ord.matrix.rows();
        let dia = DiaMatrix::from_csr(&ord.matrix);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
        let mut y = vec![0.0; n];

        results.push(bench("spmv_plate", &format!("csr_n{n}"), || {
            ord.matrix.mul_vec_into(black_box(&x), black_box(&mut y));
        }));
        results.push(bench("spmv_plate", &format!("dia_n{n}"), || {
            dia.mul_vec_into(black_box(&x), black_box(&mut y));
        }));
    }
}

fn bench_serial_vs_parallel(results: &mut Vec<BenchResult>) {
    let (matrix, _, _) = ordered_poisson(512).expect("poisson 512");
    let n = matrix.rows();
    let x: Vec<f64> = (0..n)
        .map(|i| ((i * 31 + 7) % 1013) as f64 * 1e-3)
        .collect();
    let mut y = vec![0.0; n];

    let hw = par::max_threads();
    par::set_max_threads(1);
    let serial = bench("spmv_poisson512", "serial", || {
        matrix.mul_vec_into(black_box(&x), black_box(&mut y));
    });
    let serial_mean = serial.mean_ns;
    results.push(serial);

    for t in [2usize, 4, 8] {
        if t > par::pool_capacity() {
            break;
        }
        par::set_max_threads(t);
        let r = bench("spmv_poisson512", &format!("par{t}"), || {
            matrix.mul_vec_into(black_box(&x), black_box(&mut y));
        });
        println!(
            "    speedup vs serial at {t} threads: {:.2}x",
            serial_mean / r.mean_ns
        );
        results.push(r);
    }
    par::set_max_threads(hw);

    // Fused SpMV-accumulate, both paths, at the full budget.
    par::set_max_threads(1);
    results.push(bench("spmv_axpy_poisson512", "serial", || {
        matrix.mul_vec_axpy(-1.0, black_box(&x), black_box(&mut y));
    }));
    par::set_max_threads(hw);
    results.push(bench("spmv_axpy_poisson512", &format!("par{hw}"), || {
        matrix.mul_vec_axpy(-1.0, black_box(&x), black_box(&mut y));
    }));
}

/// The wide-row family: `head` dense rows over a short (tridiagonal) body
/// — the arrow shape multipoint constraints and boundary condensation
/// produce, where CSR pays a per-row loop for every 3-entry body row and
/// row-count chunking lets the dense head serialize a pool. SELL-C-σ
/// groups the dense rows into their own slices (σ-sort) and streams the
/// short-row body C rows per loop.
fn arrow_matrix(n: usize, head: usize) -> mspcg_sparse::CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 8.0).unwrap();
        if i + 1 < n {
            coo.push_sym(i, i + 1, -1.0).unwrap();
        }
    }
    for d in 0..head {
        for j in head..n {
            coo.push(d, j, -1e-3 * (d + 1) as f64).unwrap();
        }
    }
    coo.to_csr()
}

fn bench_csr_vs_sellcs_wide_rows(results: &mut Vec<BenchResult>) {
    for (n, head) in [(60_000usize, 8usize), (120_000, 16)] {
        let a = arrow_matrix(n, head);
        let sell = SellCsMatrix::from_csr_default(&a);
        println!(
            "    arrow n = {n}, head = {head}: nnz = {}, SELL padding = {:.1}%",
            a.nnz(),
            sell.padding_ratio() * 100.0
        );
        let x: Vec<f64> = (0..n)
            .map(|i| ((i * 31 + 7) % 1013) as f64 * 1e-3)
            .collect();
        let mut y = vec![0.0; n];

        let hw = par::max_threads();
        par::set_max_threads(1);
        let csr_serial = bench(&format!("spmv_arrow_n{n}"), "csr_serial", || {
            a.mul_vec_into(black_box(&x), black_box(&mut y));
        });
        let sell_serial = bench(&format!("spmv_arrow_n{n}"), "sellcs_serial", || {
            SparseOp::mul_vec_into(&sell, black_box(&x), black_box(&mut y));
        });
        println!(
            "    SELL-C-σ vs CSR (serial): {:.2}x",
            csr_serial.mean_ns / sell_serial.mean_ns
        );
        let csr_mean = csr_serial.mean_ns;
        let sell_mean = sell_serial.mean_ns;
        results.push(csr_serial);
        results.push(sell_serial);

        for t in [2usize, 4, 8] {
            if t > par::pool_capacity() {
                break;
            }
            par::set_max_threads(t);
            let rc = bench(&format!("spmv_arrow_n{n}"), &format!("csr_par{t}"), || {
                a.mul_vec_into(black_box(&x), black_box(&mut y));
            });
            let rs = bench(
                &format!("spmv_arrow_n{n}"),
                &format!("sellcs_par{t}"),
                || {
                    SparseOp::mul_vec_into(&sell, black_box(&x), black_box(&mut y));
                },
            );
            println!(
                "    SELL-C-σ vs CSR at {t} threads: {:.2}x (CSR {:.2}x / SELL {:.2}x over serial)",
                rc.mean_ns / rs.mean_ns,
                csr_mean / rc.mean_ns,
                sell_mean / rs.mean_ns
            );
            results.push(rc);
            results.push(rs);
        }
        par::set_max_threads(hw);
    }
}

fn main() {
    let mut results = Vec::new();
    bench_csr_vs_dia(&mut results);
    bench_serial_vs_parallel(&mut results);
    bench_csr_vs_sellcs_wide_rows(&mut results);
    finish(&results);
}
