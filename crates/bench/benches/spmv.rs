//! Kernel bench: (a) CSR row-wise SpMV vs DIA multiplication-by-diagonals
//! on the color-blocked plate matrix — the §3.1 storage decision, measured
//! on modern hardware; (b) serial vs pool-parallel CSR SpMV on a 512×512
//! red/black Poisson problem (262 144 unknowns, ~1.3 M stored entries) —
//! the data-parallel kernel layer's headline speedup.
//!
//! Record results: `cargo bench -p mspcg-bench --bench spmv -- --json
//! BENCH_pr1.json`.

use mspcg_bench::experiments::{ordered_plate, ordered_poisson};
use mspcg_bench::timing::{bench, finish, BenchResult};
use mspcg_sparse::{par, DiaMatrix};
use std::hint::black_box;

fn bench_csr_vs_dia(results: &mut Vec<BenchResult>) {
    for a in [20usize, 40, 60] {
        let (_, ord) = ordered_plate(a).expect("plate");
        let n = ord.matrix.rows();
        let dia = DiaMatrix::from_csr(&ord.matrix);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
        let mut y = vec![0.0; n];

        results.push(bench("spmv_plate", &format!("csr_n{n}"), || {
            ord.matrix.mul_vec_into(black_box(&x), black_box(&mut y));
        }));
        results.push(bench("spmv_plate", &format!("dia_n{n}"), || {
            dia.mul_vec_into(black_box(&x), black_box(&mut y));
        }));
    }
}

fn bench_serial_vs_parallel(results: &mut Vec<BenchResult>) {
    let (matrix, _, _) = ordered_poisson(512).expect("poisson 512");
    let n = matrix.rows();
    let x: Vec<f64> = (0..n)
        .map(|i| ((i * 31 + 7) % 1013) as f64 * 1e-3)
        .collect();
    let mut y = vec![0.0; n];

    let hw = par::max_threads();
    par::set_max_threads(1);
    let serial = bench("spmv_poisson512", "serial", || {
        matrix.mul_vec_into(black_box(&x), black_box(&mut y));
    });
    let serial_mean = serial.mean_ns;
    results.push(serial);

    for t in [2usize, 4, 8] {
        if t > par::pool_capacity() {
            break;
        }
        par::set_max_threads(t);
        let r = bench("spmv_poisson512", &format!("par{t}"), || {
            matrix.mul_vec_into(black_box(&x), black_box(&mut y));
        });
        println!(
            "    speedup vs serial at {t} threads: {:.2}x",
            serial_mean / r.mean_ns
        );
        results.push(r);
    }
    par::set_max_threads(hw);

    // Fused SpMV-accumulate, both paths, at the full budget.
    par::set_max_threads(1);
    results.push(bench("spmv_axpy_poisson512", "serial", || {
        matrix.mul_vec_axpy(-1.0, black_box(&x), black_box(&mut y));
    }));
    par::set_max_threads(hw);
    results.push(bench("spmv_axpy_poisson512", &format!("par{hw}"), || {
        matrix.mul_vec_axpy(-1.0, black_box(&x), black_box(&mut y));
    }));
}

fn main() {
    let mut results = Vec::new();
    bench_csr_vs_dia(&mut results);
    bench_serial_vs_parallel(&mut results);
    finish(&results);
}
