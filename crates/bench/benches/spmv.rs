//! Kernel bench: CSR row-wise SpMV vs DIA multiplication-by-diagonals on
//! the color-blocked plate matrix — the §3.1 storage decision, measured on
//! modern hardware. (On the CYBER the diagonal scheme won because of
//! vector startup; on a cache machine CSR usually wins — the bench makes
//! the trade-off visible.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mspcg_bench::experiments::ordered_plate;
use mspcg_sparse::DiaMatrix;
use std::hint::black_box;

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv");
    group.sample_size(30);
    for a in [20usize, 40, 60] {
        let (_, ord) = ordered_plate(a).expect("plate");
        let n = ord.matrix.rows();
        let dia = DiaMatrix::from_csr(&ord.matrix);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
        let mut y = vec![0.0; n];

        group.bench_with_input(BenchmarkId::new("csr", n), &n, |b, _| {
            b.iter(|| {
                ord.matrix.mul_vec_into(black_box(&x), black_box(&mut y));
            })
        });
        group.bench_with_input(BenchmarkId::new("dia", n), &n, |b, _| {
            b.iter(|| {
                dia.mul_vec_into(black_box(&x), black_box(&mut y));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spmv);
criterion_main!(benches);
