//! Preconditioner bench: (a) m-step solve cost must scale linearly in m
//! (the `m·B` term of Eq. (4.1)); (b) the Conrad–Wallach cached sweep vs
//! the naive two-pass step — the paper's "one SSOR step costs one SOR
//! sweep" claim, as a measured ablation; (c) serial vs pool-parallel
//! m-step `msolve` on the 512×512 red/black Poisson problem — the
//! per-color parallel sweep speedup.
//!
//! Record results: `cargo bench -p mspcg-bench --bench precond -- --json
//! BENCH_pr1.json`.

use mspcg_bench::experiments::{ordered_plate, ordered_poisson};
use mspcg_bench::timing::{bench, finish, BenchResult};
use mspcg_core::splitting::Splitting;
use mspcg_core::ssor::MulticolorSsor;
use mspcg_sparse::par;
use std::hint::black_box;

fn bench_msolve_scaling(results: &mut Vec<BenchResult>) {
    let (_, ord) = ordered_plate(40).expect("plate");
    let n = ord.matrix.rows();
    let ssor = MulticolorSsor::new(ord.matrix.clone(), ord.colors.clone(), 1.0).expect("splitting");
    let r: Vec<f64> = (0..n).map(|i| ((i % 17) as f64) - 8.0).collect();
    let mut z = vec![0.0; n];

    for m in [1usize, 2, 4, 8] {
        let alphas = vec![1.0; m];
        results.push(bench("msolve_vs_m", &format!("m{m}"), || {
            ssor.msolve(black_box(&alphas), black_box(&r), black_box(&mut z));
        }));
    }
}

fn bench_conrad_wallach(results: &mut Vec<BenchResult>) {
    let (_, ord) = ordered_plate(40).expect("plate");
    let n = ord.matrix.rows();
    let ssor = MulticolorSsor::new(ord.matrix.clone(), ord.colors.clone(), 1.0).expect("splitting");
    let r: Vec<f64> = (0..n).map(|i| (i as f64 * 0.03).cos()).collect();
    let mut z = vec![0.0; n];
    let m = 4usize;
    let alphas = vec![1.0; m];

    results.push(bench("conrad_wallach_ablation", "cached_msolve", || {
        ssor.msolve(black_box(&alphas), black_box(&r), black_box(&mut z));
    }));
    results.push(bench(
        "conrad_wallach_ablation",
        "naive_two_pass_steps",
        || {
            z.fill(0.0);
            for s in 1..=m {
                ssor.step(alphas[m - s], black_box(&r), black_box(&mut z));
            }
        },
    ));
}

fn bench_serial_vs_parallel_msolve(results: &mut Vec<BenchResult>) {
    let (matrix, colors, _) = ordered_poisson(512).expect("poisson 512");
    let n = matrix.rows();
    let ssor = MulticolorSsor::new(matrix, colors, 1.0).expect("splitting");
    let r: Vec<f64> = (0..n)
        .map(|i| ((i * 13 + 5) % 89) as f64 * 0.02 - 0.9)
        .collect();
    let mut z = vec![0.0; n];

    let hw = par::max_threads();
    for m in [2usize, 4] {
        let alphas = vec![1.0; m];
        par::set_max_threads(1);
        let serial = bench("msolve_poisson512", &format!("m{m}_serial"), || {
            ssor.msolve(black_box(&alphas), black_box(&r), black_box(&mut z));
        });
        let serial_mean = serial.mean_ns;
        results.push(serial);
        for t in [2usize, 4, 8] {
            if t > par::pool_capacity() {
                break;
            }
            par::set_max_threads(t);
            let rp = bench("msolve_poisson512", &format!("m{m}_par{t}"), || {
                ssor.msolve(black_box(&alphas), black_box(&r), black_box(&mut z));
            });
            println!(
                "    speedup vs serial at {t} threads: {:.2}x",
                serial_mean / rp.mean_ns
            );
            results.push(rp);
        }
    }
    par::set_max_threads(hw);
}

fn main() {
    let mut results = Vec::new();
    bench_msolve_scaling(&mut results);
    bench_conrad_wallach(&mut results);
    bench_serial_vs_parallel_msolve(&mut results);
    finish(&results);
}
