//! Preconditioner bench: (a) m-step solve cost must scale linearly in m
//! (the `m·B` term of Eq. (4.1)); (b) the Conrad–Wallach cached sweep vs
//! the naive two-pass step — the paper's "one SSOR step costs one SOR
//! sweep" claim, as a measured ablation; (c) serial vs pool-parallel
//! m-step `msolve` on the 512×512 red/black Poisson problem — the
//! per-color parallel sweep speedup; (d) the barrier-free polynomial
//! (Newton–Chebyshev) preconditioner vs m-step SSOR at **matched flops**
//! (degree `2m` streams the matrix as often as `m` forward+backward
//! sweeps): single-application cost, bitwise thread-count determinism of
//! the chunked chain, and the full SPMD solve — iterations × barriers ×
//! wall time per variant, with the exact degree-`k` barrier formulas
//! (classic `k+3`, single-reduction `k+2`, pipelined `k+1` per
//! iteration) *asserted* in-run, not just recorded.
//!
//! Record results: `cargo bench -p mspcg-bench --bench precond -- --json
//! BENCH_pr8.json` (PR 1 recorded the sweep-only groups as
//! `BENCH_pr1.json`).

use mspcg_bench::experiments::{ordered_plate, ordered_poisson};
use mspcg_bench::timing::{bench, finish, BenchResult};
use mspcg_core::preconditioner::Preconditioner;
use mspcg_core::splitting::Splitting;
use mspcg_core::ssor::MulticolorSsor;
use mspcg_core::{PcgVariant, PolynomialPreconditioner, RecoveryPolicy};
use mspcg_parallel::{ParallelMStepPcg, ParallelSolverOptions};
use mspcg_sparse::{par, PolyKind};
use std::hint::black_box;

fn bench_msolve_scaling(results: &mut Vec<BenchResult>) {
    let (_, ord) = ordered_plate(40).expect("plate");
    let n = ord.matrix.rows();
    let ssor = MulticolorSsor::new(ord.matrix.clone(), ord.colors.clone(), 1.0).expect("splitting");
    let r: Vec<f64> = (0..n).map(|i| ((i % 17) as f64) - 8.0).collect();
    let mut z = vec![0.0; n];

    for m in [1usize, 2, 4, 8] {
        let alphas = vec![1.0; m];
        results.push(bench("msolve_vs_m", &format!("m{m}"), || {
            ssor.msolve(black_box(&alphas), black_box(&r), black_box(&mut z));
        }));
    }
}

fn bench_conrad_wallach(results: &mut Vec<BenchResult>) {
    let (_, ord) = ordered_plate(40).expect("plate");
    let n = ord.matrix.rows();
    let ssor = MulticolorSsor::new(ord.matrix.clone(), ord.colors.clone(), 1.0).expect("splitting");
    let r: Vec<f64> = (0..n).map(|i| (i as f64 * 0.03).cos()).collect();
    let mut z = vec![0.0; n];
    let m = 4usize;
    let alphas = vec![1.0; m];

    results.push(bench("conrad_wallach_ablation", "cached_msolve", || {
        ssor.msolve(black_box(&alphas), black_box(&r), black_box(&mut z));
    }));
    results.push(bench(
        "conrad_wallach_ablation",
        "naive_two_pass_steps",
        || {
            z.fill(0.0);
            for s in 1..=m {
                ssor.step(alphas[m - s], black_box(&r), black_box(&mut z));
            }
        },
    ));
}

fn bench_serial_vs_parallel_msolve(results: &mut Vec<BenchResult>) {
    let (matrix, colors, _) = ordered_poisson(512).expect("poisson 512");
    let n = matrix.rows();
    let ssor = MulticolorSsor::new(matrix, colors, 1.0).expect("splitting");
    let r: Vec<f64> = (0..n)
        .map(|i| ((i * 13 + 5) % 89) as f64 * 0.02 - 0.9)
        .collect();
    let mut z = vec![0.0; n];

    let hw = par::max_threads();
    for m in [2usize, 4] {
        let alphas = vec![1.0; m];
        par::set_max_threads(1);
        let serial = bench("msolve_poisson512", &format!("m{m}_serial"), || {
            ssor.msolve(black_box(&alphas), black_box(&r), black_box(&mut z));
        });
        let serial_mean = serial.mean_ns;
        results.push(serial);
        for t in [2usize, 4, 8] {
            if t > par::pool_capacity() {
                break;
            }
            par::set_max_threads(t);
            let rp = bench("msolve_poisson512", &format!("m{m}_par{t}"), || {
                ssor.msolve(black_box(&alphas), black_box(&r), black_box(&mut z));
            });
            println!(
                "    speedup vs serial at {t} threads: {:.2}x",
                serial_mean / rp.mean_ns
            );
            results.push(rp);
        }
    }
    par::set_max_threads(hw);
}

/// (d1) Single application at matched flops: one degree-`2m` Chebyshev
/// chain vs one m-step SSOR msolve on the plate. The polynomial streams
/// the matrix the same number of times but crosses zero color-sweep
/// synchronization points — serially the two should be in the same
/// ballpark; the barrier ledger is what separates them under SPMD.
fn bench_poly_vs_mstep_apply(results: &mut Vec<BenchResult>) {
    let (_, ord) = ordered_plate(40).expect("plate");
    let n = ord.matrix.rows();
    let ssor = MulticolorSsor::new(ord.matrix.clone(), ord.colors.clone(), 1.0).expect("splitting");
    let r: Vec<f64> = (0..n)
        .map(|i| ((i * 7 + 3) % 23) as f64 * 0.05 - 0.5)
        .collect();
    let mut z = vec![0.0; n];
    // One Lanczos run serves the whole degree sweep: rebuild at each
    // degree with `with_degree`, which reuses the cached interval and
    // the checked reciprocal diagonal.
    let base = PolynomialPreconditioner::chebyshev(ord.matrix.clone(), 2).expect("poly");
    for m in [1usize, 2, 4] {
        let alphas = vec![1.0; m];
        results.push(bench("poly_vs_mstep_apply", &format!("mstep_m{m}"), || {
            ssor.msolve(black_box(&alphas), black_box(&r), black_box(&mut z));
        }));
        let k = 2 * m;
        let pre = base.with_degree(k).expect("poly");
        let mut scratch = vec![0.0; pre.scratch_len()];
        results.push(bench("poly_vs_mstep_apply", &format!("cheby_k{k}"), || {
            pre.apply_with(black_box(&r), black_box(&mut z), black_box(&mut scratch));
        }));
    }
}

/// (d2) The chunk-determinism contract, asserted in-run: the serial
/// polynomial application is **bitwise identical** at 1/2/4/8 kernel
/// threads (fixed chunk boundaries, fixed combination order).
fn bench_poly_thread_determinism(results: &mut Vec<BenchResult>) {
    let (matrix, _, _) = ordered_poisson(256).expect("poisson 256");
    let n = matrix.rows();
    let pre = PolynomialPreconditioner::chebyshev(matrix, 4).expect("poly");
    let r: Vec<f64> = (0..n)
        .map(|i| ((i * 13 + 5) % 89) as f64 * 0.02 - 0.9)
        .collect();
    let mut z = vec![0.0; n];
    let mut scratch = vec![0.0; pre.scratch_len()];
    let hw = par::max_threads();
    let mut reference: Option<Vec<u64>> = None;
    for t in [1usize, 2, 4, 8] {
        par::set_max_threads(t);
        results.push(bench(
            "poly_apply_poisson256_k4",
            &format!("par{t}"),
            || {
                pre.apply_with(black_box(&r), black_box(&mut z), black_box(&mut scratch));
            },
        ));
        let bits: Vec<u64> = z.iter().map(|v| v.to_bits()).collect();
        match &reference {
            None => reference = Some(bits),
            Some(want) => assert_eq!(
                want, &bits,
                "polynomial apply is not bitwise thread-count deterministic at {t} threads"
            ),
        }
    }
    par::set_max_threads(hw);
}

/// (d3) The headline comparison: full SPMD solves on the plate, degree-4
/// Chebyshev vs the flop-matched 2-step SSOR, per variant × thread
/// count. Wall time is measured; `iterations`, `barriers_per_iter`,
/// `reductions_per_iter` and `splits_per_iter` ride the record as
/// extras, and the exact degree-`k` barrier formulas are asserted before
/// anything is recorded.
fn bench_poly_vs_mstep_spmd(results: &mut Vec<BenchResult>) {
    let (_, ord) = ordered_plate(40).expect("plate");
    let c = ord.colors.num_blocks();
    let rhs = &ord.rhs;
    let m = 2usize;
    let k = 2 * m;
    let sweep = m * (2 * c - 1);
    let ssor = ParallelMStepPcg::new(&ord.matrix, &ord.colors, vec![1.0; m]).expect("spmd ssor");
    let poly = ParallelMStepPcg::poly(&ord.matrix, &ord.colors, PolyKind::Chebyshev, k)
        .expect("spmd poly");
    for variant in [
        PcgVariant::Classic,
        PcgVariant::SingleReduction,
        PcgVariant::Pipelined,
    ] {
        let vname = match variant {
            PcgVariant::SingleReduction => "single_reduction",
            PcgVariant::Pipelined => "pipelined",
            _ => "classic",
        };
        for threads in [1usize, 4] {
            let opts = ParallelSolverOptions {
                threads,
                tol: 1e-8,
                max_iterations: 50_000,
                variant,
                recovery: RecoveryPolicy::off(),
            };
            let group = format!("poly_vs_mstep_spmd_plate40_{vname}");
            for (label, solver, msolve_cost) in [("mstep_m2", &ssor, sweep), ("cheby_k4", &poly, k)]
            {
                let rep = solver.solve(rhs, &opts).expect("spmd solve");
                assert!(rep.converged, "{group}/{label} did not converge");
                assert_eq!(rep.variant, variant, "{group}/{label} fell back");
                let i = rep.iterations;
                // The degree-k chain must obey the same pinned formulas
                // as the sweeps with `sweep → k` (pipelined pays one
                // extra input-finalization barrier per overlap window).
                let is_poly = matches!(solver.precond(), mspcg_sparse::PrecondKind::Poly { .. });
                let expected = match variant {
                    PcgVariant::SingleReduction => {
                        msolve_cost + 1 + (i - 1) * (msolve_cost + 2) + 1
                    }
                    PcgVariant::Pipelined => {
                        if is_poly {
                            (i + 2) * k + i + 1
                        } else {
                            (i + 2) * msolve_cost
                        }
                    }
                    _ => msolve_cost + (i - 1) * (msolve_cost + 3) + 2,
                };
                assert_eq!(
                    rep.barrier_crossings, expected,
                    "{group}/{label}: barrier schedule changed (threads = {threads})"
                );
                let iters = i as f64;
                let run = bench(&group, &format!("{label}_t{threads}"), || {
                    black_box(solver.solve(black_box(rhs), &opts).expect("spmd solve"));
                })
                .with_extra("iterations", iters)
                .with_extra("barriers_per_iter", rep.barrier_crossings as f64 / iters)
                .with_extra("reductions_per_iter", rep.reduction_phases as f64 / iters)
                .with_extra("splits_per_iter", rep.split_crossings as f64 / iters)
                .with_extra("colors", c as f64);
                results.push(run);
            }
        }
    }
}

fn main() {
    let mut results = Vec::new();
    bench_msolve_scaling(&mut results);
    bench_conrad_wallach(&mut results);
    bench_serial_vs_parallel_msolve(&mut results);
    bench_poly_vs_mstep_apply(&mut results);
    bench_poly_thread_determinism(&mut results);
    bench_poly_vs_mstep_spmd(&mut results);
    finish(&results);
}
