//! Preconditioner bench: (a) m-step solve cost must scale linearly in m
//! (the `m·B` term of Eq. (4.1)); (b) the Conrad–Wallach cached sweep vs
//! the naive two-pass step — the paper's "one SSOR step costs one SOR
//! sweep" claim, as a measured ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mspcg_bench::experiments::ordered_plate;
use mspcg_core::splitting::Splitting;
use mspcg_core::ssor::MulticolorSsor;
use std::hint::black_box;

fn bench_msolve_scaling(c: &mut Criterion) {
    let (_, ord) = ordered_plate(40).expect("plate");
    let n = ord.matrix.rows();
    let ssor = MulticolorSsor::new(&ord.matrix, &ord.colors, 1.0).expect("splitting");
    let r: Vec<f64> = (0..n).map(|i| ((i % 17) as f64) - 8.0).collect();
    let mut z = vec![0.0; n];

    let mut group = c.benchmark_group("msolve_vs_m");
    group.sample_size(30);
    for m in [1usize, 2, 4, 8] {
        let alphas = vec![1.0; m];
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| ssor.msolve(black_box(&alphas), black_box(&r), black_box(&mut z)))
        });
    }
    group.finish();
}

fn bench_conrad_wallach(c: &mut Criterion) {
    let (_, ord) = ordered_plate(40).expect("plate");
    let n = ord.matrix.rows();
    let ssor = MulticolorSsor::new(&ord.matrix, &ord.colors, 1.0).expect("splitting");
    let r: Vec<f64> = (0..n).map(|i| (i as f64 * 0.03).cos()).collect();
    let mut z = vec![0.0; n];
    let m = 4usize;
    let alphas = vec![1.0; m];

    let mut group = c.benchmark_group("conrad_wallach_ablation");
    group.sample_size(30);
    group.bench_function("cached_msolve", |b| {
        b.iter(|| ssor.msolve(black_box(&alphas), black_box(&r), black_box(&mut z)))
    });
    group.bench_function("naive_two_pass_steps", |b| {
        b.iter(|| {
            z.fill(0.0);
            for s in 1..=m {
                ssor.step(alphas[m - s], black_box(&r), black_box(&mut z));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_msolve_scaling, bench_conrad_wallach);
criterion_main!(benches);
