//! Bench for PR 2's two hot paths:
//!
//! (a) **fused vs unfused per-iteration vector work** — the CG update
//!     (`u += αp`, `r −= α·Kp`, `‖p‖∞`, `‖r‖∞`) and the direction update
//!     + dot, as four separate sweeps vs one fused kernel, on
//!     512×512-Poisson-sized vectors (262 144 elements);
//! (b) **batched multi-RHS solves** — 32 load cases against one plate
//!     stiffness matrix via `pcg_solve_multi` (RHS-level parallelism on a
//!     small plate, kernel-level on a large one) vs the same 32 solves
//!     issued sequentially through `pcg_solve_into`.
//!
//! Record results: `cargo bench -p mspcg-bench --bench multi_rhs -- --json
//! BENCH_pr2.json`.

use mspcg_bench::experiments::ordered_plate;
use mspcg_bench::timing::{bench, finish, BenchResult};
use mspcg_core::{
    pcg_solve_into, pcg_solve_multi, MStepSsorPreconditioner, MultiRhsWorkspace, PcgOptions,
    PcgWorkspace,
};
use mspcg_sparse::{par, vecops};
use std::hint::black_box;
use std::sync::Arc;

const N_VEC: usize = 512 * 512;
const N_CASES: usize = 32;

fn bench_fused_vs_unfused(results: &mut Vec<BenchResult>) {
    let p: Vec<f64> = (0..N_VEC)
        .map(|i| ((i * 31 + 7) % 1013) as f64 * 1e-3 - 0.5)
        .collect();
    let kp: Vec<f64> = (0..N_VEC)
        .map(|i| ((i * 43 + 3) % 977) as f64 * 1e-3 - 0.45)
        .collect();
    let mut u = vec![0.0f64; N_VEC];
    let mut r = vec![1.0f64; N_VEC];
    let alpha = 0.8125;

    // The per-iteration update as pcg_solve_into performed it before the
    // fusion: four separate sweeps over the vectors.
    results.push(bench("pcg_iteration_update", "unfused", || {
        vecops::axpy(alpha, black_box(&p), black_box(&mut u));
        let pn = vecops::norm_inf(black_box(&p));
        vecops::axpy(-alpha, black_box(&kp), black_box(&mut r));
        let rn = vecops::norm_inf(black_box(&r));
        black_box((pn, rn));
    }));
    results.push(bench("pcg_iteration_update", "fused", || {
        let norms =
            vecops::fused_axpy_axpy_norm(alpha, black_box(&p), black_box(&kp), &mut u, &mut r);
        black_box(norms);
    }));

    let mut y = vec![0.5f64; N_VEC];
    results.push(bench("pcg_direction_dot", "unfused", || {
        vecops::xpby(black_box(&p), 0.37, black_box(&mut y));
        black_box(vecops::dot(black_box(&y), black_box(&kp)));
    }));
    results.push(bench("pcg_direction_dot", "fused", || {
        black_box(vecops::fused_xpby_dot(
            black_box(&p),
            0.37,
            &mut y,
            black_box(&kp),
        ));
    }));
}

/// 32 load cases: the assembled plate load scaled per case.
fn load_cases(rhs: &[f64]) -> Vec<f64> {
    (0..N_CASES)
        .flat_map(|j| {
            let scale = 1.0 + 0.1 * j as f64;
            rhs.iter().map(move |v| v * scale)
        })
        .collect()
}

fn bench_multi_rhs(results: &mut Vec<BenchResult>, a: usize, regime: &str) {
    let (_, ord) = ordered_plate(a).expect("plate");
    let n = ord.matrix.rows();
    let matrix = Arc::new(ord.matrix);
    let colors = Arc::new(ord.colors);
    let pre =
        MStepSsorPreconditioner::unparametrized_shared(Arc::clone(&matrix), Arc::clone(&colors), 2)
            .expect("preconditioner");
    let opts = PcgOptions {
        tol: 1e-8,
        ..Default::default()
    };
    let f = load_cases(&ord.rhs);
    let mut u = vec![0.0; N_CASES * n];

    let mut single_ws = PcgWorkspace::new(n);
    results.push(bench(
        &format!("multi_rhs_plate{a}_{regime}"),
        "sequential_into",
        || {
            for i in 0..N_CASES {
                let (fi, ui) = (&f[i * n..(i + 1) * n], &mut u[i * n..(i + 1) * n]);
                ui.fill(0.0);
                pcg_solve_into(&matrix, fi, ui, &pre, &opts, &mut single_ws).expect("solve");
            }
        },
    ));

    let mut ws = MultiRhsWorkspace::new(n, N_CASES);
    results.push(bench(
        &format!("multi_rhs_plate{a}_{regime}"),
        &format!("batch_par{}", par::max_threads()),
        || {
            u.fill(0.0);
            pcg_solve_multi(&matrix, &f, &mut u, &pre, &opts, &mut ws).expect("batch");
        },
    ));
}

fn main() {
    let mut results = Vec::new();
    bench_fused_vs_unfused(&mut results);
    // Small plate: below the kernel-parallel nnz threshold, so the batch
    // distributes whole right-hand sides across the pool.
    bench_multi_rhs(&mut results, 20, "rhs_level");
    // Large plate: kernels fan out instead, RHS stay sequential.
    bench_multi_rhs(&mut results, 60, "kernel_level");
    finish(&results);
}
