//! Table 2 as a *real* wall-clock bench: full m-step SSOR PCG solves of
//! the plate problem across the paper's m sweep, on the host CPU. The
//! simulated-CYBER seconds are produced by the `table2` binary; this bench
//! shows the same U-shape (time vs m) on modern hardware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mspcg_bench::experiments::{iterations_on, ordered_plate};
use std::hint::black_box;

fn bench_solve_vs_m(c: &mut Criterion) {
    let (_, ord) = ordered_plate(30).expect("plate");
    let rows: &[(usize, bool)] = &[
        (0, false),
        (1, false),
        (2, false),
        (2, true),
        (3, true),
        (4, true),
        (6, true),
    ];
    let mut group = c.benchmark_group("table2_solve_wall_clock");
    group.sample_size(10);
    for &(m, parametrized) in rows {
        let label = if parametrized {
            format!("{m}P")
        } else {
            format!("{m}")
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &m, |b, &m| {
            b.iter(|| {
                let iters = iterations_on(black_box(&ord), m, parametrized, 1e-6).unwrap();
                black_box(iters)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solve_vs_m);
criterion_main!(benches);
