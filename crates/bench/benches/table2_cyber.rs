//! Table 2 as a *real* wall-clock bench: full m-step SSOR PCG solves of
//! the plate problem across the paper's m sweep, on the host CPU. The
//! simulated-CYBER seconds are produced by the `table2` binary; this bench
//! shows the same U-shape (time vs m) on modern hardware.

use mspcg_bench::experiments::{iterations_on, ordered_plate};
use mspcg_bench::timing::{bench, finish};
use std::hint::black_box;

fn main() {
    let (_, ord) = ordered_plate(30).expect("plate");
    let rows: &[(usize, bool)] = &[
        (0, false),
        (1, false),
        (2, false),
        (2, true),
        (3, true),
        (4, true),
        (6, true),
    ];
    let mut results = Vec::new();
    for &(m, parametrized) in rows {
        let label = if parametrized {
            format!("m{m}P")
        } else {
            format!("m{m}")
        };
        results.push(bench("table2_solve_wall_clock", &label, || {
            black_box(iterations_on(black_box(&ord), m, parametrized, 1e-6).expect("solve"));
        }));
    }
    finish(&results);
}
