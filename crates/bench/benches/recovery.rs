//! Cost of robustness: residual auditing, replacement, and the recovery
//! ladder on the Table-3 FEM family.
//!
//! Three measurements per variant, serial and SPMD:
//!
//! * **clean/off** — the PR-5 baseline schedule with recovery pinned off,
//! * **clean/audited** — the same solve under `audit_period = 4`
//!   replacement auditing; the iterate must stay *bitwise identical* (a
//!   clean audit never replaces) and the extra cost must be exactly one
//!   fused `f − K·u` phase per audit (+1 barrier, no reduction phase, in
//!   the SPMD executor — asserted in-run),
//! * **faulted** — a NaN injected into the iteration-2 preconditioner
//!   application; the ladder must absorb it (classic in place, the
//!   recurrence schedules by stepping down) with the exact detection /
//!   replacement / recovery counters pinned.
//!
//! The wall-clock numbers quantify the audit overhead; the counters prove
//! *why* it costs what it costs. Record results:
//! `cargo bench -p mspcg-bench --bench recovery -- --json BENCH_pr6.json`.

use mspcg_bench::experiments::ordered_plate;
use mspcg_bench::timing::{bench, finish, BenchResult};
use mspcg_core::{
    pcg_try_solve_into, FaultKind, FaultPlan, FaultTarget, IterationFault, MStepSsorPreconditioner,
    PcgOptions, PcgVariant, PcgWorkspace, RecoveryPolicy, Toggle,
};
use mspcg_parallel::{ParallelMStepPcg, ParallelSolverOptions};
use std::sync::Arc;

fn variant_name(variant: PcgVariant) -> &'static str {
    match variant {
        PcgVariant::SingleReduction => "single_reduction",
        PcgVariant::Pipelined => "pipelined",
        _ => "classic",
    }
}

const VARIANTS: [PcgVariant; 3] = [
    PcgVariant::Classic,
    PcgVariant::SingleReduction,
    PcgVariant::Pipelined,
];

const AUDIT_PERIOD: usize = 4;

fn audit_on() -> RecoveryPolicy {
    RecoveryPolicy {
        replacement: Toggle::On,
        audit_period: AUDIT_PERIOD,
        ..RecoveryPolicy::default()
    }
}

/// Serial audit overhead on one Table-3 plate: clean/off vs clean/audited
/// vs a ladder walk under a consumed-once NaN preconditioner fault.
fn bench_serial(results: &mut Vec<BenchResult>, a: usize, m: usize) {
    let (_, ord) = ordered_plate(a).expect("plate");
    let n = ord.matrix.rows();
    let matrix = Arc::new(ord.matrix);
    let colors = Arc::new(ord.colors);
    let pre =
        MStepSsorPreconditioner::unparametrized_shared(Arc::clone(&matrix), Arc::clone(&colors), m)
            .expect("preconditioner");
    let mut ws = PcgWorkspace::new(n);
    let mut u = vec![0.0; n];
    for variant in VARIANTS {
        let group = format!("recovery_serial_plate{a}_m{m}");
        let mut opts = PcgOptions {
            tol: 1e-8,
            variant,
            recovery: RecoveryPolicy::off(),
            ..Default::default()
        };
        let record_off = bench(&group, &format!("{}_off", variant_name(variant)), || {
            u.fill(0.0);
            pcg_try_solve_into(&matrix, &ord.rhs, &mut u, &pre, &opts, &mut ws).expect("solve");
        });
        let off_iterate = u.clone();

        opts.recovery = audit_on();
        let record_aud = bench(
            &group,
            &format!("{}_audited", variant_name(variant)),
            || {
                u.fill(0.0);
                pcg_try_solve_into(&matrix, &ord.rhs, &mut u, &pre, &opts, &mut ws).expect("solve");
            },
        );
        u.fill(0.0);
        let rep =
            pcg_try_solve_into(&matrix, &ord.rhs, &mut u, &pre, &opts, &mut ws).expect("solve");
        assert!(rep.converged, "{group}: audited solve did not converge");
        // A clean audit observes and never replaces: same trajectory, to
        // the bit, as the unaudited run.
        assert_eq!(rep.stats.replacements, 0, "{group}: clean audit replaced");
        assert!(rep.stats.audits >= 1, "{group}: no audit ran");
        assert!(
            u.iter()
                .zip(&off_iterate)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "{group}: auditing changed the iterate"
        );
        let overhead = record_aud.mean_ns / record_off.mean_ns.max(1.0);
        results.push(record_off.with_extra("iterations", rep.iterations as f64));
        results.push(
            record_aud
                .with_extra("audits", rep.stats.audits as f64)
                .with_extra("audit_overhead_x", overhead),
        );
    }
}

/// SPMD audit overhead + ladder cost on one Table-3 plate. The audit's
/// cost model is asserted in-run: +1 full barrier per audit, no extra
/// reduction phase.
fn bench_spmd(results: &mut Vec<BenchResult>, a: usize, m: usize, threads: usize) {
    let (_, ord) = ordered_plate(a).expect("plate");
    let solver = ParallelMStepPcg::new(&ord.matrix, &ord.colors, vec![1.0; m]).expect("solver");
    for variant in VARIANTS {
        let group = format!("recovery_spmd_plate{a}_m{m}_t{threads}");
        let mut opts = ParallelSolverOptions {
            threads,
            tol: 1e-8,
            max_iterations: 100_000,
            variant,
            recovery: RecoveryPolicy::off(),
        };
        let record_off = bench(&group, &format!("{}_off", variant_name(variant)), || {
            solver.solve(&ord.rhs, &opts).expect("spmd solve");
        });
        let rep_off = solver.solve(&ord.rhs, &opts).expect("spmd solve");
        let off_mean = record_off.mean_ns.max(1.0);

        opts.recovery = audit_on();
        let record_aud = bench(
            &group,
            &format!("{}_audited", variant_name(variant)),
            || {
                solver.solve(&ord.rhs, &opts).expect("spmd solve");
            },
        );
        let rep = solver.solve(&ord.rhs, &opts).expect("spmd solve");
        assert!(rep.converged, "{group}: audited solve did not converge");
        assert_eq!(rep.replacements, 0, "{group}: clean audit replaced");
        assert!(rep.audits >= 1, "{group}: no audit ran");
        // The audit cost model: each audit is ONE fused extra phase — one
        // more barrier crossing, zero additional reduction phases.
        assert_eq!(
            rep.barrier_crossings,
            rep_off.barrier_crossings + rep.audits,
            "{group}: audit phase cost model changed"
        );
        assert_eq!(
            rep.reduction_phases, rep_off.reduction_phases,
            "{group}: audits must not add reduction phases"
        );
        assert!(
            rep.x
                .iter()
                .zip(&rep_off.x)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "{group}: auditing changed the iterate"
        );
        let overhead = record_aud.mean_ns / off_mean;
        results.push(record_off.with_extra("iterations", rep_off.iterations as f64));
        results.push(
            record_aud
                .with_extra("audits", rep.audits as f64)
                .with_extra("audit_overhead_x", overhead),
        );

        // Ladder walk under a persistent NaN preconditioner fault at
        // iteration 2: classic absorbs in place, the recurrence schedules
        // re-detect per rung and step down to classic.
        opts.recovery = RecoveryPolicy::off();
        let plan = FaultPlan::new(vec![IterationFault {
            target: FaultTarget::Msolve,
            iteration: 2,
            index: 3,
            kind: FaultKind::NaN,
        }]);
        let record_fault = bench(
            &group,
            &format!("{}_faulted", variant_name(variant)),
            || {
                solver
                    .solve_with_faults(&ord.rhs, &opts, &plan)
                    .expect("faulted spmd solve");
            },
        );
        let frep = solver
            .solve_with_faults(&ord.rhs, &opts, &plan)
            .expect("faulted spmd solve");
        let faulted_mean = record_fault.mean_ns;
        assert!(frep.converged, "{group}: faulted solve did not converge");
        let expect = match variant {
            PcgVariant::Classic => (1, 1, 0),
            PcgVariant::SingleReduction => (2, 1, 1),
            _ => (3, 1, 2),
        };
        assert_eq!(
            (frep.faults_detected, frep.replacements, frep.recoveries),
            expect,
            "{group}: {} ladder counters changed",
            variant_name(variant)
        );
        results.push(
            record_fault
                .with_extra("faults_detected", frep.faults_detected as f64)
                .with_extra("replacements", frep.replacements as f64)
                .with_extra("recoveries", frep.recoveries as f64)
                .with_extra("faulted_overhead_x", faulted_mean / off_mean),
        );
    }
}

fn main() {
    let mut results = Vec::new();
    bench_serial(&mut results, 20, 2);
    bench_spmd(&mut results, 20, 2, 2);
    bench_spmd(&mut results, 20, 1, 4);
    finish(&results);
}
