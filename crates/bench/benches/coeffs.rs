//! Coefficient-fitting bench (Table 1 machinery): cost of the
//! least-squares normal-equations fit and of the Chebyshev min-max
//! expansion as m grows. Both must stay microseconds-cheap — the
//! parametrization is a setup cost, amortized over the whole solve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mspcg_core::{least_squares_alphas, minimax_alphas, Weight};
use std::hint::black_box;

fn bench_fits(c: &mut Criterion) {
    let interval = (0.01, 1.0);
    let mut group = c.benchmark_group("coefficient_fits");
    for m in [2usize, 4, 8, 12] {
        group.bench_with_input(BenchmarkId::new("least_squares", m), &m, |b, &m| {
            b.iter(|| {
                black_box(least_squares_alphas(m, black_box(interval), Weight::Uniform).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("minimax", m), &m, |b, &m| {
            b.iter(|| black_box(minimax_alphas(m, black_box(interval)).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fits);
criterion_main!(benches);
