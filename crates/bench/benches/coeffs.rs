//! Coefficient-fitting bench (Table 1 machinery): cost of the
//! least-squares normal-equations fit and of the Chebyshev min-max
//! expansion as m grows. Both must stay microseconds-cheap — the
//! parametrization is a setup cost, amortized over the whole solve.

use mspcg_bench::timing::{bench, finish};
use mspcg_core::{least_squares_alphas, minimax_alphas, Weight};
use std::hint::black_box;

fn main() {
    let interval = (0.01, 1.0);
    let mut results = Vec::new();
    for m in [2usize, 4, 8, 12] {
        results.push(bench(
            "coefficient_fits",
            &format!("least_squares_m{m}"),
            || {
                black_box(least_squares_alphas(m, black_box(interval), Weight::Uniform).unwrap());
            },
        ));
        results.push(bench("coefficient_fits", &format!("minimax_m{m}"), || {
            black_box(minimax_alphas(m, black_box(interval)).unwrap());
        }));
    }
    finish(&results);
}
