//! Classic vs single-reduction (Chronopoulos–Gear) vs pipelined
//! (Ghysels–Vanroose) PCG on the Table-3 FEM family (the paper's
//! plane-stress plates), serial and SPMD.
//!
//! On this repo's single-core container the wall-clock gap between the
//! variants is noise — the win is *synchronization*, so every record
//! carries the counters that prove the schedule instead: `iterations`,
//! `reductions_per_iter` (serial and SPMD; exactly 1 for
//! single-reduction/pipelined, 2 for classic), `barriers_per_iter` (SPMD;
//! pipelined `m·(2C−1)` vs single-reduction `m·(2C−1)+2` vs classic
//! `m·(2C−1)+3`) and, for the pipelined schedule, `splits_per_iter` (one
//! reduction *in flight* per iteration — initiated before the
//! preconditioner + SpMV, consumed after). The counter claims are
//! *asserted* here, not just recorded — a schedule regression fails the
//! bench run.
//!
//! Record results: `cargo bench -p mspcg-bench --bench pcg_variants --
//! --json BENCH_pr5.json`.

use mspcg_bench::experiments::ordered_plate;
use mspcg_bench::timing::{bench, finish, BenchResult};
use mspcg_core::{
    pcg_try_solve_into, MStepSsorPreconditioner, PcgOptions, PcgVariant, PcgWorkspace,
};
use mspcg_parallel::{ParallelMStepPcg, ParallelSolverOptions};
use std::sync::Arc;

fn variant_name(variant: PcgVariant) -> &'static str {
    match variant {
        PcgVariant::SingleReduction => "single_reduction",
        PcgVariant::Pipelined => "pipelined",
        _ => "classic",
    }
}

const VARIANTS: [PcgVariant; 3] = [
    PcgVariant::Classic,
    PcgVariant::SingleReduction,
    PcgVariant::Pipelined,
];

/// Serial solver on one Table-3 plate: time the full solve, then replay
/// once to harvest (and verify) the reduction-phase counters.
fn bench_serial(results: &mut Vec<BenchResult>, a: usize, m: usize) {
    let (_, ord) = ordered_plate(a).expect("plate");
    let n = ord.matrix.rows();
    let matrix = Arc::new(ord.matrix);
    let colors = Arc::new(ord.colors);
    let pre =
        MStepSsorPreconditioner::unparametrized_shared(Arc::clone(&matrix), Arc::clone(&colors), m)
            .expect("preconditioner");
    let mut ws = PcgWorkspace::new(n);
    let mut u = vec![0.0; n];
    for variant in VARIANTS {
        let opts = PcgOptions {
            tol: 1e-8,
            variant,
            ..Default::default()
        };
        let group = format!("pcg_variant_plate{a}_m{m}");
        let mut record = bench(&group, variant_name(variant), || {
            u.fill(0.0);
            pcg_try_solve_into(&matrix, &ord.rhs, &mut u, &pre, &opts, &mut ws).expect("solve");
        });
        u.fill(0.0);
        let rep =
            pcg_try_solve_into(&matrix, &ord.rhs, &mut u, &pre, &opts, &mut ws).expect("solve");
        assert!(rep.converged, "{group} did not converge");
        let iters = rep.iterations as f64;
        let phases_per_iter = rep.stats.reduction_phases as f64 / iters;
        match variant {
            PcgVariant::SingleReduction | PcgVariant::Pipelined => {
                // The acceptance counter: ONE fused reduction phase per
                // iteration (+1 at init, −1 on the converging iteration).
                // A pipelined run that hit the near-convergence fallback
                // carries the classic suffix's extra phases instead.
                if rep.stats.fallbacks == 0 {
                    assert!(
                        rep.stats.reduction_phases >= rep.iterations
                            && rep.stats.reduction_phases <= rep.iterations + 1,
                        "{group}: {} phases over {} iterations",
                        rep.stats.reduction_phases,
                        rep.iterations
                    );
                }
            }
            _ => {
                assert!(
                    rep.stats.reduction_phases >= 2 * rep.iterations - 1,
                    "{group}: classic lost a reduction phase"
                );
            }
        }
        record = record
            .with_extra("iterations", iters)
            .with_extra("reductions_per_iter", phases_per_iter)
            .with_extra(
                "inner_products_per_iter",
                rep.stats.inner_products as f64 / iters,
            )
            .with_extra("fallbacks", rep.stats.fallbacks as f64);
        results.push(record);
    }
}

/// SPMD solver on one Table-3 plate: the instrumented barrier and the
/// replicated-reduction counter expose the schedule even at 1 core.
fn bench_spmd(results: &mut Vec<BenchResult>, a: usize, m: usize, threads: usize) {
    let (_, ord) = ordered_plate(a).expect("plate");
    let c = ord.colors.num_blocks();
    let solver = ParallelMStepPcg::new(&ord.matrix, &ord.colors, vec![1.0; m]).expect("solver");
    let sweep = m * (2 * c - 1);
    for variant in VARIANTS {
        let opts = ParallelSolverOptions {
            threads,
            tol: 1e-8,
            max_iterations: 100_000,
            variant,
            // Pin the exact schedule: the counter assertions below must
            // not absorb audit phases from environment overrides.
            recovery: mspcg_core::RecoveryPolicy::off(),
        };
        let group = format!("spmd_variant_plate{a}_m{m}_t{threads}");
        let mut record = bench(&group, variant_name(variant), || {
            solver.solve(&ord.rhs, &opts).expect("spmd solve");
        });
        let rep = solver.solve(&ord.rhs, &opts).expect("spmd solve");
        let iters = rep.iterations as f64;
        let barriers_per_iter = rep.barrier_crossings as f64 / iters;
        let reductions_per_iter = rep.reduction_phases as f64 / iters;
        // Counter-verified schedules. (Plain CG, m = 0: the classic
        // schedule still pays a z ← r copy phase; the single-reduction
        // schedule reads r directly; the pipelined schedule pays one full
        // barrier for the cross-strip K·w read.)
        match variant {
            PcgVariant::SingleReduction => {
                assert!(
                    rep.barrier_crossings <= sweep + 1 + (rep.iterations - 1) * (sweep + 2) + 1,
                    "{group}: {} crossings over {} iterations",
                    rep.barrier_crossings,
                    rep.iterations
                );
                assert_eq!(
                    rep.reduction_phases, rep.iterations,
                    "{group}: single-reduction must run ONE reduction phase per iteration"
                );
            }
            PcgVariant::Pipelined => {
                // The acceptance schedule, asserted in-run: m·(2C−1) full
                // barriers (m = 0: one) and ONE split crossing — the
                // reduction in flight across the preconditioner + SpMV —
                // per iteration, plus the two-msolve init.
                assert_eq!(rep.variant, PcgVariant::Pipelined, "{group}: fell back");
                let i = rep.iterations;
                let expected_spin = if m == 0 { i + 1 } else { (i + 2) * sweep };
                assert_eq!(
                    rep.barrier_crossings, expected_spin,
                    "{group}: pipelined full-barrier schedule changed"
                );
                assert_eq!(
                    rep.split_crossings,
                    i + 1,
                    "{group}: pipelined must keep ONE reduction in flight per iteration"
                );
                assert_eq!(
                    rep.reduction_phases,
                    i + 1,
                    "{group}: pipelined reduction phases changed"
                );
            }
            _ => {
                let msolve = if m == 0 { 1 } else { sweep };
                assert_eq!(
                    rep.barrier_crossings,
                    msolve + (rep.iterations - 1) * (msolve + 3) + 2,
                    "{group}: classic barrier schedule changed"
                );
            }
        }
        record = record
            .with_extra("iterations", iters)
            .with_extra("barriers_per_iter", barriers_per_iter)
            .with_extra("reductions_per_iter", reductions_per_iter)
            .with_extra("splits_per_iter", rep.split_crossings as f64 / iters)
            .with_extra("colors", c as f64);
        results.push(record);
    }
}

fn main() {
    let mut results = Vec::new();
    // Table-3 FEM family (plane-stress plates), serial solver.
    bench_serial(&mut results, 20, 1);
    bench_serial(&mut results, 20, 3);
    bench_serial(&mut results, 40, 2);
    // SPMD schedule: counters prove the barrier win independent of cores.
    bench_spmd(&mut results, 20, 2, 2);
    bench_spmd(&mut results, 20, 0, 2);
    finish(&results);
}
