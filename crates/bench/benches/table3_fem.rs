//! Table 3 as a *real* threads bench: the `mspcg-parallel` SPMD solver at
//! 1, 2 and 4 workers on a plate large enough for parallelism to pay —
//! the modern analogue of the Finite Element Machine speedup columns.
//! (The simulated-1983 numbers come from the `table3` binary.)

use mspcg_bench::experiments::ordered_plate;
use mspcg_bench::timing::{bench, finish};
use mspcg_parallel::{ParallelMStepPcg, ParallelSolverOptions};
use std::hint::black_box;
use std::sync::Arc;

fn main() {
    let (_, ord) = ordered_plate(48).expect("plate");
    let solver = ParallelMStepPcg::shared(&ord.matrix, Arc::new(ord.colors), vec![1.0, 1.0])
        .expect("solver");
    let mut results = Vec::new();
    for threads in [1usize, 2, 4] {
        let opts = ParallelSolverOptions {
            threads,
            tol: 1e-6,
            max_iterations: 50_000,
            ..Default::default()
        };
        results.push(bench(
            "table3_threaded_speedup",
            &format!("t{threads}"),
            || {
                let rep = solver.solve(black_box(&ord.rhs), &opts).unwrap();
                black_box(rep.iterations);
            },
        ));
    }
    finish(&results);
}
