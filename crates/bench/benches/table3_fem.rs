//! Table 3 as a *real* threads bench: the `mspcg-parallel` SPMD solver at
//! 1, 2 and 4 workers on a plate large enough for parallelism to pay —
//! the modern analogue of the Finite Element Machine speedup columns.
//! (The simulated-1983 numbers come from the `table3` binary.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mspcg_bench::experiments::ordered_plate;
use mspcg_parallel::{ParallelMStepPcg, ParallelSolverOptions};
use std::hint::black_box;

fn bench_threaded_solver(c: &mut Criterion) {
    let (_, ord) = ordered_plate(48).expect("plate");
    let solver = ParallelMStepPcg::new(&ord.matrix, &ord.colors, vec![1.0, 1.0]).expect("solver");
    let mut group = c.benchmark_group("table3_threaded_speedup");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let opts = ParallelSolverOptions {
            threads,
            tol: 1e-6,
            max_iterations: 50_000,
        };
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| {
                let rep = solver.solve(black_box(&ord.rhs), &opts).unwrap();
                black_box(rep.iterations)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_threaded_solver);
criterion_main!(benches);
