//! # mspcg-parallel
//!
//! A **real threaded executor** for the multicolor m-step SSOR PCG — the
//! modern-hardware counterpart of the Finite Element Machine simulation in
//! `mspcg-machine`.
//!
//! The design mirrors Algorithm 3's structure: each worker thread owns a
//! contiguous strip of the color-ordered unknowns (the analogue of a
//! processor's node assignment), every phase of the iteration is separated
//! by a barrier (the analogue of the machine's synchronized communication
//! steps), and the inner products are computed as per-worker partials
//! reduced by worker 0 (the analogue of the sum/max circuit).
//!
//! Because the multicolor ordering guarantees that a row couples only to
//! *other* color blocks, all updates within one color phase write disjoint
//! locations and read only data finalized in earlier phases — the same
//! property that made the method parallel in 1983 makes it data-race free
//! here (see [`shared`] for the exact aliasing contract).

// Indexed `for i in 0..n` loops are deliberate throughout the numeric
// kernels: they address several parallel arrays (CSR structure, split
// points, diagonals) by the same row index, where iterator zips would
// obscure the math. Clippy's needless_range_loop lint fires on exactly
// this pattern, so it is allowed crate-wide.
#![allow(clippy::needless_range_loop)]
pub mod barrier;
pub mod shared;
pub mod solver;

pub use barrier::{SpinBarrier, SplitBarrier};
pub use mspcg_core::recovery::{FaultKind, FaultPlan, FaultTarget, IterationFault, RecoveryPolicy};
pub use mspcg_sparse::PcgVariant;
pub use solver::{ParallelMStepPcg, ParallelSolveReport, ParallelSolverOptions};
