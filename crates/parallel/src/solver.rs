//! SPMD parallel m-step SSOR PCG on real threads.
//!
//! Worker `t` owns a contiguous strip of the color-ordered unknowns and
//! every iteration phase is barrier-separated. ω is fixed at 1, the
//! paper's recommendation for multicolor orderings.
//!
//! ## Fused phase schedule
//!
//! Each reduction is **fused into the phase that produces its operands**
//! (the kernel writes its strip, then immediately forms the strip partial
//! — no extra barrier), and the scalar reductions over the per-worker
//! partials are **replicated**: every worker sums the same partials in
//! the same order, so all workers reach bitwise-identical α, β and
//! stopping decisions without a broadcast phase — the sum/max circuit of
//! the Finite Element Machine, minus the dedicated round trips. The
//! partial banks (`dot`, `change`, `rz` — plus `ps` on the
//! single-reduction schedule) rotate so a fast worker's writes for phase
//! k+1 can never race a slow worker's reads from phase k.
//!
//! Per **classic** iteration (`C` colors, `m` steps):
//!
//! ```text
//! kp ← K·p  ⊕ (p, Kp) partial          1 barrier
//! u += αp; r −= α·Kp ⊕ ‖Δu‖∞ partial   1 barrier   (fused vecops kernel)
//! preconditioner, `w₀ = 0` start fused
//!   into the first color sweep and the
//!   (z, r) partial into the last        m·(2C−1) barriers
//! p ← z + βp                            1 barrier
//! ```
//!
//! i.e. `m·(2C−1) + 3` barriers per iteration, down from the unfused
//! `m·(2C−1) + 9` (separate dot/stop/reduce/fill phases). Results are
//! bit-identical to the unfused schedule: the fused kernels perform the
//! same arithmetic in the same order, only without the barriers.
//!
//! ## Single-reduction schedule
//!
//! The classic floor is its two *serialized* dot products: `(p, Kp)` must
//! close before α can scale the update, and `(z, r)` before β can build
//! the next direction — each pinning one extra barrier. Under
//! [`PcgVariant::SingleReduction`] the Chronopoulos–Gear recurrence
//! removes both waits: `s = Kp` is carried by the recurrence `s ← w + βs`
//! (`w = Kz`), and α/β are reconstructed from the **one** fused reduction
//! phase that rides the `w`-producing SpMV:
//!
//! ```text
//! p ← z + βp; s ← w + βs; u += αp;
//!   r −= αs ⊕ ‖Δu‖∞, (p, s) partials   1 barrier   (one mega-phase)
//! preconditioner (as above)             m·(2C−1) barriers
//! w ← K·z ⊕ (w, z) partial,
//!   (z, r) fused into the last sweep    1 barrier
//! ```
//!
//! i.e. `m·(2C−1) + 2` barriers and **one reduction phase** per iteration
//! (plain CG, `m = 0`: two barriers total, with `z ≡ r`). The recurrence
//! follows a different-but-bounded rounding path, so this schedule is
//! *not* bitwise identical to classic — it is bitwise reproducible within
//! the variant, and on recurrence breakdown (`(p, s) ≤ 0` or a
//! nonpositive reconstructed denominator) [`ParallelMStepPcg::solve`]
//! transparently reruns the solve on the classic schedule. Both barrier
//! and reduction-phase counts are measured, not asserted:
//! [`ParallelSolveReport::barrier_crossings`] /
//! [`ParallelSolveReport::reduction_phases`] come from the instrumented
//! [`SpinBarrier`] and the replicated-reduction counter.
//!
//! ## Pipelined schedule
//!
//! The single-reduction schedule still *blocks* at its one reduction:
//! every worker idles at the w-phase barrier until the partials are
//! replicated. Under [`PcgVariant::Pipelined`] (Ghysels–Vanroose) the
//! recurrence carries two more vectors (`q = M⁻¹s`, `zz = K·q`) and
//! recomputes two auxiliaries (`mv = M⁻¹w`, `nv = K·mv`) so the one
//! reduction reads only vectors finished in the *update* phase — it is
//! **initiated** there ([`SplitBarrier::arrive`]) and **consumed**
//! ([`SplitBarrier::wait`]) only after the preconditioner + SpMV:
//!
//! ```text
//! p ← z + βp; s ← w + βs; q ← mv + βq; zz ← nv + βzz;
//! u += αp; r −= αs; z −= αq; w −= αzz
//!   ⊕ γ′ = (r, z), δ = (w, z), ‖Δu‖∞, (p, s)
//!   partials, arrive()                  0 barriers  (split arrive)
//! mv ← M⁻¹ w                            m·(2C−1) barriers
//! nv ← K·mv, wait()                     0 barriers  (split wait)
//! ```
//!
//! i.e. `m·(2C−1)` full barriers plus **one split crossing** per
//! iteration — *fewer* full barriers than single-reduction, with the
//! reduction latency hidden behind the heaviest phase. The update phase
//! needs no trailing barrier because everything it touches is own-strip;
//! the cross-strip reads (`mv` in the trailing SpMV, the partial banks in
//! the replicated sums) are protected by rotating banks whose next write
//! is always separated from the last read by the following iteration's
//! msolve barriers (for plain CG, `m = 0`: `w` itself rotates and one
//! full barrier per iteration guards the cross-strip `K·w` read). The
//! price of the overlap is one speculative heavy phase on the converging
//! iteration and faster recurrence drift, guarded exactly like the
//! single-reduction schedule (every nonpositive scalar → classic rerun).
//! [`ParallelSolveReport::split_crossings`] measures the in-flight
//! reductions; the exact-formula counter test pins the whole schedule.
//!
//! ## s-step schedule (communication avoidance)
//!
//! The recurrence schedules above still pay **one reduction phase per
//! iteration**. Under [`PcgVariant::SStep`] the Chronopoulos–Gear
//! s-step formulation amortizes that floor: each outer step builds an
//! `s`-dimensional Krylov block with the Chebyshev three-term recurrence
//! on the cached Lanczos interval (near-orthogonal basis, so the block
//! Gram matrix stays well-conditioned where a monomial basis collapses),
//! pays **ONE fused Gram reduction phase for all `s` iterations** — the
//! partials of `VᵀAV`, `AP'ᵀV`, `Vᵀr`, `P'ᵀr` and `(r, r)` all ride the
//! block's final SpMV phase — then finishes with replicated small dense
//! work (coupling solve against the previous block, rank-revealing
//! Cholesky) and `s` own-strip update sub-steps in one mega-phase:
//!
//! ```text
//! v₁ ← M⁻¹r; per j = 2…s: SpMV + M⁻¹ + Chebyshev    s·m(2C−1) + 2(s−1) barriers
//! A·v_s ← K·v_s ⊕ ALL Gram partials                  1 barrier   (THE reduction)
//! replicated dense: B, W = PᵀKP, Cholesky, aⱼ        0 barriers  (unanimous)
//! P ← V + P'B; AP ← AV + AP'B; s sub-steps
//!   u += aⱼpⱼ, r −= aⱼ·apⱼ ⊕ per-sub-step ‖Δu‖∞     1 barrier   (one mega-phase)
//! ```
//!
//! i.e. `s·m(2C−1) + 2s` barriers and one reduction phase per `s`
//! iterations (polynomial msolve: `s(k+2)`; plain CG aliases `v₁ ≡ r`
//! and fuses the Chebyshev step into the SpMV phase: `s + 1`). The
//! stopping scan replays the classic per-iteration `|aⱼ|·‖pⱼ‖∞` test
//! sub-step by sub-step off the replicated change bank — converging at
//! iteration granularity, with the already-applied trailing sub-steps
//! rolled back own-strip. Basis breakdown (a rank-zero Gram factor or
//! any non-finite reduced scalar) steps down the ladder onto the
//! pipelined rung; a rank-*truncated* factor is the endgame (Krylov
//! grade < s), handled in place by running only the factored leading
//! sub-steps and restarting the recurrence.
//!
//! ## Polynomial msolve (barrier-free preconditioning)
//!
//! Every schedule above pays `m·(2C−1)` color-sweep barriers per m-step
//! SSOR application — the dominant synchronization term for realistic
//! color counts. [`ParallelMStepPcg::poly`] swaps the sweeps for the
//! degree-`k` **polynomial preconditioner** of `mspcg_core::poly`
//! (Newton or Chebyshev on the Lanczos-estimated spectrum of the
//! Jacobi-scaled operator): `z = p(D⁻¹K)·D⁻¹r` evaluated as `k` fused
//! SpMV phases, **one full barrier each and zero color sweeps** — the
//! msolve term drops from `m·(2C−1)` to `k` on every schedule. The
//! recurrence seed is folded into the first SpMV (accumulated on the fly
//! from the msolve input), the `(z, r)` partial and `p⁰` copy into the
//! last, and the iterate banks alternate between the caller's vector and
//! one scratch bank so a phase's cross-strip SpMV reads never race the
//! next phase's writes. The exact-formula counter test pins the
//! resulting schedules: per iteration, classic `k + 3` barriers,
//! single-reduction `k + 2`, pipelined `k + 1` (the `+1` is the barrier
//! the cross-strip SpMV input needs where the SSOR sweeps read own-strip
//! only) with the one split crossing unchanged.
//! [`ParallelMStepPcg::auto`] picks between sweeps and polynomial via
//! [`PrecondKind::resolve`] (the validated `MSPCG_PRECOND` override or
//! the barrier-cost heuristic).

use crate::barrier::{SpinBarrier, SplitBarrier};
use crate::shared::{slot, ScalarBank, SharedVec};
use mspcg_core::pcg::{
    small_cholesky_factor, small_cholesky_solve, SSTEP_SPECTRUM_SEED, SSTEP_SPECTRUM_STEPS,
};
use mspcg_core::poly::{raw_jacobi_spectrum, safeguard_jacobi_interval};
use mspcg_core::recovery::{
    audit_due, diverged, perturb, replacement_bound, FaultKind, FaultPlan, FaultTarget,
    RecoveryPolicy,
};
use mspcg_core::PolySchedule;
use mspcg_sparse::lanczos::{lanczos_extremes, SpectralInterval};
use mspcg_sparse::{vecops, Partition, PcgVariant, PolyKind, PrecondKind, SparseError, SparseOp};
use std::sync::{Arc, OnceLock};

/// Options for the threaded solver.
#[derive(Debug, Clone, Copy)]
pub struct ParallelSolverOptions {
    /// Worker count (clamped to the problem size; 0 = use all available
    /// cores, capped at 8).
    pub threads: usize,
    /// Stopping tolerance on `‖u^{k+1} − uᵏ‖∞` (the paper's test).
    pub tol: f64,
    /// Iteration budget.
    pub max_iterations: usize,
    /// Iteration variant. [`PcgVariant::Auto`] (the default) resolves the
    /// validated `MSPCG_PCG_VARIANT` environment override and falls back
    /// to the classic schedule.
    pub variant: PcgVariant,
    /// Residual-audit / replacement / recovery-ladder policy. Auditing is
    /// resolved **once** from the requested variant and tolerance, so a
    /// ladder rerun on a lower rung inherits the decision. Use
    /// [`RecoveryPolicy::off`] to pin the exact barrier schedule against
    /// environment overrides (counter tests, benches).
    pub recovery: RecoveryPolicy,
}

impl Default for ParallelSolverOptions {
    fn default() -> Self {
        ParallelSolverOptions {
            threads: 0,
            tol: 1e-6,
            max_iterations: 50_000,
            variant: PcgVariant::Auto,
            recovery: RecoveryPolicy::default(),
        }
    }
}

/// Outcome of a threaded solve.
#[derive(Debug, Clone)]
pub struct ParallelSolveReport {
    /// Solution in the color-ordered index space.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Final `‖Δu‖∞`.
    pub final_change: f64,
    /// Worker threads actually used.
    pub threads: usize,
    /// The schedule that produced this result (never
    /// [`PcgVariant::Auto`]; classic after a single-reduction breakdown
    /// fallback).
    pub variant: PcgVariant,
    /// Total [`SpinBarrier`] crossings of the run (init + all
    /// iterations), measured by the instrumented barrier: the
    /// synchronization cost the `m·(2C−1) + k` model predicts.
    pub barrier_crossings: usize,
    /// Replicated dot-product reduction phases feeding α/β: two per
    /// classic iteration, one per single-reduction or pipelined iteration
    /// (plus one at init), and ONE per `s` iterations on the s-step
    /// schedule (the fused block Gram phase; no init phase). The ‖Δu‖∞
    /// stopping max is the paper's flag network and is not counted.
    pub reduction_phases: usize,
    /// [`SplitBarrier`] crossings of the run: one per reduction **in
    /// flight** on the pipelined schedule (arrive before the
    /// preconditioner + SpMV phase, wait after it). Zero on the classic
    /// and single-reduction schedules, whose reductions block at a
    /// [`SpinBarrier`] instead.
    pub split_crossings: usize,
    /// True-residual audit phases performed, accumulated across ladder
    /// reruns (each audit is one fused `f − K·u` phase: +1 barrier, no
    /// reduction phase — the deviation sum feeds no CG scalar).
    pub audits: usize,
    /// Residual replacements plus in-place non-finite recoveries,
    /// accumulated across reruns. Only the classic schedule replaces (the
    /// recurrence schedules have no same-rung warm restart — they step
    /// down the ladder instead).
    pub replacements: usize,
    /// Ladder step-downs this solve performed (SStep → Pipelined →
    /// SingleReduction → Classic; each is a from-scratch rerun on the
    /// lower rung).
    pub recoveries: usize,
    /// Non-finite reduction scalars detected, accumulated across reruns.
    pub faults_detected: usize,
}

/// Status codes passed from worker 0 to the main thread. The zeroed bank
/// (`0.0`) means no outcome was recorded — reachable only with
/// `max_iterations == 0`, which reports as converged-at-the-start.
mod status {
    pub const CONVERGED: f64 = 1.0;
    pub const INDEFINITE_K: f64 = 2.0;
    pub const INDEFINITE_M: f64 = 3.0;
    pub const BUDGET: f64 = 4.0;
    /// Recurrence breakdown or detected corruption on a recurrence
    /// schedule: the caller must rerun on the next rung down.
    pub const FALLBACK: f64 = 5.0;
    /// A non-finite reduction scalar survived the classic schedule's
    /// replacement budget: surfaces as `SparseError::NonFinite`.
    pub const NONFINITE: f64 = 6.0;
}

/// Internal outcome of one pinned-schedule run.
enum SolveOutcome {
    Report(ParallelSolveReport),
    /// Breakdown or detected corruption on a recurrence schedule: rerun
    /// one rung down, carrying the failed run's counters.
    Fallback {
        audits: usize,
        faults_detected: usize,
    },
}

/// The audit decision of one solve, resolved once on the main thread and
/// replicated read-only into every worker.
struct ParAudit {
    enabled: bool,
    period: usize,
    /// Squared replacement bound: replace / fall back when
    /// `Σ((f − Ku)ᵢ − rᵢ)² > bound²` (NaN deviations fail the `<=`).
    bound2: f64,
    max_replacements: usize,
}

/// The shared-vector bundle of the pipelined schedule (the worker would
/// otherwise take two dozen parameters). Bank pairs rotate by iteration
/// parity — see [`ParallelMStepPcg::worker_pipelined`] for the aliasing
/// argument.
struct PipelinedVecs<'a> {
    u: &'a SharedVec,
    r: &'a SharedVec,
    /// Preconditioned-residual carry (`m ≥ 1`; `z ≡ r` for plain CG).
    z: &'a SharedVec,
    p: &'a SharedVec,
    /// `s = Kp` carry (the workspace's `kp` slot).
    s: &'a SharedVec,
    /// `q = M⁻¹s` carry (`m ≥ 1`; `q ≡ s` for plain CG).
    q: &'a SharedVec,
    /// `K·q` carry.
    zz: &'a SharedVec,
    /// `nv = K·mv` auxiliary (read own-strip only — single bank).
    nv: &'a SharedVec,
    /// `w = Kz` carry; bank-rotated for `m = 0` (where the `K·w` SpMV
    /// reads it cross-strip), single bank `[0]` otherwise.
    w: [&'a SharedVec; 2],
    /// `mv = M⁻¹w` auxiliary, bank-rotated (`m ≥ 1`): the trailing SpMV
    /// reads it cross-strip.
    mv: [&'a SharedVec; 2],
    /// SSOR half-sum cache (own rows only).
    y: &'a SharedVec,
    /// Parity-rotated reduction partial banks: γ′ = (r, z), δ = (w, z),
    /// the ‖Δu‖∞ stopping partial and the (p, s) guard.
    gamma: [&'a SharedVec; 2],
    delta: [&'a SharedVec; 2],
    change: [&'a SharedVec; 2],
    guard: [&'a SharedVec; 2],
}

/// The shared storage of the s-step schedule (zero-length elsewhere):
/// the basis and direction column blocks plus the two partial banks.
/// Both banks are single (not parity-rotated): the Gram bank's readers
/// (the replicated reduction right after the block's final SpMV barrier)
/// and its next writer (the *next* block's final SpMV phase) are always
/// separated by at least the update barrier, and the change bank's
/// readers/writers by at least the Gram barrier — the one-barrier
/// separation the rotating banks exist to provide comes free from the
/// block structure.
struct SStepVecs {
    /// Chebyshev basis columns `v₁ … v_s` (for plain CG, `v₁ ≡ r` and
    /// slot 0 is unused).
    v: Vec<SharedVec>,
    /// `A·V` columns.
    av: Vec<SharedVec>,
    /// Direction block banks: `(pa, apa)`/`(pb, apb)` alternate between
    /// the "current" and "previous" roles each outer step.
    pa: Vec<SharedVec>,
    apa: Vec<SharedVec>,
    pb: Vec<SharedVec>,
    apb: Vec<SharedVec>,
    /// Basis temp `M⁻¹(K·vⱼ)` (zero-length for plain CG, where `M = I`
    /// makes it alias the freshly computed `A·vⱼ`).
    tv: SharedVec,
    /// Fused Gram partial bank, `threads × G` scalars
    /// (G = [`sstep_gram_len`]).
    gram: SharedVec,
    /// Per-sub-step displacement partial bank, `threads × s`.
    change: SharedVec,
}

/// Scalars in one worker's row of the fused Gram bank: the packed lower
/// triangle of `G1 = VᵀAV` (`s(s+1)/2`), the full `G2 = AP'ᵀV` (`s²`),
/// `gv = Vᵀr` and `gp = P'ᵀr` (`s` each), and `(r, r)`.
#[inline]
fn sstep_gram_len(s: usize) -> usize {
    s * (s + 1) / 2 + s * s + 2 * s + 1
}

/// The threaded m-step SSOR PCG solver (ω = 1), constructible from a
/// color-blocked operator in **any** [`SparseOp`] format.
///
/// Both the SSOR color sweeps (half-sums split at the own-color block) and
/// the strip `K·p` products need *indexed row structure*, which no
/// SpMV-oriented format is required to expose — so construction extracts
/// one private split-CSR sweep table through [`SparseOp::visit_row`] and
/// every iteration phase streams that single table (the source operator
/// is not retained: per-worker strips are tiny, so a format's slice/block
/// kernels could not be engaged anyway, and holding it would double the
/// matrix memory). The extraction walks rows in ascending column order,
/// so two formats storing the same matrix produce identical tables and
/// therefore **bitwise-identical** solver runs.
pub struct ParallelMStepPcg {
    colors: Arc<Partition>,
    alphas: Vec<f64>,
    inv_diag: Vec<f64>,
    /// Extracted sweep structure (ascending columns per row).
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
    /// Per row: sweep-table index of the first entry with column ≥
    /// own-block start / end.
    lo_split: Vec<usize>,
    hi_split: Vec<usize>,
    /// Polynomial msolve configuration (barrier-free alternative to the
    /// SSOR sweeps; mutually exclusive with nonempty `alphas`).
    poly: Option<ParPoly>,
    /// The one Lanczos interval the s-step basis recurrence reuses across
    /// every solve on this instance — the SPMD half of the
    /// one-estimate-per-operator cache (the polynomial configuration
    /// stores its interval in [`ParPoly`] instead and never fills this).
    sstep_interval: OnceLock<SpectralInterval>,
}

/// The polynomial msolve's precomputed schedule, replicated read-only
/// into every worker — the scalars of the serial
/// [`mspcg_core::PolynomialPreconditioner`] over the same operator.
struct ParPoly {
    kind: PolyKind,
    schedule: PolySchedule,
    /// The (safeguarded) Lanczos interval the schedule was built on,
    /// kept so the s-step basis reuses it across the poly-precond ↔
    /// s-step-basis boundary instead of re-running Lanczos.
    interval: SpectralInterval,
}

/// Shared scratch of the polynomial msolve (zero-length when the
/// configuration runs SSOR sweeps or plain CG): the difference carry `d`
/// and the second iterate bank `zb` of the two-bank rotation.
struct PolyScratch<'a> {
    d: &'a SharedVec,
    zb: &'a SharedVec,
}

impl ParallelMStepPcg {
    /// Build from a color-blocked operator in any [`SparseOp`] format.
    /// `alphas` empty means plain CG (no preconditioner); otherwise
    /// `alphas[i]` multiplies `Gⁱ P⁻¹` (all-ones = unparametrized m-step).
    ///
    /// # Errors
    /// Same validation as the sequential `MulticolorSsor` (square matrix,
    /// diagonal color blocks, positive diagonal).
    pub fn new<A: SparseOp>(
        matrix: &A,
        colors: &Partition,
        alphas: Vec<f64>,
    ) -> Result<Self, SparseError> {
        Self::shared(matrix, Arc::new(colors.clone()), alphas)
    }

    /// [`ParallelMStepPcg::new`] with a shared partition handle (no
    /// partition copy; the operator is only read during construction).
    ///
    /// # Errors
    /// Same classes as [`ParallelMStepPcg::new`].
    pub fn shared<A: SparseOp>(
        matrix: &A,
        colors: Arc<Partition>,
        alphas: Vec<f64>,
    ) -> Result<Self, SparseError> {
        let (rows, cols) = matrix.dims();
        if rows != cols {
            return Err(SparseError::NotSquare { rows, cols });
        }
        if colors.total_len() != rows {
            return Err(SparseError::ShapeMismatch {
                left: (rows, cols),
                right: (colors.total_len(), 1),
            });
        }
        let n = rows;
        // Extract the sweep table: per-row (col, value) pairs in ascending
        // column order — the order every SparseOp streams.
        let mut row_ptr = vec![0usize; n + 1];
        let mut col_idx: Vec<u32> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        for i in 0..n {
            matrix.visit_row(i, &mut |j, v| {
                col_idx.push(j as u32);
                values.push(v);
            });
            row_ptr[i + 1] = col_idx.len();
        }
        let mut inv_diag = vec![0.0; n];
        let mut lo_split = vec![0usize; n];
        let mut hi_split = vec![0usize; n];
        for c in 0..colors.num_blocks() {
            let blk = colors.range(c);
            for i in blk.clone() {
                let row_lo = row_ptr[i];
                let row_hi = row_ptr[i + 1];
                let cols_slice = &col_idx[row_lo..row_hi];
                let lo = row_lo + cols_slice.partition_point(|&j| (j as usize) < blk.start);
                let hi = row_lo + cols_slice.partition_point(|&j| (j as usize) < blk.end);
                match hi - lo {
                    1 if col_idx[lo] as usize == i => {
                        let d = values[lo];
                        if d <= 0.0 || !d.is_finite() {
                            return Err(SparseError::ZeroDiagonal { row: i });
                        }
                        inv_diag[i] = 1.0 / d;
                    }
                    0 => return Err(SparseError::ZeroDiagonal { row: i }),
                    _ => {
                        return Err(SparseError::InvalidPartition {
                            reason: format!("off-diagonal coupling inside color block at row {i}"),
                        })
                    }
                }
                lo_split[i] = lo;
                hi_split[i] = hi;
            }
        }
        Ok(ParallelMStepPcg {
            colors,
            alphas,
            inv_diag,
            row_ptr,
            col_idx,
            values,
            lo_split,
            hi_split,
            poly: None,
            sstep_interval: OnceLock::new(),
        })
    }

    /// Build the **barrier-free polynomial** configuration: the plain-CG
    /// phase structure with a degree-`degree` polynomial msolve on the
    /// Lanczos-estimated spectrum of the Jacobi-scaled operator — the
    /// SPMD counterpart of [`mspcg_core::PolynomialPreconditioner`],
    /// sharing its spectrum recipe and schedule scalars (and therefore
    /// its cached-interval determinism: two instances over the same
    /// operator replay bitwise).
    ///
    /// # Errors
    /// The construction errors of [`ParallelMStepPcg::new`], plus the
    /// spectrum-estimation and schedule-validation errors of
    /// [`mspcg_core::PolySchedule`] (zero degree, nonpositive interval).
    pub fn poly<A: SparseOp>(
        matrix: &A,
        colors: &Partition,
        kind: PolyKind,
        degree: usize,
    ) -> Result<Self, SparseError> {
        let mut base = Self::shared(matrix, Arc::new(colors.clone()), Vec::new())?;
        let interval = mspcg_core::poly::jacobi_spectrum(matrix, &base.inv_diag)?;
        let schedule = PolySchedule::new(kind, interval.min, interval.max, degree)?;
        base.poly = Some(ParPoly {
            kind,
            schedule,
            interval,
        });
        Ok(base)
    }

    /// Resolve `selection` — the validated `MSPCG_PRECOND` override for
    /// [`PrecondKind::Auto`], else the barrier-cost heuristic of
    /// [`PrecondKind::resolve`] — and build the chosen SPMD
    /// configuration: the SPMD counterpart of
    /// [`mspcg_core::auto_preconditioner`], including its degenerate-
    /// spectrum revision: a *heuristic* polynomial pick whose RAW Lanczos
    /// estimate collapses to a point (λmin ≈ λmax) buys nothing over the
    /// sweeps the heuristic rejected on barrier cost, so it falls back to
    /// m-step SSOR; a pinned polynomial stays pinned.
    ///
    /// # Errors
    /// The chosen constructor's errors.
    pub fn auto<A: SparseOp>(
        matrix: &A,
        colors: &Partition,
        m_default: usize,
        selection: PrecondKind,
    ) -> Result<Self, SparseError> {
        let heuristic =
            selection == PrecondKind::Auto && mspcg_sparse::tuning::forced_precond().is_none();
        match selection.resolve(colors.num_blocks(), m_default) {
            PrecondKind::Auto => unreachable!("resolve never returns Auto"),
            PrecondKind::MStepSsor { m } => Self::new(matrix, colors, vec![1.0; m]),
            PrecondKind::Poly { kind, degree } => {
                // Estimate the spectrum ONCE before committing (the single
                // Lanczos run then serves the schedule AND the s-step
                // basis through `ParPoly::interval`).
                let mut base = Self::shared(matrix, Arc::new(colors.clone()), Vec::new())?;
                let raw = raw_jacobi_spectrum(matrix, &base.inv_diag)?;
                if heuristic && raw.is_degenerate() {
                    return Self::new(matrix, colors, vec![1.0; m_default.max(1)]);
                }
                let interval = safeguard_jacobi_interval(raw);
                let schedule = PolySchedule::new(kind, interval.min, interval.max, degree)?;
                base.poly = Some(ParPoly {
                    kind,
                    schedule,
                    interval,
                });
                Ok(base)
            }
        }
    }

    /// The preconditioner this instance applies — never
    /// [`PrecondKind::Auto`]; `MStepSsor { m: 0 }` is plain CG.
    pub fn precond(&self) -> PrecondKind {
        match &self.poly {
            Some(p) => PrecondKind::Poly {
                kind: p.kind,
                degree: p.schedule.degree(),
            },
            None => PrecondKind::MStepSsor {
                m: self.alphas.len(),
            },
        }
    }

    /// Number of preconditioner steps (0 = plain CG).
    pub fn m(&self) -> usize {
        self.alphas.len()
    }

    /// Whether this configuration runs with **no** preconditioner phase
    /// at all (plain CG): no SSOR coefficients and no polynomial.
    fn no_msolve(&self) -> bool {
        self.alphas.is_empty() && self.poly.is_none()
    }

    /// System dimension.
    #[inline]
    fn dim(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Serial SpMV over the worker's strip, off the extracted sweep table
    /// (same per-row ascending-column order as every `SparseOp` kernel).
    #[inline]
    fn strip_spmv(&self, x: &[f64], y: &mut [f64], rows: std::ops::Range<usize>) {
        for (k, i) in rows.enumerate() {
            let mut acc = 0.0;
            for j in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[j] * x[self.col_idx[j] as usize];
            }
            y[k] = acc;
        }
    }

    fn resolve_threads(&self, requested: usize) -> usize {
        let hw = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let t = if requested == 0 { hw.min(8) } else { requested };
        t.clamp(1, self.dim().max(1))
    }

    /// Solve `K u = f` from the zero initial guess.
    ///
    /// [`ParallelSolverOptions::variant`] selects the schedule; a
    /// recurrence run that hits breakdown or detected corruption is rerun
    /// one **ladder rung** down (SStep → Pipelined → SingleReduction →
    /// Classic)
    /// transparently, counting each step in
    /// [`ParallelSolveReport::recoveries`] (breakdown is decided by
    /// replicated scalars, so every worker — and every rerun — takes the
    /// branch deterministically). When [`ParallelSolverOptions::recovery`]
    /// resolves auditing on, every `audit_period` iterations a fused
    /// `f − K·u` phase compares the true residual against the recurrence
    /// carry; divergence beyond the replacement bound replaces the carry
    /// (classic) or steps down the ladder (recurrence schedules).
    ///
    /// # Errors
    /// [`SparseError::NotPositiveDefinite`] on breakdown,
    /// [`SparseError::DidNotConverge`] on budget exhaustion,
    /// [`SparseError::NonFinite`] when a non-finite reduction scalar
    /// outlives the replacement budget (or for a NaN/Inf right-hand
    /// side), [`SparseError::InvalidTolerance`] for a nonpositive or
    /// non-finite tolerance, shape errors on bad input.
    pub fn solve(
        &self,
        f: &[f64],
        opts: &ParallelSolverOptions,
    ) -> Result<ParallelSolveReport, SparseError> {
        self.solve_impl(f, opts, None)
    }

    /// [`ParallelMStepPcg::solve`] under an iteration-indexed
    /// [`FaultPlan`]: at each planned `(target, iteration)` the worker
    /// owning `index` perturbs its freshly computed kernel output before
    /// the fused partials are formed — deterministic at every thread
    /// count. The plan is consulted per rung rerun (a persistent fault
    /// re-fires on each rung), so the returned report proves the full
    /// ladder path.
    ///
    /// # Errors
    /// Same classes as [`ParallelMStepPcg::solve`].
    pub fn solve_with_faults(
        &self,
        f: &[f64],
        opts: &ParallelSolverOptions,
        plan: &FaultPlan,
    ) -> Result<ParallelSolveReport, SparseError> {
        self.solve_impl(f, opts, Some(plan))
    }

    fn solve_impl(
        &self,
        f: &[f64],
        opts: &ParallelSolverOptions,
        plan: Option<&FaultPlan>,
    ) -> Result<ParallelSolveReport, SparseError> {
        if !(opts.tol.is_finite() && opts.tol > 0.0) {
            return Err(SparseError::InvalidTolerance { value: opts.tol });
        }
        if f.iter().any(|v| !v.is_finite()) {
            return Err(SparseError::NonFinite {
                phase: "rhs",
                iteration: 0,
            });
        }
        let pinned = opts.variant.resolve();
        // Audit enablement is resolved once from the *requested* variant,
        // so the classic rung of a ladder rerun inherits the decision.
        let f_norm = f.iter().map(|v| v * v).sum::<f64>().sqrt();
        let audit = ParAudit {
            enabled: opts.recovery.audit_enabled(pinned, opts.tol),
            period: opts.recovery.period(),
            bound2: {
                let b = replacement_bound(opts.tol, f_norm);
                b * b
            },
            max_replacements: opts.recovery.max_replacements,
        };
        let mut rung = match pinned {
            PcgVariant::SingleReduction | PcgVariant::Pipelined | PcgVariant::SStep { .. } => {
                pinned
            }
            _ => PcgVariant::Classic,
        };
        let mut recoveries = 0usize;
        let mut acc_audits = 0usize;
        let mut acc_faults = 0usize;
        loop {
            match self.solve_variant(f, opts, rung, &audit, plan)? {
                SolveOutcome::Report(mut report) => {
                    report.audits += acc_audits;
                    report.faults_detected += acc_faults;
                    report.recoveries = recoveries;
                    return Ok(report);
                }
                SolveOutcome::Fallback {
                    audits,
                    faults_detected,
                } => {
                    acc_audits += audits;
                    acc_faults += faults_detected;
                    recoveries += 1;
                    rung = match rung {
                        PcgVariant::SStep { .. } => PcgVariant::Pipelined,
                        PcgVariant::Pipelined => PcgVariant::SingleReduction,
                        PcgVariant::SingleReduction => PcgVariant::Classic,
                        // The classic schedule has no fallback exit.
                        _ => unreachable!("classic schedule fell back"),
                    };
                }
            }
        }
    }

    /// One solve on one pinned schedule.
    fn solve_variant(
        &self,
        f: &[f64],
        opts: &ParallelSolverOptions,
        variant: PcgVariant,
        audit: &ParAudit,
        plan: Option<&FaultPlan>,
    ) -> Result<SolveOutcome, SparseError> {
        let n = self.dim();
        if f.len() != n {
            return Err(SparseError::ShapeMismatch {
                left: (n, n),
                right: (f.len(), 1),
            });
        }
        let single_reduction = variant == PcgVariant::SingleReduction;
        let pipelined = variant == PcgVariant::Pipelined;
        let sstep_s = match variant {
            PcgVariant::SStep { s } => s,
            _ => 0,
        };
        let m_zero = self.no_msolve();
        let threads = self.resolve_threads(opts.threads);

        // The s-step basis interval is resolved (and cached) on the main
        // thread before any worker spawns: a failed estimate is a
        // detected setup fault, not a solve-fatal error — the ladder
        // steps down onto the Pipelined rung exactly as for an in-loop
        // breakdown.
        let sstep_interval = if sstep_s > 0 {
            match self.sstep_basis_interval() {
                Ok(interval) => Some(interval),
                Err(_) => {
                    return Ok(SolveOutcome::Fallback {
                        audits: 0,
                        faults_detected: 1,
                    })
                }
            }
        } else {
            None
        };

        // Contiguous ownership strips.
        let strips: Vec<std::ops::Range<usize>> = {
            let base = n / threads;
            let extra = n % threads;
            let mut out = Vec::with_capacity(threads);
            let mut start = 0usize;
            for t in 0..threads {
                let len = base + usize::from(t < extra);
                out.push(start..start + len);
                start += len;
            }
            out
        };

        let u = SharedVec::zeros(n);
        let r = SharedVec::from_vec(f.to_vec());
        let z = SharedVec::zeros(n);
        let p = SharedVec::zeros(n);
        let kp = SharedVec::zeros(n);
        let y = SharedVec::zeros(n);
        // The `w = Kz` carry of the single-reduction and pipelined
        // recurrences.
        let w = SharedVec::zeros(if single_reduction || pipelined { n } else { 0 });
        // Pipelined extras: the `q = M⁻¹s` / `K·q` carries, the `mv`/`nv`
        // auxiliaries, and the second banks of the parity rotation (`mv`
        // rotates for m ≥ 1, `w` rotates for plain CG — see
        // `worker_pipelined`). Zero-length whenever unused.
        let q = SharedVec::zeros(if pipelined && !m_zero { n } else { 0 });
        let zz = SharedVec::zeros(if pipelined { n } else { 0 });
        let nv = SharedVec::zeros(if pipelined { n } else { 0 });
        let mv0 = SharedVec::zeros(if pipelined && !m_zero { n } else { 0 });
        let mv1 = SharedVec::zeros(if pipelined && !m_zero { n } else { 0 });
        let w1 = SharedVec::zeros(if pipelined && m_zero { n } else { 0 });
        // Polynomial msolve scratch: the difference carry `d` (own-strip
        // only) and the second iterate bank `zb` of the two-bank rotation
        // (read cross-strip by the chained SpMVs). Zero-length for the
        // sweep and plain-CG configurations.
        let poly_d = SharedVec::zeros(if self.poly.is_some() { n } else { 0 });
        let poly_zb = SharedVec::zeros(if self.poly.is_some() { n } else { 0 });
        // s-step block storage: six s-column bundles (basis V, A·V and the
        // parity-double-buffered direction blocks P/AP), the basis temp,
        // the one fused Gram partial bank (threads × G scalars, G =
        // s(s+1)/2 + s² + 2s + 1) and the per-sub-step displacement bank
        // (threads × s). All zero-length off the s-step schedule; the
        // freshly zeroed P/AP banks are what makes the first block's Gram
        // sweep over the "previous" parity deterministic.
        let sstep_cols =
            |cnt: usize| -> Vec<SharedVec> { (0..cnt).map(|_| SharedVec::zeros(n)).collect() };
        let sv = SStepVecs {
            v: sstep_cols(sstep_s),
            av: sstep_cols(sstep_s),
            pa: sstep_cols(sstep_s),
            apa: sstep_cols(sstep_s),
            pb: sstep_cols(sstep_s),
            apb: sstep_cols(sstep_s),
            tv: SharedVec::zeros(if sstep_s > 0 && !m_zero { n } else { 0 }),
            gram: SharedVec::zeros(if sstep_s > 0 {
                threads * sstep_gram_len(sstep_s)
            } else {
                0
            }),
            change: SharedVec::zeros(threads * sstep_s),
        };
        // Rotating partial banks: a phase's partial writes must never
        // alias a straggler's replicated-reduction reads of the previous
        // bank (at least one barrier always separates a bank's readers
        // from its next writer). The pipelined schedule rotates dedicated
        // bank *pairs* by iteration parity instead.
        let dot_partials = SharedVec::zeros(threads);
        let change_partials = SharedVec::zeros(threads);
        let rz_partials = SharedVec::zeros(threads);
        let ps_partials = SharedVec::zeros(if single_reduction { threads } else { 0 });
        let plen = if pipelined { threads } else { 0 };
        let pl_gamma = [SharedVec::zeros(plen), SharedVec::zeros(plen)];
        let pl_delta = [SharedVec::zeros(plen), SharedVec::zeros(plen)];
        let pl_change = [SharedVec::zeros(plen), SharedVec::zeros(plen)];
        let pl_guard = [SharedVec::zeros(plen), SharedVec::zeros(plen)];
        let pl = PipelinedVecs {
            u: &u,
            r: &r,
            z: &z,
            p: &p,
            s: &kp,
            q: &q,
            zz: &zz,
            nv: &nv,
            w: [&w, &w1],
            mv: [&mv0, &mv1],
            y: &y,
            gamma: [&pl_gamma[0], &pl_gamma[1]],
            delta: [&pl_delta[0], &pl_delta[1]],
            change: [&pl_change[0], &pl_change[1]],
            guard: [&pl_guard[0], &pl_guard[1]],
        };
        let bank = ScalarBank::new();
        let barrier = SpinBarrier::new(threads);
        let split = SplitBarrier::new(threads);
        // Audit scratch: the true-residual vector and the deviation
        // partial bank, allocated only when the policy resolved auditing
        // on (their phases never run otherwise).
        let aud = SharedVec::zeros(if audit.enabled { n } else { 0 });
        let dev_partials = SharedVec::zeros(if audit.enabled { threads } else { 0 });
        // [iterations, final_change, reduction_phases, audits,
        //  replacements, faults_detected]
        let iters_out = SharedVec::zeros(6);

        let pscr = PolyScratch {
            d: &poly_d,
            zb: &poly_zb,
        };
        std::thread::scope(|s| {
            for t in 0..threads {
                let strip = strips[t].clone();
                let (u, r, z, p, kp, y, w, bank, barrier, iters_out) =
                    (&u, &r, &z, &p, &kp, &y, &w, &bank, &barrier, &iters_out);
                let (dot_partials, change_partials, rz_partials, ps_partials) =
                    (&dot_partials, &change_partials, &rz_partials, &ps_partials);
                let (pl, split, pscr, sv) = (&pl, &split, &pscr, &sv);
                let (aud, dev_partials) = (&aud, &dev_partials);
                let this = &*self;
                // `serialized` pins the shared kernels to this worker:
                // each strip is small by construction, so nested pool
                // launches would only add contention.
                s.spawn(move || {
                    mspcg_sparse::par::serialized(|| {
                        if let Some(interval) = sstep_interval {
                            this.worker_sstep(
                                t,
                                strip,
                                sstep_s,
                                interval,
                                sv,
                                u,
                                r,
                                y,
                                pscr,
                                f,
                                aud,
                                dev_partials,
                                audit,
                                plan,
                                bank,
                                barrier,
                                iters_out,
                                opts,
                            );
                        } else if pipelined {
                            this.worker_pipelined(
                                t,
                                strip,
                                pl,
                                pscr,
                                f,
                                aud,
                                dev_partials,
                                audit,
                                plan,
                                bank,
                                barrier,
                                split,
                                iters_out,
                                opts,
                            );
                        } else if single_reduction {
                            this.worker_single_reduction(
                                t,
                                strip,
                                u,
                                r,
                                z,
                                p,
                                kp,
                                y,
                                w,
                                pscr,
                                dot_partials,
                                change_partials,
                                rz_partials,
                                ps_partials,
                                f,
                                aud,
                                dev_partials,
                                audit,
                                plan,
                                bank,
                                barrier,
                                iters_out,
                                opts,
                            );
                        } else {
                            this.worker(
                                t,
                                strip,
                                u,
                                r,
                                z,
                                p,
                                kp,
                                y,
                                pscr,
                                dot_partials,
                                change_partials,
                                rz_partials,
                                f,
                                aud,
                                dev_partials,
                                audit,
                                plan,
                                bank,
                                barrier,
                                iters_out,
                                opts,
                            );
                        }
                    });
                });
            }
        });

        let code = unsafe { bank.get(slot::STOP) };
        let out = iters_out.into_vec();
        let iterations = out[0] as usize;
        let final_change = out[1];
        let reduction_phases = out[2] as usize;
        let audits = out[3] as usize;
        let replacements = out[4] as usize;
        let faults_detected = out[5] as usize;
        match code {
            c if c == status::FALLBACK => Ok(SolveOutcome::Fallback {
                audits,
                faults_detected,
            }),
            c if c == status::NONFINITE => Err(SparseError::NonFinite {
                phase: "replicated-reduction",
                iteration: iterations,
            }),
            c if c == status::INDEFINITE_K => Err(SparseError::NotPositiveDefinite {
                pivot: iterations,
                value: -1.0,
            }),
            c if c == status::INDEFINITE_M => Err(SparseError::NotPositiveDefinite {
                pivot: iterations,
                value: -2.0,
            }),
            c if c == status::BUDGET => Err(SparseError::DidNotConverge {
                iterations,
                residual: final_change,
            }),
            _ => Ok(SolveOutcome::Report(ParallelSolveReport {
                x: u.into_vec(),
                iterations,
                converged: true,
                final_change,
                threads,
                variant,
                barrier_crossings: barrier.crossings(),
                reduction_phases,
                split_crossings: split.crossings(),
                audits,
                replacements,
                recoveries: 0,
                faults_detected,
            })),
        }
    }

    /// The SPMD body of the **classic** schedule. All `unsafe` blocks
    /// follow the phase discipline documented in [`crate::shared`]: writes
    /// go only to owned ranges (or owned ∩ color block), reads only touch
    /// elements finalized before the previous barrier or written by this
    /// worker in the current phase.
    ///
    /// Scalar reductions (α, β, the stopping test) are **replicated**:
    /// after the barrier that publishes a partial bank, every worker sums
    /// it in ascending index order, obtaining bitwise-identical scalars —
    /// so every control-flow branch below is taken unanimously and no
    /// broadcast phase is needed. Worker 0 alone records the outcome for
    /// the main thread.
    #[allow(clippy::too_many_arguments)]
    fn worker(
        &self,
        t: usize,
        strip: std::ops::Range<usize>,
        u: &SharedVec,
        r: &SharedVec,
        z: &SharedVec,
        p: &SharedVec,
        kp: &SharedVec,
        y: &SharedVec,
        pscr: &PolyScratch<'_>,
        dot_partials: &SharedVec,
        change_partials: &SharedVec,
        rz_partials: &SharedVec,
        f: &[f64],
        aud: &SharedVec,
        dev_partials: &SharedVec,
        audit: &ParAudit,
        plan: Option<&FaultPlan>,
        bank: &ScalarBank,
        barrier: &SpinBarrier,
        iters_out: &SharedVec,
        opts: &ParallelSolverOptions,
    ) {
        let own = strip.clone();
        // Replicated reduction phases consumed so far (worker 0 publishes
        // the count at every exit; the ‖Δu‖∞ flag-network max is not a
        // dot-product phase and is not counted).
        let mut phases = 0usize;
        let mut audits = 0usize;
        let mut replacements = 0usize;
        let mut faults = 0usize;
        // Worker-0 outcome publication (every branch below is taken
        // unanimously — the scalars are replicated).
        macro_rules! finish {
            ($code:expr, $iterations:expr, $change:expr) => {
                if t == 0 {
                    unsafe {
                        bank.set(slot::STOP, $code);
                        iters_out.write_at(0, $iterations as f64);
                        iters_out.write_at(1, $change);
                        iters_out.write_at(2, phases as f64);
                        iters_out.write_at(3, audits as f64);
                        iters_out.write_at(4, replacements as f64);
                        iters_out.write_at(5, faults as f64);
                    }
                }
            };
        }
        // In-place recovery from a non-finite reduction scalar: recompute
        // the true residual `r ← f − K·u` and re-derive z, p, (z, r) —
        // the same restart the serial classic loop performs — looping
        // while the replacement budget lasts, then guard the fresh (z, r)
        // like the init sequence. `rz` holds the fresh scalar afterwards.
        macro_rules! recover_or_return {
            ($rz:ident, $completed:expr) => {{
                faults += 1;
                loop {
                    if replacements >= audit.max_replacements {
                        finish!(status::NONFINITE, $completed, 0.0);
                        return;
                    }
                    replacements += 1;
                    $rz = self.reinit_phase(
                        &own,
                        t,
                        f,
                        u,
                        r,
                        z,
                        p,
                        y,
                        pscr,
                        rz_partials,
                        barrier,
                        None,
                    );
                    phases += 1;
                    if $rz.is_finite() {
                        break;
                    }
                    faults += 1;
                }
                if $rz < 0.0 {
                    finish!(status::INDEFINITE_M, $completed, 0.0);
                    return;
                }
                if $rz == 0.0 {
                    finish!(status::CONVERGED, $completed, 0.0);
                    return;
                }
                if $completed >= opts.max_iterations {
                    finish!(status::BUDGET, $completed, f64::INFINITY);
                    return;
                }
            }};
        }

        // --- init: z = M⁻¹ r, with p ← z and the (z, r) partial fused
        // into the preconditioner's final color phase — no extra barriers.
        self.msolve_phases(&own, t, r, z, y, pscr, Some(p), Some(rz_partials), barrier);
        self.inject_msolve_fault(plan, 0, &own, z, Some(p), barrier);
        let mut rz: f64 = unsafe { rz_partials.read().iter().sum() };
        phases += 1;
        if !rz.is_finite() {
            recover_or_return!(rz, 0);
        }
        if rz < 0.0 {
            finish!(status::INDEFINITE_M, 0, 0.0);
            return;
        }
        if rz == 0.0 {
            finish!(status::CONVERGED, 0, 0.0);
            return;
        }
        if opts.max_iterations == 0 {
            // A zero budget with a nonzero residual is exhaustion, not
            // convergence — the serial solver reports the same.
            finish!(status::BUDGET, 0, f64::INFINITY);
            return;
        }

        for iter in 1..=opts.max_iterations {
            // --- audit: every `period` iterations recompute the true
            // residual in one fused phase (one barrier, no reduction
            // phase) and compare it against the carried r; on divergence
            // beyond the bound, adopt the true residual and re-derive
            // z, p, (z, r) exactly like the init sequence.
            if audit.enabled
                && replacements < audit.max_replacements
                && audit_due(iter, 0, audit.period)
            {
                let dev2 = self.audit_phase(&own, t, f, u, r, aud, dev_partials, barrier);
                audits += 1;
                // Iterations completed if a guard fires inside the
                // replacement below (named so the macro's budget test
                // doesn't expand to clippy's int_plus_one pattern).
                let completed = iter - 1;
                // NaN deviation fails `<=` and replaces too.
                if diverged(dev2, audit.bound2) {
                    replacements += 1;
                    rz = self.reinit_phase(
                        &own,
                        t,
                        f,
                        u,
                        r,
                        z,
                        p,
                        y,
                        pscr,
                        rz_partials,
                        barrier,
                        Some(aud),
                    );
                    phases += 1;
                    if !rz.is_finite() {
                        recover_or_return!(rz, completed);
                    }
                    if rz < 0.0 {
                        finish!(status::INDEFINITE_M, iter - 1, 0.0);
                        return;
                    }
                    if rz == 0.0 {
                        // The adopted true residual is exactly zero.
                        finish!(status::CONVERGED, iter - 1, 0.0);
                        return;
                    }
                }
            }

            // --- kp = K p ⊕ (p, Kp) partial: the strip of kp this worker
            // just wrote is exactly the strip the partial reads, so the
            // dot needs no barrier of its own.
            unsafe {
                let pv = p.read();
                let out = kp.write(own.clone());
                self.strip_spmv(pv, out, own.clone());
                if let Some((index, kind)) = claim_fault(plan, FaultTarget::Spmv, iter, &own) {
                    out[index - own.start] = perturb(out[index - own.start], kind);
                }
                dot_partials.write_at(t, vecops::dot(&pv[own.clone()], out));
            }
            barrier.wait();

            // --- α (replicated) ---------------------------------------------
            let denom: f64 = unsafe { dot_partials.read().iter().sum() };
            phases += 1;
            if !denom.is_finite() {
                recover_or_return!(rz, iter);
                continue;
            }
            if denom <= 0.0 {
                finish!(
                    if rz == 0.0 {
                        status::CONVERGED
                    } else {
                        status::INDEFINITE_K
                    },
                    iter - 1,
                    0.0
                );
                return;
            }
            let alpha = rz / denom;

            // --- u += αp; r −= α·Kp ⊕ ‖Δu‖∞ partial (fused kernel) ----------
            unsafe {
                let pv = p.read();
                let kpv = kp.read();
                let uo = u.write(own.clone());
                let ro = r.write(own.clone());
                let norms = vecops::fused_axpy_axpy_norm(
                    alpha,
                    &pv[own.clone()],
                    &kpv[own.clone()],
                    uo,
                    ro,
                );
                change_partials.write_at(t, alpha.abs() * norms.p_norm_inf);
            }
            barrier.wait();

            // --- convergence test (replicated flag network) ------------------
            let change = unsafe { change_partials.read().iter().fold(0.0f64, |a, &b| a.max(b)) };
            if !change.is_finite() {
                // The ∞-norm max swallows NaN, but an Inf step surfaces
                // here (u may already be poisoned — the restart budget
                // bounds the damage).
                recover_or_return!(rz, iter);
                continue;
            }
            if change < opts.tol {
                finish!(status::CONVERGED, iter, change);
                return;
            }
            if iter == opts.max_iterations {
                finish!(status::BUDGET, iter, change);
                return;
            }

            // --- z = M⁻¹ r, (z, r) partial fused into the final phase --------
            self.msolve_phases(&own, t, r, z, y, pscr, None, Some(rz_partials), barrier);
            self.inject_msolve_fault(plan, iter, &own, z, None, barrier);

            // --- β (replicated) ---------------------------------------------
            let rz_new: f64 = unsafe { rz_partials.read().iter().sum() };
            phases += 1;
            if !rz_new.is_finite() {
                recover_or_return!(rz, iter);
                continue;
            }
            if rz_new < 0.0 {
                finish!(status::INDEFINITE_M, iter, change);
                return;
            }
            let beta = rz_new / rz.max(1e-300);
            rz = rz_new;

            // --- p = z + βp (shared xpby kernel) -----------------------------
            unsafe {
                let zv = z.read();
                let po = p.write(own.clone());
                vecops::xpby(&zv[own.clone()], beta, po);
            }
            barrier.wait();
        }
    }

    /// The SPMD body of the **single-reduction** schedule. Same phase
    /// discipline as [`ParallelMStepPcg::worker`]; the differences are the
    /// carried `s = Kp` (in the `kp` vectors) and `w = Kz`, the fused
    /// mega-update phase, and that every scalar the recurrence needs
    /// comes out of the one reduction phase riding the `w = Kz` SpMV.
    ///
    /// For plain CG (`m = 0`) no preconditioner phase exists and `z ≡ r`:
    /// the schedule reads `r` wherever `z` appears, dropping to **two
    /// barriers per iteration**.
    #[allow(clippy::too_many_arguments)]
    fn worker_single_reduction(
        &self,
        t: usize,
        strip: std::ops::Range<usize>,
        u: &SharedVec,
        r: &SharedVec,
        z: &SharedVec,
        p: &SharedVec,
        s: &SharedVec,
        y: &SharedVec,
        w: &SharedVec,
        pscr: &PolyScratch<'_>,
        wz_partials: &SharedVec,
        change_partials: &SharedVec,
        rz_partials: &SharedVec,
        ps_partials: &SharedVec,
        f: &[f64],
        aud: &SharedVec,
        dev_partials: &SharedVec,
        audit: &ParAudit,
        plan: Option<&FaultPlan>,
        bank: &ScalarBank,
        barrier: &SpinBarrier,
        iters_out: &SharedVec,
        opts: &ParallelSolverOptions,
    ) {
        let own = strip.clone();
        let m_zero = self.no_msolve();
        let mut phases = 0usize;
        let mut audits = 0usize;
        let mut faults = 0usize;
        // Worker-0 outcome publication (every branch below is taken
        // unanimously — the scalars are replicated). The recurrence
        // schedules never replace in place (slot 4 stays 0): corruption
        // and breakdown both step down the ladder via FALLBACK.
        let finish = |code: f64,
                      iterations: usize,
                      change: f64,
                      phases: usize,
                      audits: usize,
                      faults: usize| {
            if t == 0 {
                unsafe {
                    bank.set(slot::STOP, code);
                    iters_out.write_at(0, iterations as f64);
                    iters_out.write_at(1, change);
                    iters_out.write_at(2, phases as f64);
                    iters_out.write_at(3, audits as f64);
                    iters_out.write_at(5, faults as f64);
                }
            }
        };

        // --- init: z = M⁻¹ r with the (z, r) partial fused into the
        // final color phase; for m = 0, z ≡ r and the (r, r) partial
        // rides the w phase instead.
        if !m_zero {
            self.msolve_phases(&own, t, r, z, y, pscr, None, Some(rz_partials), barrier);
            self.inject_msolve_fault(plan, 0, &own, z, None, barrier);
        }
        self.w_phase(
            &own,
            t,
            m_zero,
            r,
            z,
            w,
            wz_partials,
            rz_partials,
            barrier,
            claim_fault(plan, FaultTarget::Spmv, 0, &own),
        );

        // --- γ₀, δ₀ (replicated, ONE phase) -----------------------------
        let mut gamma: f64 = unsafe { rz_partials.read().iter().sum() };
        let delta: f64 = unsafe { wz_partials.read().iter().sum() };
        phases += 1;
        if !(gamma.is_finite() && delta.is_finite()) {
            // A poisoned init scalar: no recurrence state worth keeping —
            // step down the ladder before any carry is built.
            faults += 1;
            finish(status::FALLBACK, 0, 0.0, phases, audits, faults);
            return;
        }
        if gamma < 0.0 {
            finish(status::INDEFINITE_M, 0, 0.0, phases, audits, faults);
            return;
        }
        if gamma == 0.0 {
            finish(status::CONVERGED, 0, 0.0, phases, audits, faults);
            return;
        }
        if opts.max_iterations == 0 {
            finish(status::BUDGET, 0, f64::INFINITY, phases, audits, faults);
            return;
        }
        if delta <= 0.0 {
            // (z, Kz) ≤ 0 with z ≠ 0: let the classic schedule's probes
            // produce the canonical error.
            finish(status::FALLBACK, 0, 0.0, phases, audits, faults);
            return;
        }
        let mut alpha = gamma / delta;
        let mut beta = 0.0f64;

        for iter in 1..=opts.max_iterations {
            // --- audit (detector-only on the recurrence schedules): the
            // fused true-residual phase costs one barrier; divergence has
            // no same-rung warm restart here, so it steps down the
            // ladder. The state audited is the one iteration `iter − 1`
            // left behind.
            if audit.enabled && audit_due(iter, 0, audit.period) {
                let dev2 = self.audit_phase(&own, t, f, u, r, aud, dev_partials, barrier);
                audits += 1;
                if diverged(dev2, audit.bound2) {
                    finish(status::FALLBACK, iter - 1, 0.0, phases, audits, faults);
                    return;
                }
            }
            // --- mega-update phase: p ← z + βp, s ← w + βs, u += αp,
            // r −= αs ⊕ ‖Δu‖∞ and (p, s) partials — one barrier for all
            // four updates and both partials. The (p, s) strip partial
            // rides the update kernel itself (fused_xpby_xpby_dot), so
            // the strips are traversed once, not re-read by a dot pass.
            unsafe {
                {
                    let zv = if m_zero { r.read() } else { z.read() };
                    let wv = w.read();
                    let po = p.write(own.clone());
                    let so = s.write(own.clone());
                    let ps = vecops::fused_xpby_xpby_dot(
                        &zv[own.clone()],
                        &wv[own.clone()],
                        beta,
                        po,
                        so,
                    );
                    ps_partials.write_at(t, ps);
                }
                let pv = p.read();
                let sv = s.read();
                let uo = u.write(own.clone());
                let ro = r.write(own.clone());
                let norms =
                    vecops::fused_axpy_axpy_norm(alpha, &pv[own.clone()], &sv[own.clone()], uo, ro);
                change_partials.write_at(t, alpha.abs() * norms.p_norm_inf);
            }
            barrier.wait();

            // --- convergence test (replicated flag network) + guards ---------
            let change = unsafe { change_partials.read().iter().fold(0.0f64, |a, &b| a.max(b)) };
            if !change.is_finite() {
                // ‖Δu‖∞ swallows NaN but surfaces Inf: a poisoned update.
                faults += 1;
                finish(status::FALLBACK, iter, change, phases, audits, faults);
                return;
            }
            if change < opts.tol {
                finish(status::CONVERGED, iter, change, phases, audits, faults);
                return;
            }
            if iter == opts.max_iterations {
                finish(status::BUDGET, iter, change, phases, audits, faults);
                return;
            }
            let ps: f64 = unsafe { ps_partials.read().iter().sum() };
            if !ps.is_finite() {
                faults += 1;
                finish(status::FALLBACK, iter, change, phases, audits, faults);
                return;
            }
            // Directly measured curvature (p, s) ≤ 0: the recurrence can
            // no longer be trusted — rerun one rung down.
            if ps <= 0.0 {
                finish(status::FALLBACK, iter, change, phases, audits, faults);
                return;
            }

            // --- z = M⁻¹ r, (z, r) partial fused into the final phase,
            // then w = K z ⊕ (w, z) — THE reduction phase ---------------------
            if !m_zero {
                self.msolve_phases(&own, t, r, z, y, pscr, None, Some(rz_partials), barrier);
                self.inject_msolve_fault(plan, iter, &own, z, None, barrier);
            }
            self.w_phase(
                &own,
                t,
                m_zero,
                r,
                z,
                w,
                wz_partials,
                rz_partials,
                barrier,
                claim_fault(plan, FaultTarget::Spmv, iter, &own),
            );

            // --- γ′, δ, then β and the reconstructed α (replicated) ----------
            let gamma_new: f64 = unsafe { rz_partials.read().iter().sum() };
            let delta: f64 = unsafe { wz_partials.read().iter().sum() };
            phases += 1;
            if !(gamma_new.is_finite() && delta.is_finite()) {
                // Checked before either scalar feeds α/β, so u is still a
                // valid iterate when the lower rung reruns.
                faults += 1;
                finish(status::FALLBACK, iter, change, phases, audits, faults);
                return;
            }
            if gamma_new < 0.0 {
                finish(status::INDEFINITE_M, iter, change, phases, audits, faults);
                return;
            }
            if gamma_new == 0.0 {
                // Exact convergence in fewer than n steps.
                finish(status::CONVERGED, iter, change, phases, audits, faults);
                return;
            }
            let beta_new = gamma_new / gamma.max(1e-300);
            let denom = delta - beta_new * gamma_new / alpha;
            if !(denom.is_finite() && denom > 0.0) {
                finish(status::FALLBACK, iter, change, phases, audits, faults);
                return;
            }
            beta = beta_new;
            alpha = gamma_new / denom;
            gamma = gamma_new;
        }
    }

    /// The SPMD body of the **s-step** (communication-avoiding) schedule:
    /// the serial `sstep_loop` arithmetic on barrier-separated phases.
    /// Per outer step (`s` iterations, sweep = `m·(2C−1)` SSOR barriers
    /// or `k` polynomial barriers):
    ///
    /// ```text
    /// v₁ ← M⁻¹r                               sweep barriers
    /// per j = 2…s:
    ///   A·v_{j−1} ← K·v_{j−1}                 1 barrier   (cross-strip read)
    ///   t ← M⁻¹(A·v_{j−1})                    sweep barriers
    ///   vⱼ ← Chebyshev(t, v_{j−1}, v_{j−2})   1 barrier
    /// A·v_s ← K·v_s ⊕ ALL Gram partials       1 barrier   (THE reduction)
    /// replicated: Gram sums, B, W, Cholesky,
    ///   coefficients                           0 barriers  (unanimous)
    /// P/AP ← V/AV + P'/AP'·B; s sub-steps
    ///   u += aⱼpⱼ, r −= aⱼapⱼ ⊕ per-sub-step
    ///   ‖Δu‖∞ partials                         1 barrier   (one mega-phase)
    /// ```
    ///
    /// i.e. `s·m·(2C−1) + 2s` barriers (polynomial: `s·(k+2)`) and **one
    /// reduction phase** per `s` iterations — the `2s`-reductions-per-`s`
    /// -iterations floor of the classic schedule amortized into a single
    /// fused Gram phase. For plain CG (`m = 0`) the basis seed aliases
    /// the residual (`v₁ ≡ r`, no copy phase) and the Chebyshev step
    /// fuses into the SpMV phase that produces its operand: `s + 1`
    /// barriers per outer step.
    ///
    /// The replicated small dense work (coupling solve `B = −W'⁻¹G2`,
    /// Gram assembly, rank-revealing Cholesky) runs identically in every
    /// worker off the replicated reduced scalars — unanimous branching,
    /// no broadcast. A rank-truncated factor (`cols < s`, the endgame
    /// where the Krylov grade runs out mid-block) takes only the leading
    /// `cols` sub-steps and restarts the recurrence, exactly like the
    /// serial rung; `cols == 0` and every non-finite scalar step down
    /// the ladder via FALLBACK (reruns are from scratch, so no rollback
    /// is needed — except on mid-block *convergence*, where the already
    /// applied trailing sub-steps are undone own-strip so the reported
    /// iterate is the accepted one).
    #[allow(clippy::too_many_arguments)]
    fn worker_sstep(
        &self,
        t: usize,
        strip: std::ops::Range<usize>,
        s: usize,
        interval: SpectralInterval,
        sv: &SStepVecs,
        u: &SharedVec,
        r: &SharedVec,
        y: &SharedVec,
        pscr: &PolyScratch<'_>,
        f: &[f64],
        aud: &SharedVec,
        dev_partials: &SharedVec,
        audit: &ParAudit,
        plan: Option<&FaultPlan>,
        bank: &ScalarBank,
        barrier: &SpinBarrier,
        iters_out: &SharedVec,
        opts: &ParallelSolverOptions,
    ) {
        let own = strip.clone();
        let m_zero = self.no_msolve();
        let threads = sv.change.len() / s;
        let glen = sstep_gram_len(s);
        let mut phases = 0usize;
        let mut audits = 0usize;
        let mut faults = 0usize;
        let finish = |code: f64,
                      iterations: usize,
                      change: f64,
                      phases: usize,
                      audits: usize,
                      faults: usize| {
            if t == 0 {
                unsafe {
                    bank.set(slot::STOP, code);
                    iters_out.write_at(0, iterations as f64);
                    iters_out.write_at(1, change);
                    iters_out.write_at(2, phases as f64);
                    iters_out.write_at(3, audits as f64);
                    iters_out.write_at(5, faults as f64);
                }
            }
        };
        // Basis column j (`v₁ ≡ r` for plain CG — no copy phase).
        let vjs: Vec<&SharedVec> = (0..s)
            .map(|j| if j == 0 && m_zero { r } else { &sv.v[j] })
            .collect();

        let theta = 0.5 * (interval.max + interval.min);
        let delta = 0.5 * (interval.max - interval.min);
        let degenerate = interval.is_degenerate();

        // Replicated dense scratch: every worker computes these
        // identically from the replicated reduced scalars, so they are
        // plain locals — no sharing, no broadcast.
        let mut g1 = vec![0.0; s * s];
        let mut g2 = vec![0.0; s * s];
        let mut gv = vec![0.0; s];
        let mut gp = vec![0.0; s];
        let mut bmat = vec![0.0; s * s];
        let mut wfac_a = vec![0.0; s * s];
        let mut wfac_b = vec![0.0; s * s];
        let mut gcur = vec![0.0; s];
        let mut acoef = vec![0.0; s];
        let mut red = vec![0.0; glen];

        let mut completed = 0usize;
        let mut change = f64::INFINITY;
        let mut first_block = true;
        let mut parity = false;

        while completed + s <= opts.max_iterations {
            // --- audit between outer steps (state after the previous
            // block), due when any of the block's sub-step indices hits
            // the schedule. Detector-only: divergence steps down the
            // ladder (rung reruns restart from u = 0).
            if audit.enabled
                && (completed + 1..=completed + s).any(|i| audit_due(i, 0, audit.period))
            {
                let dev2 = self.audit_phase(&own, t, f, u, r, aud, dev_partials, barrier);
                audits += 1;
                if diverged(dev2, audit.bound2) {
                    finish(status::FALLBACK, completed, change, phases, audits, faults);
                    return;
                }
            }
            let (p_cur, ap_cur, p_prev, ap_prev) = if parity {
                (&sv.pb, &sv.apb, &sv.pa, &sv.apa)
            } else {
                (&sv.pa, &sv.apa, &sv.pb, &sv.apb)
            };
            let (wfac_cur, wfac_prev) = if parity {
                (&mut wfac_b, &wfac_a)
            } else {
                (&mut wfac_a, &wfac_b)
            };

            // --- basis block: v₁ = M⁻¹r, then the Chebyshev three-term
            // recurrence (planned faults land per sub-step index:
            // msolve j at iteration completed + j, SpMV j likewise).
            if !m_zero {
                self.msolve_phases(&own, t, r, &sv.v[0], y, pscr, None, None, barrier);
                self.inject_msolve_fault(plan, completed, &own, &sv.v[0], None, barrier);
            }
            for j in 1..s {
                unsafe {
                    let vin = vjs[j - 1].read();
                    let out = sv.av[j - 1].write(own.clone());
                    self.strip_spmv(vin, out, own.clone());
                    if let Some((index, kind)) =
                        claim_fault(plan, FaultTarget::Spmv, completed + j - 1, &own)
                    {
                        out[index - own.start] = perturb(out[index - own.start], kind);
                    }
                    if m_zero {
                        // M = I: t ≡ A·v_{j−1}, freshly written own-strip
                        // above — the Chebyshev step fuses into this
                        // phase (all operands own-strip).
                        let vp = &vin[own.clone()];
                        let vj_out = sv.v[j].write(own.clone());
                        if degenerate {
                            vecops::fused_cheb_basis(1.0 / theta, 0.0, 0.0, out, vp, vp, vj_out);
                        } else if j == 1 {
                            vecops::fused_cheb_basis(1.0 / delta, theta, 0.0, out, vp, vp, vj_out);
                        } else {
                            let vpp = &vjs[j - 2].read()[own.clone()];
                            vecops::fused_cheb_basis(2.0 / delta, theta, 1.0, out, vp, vpp, vj_out);
                        }
                    }
                }
                barrier.wait();
                if !m_zero {
                    self.msolve_phases(
                        &own,
                        t,
                        &sv.av[j - 1],
                        &sv.tv,
                        y,
                        pscr,
                        None,
                        None,
                        barrier,
                    );
                    self.inject_msolve_fault(plan, completed + j, &own, &sv.tv, None, barrier);
                    unsafe {
                        let tvo = &sv.tv.read()[own.clone()];
                        let vp = &sv.v[j - 1].read()[own.clone()];
                        let vj_out = sv.v[j].write(own.clone());
                        if degenerate {
                            // Collapsed interval: scaled-monomial
                            // fallback vⱼ = t/θ.
                            vecops::fused_cheb_basis(1.0 / theta, 0.0, 0.0, tvo, vp, vp, vj_out);
                        } else if j == 1 {
                            vecops::fused_cheb_basis(1.0 / delta, theta, 0.0, tvo, vp, vp, vj_out);
                        } else {
                            let vpp = &sv.v[j - 2].read()[own.clone()];
                            vecops::fused_cheb_basis(2.0 / delta, theta, 1.0, tvo, vp, vpp, vj_out);
                        }
                    }
                    barrier.wait();
                }
            }

            // --- final SpMV completes A·V ⊕ ALL Gram partials ride this
            // phase — THE one reduction of the block. Every operand of
            // every partial is own-strip: A·V columns were written by
            // this worker in this block's SpMV phases, V/P'/AP'/r were
            // finalized by earlier barriers.
            unsafe {
                let vin = vjs[s - 1].read();
                let out = sv.av[s - 1].write(own.clone());
                self.strip_spmv(vin, out, own.clone());
                if let Some((index, kind)) =
                    claim_fault(plan, FaultTarget::Spmv, completed + s - 1, &own)
                {
                    out[index - own.start] = perturb(out[index - own.start], kind);
                }
                let g = sv.gram.write(t * glen..(t + 1) * glen);
                let mut gi = 0usize;
                for i in 0..s {
                    let avi = &sv.av[i].read()[own.clone()];
                    for j in 0..=i {
                        g[gi] = vecops::dot(&vjs[j].read()[own.clone()], avi);
                        gi += 1;
                    }
                }
                for i in 0..s {
                    let api = &ap_prev[i].read()[own.clone()];
                    for j in 0..s {
                        g[gi] = vecops::dot(api, &vjs[j].read()[own.clone()]);
                        gi += 1;
                    }
                }
                let rv = &r.read()[own.clone()];
                for j in 0..s {
                    g[gi] = vecops::dot(&vjs[j].read()[own.clone()], rv);
                    gi += 1;
                }
                for j in 0..s {
                    g[gi] = vecops::dot(&p_prev[j].read()[own.clone()], rv);
                    gi += 1;
                }
                g[gi] = vecops::dot(rv, rv);
            }
            barrier.wait();

            // --- replicated Gram reduction (ascending worker order) ----
            unsafe {
                let bankv = sv.gram.read();
                for x in red.iter_mut() {
                    *x = 0.0;
                }
                for row in 0..threads {
                    let base = row * glen;
                    for (i, x) in red.iter_mut().enumerate() {
                        *x += bankv[base + i];
                    }
                }
            }
            phases += 1;
            if red.iter().any(|x| !x.is_finite()) {
                faults += 1;
                finish(status::FALLBACK, completed, change, phases, audits, faults);
                return;
            }
            let mut gi = 0usize;
            for i in 0..s {
                for j in 0..=i {
                    g1[i * s + j] = red[gi];
                    g1[j * s + i] = red[gi];
                    gi += 1;
                }
            }
            for x in g2.iter_mut() {
                *x = red[gi];
                gi += 1;
            }
            for x in gv.iter_mut() {
                *x = red[gi];
                gi += 1;
            }
            for x in gp.iter_mut() {
                *x = red[gi];
                gi += 1;
            }
            // gv[0] = (M⁻¹r, r) is a fresh quadratic form every block.
            if gv[0] < 0.0 {
                finish(
                    status::INDEFINITE_M,
                    completed,
                    change,
                    phases,
                    audits,
                    faults,
                );
                return;
            }
            if gv[0] == 0.0 {
                // Exact convergence: r = 0 under an SPD preconditioner.
                let c = if change.is_finite() { change } else { 0.0 };
                finish(status::CONVERGED, completed, c, phases, audits, faults);
                return;
            }

            // --- replicated small dense work (identical in every
            // worker): B = −W'⁻¹G2, W = G1 + G2ᵀB, g = gv + Bᵀgp,
            // rank-revealing Cholesky, coefficients. The first block has
            // B = 0 (and freshly zeroed P'/AP' banks), which reduces the
            // generic path to P = V, W = G1, g = gv.
            if first_block {
                for x in bmat.iter_mut() {
                    *x = 0.0;
                }
            } else {
                for j in 0..s {
                    for i in 0..s {
                        acoef[i] = -g2[i * s + j];
                    }
                    small_cholesky_solve(wfac_prev, s, s, &mut acoef);
                    for i in 0..s {
                        bmat[i * s + j] = acoef[i];
                    }
                }
            }
            for i in 0..s {
                for j in 0..=i {
                    let mut sum = g1[i * s + j];
                    for q in 0..s {
                        sum += g2[q * s + i] * bmat[q * s + j];
                    }
                    wfac_cur[i * s + j] = sum;
                }
            }
            for j in 0..s {
                let mut sum = gv[j];
                for i in 0..s {
                    sum += bmat[i * s + j] * gp[i];
                }
                gcur[j] = sum;
            }
            let cols = small_cholesky_factor(wfac_cur, s);
            if cols == 0 {
                // Numerically collapsed basis: step down the ladder.
                finish(status::FALLBACK, completed, change, phases, audits, faults);
                return;
            }
            acoef.copy_from_slice(&gcur);
            small_cholesky_solve(wfac_cur, s, cols, &mut acoef);
            if acoef[..cols].iter().any(|x| !x.is_finite()) {
                faults += 1;
                finish(status::FALLBACK, completed, change, phases, audits, faults);
                return;
            }

            // --- update mega-phase: P = V + P'B, AP = AV + AP'B, then
            // the `cols` local sub-steps on the classic fused update
            // kernel — all own-strip, ONE barrier. The per-sub-step
            // displacement partials ride the kernel itself.
            unsafe {
                for j in 0..s {
                    let po = p_cur[j].write(own.clone());
                    po.copy_from_slice(&vjs[j].read()[own.clone()]);
                    for i in 0..s {
                        vecops::axpy(bmat[i * s + j], &p_prev[i].read()[own.clone()], po);
                    }
                    let apo = ap_cur[j].write(own.clone());
                    apo.copy_from_slice(&sv.av[j].read()[own.clone()]);
                    for i in 0..s {
                        vecops::axpy(bmat[i * s + j], &ap_prev[i].read()[own.clone()], apo);
                    }
                }
                for j in 0..cols {
                    let alpha = acoef[j];
                    let uo = u.write(own.clone());
                    let ro = r.write(own.clone());
                    let norms = vecops::fused_axpy_axpy_norm(
                        alpha,
                        &p_cur[j].read()[own.clone()],
                        &ap_cur[j].read()[own.clone()],
                        uo,
                        ro,
                    );
                    sv.change
                        .write_at(t * s + j, alpha.abs() * norms.p_norm_inf);
                }
            }
            barrier.wait();

            // --- replicated per-sub-step stopping scan (flag network):
            // ascending j, first sub-step under tolerance wins.
            let chv = unsafe { sv.change.read() };
            for j in 0..cols {
                let cj = (0..threads).fold(0.0f64, |acc, row| acc.max(chv[row * s + j]));
                if !cj.is_finite() {
                    // ‖Δu‖∞ swallows NaN but surfaces Inf: a poisoned
                    // update — reruns restart from scratch, no rollback.
                    faults += 1;
                    finish(
                        status::FALLBACK,
                        completed + j + 1,
                        cj,
                        phases,
                        audits,
                        faults,
                    );
                    return;
                }
                change = cj;
                if cj < opts.tol {
                    // Converged mid-block: the trailing sub-steps were
                    // already applied — undo them own-strip so the
                    // reported iterate is the accepted one (the scan is
                    // replicated, so the rollback is unanimous; no
                    // barrier needed — only own strips are touched and
                    // the scope join publishes them).
                    unsafe {
                        let uo = u.write(own.clone());
                        for jj in j + 1..cols {
                            let alpha = acoef[jj];
                            let pj = &p_cur[jj].read()[own.clone()];
                            for (k, pk) in pj.iter().enumerate() {
                                uo[k] -= alpha * pk;
                            }
                        }
                    }
                    finish(
                        status::CONVERGED,
                        completed + j + 1,
                        cj,
                        phases,
                        audits,
                        faults,
                    );
                    return;
                }
            }
            completed += cols;
            // An endgame-truncated block leaves no full-rank carried
            // factor to conjugate against — restart the recurrence.
            first_block = cols < s;
            parity = !parity;
        }
        // Budget exhausted (including a final sliver shorter than one
        // block).
        finish(status::BUDGET, completed, change, phases, audits, faults);
    }

    /// The SPMD body of the **pipelined** (Ghysels–Vanroose) schedule.
    /// Same phase discipline as [`ParallelMStepPcg::worker`]; the
    /// differences are the extra recurrence carries (`q = M⁻¹s`,
    /// `zz = K·q`) and recomputed auxiliaries (`mv = M⁻¹w`, `nv = K·mv`),
    /// the bank parity rotation, and that the one reduction phase is
    /// **split**: its partials are published in the update mega-phase and
    /// *initiated* with [`SplitBarrier::arrive`], the preconditioner +
    /// `nv = K·mv` heavy phase runs inside the overlap window, and only
    /// then is the reduction *consumed* with [`SplitBarrier::wait`] — the
    /// reduction latency hides behind the heaviest work of the iteration.
    ///
    /// Why no full barrier borders the update phase (`m ≥ 1`): every
    /// vector the update touches is read and written **own-strip only**,
    /// and the msolve that follows reads its input `w` at own rows only —
    /// the only cross-strip reads anywhere are of the msolve's *output*
    /// (ordered by its internal color barriers, with the fused `w₀ = 0`
    /// start guaranteeing no stale element is ever read) and of the `mv`
    /// bank in the trailing SpMV, which is why `mv` (and the reduction
    /// partial banks) **rotate by iteration parity**: the next write of a
    /// bank is separated from its last cross-strip read by the following
    /// iteration's msolve barriers. For plain CG (`m = 0`, `z ≡ r`,
    /// `q ≡ s`, `mv ≡ w`) the SpMV input is `w` itself, so `w` rotates
    /// instead and one full barrier per iteration separates the w-bank
    /// write from the cross-strip `K·w` read.
    #[allow(clippy::too_many_arguments)]
    #[allow(clippy::too_many_arguments)]
    fn worker_pipelined(
        &self,
        t: usize,
        strip: std::ops::Range<usize>,
        vecs: &PipelinedVecs<'_>,
        pscr: &PolyScratch<'_>,
        f: &[f64],
        aud: &SharedVec,
        dev_partials: &SharedVec,
        audit: &ParAudit,
        plan: Option<&FaultPlan>,
        bank: &ScalarBank,
        barrier: &SpinBarrier,
        split: &SplitBarrier,
        iters_out: &SharedVec,
        opts: &ParallelSolverOptions,
    ) {
        let own = strip;
        let m_zero = self.no_msolve();
        let mut phases = 0usize;
        let mut audits = 0usize;
        let mut faults = 0usize;
        // Worker-0 outcome publication (every branch below is taken
        // unanimously — the scalars are replicated). Slot 4 (replacements)
        // stays zero: the pipelined schedule is detector-only and heals by
        // falling one rung down the ladder.
        let finish = |code: f64,
                      iterations: usize,
                      change: f64,
                      phases: usize,
                      audits: usize,
                      faults: usize| {
            if t == 0 {
                unsafe {
                    bank.set(slot::STOP, code);
                    iters_out.write_at(0, iterations as f64);
                    iters_out.write_at(1, change);
                    iters_out.write_at(2, phases as f64);
                    iters_out.write_at(3, audits as f64);
                    iters_out.write_at(5, faults as f64);
                }
            }
        };

        // --- init: z⁰ = M⁻¹ r⁰ (γ₀ = (z, r) fused into the msolve tail),
        // w⁰ = K z⁰ ⊕ δ₀ = (w, z), then the FIRST overlap window:
        // arrive → mv⁰ = M⁻¹ w⁰, nv⁰ = K mv⁰ → wait.
        if !m_zero {
            self.msolve_phases(
                &own,
                t,
                vecs.r,
                vecs.z,
                vecs.y,
                pscr,
                None,
                Some(vecs.gamma[0]),
                barrier,
            );
            self.inject_msolve_fault(plan, 0, &own, vecs.z, None, barrier);
            // z⁰ was finalized by the msolve's last internal barrier.
            unsafe {
                let zv = vecs.z.read();
                let out = vecs.w[0].write(own.clone());
                self.strip_spmv(zv, out, own.clone());
                if let Some((index, kind)) = claim_fault(plan, FaultTarget::Spmv, 0, &own) {
                    out[index - own.start] = perturb(out[index - own.start], kind);
                }
                vecs.delta[0].write_at(t, vecops::dot(&zv[own.clone()], out));
            }
            let ticket = split.arrive();
            // The sweep msolve reads its input w⁰ at own rows only — no
            // barrier. The polynomial msolve's fused first phase reads w⁰
            // cross-strip, so it needs w⁰ finalized: one extra barrier.
            // The auxiliary mv⁰ is not a fault target: the planned msolve
            // fault at iteration 0 lands in z⁰ above.
            if self.poly.is_some() {
                barrier.wait();
            }
            self.msolve_phases(
                &own, t, vecs.w[0], vecs.mv[0], vecs.y, pscr, None, None, barrier,
            );
            unsafe {
                let mvv = vecs.mv[0].read();
                let out = vecs.nv.write(own.clone());
                self.strip_spmv(mvv, out, own.clone());
            }
            split.wait(ticket);
        } else {
            // z ≡ r = f (read-only so far): w⁰ = K f ⊕ both partials.
            unsafe {
                let rv = vecs.r.read();
                let out = vecs.w[0].write(own.clone());
                self.strip_spmv(rv, out, own.clone());
                if let Some((index, kind)) = claim_fault(plan, FaultTarget::Spmv, 0, &own) {
                    out[index - own.start] = perturb(out[index - own.start], kind);
                }
                let rs = &rv[own.clone()];
                vecs.gamma[0].write_at(t, vecops::dot(rs, rs));
                vecs.delta[0].write_at(t, vecops::dot(rs, out));
            }
            let ticket = split.arrive();
            // nv⁰ = K w⁰ reads w⁰ cross-strip: one full barrier.
            barrier.wait();
            unsafe {
                let wv = vecs.w[0].read();
                let out = vecs.nv.write(own.clone());
                self.strip_spmv(wv, out, own.clone());
            }
            split.wait(ticket);
        }

        // --- γ₀, δ₀ (replicated, consumed after the overlap window) ------
        let mut gamma: f64 = unsafe { vecs.gamma[0].read().iter().sum() };
        let delta0: f64 = unsafe { vecs.delta[0].read().iter().sum() };
        phases += 1;
        if !(gamma.is_finite() && delta0.is_finite()) {
            faults += 1;
            finish(status::FALLBACK, 0, 0.0, phases, audits, faults);
            return;
        }
        if gamma < 0.0 {
            // Fresh quadratic form (no drift yet): indefinite M.
            finish(status::INDEFINITE_M, 0, 0.0, phases, audits, faults);
            return;
        }
        if gamma == 0.0 {
            finish(status::CONVERGED, 0, 0.0, phases, audits, faults);
            return;
        }
        if opts.max_iterations == 0 {
            finish(status::BUDGET, 0, f64::INFINITY, phases, audits, faults);
            return;
        }
        if delta0 <= 0.0 {
            finish(status::FALLBACK, 0, 0.0, phases, audits, faults);
            return;
        }
        let mut alpha = gamma / delta0;
        let mut beta = 0.0f64;

        for iter in 1..=opts.max_iterations {
            // --- audit: recompute the true residual against the previous
            // iterate (u and r were finalized by the split wait above) and
            // fall a rung down on divergence — the pipelined recurrences
            // carry too much coupled state to splice a replacement in.
            if audit.enabled && audit_due(iter, 0, audit.period) {
                let dev2 = self.audit_phase(&own, t, f, vecs.u, vecs.r, aud, dev_partials, barrier);
                audits += 1;
                if diverged(dev2, audit.bound2) {
                    finish(status::FALLBACK, iter - 1, 0.0, phases, audits, faults);
                    return;
                }
            }

            // Bank parity: iteration k publishes into bank k mod 2, so a
            // fast worker's next-iteration writes can never alias a
            // straggler's reads of this iteration's banks (the following
            // iteration's barrier — msolve internal or the m = 0 pre-SpMV
            // barrier — separates a bank's readers from its next writer).
            let pk = iter & 1;
            let prev = pk ^ 1;

            // --- fused update mega-phase (own strip only): the four
            // direction carries, the four iterate/carry updates, and all
            // four reduction partials in ONE traversal — then arrive.
            unsafe {
                let mut max_p = 0.0f64;
                let mut ps = 0.0f64;
                let mut gam = 0.0f64;
                let mut del = 0.0f64;
                if m_zero {
                    let w_old = &vecs.w[prev].read()[own.clone()];
                    let nvv = &vecs.nv.read()[own.clone()];
                    let pv = vecs.p.write(own.clone());
                    let sv = vecs.s.write(own.clone());
                    let zzv = vecs.zz.write(own.clone());
                    let uv = vecs.u.write(own.clone());
                    let rv = vecs.r.write(own.clone());
                    let w_new = vecs.w[pk].write(own.clone());
                    for i in 0..own.len() {
                        let ri_old = rv[i];
                        let pi = ri_old + beta * pv[i];
                        let si = w_old[i] + beta * sv[i];
                        let zzi = nvv[i] + beta * zzv[i];
                        pv[i] = pi;
                        sv[i] = si;
                        zzv[i] = zzi;
                        uv[i] += alpha * pi;
                        let ri = ri_old - alpha * si;
                        rv[i] = ri;
                        let wi = w_old[i] - alpha * zzi;
                        w_new[i] = wi;
                        let a = pi.abs();
                        if a > max_p {
                            max_p = a;
                        }
                        ps += pi * si;
                        gam += ri * ri;
                        del += wi * ri;
                    }
                } else {
                    let mvv = &vecs.mv[prev].read()[own.clone()];
                    let nvv = &vecs.nv.read()[own.clone()];
                    let pv = vecs.p.write(own.clone());
                    let sv = vecs.s.write(own.clone());
                    let qv = vecs.q.write(own.clone());
                    let zzv = vecs.zz.write(own.clone());
                    let uv = vecs.u.write(own.clone());
                    let rv = vecs.r.write(own.clone());
                    let zv = vecs.z.write(own.clone());
                    let wv = vecs.w[0].write(own.clone());
                    for i in 0..own.len() {
                        let pi = zv[i] + beta * pv[i];
                        let si = wv[i] + beta * sv[i];
                        let qi = mvv[i] + beta * qv[i];
                        let zzi = nvv[i] + beta * zzv[i];
                        pv[i] = pi;
                        sv[i] = si;
                        qv[i] = qi;
                        zzv[i] = zzi;
                        uv[i] += alpha * pi;
                        let ri = rv[i] - alpha * si;
                        rv[i] = ri;
                        let zi = zv[i] - alpha * qi;
                        zv[i] = zi;
                        let wi = wv[i] - alpha * zzi;
                        wv[i] = wi;
                        let a = pi.abs();
                        if a > max_p {
                            max_p = a;
                        }
                        ps += pi * si;
                        gam += ri * zi;
                        del += wi * zi;
                    }
                }
                vecs.change[pk].write_at(t, alpha.abs() * max_p);
                vecs.guard[pk].write_at(t, ps);
                vecs.gamma[pk].write_at(t, gam);
                vecs.delta[pk].write_at(t, del);
            }
            let ticket = split.arrive();

            // --- overlapped heavy phase: mv = M⁻¹w, nv = K·mv -------------
            // Fault points: the planned msolve fault perturbs mv (the
            // iteration's preconditioner application) behind its final
            // barrier; the planned SpMV fault perturbs the owner's fresh
            // nv strip, which only the owner reads before the next parity
            // rotation — no extra barrier.
            if m_zero {
                // mv ≡ w: the K·w SpMV reads w cross-strip — one barrier.
                barrier.wait();
                unsafe {
                    let wv = vecs.w[pk].read();
                    let out = vecs.nv.write(own.clone());
                    self.strip_spmv(wv, out, own.clone());
                    if let Some((index, kind)) = claim_fault(plan, FaultTarget::Spmv, iter, &own) {
                        out[index - own.start] = perturb(out[index - own.start], kind);
                    }
                }
            } else {
                // The polynomial msolve's fused first phase reads its
                // input w cross-strip (the sweep reads own-strip): one
                // extra barrier after the own-strip update above.
                if self.poly.is_some() {
                    barrier.wait();
                }
                self.msolve_phases(
                    &own,
                    t,
                    vecs.w[0],
                    vecs.mv[pk],
                    vecs.y,
                    pscr,
                    None,
                    None,
                    barrier,
                );
                self.inject_msolve_fault(plan, iter, &own, vecs.mv[pk], None, barrier);
                unsafe {
                    let mvv = vecs.mv[pk].read();
                    let out = vecs.nv.write(own.clone());
                    self.strip_spmv(mvv, out, own.clone());
                    if let Some((index, kind)) = claim_fault(plan, FaultTarget::Spmv, iter, &own) {
                        out[index - own.start] = perturb(out[index - own.start], kind);
                    }
                }
            }
            split.wait(ticket);

            // --- replicated decisions (reduction consumed HERE, after the
            // heavy phase — the wait is the late half of the split) -------
            let change = unsafe { vecs.change[pk].read().iter().fold(0.0f64, |a, &b| a.max(b)) };
            let gamma_new: f64 = unsafe { vecs.gamma[pk].read().iter().sum() };
            let delta: f64 = unsafe { vecs.delta[pk].read().iter().sum() };
            let ps: f64 = unsafe { vecs.guard[pk].read().iter().sum() };
            phases += 1;
            if !change.is_finite() {
                // ‖Δu‖∞ swallows NaN but surfaces Inf: a poisoned update.
                faults += 1;
                finish(status::FALLBACK, iter, change, phases, audits, faults);
                return;
            }
            if change < opts.tol {
                finish(status::CONVERGED, iter, change, phases, audits, faults);
                return;
            }
            if iter == opts.max_iterations {
                finish(status::BUDGET, iter, change, phases, audits, faults);
                return;
            }
            if !(gamma_new.is_finite() && delta.is_finite() && ps.is_finite()) {
                faults += 1;
                finish(status::FALLBACK, iter, change, phases, audits, faults);
                return;
            }
            // Guards: γ′ = (r, z) is a product of two recurrence carries
            // (not a fresh quadratic form), so every nonpositive scalar
            // routes to the fallback rung — see the serial loop's docs.
            if gamma_new <= 0.0 || ps <= 0.0 {
                finish(status::FALLBACK, iter, change, phases, audits, faults);
                return;
            }
            let beta_new = gamma_new / gamma.max(1e-300);
            let denom = delta - beta_new * gamma_new / alpha;
            if !(denom.is_finite() && denom > 0.0) {
                finish(status::FALLBACK, iter, change, phases, audits, faults);
                return;
            }
            beta = beta_new;
            alpha = gamma_new / denom;
            gamma = gamma_new;
        }
    }

    /// The classic schedule's restart phase, shared by the audit-replace
    /// and non-finite recovery paths: refresh `r` to the true residual —
    /// adopting the audited copy when one is on hand (`fresh`), else
    /// recomputing `r ← f − K·u` over the strip — then re-derive
    /// `z = M⁻¹r`, `p ← z` and the `(z, r)` partial exactly like the init
    /// sequence, returning the replicated fresh scalar.
    ///
    /// No barrier precedes the `r` overwrite: every entry point has just
    /// consumed a replicated scalar (all workers are past its publishing
    /// barrier), and the classic schedule never reads `r` cross-strip.
    /// The polynomial msolve *does* read `r` cross-strip in its fused
    /// first phase, so one extra barrier separates the overwrite from it.
    #[allow(clippy::too_many_arguments)]
    fn reinit_phase(
        &self,
        own: &std::ops::Range<usize>,
        t: usize,
        f: &[f64],
        u: &SharedVec,
        r: &SharedVec,
        z: &SharedVec,
        p: &SharedVec,
        y: &SharedVec,
        pscr: &PolyScratch<'_>,
        rz_partials: &SharedVec,
        barrier: &SpinBarrier,
        fresh: Option<&SharedVec>,
    ) -> f64 {
        unsafe {
            match fresh {
                Some(aud) => {
                    let av = aud.read();
                    r.write(own.clone()).copy_from_slice(&av[own.clone()]);
                }
                None => {
                    let uv = u.read();
                    let ro = r.write(own.clone());
                    self.strip_spmv(uv, ro, own.clone());
                    for (k, i) in own.clone().enumerate() {
                        ro[k] = f[i] - ro[k];
                    }
                }
            }
        }
        if self.poly.is_some() {
            barrier.wait();
        }
        self.msolve_phases(own, t, r, z, y, pscr, Some(p), Some(rz_partials), barrier);
        unsafe { rz_partials.read().iter().sum() }
    }

    /// The fused audit phase shared by every schedule: `aud ← f − K·u`
    /// over the strip ⊕ the squared-deviation partial against the
    /// recurrence carry `r` — one barrier — then the replicated deviation
    /// sum. `u` and `r` were finalized by the previous iteration's
    /// barriers; `aud` and the partial bank are only ever read own-strip
    /// before the next audit, which is at least a period of barriers
    /// away.
    #[allow(clippy::too_many_arguments)]
    fn audit_phase(
        &self,
        own: &std::ops::Range<usize>,
        t: usize,
        f: &[f64],
        u: &SharedVec,
        r: &SharedVec,
        aud: &SharedVec,
        dev_partials: &SharedVec,
        barrier: &SpinBarrier,
    ) -> f64 {
        unsafe {
            let uv = u.read();
            let out = aud.write(own.clone());
            self.strip_spmv(uv, out, own.clone());
            let rv = r.read();
            let mut dev2 = 0.0;
            for (k, i) in own.clone().enumerate() {
                let rt = f[i] - out[k];
                out[k] = rt;
                let d = rt - rv[i];
                dev2 += d * d;
            }
            dev_partials.write_at(t, dev2);
        }
        barrier.wait();
        unsafe { dev_partials.read().iter().sum() }
    }

    /// Apply a planned preconditioner-output fault *after* the msolve's
    /// final barrier: the owner of `index` perturbs the output (and the
    /// initialized `p⁰` copy, when given — the init fuses `p ← z` into
    /// the sweep, so the fault must land in both). Because the next phase
    /// may read the output cross-strip, every worker crosses one extra
    /// barrier on fault iterations — the lookup is replicated, so the
    /// decision is unanimous and the crossing count stays in lockstep.
    fn inject_msolve_fault(
        &self,
        plan: Option<&FaultPlan>,
        iteration: usize,
        own: &std::ops::Range<usize>,
        z: &SharedVec,
        p0: Option<&SharedVec>,
        barrier: &SpinBarrier,
    ) {
        if let Some(fault) = plan.and_then(|pl| pl.find(FaultTarget::Msolve, iteration)) {
            if own.contains(&fault.index) {
                unsafe {
                    let v = perturb(z.read()[fault.index], fault.kind);
                    z.write_at(fault.index, v);
                    if let Some(p) = p0 {
                        p.write_at(fault.index, v);
                    }
                }
            }
            barrier.wait();
        }
    }

    /// The single-reduction schedule's `w = K·z` phase: write the strip of
    /// `w`, fuse in the `(w, z)` partial — and, for plain CG (`m_zero`,
    /// where `z ≡ r` and no preconditioner phase exists to carry it), the
    /// `(r, r)` partial — then barrier. The strip of `w` this worker just
    /// wrote is exactly the strip the partial reads, so no reduction needs
    /// a barrier of its own. Used verbatim at init and in the iteration
    /// loop: the two reduction points must stay arithmetically identical.
    #[allow(clippy::too_many_arguments)]
    fn w_phase(
        &self,
        own: &std::ops::Range<usize>,
        t: usize,
        m_zero: bool,
        r: &SharedVec,
        z: &SharedVec,
        w: &SharedVec,
        wz_partials: &SharedVec,
        rz_partials: &SharedVec,
        barrier: &SpinBarrier,
        fault: Option<(usize, FaultKind)>,
    ) {
        unsafe {
            let zv = if m_zero { r.read() } else { z.read() };
            let out = w.write(own.clone());
            self.strip_spmv(zv, out, own.clone());
            if let Some((index, kind)) = fault {
                out[index - own.start] = perturb(out[index - own.start], kind);
            }
            wz_partials.write_at(t, vecops::dot(&zv[own.clone()], out));
            if m_zero {
                rz_partials.write_at(t, vecops::dot(&zv[own.clone()], &zv[own.clone()]));
            }
        }
        barrier.wait();
    }

    /// Barrier-per-color m-step SSOR solve `z ← M⁻¹ r` (ω = 1), or a plain
    /// copy when no coefficients are set (plain CG).
    ///
    /// Two fusions remove the surrounding barriers:
    /// * the `w₀ = 0` start is folded into the first forward sweep (step 1
    ///   reads neither `z` outside the current pass nor the `y` cache, so
    ///   the old zero-fill phase and its barrier are gone), exactly like
    ///   the sequential `MulticolorSsor::forward_first`;
    /// * the **final color phase** additionally forms this worker's
    ///   `(z, r)` strip partial when a bank is supplied (`rz_partials =
    ///   Some`; the pipelined schedule's auxiliary solves pass `None`) —
    ///   every `z` element of the strip was written by this worker in
    ///   this or an earlier phase of the solve, so the partial needs no
    ///   extra barrier — and, during initialization (`p0 = Some`), copies
    ///   the strip into `p⁰`.
    #[allow(clippy::too_many_arguments)]
    fn msolve_phases(
        &self,
        own: &std::ops::Range<usize>,
        t: usize,
        r: &SharedVec,
        z: &SharedVec,
        y: &SharedVec,
        pscr: &PolyScratch<'_>,
        p0: Option<&SharedVec>,
        rz_partials: Option<&SharedVec>,
        barrier: &SpinBarrier,
    ) {
        if let Some(poly) = &self.poly {
            self.poly_msolve_phases(poly, own, t, r, z, y, pscr, p0, rz_partials, barrier);
            return;
        }
        // Tail fused into the final phase, before its barrier. SAFETY of
        // the reads: only own-strip elements of z are touched, and all of
        // them were written by this worker (ownership is strip ∩ color);
        // r was finalized before the preconditioner began.
        let tail = || unsafe {
            let zs = z.read();
            let rs = r.read();
            if let Some(p) = p0 {
                p.write(own.clone()).copy_from_slice(&zs[own.clone()]);
            }
            if let Some(bank) = rz_partials {
                bank.write_at(t, vecops::dot(&zs[own.clone()], &rs[own.clone()]));
            }
        };
        if self.alphas.is_empty() {
            unsafe {
                let rs = r.read();
                z.write(own.clone()).copy_from_slice(&rs[own.clone()]);
            }
            tail();
            barrier.wait();
            return;
        }
        let m = self.alphas.len();
        let nb = self.colors.num_blocks();
        for s in 1..=m {
            let alpha = self.alphas[m - s];
            let first_step = s == 1;
            let last_step = s == m;
            // Forward pass: one barrier per color. Within a color phase,
            // each row is written by exactly one worker (own ∩ color) and
            // reads only other colors (finalized) — the multicolor
            // guarantee. In the first step the upper half-sums are
            // structurally zero (fused `w₀ = 0` start), so the stale `y`
            // cache is never read.
            for c in 0..nb {
                let blk = self.colors.range(c);
                let lo = blk.start.max(own.start);
                let hi = blk.end.min(own.end);
                let last = c == nb - 1;
                unsafe {
                    let rv = r.read();
                    let zv = z.read();
                    let yv = y.read();
                    for i in lo..hi {
                        let lower = self.half_sum(i, zv, true);
                        let upper = if last || first_step { 0.0 } else { yv[i] };
                        let xi = (alpha * rv[i] - lower - upper) * self.inv_diag[i];
                        z.write_at(i, xi);
                        y.write_at(i, lower);
                    }
                }
                if last_step && last && nb == 1 {
                    // Single color: no backward pass — this is the final
                    // phase of the whole solve.
                    tail();
                }
                barrier.wait();
            }
            // Backward pass (skip the idempotent last color at ω = 1).
            for c in (0..nb.saturating_sub(1)).rev() {
                let blk = self.colors.range(c);
                let lo = blk.start.max(own.start);
                let hi = blk.end.min(own.end);
                unsafe {
                    let rv = r.read();
                    let zv = z.read();
                    let yv = y.read();
                    for i in lo..hi {
                        let upper = self.half_sum(i, zv, false);
                        let lower = yv[i];
                        let xi = (alpha * rv[i] - lower - upper) * self.inv_diag[i];
                        z.write_at(i, xi);
                        y.write_at(i, upper);
                    }
                }
                if last_step && c == 0 {
                    tail();
                }
                barrier.wait();
            }
        }
    }

    /// Barrier-free polynomial msolve `z ← p(G)·D⁻¹r`, `G = D⁻¹K`:
    /// exactly `degree` fused SpMV phases, one full barrier each, **zero
    /// color sweeps**.
    ///
    /// Phase 1 folds the recurrence seed (`z₀ = s₀·D⁻¹r`, `d₀ = z₀`) into
    /// the first SpMV: `K·z₀` is accumulated on the fly from the input
    /// `r` — a cross-strip read, which every call site guarantees is
    /// separated from the last write of `r` by a barrier (the sweep
    /// msolve reads `r` own-strip only, so the pipelined schedule and the
    /// restart path insert one extra barrier for the polynomial — counted
    /// in the pinned formulas). Each phase then applies one difference
    /// step own-strip — the `vecops::poly_step_chunk` arithmetic, term
    /// for term, so the chain is bitwise identical to the serial
    /// [`mspcg_core::PolynomialPreconditioner`] on identical inputs.
    ///
    /// The iterate banks alternate between the caller's `z` and the
    /// scratch bank `zb`, phased so the **final** step lands in the
    /// caller's vector (`z` is written by phase `j` iff `k − j` is even).
    /// A phase's SpMV reads the previous phase's bank cross-strip; the
    /// next write of that bank is separated from those reads by the
    /// intervening phase barrier — the same two-bank discipline as the
    /// pipelined schedule's parity rotation. The difference carry `d` and
    /// the `K·z` strip (parked in the SSOR half-sum cache `y`, which the
    /// polynomial path never touches) are own-strip only. The `(z, r)`
    /// partial and the init `p⁰ ← z` copy fuse into the final phase
    /// before its barrier, exactly like the sweep tail.
    #[allow(clippy::too_many_arguments)]
    fn poly_msolve_phases(
        &self,
        poly: &ParPoly,
        own: &std::ops::Range<usize>,
        t: usize,
        r: &SharedVec,
        z: &SharedVec,
        y: &SharedVec,
        pscr: &PolyScratch<'_>,
        p0: Option<&SharedVec>,
        rz_partials: Option<&SharedVec>,
        barrier: &SpinBarrier,
    ) {
        let scale0 = poly.schedule.scale0();
        let steps = poly.schedule.steps();
        let k = steps.len();
        let (d, zb) = (pscr.d, pscr.zb);
        for (step, &(aj, bj)) in steps.iter().enumerate() {
            let j = step + 1;
            let to_z = (k - j).is_multiple_of(2);
            unsafe {
                let rv = r.read();
                let kz = y.write(own.clone());
                if j == 1 {
                    // kz = K·z₀ with z₀ = scale₀·D⁻¹r formed on the fly
                    // (the same expression as the seed below, so the
                    // virtual z₀ is consistent across both uses).
                    for (o, i) in own.clone().enumerate() {
                        let mut acc = 0.0;
                        for e in self.row_ptr[i]..self.row_ptr[i + 1] {
                            let c = self.col_idx[e] as usize;
                            acc += self.values[e] * (scale0 * self.inv_diag[c] * rv[c]);
                        }
                        kz[o] = acc;
                    }
                } else {
                    let prev = if to_z { zb.read() } else { z.read() };
                    self.strip_spmv(prev, kz, own.clone());
                }
                let dv = d.write(own.clone());
                let out = if to_z {
                    z.write(own.clone())
                } else {
                    zb.write(own.clone())
                };
                if j == 1 {
                    // Seed and first step in one own-strip pass.
                    for (o, i) in own.clone().enumerate() {
                        let zi = scale0 * self.inv_diag[i] * rv[i];
                        let resid = self.inv_diag[i] * (rv[i] - kz[o]);
                        let di = aj * zi + bj * resid;
                        dv[o] = di;
                        out[o] = zi + di;
                    }
                } else {
                    let prev = if to_z { zb.read() } else { z.read() };
                    for (o, i) in own.clone().enumerate() {
                        let resid = self.inv_diag[i] * (rv[i] - kz[o]);
                        let di = aj * dv[o] + bj * resid;
                        dv[o] = di;
                        out[o] = prev[i] + di;
                    }
                }
                if j == k {
                    // Fused tail: z was fully written own-strip above.
                    let zs = z.read();
                    if let Some(p) = p0 {
                        p.write(own.clone()).copy_from_slice(&zs[own.clone()]);
                    }
                    if let Some(bank) = rz_partials {
                        bank.write_at(t, vecops::dot(&zs[own.clone()], &rv[own.clone()]));
                    }
                }
            }
            barrier.wait();
        }
    }

    #[inline]
    fn half_sum(&self, i: usize, x: &[f64], lower: bool) -> f64 {
        let (from, to) = if lower {
            (self.row_ptr[i], self.lo_split[i])
        } else {
            (self.hi_split[i], self.row_ptr[i + 1])
        };
        let mut s = 0.0;
        for k in from..to {
            s += self.values[k] * x[self.col_idx[k] as usize];
        }
        s
    }

    /// Single-threaded replica of the [`ParallelMStepPcg::msolve_phases`]
    /// SSOR arithmetic (`z ← M⁻¹ r`, ω = 1) off the extracted sweep
    /// table: same color order, same fused `w₀ = 0` first step, same
    /// half-sum cache — term for term, so the Lanczos probe below sees
    /// exactly the operator the workers apply. Requires nonempty
    /// `alphas`; `y` is the caller-owned half-sum cache.
    fn serial_msolve(&self, r: &[f64], z: &mut [f64], y: &mut [f64]) {
        let m = self.alphas.len();
        let nb = self.colors.num_blocks();
        for s in 1..=m {
            let alpha = self.alphas[m - s];
            let first_step = s == 1;
            for c in 0..nb {
                let last = c == nb - 1;
                for i in self.colors.range(c) {
                    let lower = self.half_sum(i, z, true);
                    let upper = if last || first_step { 0.0 } else { y[i] };
                    z[i] = (alpha * r[i] - lower - upper) * self.inv_diag[i];
                    y[i] = lower;
                }
            }
            for c in (0..nb.saturating_sub(1)).rev() {
                for i in self.colors.range(c) {
                    let upper = self.half_sum(i, z, false);
                    let lower = y[i];
                    z[i] = (alpha * r[i] - lower - upper) * self.inv_diag[i];
                    y[i] = upper;
                }
            }
        }
    }

    /// Eigenvalue bounds for the s-step Chebyshev basis recurrence —
    /// the SPMD counterpart of the serial solver's interval cache,
    /// sourced in the same priority order:
    ///
    /// 1. the polynomial configuration's construction-time interval
    ///    ([`ParPoly::interval`]) — the poly-precond ↔ s-step-basis half
    ///    of the one-estimate-per-operator cache, no second Lanczos run;
    /// 2. the instance-cached interval from an earlier s-step solve;
    /// 3. a fresh estimate, cached for every later solve: Lanczos (same
    ///    budget/seed/safeguard recipe as the serial rung) on the
    ///    composite `x ↦ M⁻¹(K x)` — `M⁻¹` evaluated by the
    ///    [`ParallelMStepPcg::serial_msolve`] replica so the probed
    ///    operator is bitwise the workers' — or on `K` itself for plain
    ///    CG. Runs on the main thread before any worker spawns.
    ///
    /// # Errors
    /// Lanczos breakdown ([`SparseError`] pass-through); the caller
    /// treats it as a detected setup fault and steps down the ladder.
    fn sstep_basis_interval(&self) -> Result<SpectralInterval, SparseError> {
        if let Some(p) = &self.poly {
            return Ok(p.interval);
        }
        if let Some(cached) = self.sstep_interval.get() {
            return Ok(*cached);
        }
        let n = self.dim();
        let est = {
            let mut tmp = vec![0.0; n];
            let mut ycache = vec![0.0; n];
            lanczos_extremes(n, SSTEP_SPECTRUM_STEPS, SSTEP_SPECTRUM_SEED, |x, out| {
                if self.alphas.is_empty() {
                    self.strip_spmv(x, out, 0..n);
                } else {
                    self.strip_spmv(x, &mut tmp, 0..n);
                    self.serial_msolve(&tmp, out, &mut ycache);
                }
            })?
        };
        let interval = safeguard_jacobi_interval(est);
        // A racing second estimate computed the same value (the recipe
        // is deterministic), so first-write-wins is harmless.
        Ok(*self.sstep_interval.get_or_init(|| interval))
    }
}

/// The fault the strip owning `index` must inject at `(target,
/// iteration)`, if any. Every worker evaluates the same replicated
/// lookup; only the owner acts (SpMV faults are applied to the owner's
/// freshly written strip before its fused partial, so no extra barrier
/// is needed).
fn claim_fault(
    plan: Option<&FaultPlan>,
    target: FaultTarget,
    iteration: usize,
    own: &std::ops::Range<usize>,
) -> Option<(usize, FaultKind)> {
    plan.and_then(|p| p.find(target, iteration))
        .filter(|fault| own.contains(&fault.index))
        .map(|fault| (fault.index, fault.kind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspcg_core::{pcg_solve, MStepSsorPreconditioner, PcgOptions};
    use mspcg_fem::plate::PlaneStressProblem;
    use mspcg_sparse::CsrMatrix;

    fn plate(a: usize) -> (CsrMatrix, Partition, Vec<f64>) {
        let asm = PlaneStressProblem::unit_square(a).assemble().unwrap();
        let ord = asm.multicolor().unwrap();
        (ord.matrix, ord.colors, ord.rhs)
    }

    #[test]
    fn matches_sequential_solver() {
        let (a, colors, rhs) = plate(8);
        let par = ParallelMStepPcg::new(&a, &colors, vec![1.0; 2]).unwrap();
        let rep = par
            .solve(
                &rhs,
                &ParallelSolverOptions {
                    threads: 4,
                    tol: 1e-8,
                    max_iterations: 10_000,
                    ..Default::default()
                },
            )
            .unwrap();
        let pre = MStepSsorPreconditioner::unparametrized(&a, &colors, 2).unwrap();
        let seq = pcg_solve(
            &a,
            &rhs,
            &pre,
            &PcgOptions {
                tol: 1e-8,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(rep.converged);
        // Iteration counts agree to within rounding slack.
        assert!(
            (rep.iterations as isize - seq.iterations as isize).abs() <= 2,
            "par {} vs seq {}",
            rep.iterations,
            seq.iterations
        );
        for (u, v) in rep.x.iter().zip(&seq.x) {
            assert!((u - v).abs() < 1e-6, "{u} vs {v}");
        }
    }

    #[test]
    fn plain_cg_mode_works() {
        let (a, colors, rhs) = plate(6);
        let par = ParallelMStepPcg::new(&a, &colors, vec![]).unwrap();
        assert_eq!(par.m(), 0);
        let rep = par
            .solve(
                &rhs,
                &ParallelSolverOptions {
                    threads: 3,
                    tol: 1e-8,
                    max_iterations: 10_000,
                    ..Default::default()
                },
            )
            .unwrap();
        let exact = a.to_dense().cholesky().unwrap().solve(&rhs);
        for (u, v) in rep.x.iter().zip(&exact) {
            assert!((u - v).abs() < 1e-5);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let (a, colors, rhs) = plate(7);
        let par = ParallelMStepPcg::new(&a, &colors, vec![1.0; 3]).unwrap();
        let opts = ParallelSolverOptions {
            threads: 4,
            tol: 1e-8,
            max_iterations: 10_000,
            ..Default::default()
        };
        let r1 = par.solve(&rhs, &opts).unwrap();
        let r2 = par.solve(&rhs, &opts).unwrap();
        assert_eq!(r1.iterations, r2.iterations);
        assert_eq!(r1.x, r2.x); // bitwise: fixed reduction order
    }

    #[test]
    fn thread_count_insensitive_result() {
        let (a, colors, rhs) = plate(6);
        let par = ParallelMStepPcg::new(&a, &colors, vec![1.0]).unwrap();
        let solve = |threads: usize| {
            par.solve(
                &rhs,
                &ParallelSolverOptions {
                    threads,
                    tol: 1e-9,
                    max_iterations: 10_000,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let r1 = solve(1);
        let r4 = solve(4);
        assert_eq!(r1.iterations, r4.iterations);
        for (u, v) in r1.x.iter().zip(&r4.x) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    /// The acceptance gate of the operator abstraction: the SPMD solver
    /// driven through SELL-C-σ must replay the CSR run bitwise — same
    /// iterates, same iteration count, same final change — at every
    /// thread count.
    #[test]
    fn sellcs_operator_replays_csr_solver_bitwise() {
        let (a, colors, rhs) = plate(8);
        let sell = mspcg_sparse::SellCsMatrix::from_csr_default(&a);
        let par_csr = ParallelMStepPcg::new(&a, &colors, vec![1.0; 2]).unwrap();
        let par_sell = ParallelMStepPcg::new(&sell, &colors, vec![1.0; 2]).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let opts = ParallelSolverOptions {
                threads,
                tol: 1e-9,
                max_iterations: 10_000,
                ..Default::default()
            };
            let rc = par_csr.solve(&rhs, &opts).unwrap();
            let rs = par_sell.solve(&rhs, &opts).unwrap();
            assert_eq!(rc.iterations, rs.iterations, "threads = {threads}");
            assert_eq!(
                rc.final_change.to_bits(),
                rs.final_change.to_bits(),
                "threads = {threads}"
            );
            assert!(
                rc.x.iter()
                    .zip(&rs.x)
                    .all(|(u, v)| u.to_bits() == v.to_bits()),
                "solution differs between formats at threads = {threads}"
            );
        }
    }

    #[test]
    fn budget_exhaustion_reported() {
        let (a, colors, rhs) = plate(6);
        let par = ParallelMStepPcg::new(&a, &colors, vec![1.0]).unwrap();
        let err = par.solve(
            &rhs,
            &ParallelSolverOptions {
                threads: 2,
                tol: 1e-14,
                max_iterations: 2,
                ..Default::default()
            },
        );
        assert!(matches!(err, Err(SparseError::DidNotConverge { .. })));
    }

    #[test]
    fn zero_iteration_budget_is_exhaustion_not_convergence() {
        let (a, colors, rhs) = plate(6);
        let par = ParallelMStepPcg::new(&a, &colors, vec![1.0]).unwrap();
        let err = par.solve(
            &rhs,
            &ParallelSolverOptions {
                threads: 2,
                tol: 1e-8,
                max_iterations: 0,
                ..Default::default()
            },
        );
        assert!(matches!(
            err,
            Err(SparseError::DidNotConverge { iterations: 0, .. })
        ));
    }

    fn variant_opts(variant: PcgVariant, threads: usize, tol: f64) -> ParallelSolverOptions {
        ParallelSolverOptions {
            threads,
            tol,
            max_iterations: 10_000,
            variant,
            // The schedule-pinning tests assert exact crossing counts, so
            // the audit phase must stay off regardless of env overrides.
            recovery: RecoveryPolicy::off(),
        }
    }

    #[test]
    fn single_reduction_matches_classic_solution() {
        let (a, colors, rhs) = plate(8);
        let par = ParallelMStepPcg::new(&a, &colors, vec![1.0; 2]).unwrap();
        let classic = par
            .solve(&rhs, &variant_opts(PcgVariant::Classic, 4, 1e-8))
            .unwrap();
        let sr = par
            .solve(&rhs, &variant_opts(PcgVariant::SingleReduction, 4, 1e-8))
            .unwrap();
        assert!(classic.converged && sr.converged);
        assert_eq!(classic.variant, PcgVariant::Classic);
        assert_eq!(sr.variant, PcgVariant::SingleReduction);
        assert!(
            (classic.iterations as isize - sr.iterations as isize).abs() <= 2,
            "classic {} vs single-reduction {}",
            classic.iterations,
            sr.iterations
        );
        for (x, y) in classic.x.iter().zip(&sr.x) {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    /// The acceptance gate of the single-reduction schedule: the
    /// instrumented barrier proves `m·(2C−1) + 2` barriers per iteration
    /// (classic: `m·(2C−1) + 3`), and the replicated-reduction counter
    /// proves ONE reduction phase per iteration (classic: two).
    #[test]
    fn barrier_counter_proves_single_reduction_schedule() {
        let (a, colors, rhs) = plate(8);
        let c = colors.num_blocks();
        for m in [1usize, 2, 3] {
            let par = ParallelMStepPcg::new(&a, &colors, vec![1.0; m]).unwrap();
            let sweep = m * (2 * c - 1);
            for threads in [1usize, 4] {
                let classic = par
                    .solve(&rhs, &variant_opts(PcgVariant::Classic, threads, 1e-8))
                    .unwrap();
                let sr = par
                    .solve(
                        &rhs,
                        &variant_opts(PcgVariant::SingleReduction, threads, 1e-8),
                    )
                    .unwrap();
                let (kc, ks) = (classic.iterations, sr.iterations);
                assert!(kc >= 1 && ks >= 1);
                // Classic: init sweep, k−1 full iterations of sweep + 3
                // barriers, converging iteration stops after its second.
                assert_eq!(
                    classic.barrier_crossings,
                    sweep + (kc - 1) * (sweep + 3) + 2,
                    "classic barrier count, m = {m}, threads = {threads}"
                );
                // Single-reduction: init sweep + the w-phase barrier, k−1
                // full iterations of sweep + 2, converging iteration stops
                // after the mega-update barrier.
                assert_eq!(
                    sr.barrier_crossings,
                    sweep + 1 + (ks - 1) * (sweep + 2) + 1,
                    "single-reduction barrier count, m = {m}, threads = {threads}"
                );
                // Reduction phases: two per classic iteration, ONE per
                // single-reduction iteration (init phase included, the
                // converging iteration's phases as scheduled above).
                assert_eq!(classic.reduction_phases, 2 * kc, "classic phases, m = {m}");
                assert_eq!(sr.reduction_phases, ks, "single-reduction phases, m = {m}");
            }
        }
    }

    #[test]
    fn plain_cg_single_reduction_runs_two_barriers_per_iteration() {
        let (a, colors, rhs) = plate(6);
        let par = ParallelMStepPcg::new(&a, &colors, vec![]).unwrap();
        let sr = par
            .solve(&rhs, &variant_opts(PcgVariant::SingleReduction, 3, 1e-8))
            .unwrap();
        assert!(sr.converged);
        // z ≡ r drops the preconditioner phases entirely: 1 init barrier,
        // 2 per full iteration, 1 on the converging iteration.
        assert_eq!(sr.barrier_crossings, 2 * sr.iterations);
        let exact = a.to_dense().cholesky().unwrap().solve(&rhs);
        for (x, v) in sr.x.iter().zip(&exact) {
            assert!((x - v).abs() < 1e-5);
        }
    }

    #[test]
    fn single_reduction_is_deterministic_and_format_insensitive() {
        let (a, colors, rhs) = plate(7);
        let sell = mspcg_sparse::SellCsMatrix::from_csr_default(&a);
        let par_csr = ParallelMStepPcg::new(&a, &colors, vec![1.0; 2]).unwrap();
        let par_sell = ParallelMStepPcg::new(&sell, &colors, vec![1.0; 2]).unwrap();
        let opts = variant_opts(PcgVariant::SingleReduction, 4, 1e-9);
        let r1 = par_csr.solve(&rhs, &opts).unwrap();
        let r2 = par_csr.solve(&rhs, &opts).unwrap();
        // Bitwise reproducible within the variant.
        assert_eq!(r1.iterations, r2.iterations);
        assert_eq!(r1.x, r2.x);
        // And across storage formats (one extracted sweep table).
        let rs = par_sell.solve(&rhs, &opts).unwrap();
        assert_eq!(r1.iterations, rs.iterations);
        assert!(r1
            .x
            .iter()
            .zip(&rs.x)
            .all(|(u, v)| u.to_bits() == v.to_bits()));
    }

    #[test]
    fn single_reduction_budget_and_zero_budget_match_classic_reporting() {
        let (a, colors, rhs) = plate(6);
        let par = ParallelMStepPcg::new(&a, &colors, vec![1.0]).unwrap();
        let err = par.solve(
            &rhs,
            &ParallelSolverOptions {
                threads: 2,
                tol: 1e-14,
                max_iterations: 2,
                variant: PcgVariant::SingleReduction,
                ..Default::default()
            },
        );
        assert!(matches!(
            err,
            Err(SparseError::DidNotConverge { iterations: 2, .. })
        ));
        let err = par.solve(
            &rhs,
            &ParallelSolverOptions {
                threads: 2,
                tol: 1e-8,
                max_iterations: 0,
                variant: PcgVariant::SingleReduction,
                ..Default::default()
            },
        );
        assert!(matches!(
            err,
            Err(SparseError::DidNotConverge { iterations: 0, .. })
        ));
    }

    #[test]
    fn pipelined_matches_classic_solution() {
        let (a, colors, rhs) = plate(8);
        let par = ParallelMStepPcg::new(&a, &colors, vec![1.0; 2]).unwrap();
        let classic = par
            .solve(&rhs, &variant_opts(PcgVariant::Classic, 4, 1e-8))
            .unwrap();
        let pl = par
            .solve(&rhs, &variant_opts(PcgVariant::Pipelined, 4, 1e-8))
            .unwrap();
        assert!(classic.converged && pl.converged);
        assert_eq!(pl.variant, PcgVariant::Pipelined, "fell back unexpectedly");
        assert!(
            (classic.iterations as isize - pl.iterations as isize).abs() <= 3,
            "classic {} vs pipelined {}",
            classic.iterations,
            pl.iterations
        );
        for (x, y) in classic.x.iter().zip(&pl.x) {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    /// The acceptance gate of the pipelined schedule, by exact formula.
    ///
    /// `sweep = m·(2C−1)` full-barrier crossings per msolve. For a run of
    /// `I` iterations (the converging iteration runs its full schedule —
    /// its heavy phase is speculative, the price of the overlap):
    ///
    /// * **m ≥ 1 — spin crossings `(I + 2)·sweep`:** init runs TWO
    ///   msolves (`z⁰ = M⁻¹f`, then `mv⁰ = M⁻¹w⁰`) and each iteration
    ///   exactly one. *No other full barrier exists*: the update
    ///   mega-phase touches own strips only, so its trailing barrier is
    ///   replaced by the split `arrive`, and the `nv = K·mv` SpMV needs
    ///   none because `nv` is only ever read own-strip and the `mv` bank
    ///   it reads cross-strip rotates by parity.
    /// * **m = 0 — spin crossings `I + 1`:** the single full barrier per
    ///   iteration (plus one at init) separates the rotated w-bank write
    ///   from the cross-strip `K·w` read; there is no preconditioner.
    /// * **split crossings `I + 1`:** exactly one reduction in flight per
    ///   iteration (plus init) — `arrive` directly after the update
    ///   phase's partials, `wait` only after the preconditioner + SpMV.
    ///   Together with the spin formulas this *proves* the overlap: no
    ///   full barrier sits between the partial publication and the heavy
    ///   phase, so the only reduction synchronization is the split wait,
    ///   which the schedule places after the heavy phase.
    /// * **reduction phases `I + 1`:** one per iteration plus init (the
    ///   converging iteration's γ′/δ ride the same wait as its stopping
    ///   test, so it is counted too).
    ///
    /// The classic and single-reduction schedules must be byte-for-byte
    /// unchanged by the pipelined addition — their formulas are asserted
    /// here as well (at m ≥ 1; the existing counter test pins them too),
    /// along with `split_crossings == 0`: those schedules never touch the
    /// split barrier.
    #[test]
    fn barrier_counter_proves_pipelined_schedule() {
        let (a, colors, rhs) = plate(8);
        let c = colors.num_blocks();
        for m in [0usize, 1, 2, 3] {
            let par = ParallelMStepPcg::new(&a, &colors, vec![1.0; m]).unwrap();
            let sweep = m * (2 * c - 1);
            for threads in [1usize, 4] {
                let pl = par
                    .solve(&rhs, &variant_opts(PcgVariant::Pipelined, threads, 1e-8))
                    .unwrap();
                assert!(pl.converged);
                assert_eq!(
                    pl.variant,
                    PcgVariant::Pipelined,
                    "fell back, m = {m}, threads = {threads}"
                );
                let i = pl.iterations;
                assert!(i >= 1);
                let expected_spin = if m == 0 { i + 1 } else { (i + 2) * sweep };
                assert_eq!(
                    pl.barrier_crossings, expected_spin,
                    "pipelined spin-barrier count, m = {m}, threads = {threads}"
                );
                assert_eq!(
                    pl.split_crossings,
                    i + 1,
                    "pipelined split-barrier count, m = {m}, threads = {threads}"
                );
                assert_eq!(
                    pl.reduction_phases,
                    i + 1,
                    "pipelined reduction phases, m = {m}, threads = {threads}"
                );

                // Classic and single-reduction schedules unchanged (and
                // split-barrier free).
                let classic = par
                    .solve(&rhs, &variant_opts(PcgVariant::Classic, threads, 1e-8))
                    .unwrap();
                let sr = par
                    .solve(
                        &rhs,
                        &variant_opts(PcgVariant::SingleReduction, threads, 1e-8),
                    )
                    .unwrap();
                assert_eq!(classic.split_crossings, 0);
                assert_eq!(sr.split_crossings, 0);
                let (kc, ks) = (classic.iterations, sr.iterations);
                // Classic m = 0 still pays a one-barrier z ← r copy phase
                // where an m ≥ 1 run pays the sweep.
                let msolve = if m == 0 { 1 } else { sweep };
                assert_eq!(
                    classic.barrier_crossings,
                    msolve + (kc - 1) * (msolve + 3) + 2,
                    "classic barrier count changed, m = {m}, threads = {threads}"
                );
                if m == 0 {
                    // SR plain CG: z ≡ r, two barriers per iteration.
                    assert_eq!(sr.barrier_crossings, 2 * ks);
                } else {
                    assert_eq!(
                        sr.barrier_crossings,
                        sweep + 1 + (ks - 1) * (sweep + 2) + 1,
                        "single-reduction barrier count changed, m = {m}"
                    );
                }
            }
        }
    }

    #[test]
    fn pipelined_is_deterministic_and_format_insensitive() {
        let (a, colors, rhs) = plate(7);
        let sell = mspcg_sparse::SellCsMatrix::from_csr_default(&a);
        let par_csr = ParallelMStepPcg::new(&a, &colors, vec![1.0; 2]).unwrap();
        let par_sell = ParallelMStepPcg::new(&sell, &colors, vec![1.0; 2]).unwrap();
        let opts = variant_opts(PcgVariant::Pipelined, 4, 1e-8);
        let r1 = par_csr.solve(&rhs, &opts).unwrap();
        let r2 = par_csr.solve(&rhs, &opts).unwrap();
        // Bitwise reproducible within the variant.
        assert_eq!(r1.iterations, r2.iterations);
        assert_eq!(r1.x, r2.x);
        // And across storage formats (one extracted sweep table).
        let rs = par_sell.solve(&rhs, &opts).unwrap();
        assert_eq!(r1.iterations, rs.iterations);
        assert!(r1
            .x
            .iter()
            .zip(&rs.x)
            .all(|(u, v)| u.to_bits() == v.to_bits()));
    }

    #[test]
    fn pipelined_plain_cg_converges_on_one_barrier_per_iteration() {
        let (a, colors, rhs) = plate(6);
        let par = ParallelMStepPcg::new(&a, &colors, vec![]).unwrap();
        let pl = par
            .solve(&rhs, &variant_opts(PcgVariant::Pipelined, 3, 1e-8))
            .unwrap();
        assert!(pl.converged);
        assert_eq!(pl.barrier_crossings, pl.iterations + 1);
        assert_eq!(pl.split_crossings, pl.iterations + 1);
        let exact = a.to_dense().cholesky().unwrap().solve(&rhs);
        for (x, v) in pl.x.iter().zip(&exact) {
            assert!((x - v).abs() < 1e-5);
        }
    }

    #[test]
    fn pipelined_budget_and_zero_budget_match_classic_reporting() {
        let (a, colors, rhs) = plate(6);
        let par = ParallelMStepPcg::new(&a, &colors, vec![1.0]).unwrap();
        let err = par.solve(
            &rhs,
            &ParallelSolverOptions {
                threads: 2,
                tol: 1e-14,
                max_iterations: 2,
                variant: PcgVariant::Pipelined,
                ..Default::default()
            },
        );
        assert!(matches!(
            err,
            Err(SparseError::DidNotConverge { iterations: 2, .. })
        ));
        let err = par.solve(
            &rhs,
            &ParallelSolverOptions {
                threads: 2,
                tol: 1e-8,
                max_iterations: 0,
                variant: PcgVariant::Pipelined,
                ..Default::default()
            },
        );
        assert!(matches!(
            err,
            Err(SparseError::DidNotConverge { iterations: 0, .. })
        ));
    }

    #[test]
    fn rejects_unordered_matrix() {
        // A matrix with intra-block coupling must be rejected.
        let asm = PlaneStressProblem::unit_square(5).assemble().unwrap();
        let single = Partition::single(asm.matrix.rows());
        assert!(ParallelMStepPcg::new(&asm.matrix, &single, vec![1.0]).is_err());
    }

    #[test]
    fn more_threads_than_rows_is_clamped() {
        let (a, colors, rhs) = plate(4);
        let par = ParallelMStepPcg::new(&a, &colors, vec![1.0]).unwrap();
        let rep = par
            .solve(
                &rhs,
                &ParallelSolverOptions {
                    threads: 64,
                    tol: 1e-6,
                    max_iterations: 10_000,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(rep.converged);
        assert!(rep.threads <= a.rows());
    }

    #[test]
    fn rejects_poisoned_inputs_and_bad_tolerance() {
        let (a, colors, rhs) = plate(4);
        let par = ParallelMStepPcg::new(&a, &colors, vec![1.0]).unwrap();
        let mut bad = rhs.clone();
        bad[1] = f64::NAN;
        assert!(matches!(
            par.solve(&bad, &ParallelSolverOptions::default()),
            Err(SparseError::NonFinite { phase: "rhs", .. })
        ));
        bad[1] = f64::INFINITY;
        assert!(matches!(
            par.solve(&bad, &ParallelSolverOptions::default()),
            Err(SparseError::NonFinite { phase: "rhs", .. })
        ));
        for tol in [0.0, -1e-8, f64::NAN, f64::INFINITY] {
            let opts = ParallelSolverOptions {
                tol,
                ..Default::default()
            };
            assert!(
                matches!(
                    par.solve(&rhs, &opts),
                    Err(SparseError::InvalidTolerance { .. })
                ),
                "tol = {tol}"
            );
        }
    }

    /// The audit acceptance gate: on a clean run the fused `f − K·u`
    /// audit phase costs exactly ONE extra barrier crossing per audit, no
    /// reduction phase, fires `⌊(k − 1)/period⌋` times, never replaces —
    /// and leaves the iterate stream bitwise untouched on every schedule.
    #[test]
    fn audit_phase_costs_one_barrier_and_nothing_else() {
        let (a, colors, rhs) = plate(8);
        let par = ParallelMStepPcg::new(&a, &colors, vec![1.0]).unwrap();
        for variant in [
            PcgVariant::Classic,
            PcgVariant::SingleReduction,
            PcgVariant::Pipelined,
        ] {
            let off = par.solve(&rhs, &variant_opts(variant, 4, 1e-8)).unwrap();
            let mut opts = variant_opts(variant, 4, 1e-8);
            opts.recovery = RecoveryPolicy {
                replacement: mspcg_core::recovery::Toggle::On,
                audit_period: 4,
                ..RecoveryPolicy::default()
            };
            let on = par.solve(&rhs, &opts).unwrap();
            assert!(on.converged, "{variant:?}");
            assert_eq!(on.iterations, off.iterations, "{variant:?}");
            // Bitwise identical: the audit observes, it does not touch.
            assert!(
                on.x.iter()
                    .zip(&off.x)
                    .all(|(u, v)| u.to_bits() == v.to_bits()),
                "{variant:?}"
            );
            let audits = (off.iterations - 1) / 4;
            assert_eq!(on.audits, audits, "{variant:?}");
            assert_eq!(
                on.barrier_crossings,
                off.barrier_crossings + audits,
                "{variant:?}"
            );
            assert_eq!(on.reduction_phases, off.reduction_phases, "{variant:?}");
            assert_eq!(on.split_crossings, off.split_crossings, "{variant:?}");
            assert_eq!(
                (on.replacements, on.recoveries, on.faults_detected),
                (0, 0, 0),
                "{variant:?}"
            );
        }
    }

    fn exact_solution(a: &CsrMatrix, rhs: &[f64]) -> Vec<f64> {
        a.to_dense().cholesky().unwrap().solve(rhs)
    }

    fn nan_msolve_at(iteration: usize) -> FaultPlan {
        FaultPlan::new(vec![mspcg_core::recovery::IterationFault {
            target: FaultTarget::Msolve,
            iteration,
            index: 3,
            kind: FaultKind::NaN,
        }])
    }

    #[test]
    fn classic_absorbs_nan_msolve_fault_in_place() {
        let (a, colors, rhs) = plate(6);
        let par = ParallelMStepPcg::new(&a, &colors, vec![1.0]).unwrap();
        let rep = par
            .solve_with_faults(
                &rhs,
                &variant_opts(PcgVariant::Classic, 4, 1e-8),
                &nan_msolve_at(2),
            )
            .unwrap();
        assert!(rep.converged);
        assert_eq!(rep.variant, PcgVariant::Classic);
        // One non-finite β-scalar detection, one in-place restart, no
        // ladder motion, no audit phases (policy pinned off).
        assert_eq!(
            (
                rep.faults_detected,
                rep.replacements,
                rep.recoveries,
                rep.audits
            ),
            (1, 1, 0, 0)
        );
        for (x, v) in rep.x.iter().zip(&exact_solution(&a, &rhs)) {
            assert!((x - v).abs() < 1e-5, "{x} vs {v}");
        }
    }

    /// The persistent-fault ladder walk: the planned fault is
    /// iteration-indexed and every rung rerun restarts the counter, so it
    /// re-fires on each rung — detector-only rungs step down, the classic
    /// rung absorbs it. Counters prove the exact path.
    #[test]
    fn recurrence_schedules_walk_the_ladder_under_persistent_fault() {
        let (a, colors, rhs) = plate(6);
        let par = ParallelMStepPcg::new(&a, &colors, vec![1.0]).unwrap();
        let exact = exact_solution(&a, &rhs);

        // SingleReduction: detect at the poisoned γ′ → one step down →
        // classic absorbs the re-fired fault in place.
        let sr = par
            .solve_with_faults(
                &rhs,
                &variant_opts(PcgVariant::SingleReduction, 4, 1e-8),
                &nan_msolve_at(2),
            )
            .unwrap();
        assert!(sr.converged);
        assert_eq!(sr.variant, PcgVariant::Classic);
        assert_eq!(
            (
                sr.faults_detected,
                sr.replacements,
                sr.recoveries,
                sr.audits
            ),
            (2, 1, 1, 0)
        );
        for (x, v) in sr.x.iter().zip(&exact) {
            assert!((x - v).abs() < 1e-5, "{x} vs {v}");
        }

        // Pipelined: the poisoned auxiliary surfaces one iteration later
        // in γ′/δ → two steps down, three detections total.
        let pl = par
            .solve_with_faults(
                &rhs,
                &variant_opts(PcgVariant::Pipelined, 4, 1e-8),
                &nan_msolve_at(2),
            )
            .unwrap();
        assert!(pl.converged);
        assert_eq!(pl.variant, PcgVariant::Classic);
        assert_eq!(
            (
                pl.faults_detected,
                pl.replacements,
                pl.recoveries,
                pl.audits
            ),
            (3, 1, 2, 0)
        );
        for (x, v) in pl.x.iter().zip(&exact) {
            assert!((x - v).abs() < 1e-5, "{x} vs {v}");
        }
    }

    /// A large-but-finite SpMV corruption slips every non-finite check —
    /// only the residual audit can see it. The classic schedule replaces
    /// the drifted carry and still converges to the true solution.
    #[test]
    fn audit_catches_finite_spmv_corruption_and_replaces() {
        let (a, colors, rhs) = plate(6);
        let par = ParallelMStepPcg::new(&a, &colors, vec![1.0]).unwrap();
        let mut opts = variant_opts(PcgVariant::Classic, 4, 1e-10);
        opts.recovery = RecoveryPolicy {
            replacement: mspcg_core::recovery::Toggle::On,
            audit_period: 4,
            ..RecoveryPolicy::default()
        };
        let plan = FaultPlan::new(vec![mspcg_core::recovery::IterationFault {
            target: FaultTarget::Spmv,
            iteration: 2,
            index: 3,
            kind: FaultKind::ScaledNoise(0.5),
        }]);
        let rep = par.solve_with_faults(&rhs, &opts, &plan).unwrap();
        assert!(rep.converged);
        // The drift is finite: no non-finite detection fires, the audit at
        // iteration 5 replaces once, and later audits stay clean.
        assert_eq!(
            (rep.faults_detected, rep.replacements, rep.recoveries),
            (0, 1, 0)
        );
        assert!(rep.audits >= 1);
        for (x, v) in rep.x.iter().zip(&exact_solution(&a, &rhs)) {
            assert!((x - v).abs() < 1e-5, "{x} vs {v}");
        }
    }

    #[test]
    fn faulted_solves_replay_bitwise() {
        let (a, colors, rhs) = plate(6);
        let par = ParallelMStepPcg::new(&a, &colors, vec![1.0]).unwrap();
        let opts = variant_opts(PcgVariant::Pipelined, 4, 1e-8);
        let plan = nan_msolve_at(2);
        let r1 = par.solve_with_faults(&rhs, &opts, &plan).unwrap();
        let r2 = par.solve_with_faults(&rhs, &opts, &plan).unwrap();
        assert_eq!(r1.iterations, r2.iterations);
        assert_eq!(
            (
                r1.faults_detected,
                r1.replacements,
                r1.recoveries,
                r1.audits
            ),
            (
                r2.faults_detected,
                r2.replacements,
                r2.recoveries,
                r2.audits
            )
        );
        assert!(r1
            .x
            .iter()
            .zip(&r2.x)
            .all(|(u, v)| u.to_bits() == v.to_bits()));
    }

    // ------------------- polynomial msolve ------------------------------

    #[test]
    fn poly_matches_sequential_polynomial_solver() {
        let (a, colors, rhs) = plate(8);
        let par = ParallelMStepPcg::poly(&a, &colors, PolyKind::Chebyshev, 4).unwrap();
        assert_eq!(
            par.precond(),
            PrecondKind::Poly {
                kind: PolyKind::Chebyshev,
                degree: 4
            }
        );
        let rep = par
            .solve(&rhs, &variant_opts(PcgVariant::Classic, 4, 1e-8))
            .unwrap();
        let pre = mspcg_core::PolynomialPreconditioner::chebyshev(a.clone(), 4).unwrap();
        let seq = pcg_solve(
            &a,
            &rhs,
            &pre,
            &PcgOptions {
                tol: 1e-8,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(rep.converged);
        assert!(
            (rep.iterations as isize - seq.iterations as isize).abs() <= 2,
            "par {} vs seq {}",
            rep.iterations,
            seq.iterations
        );
        for (u, v) in rep.x.iter().zip(&seq.x) {
            assert!((u - v).abs() < 1e-6, "{u} vs {v}");
        }
    }

    /// The acceptance gate of the polynomial msolve, by exact formula: a
    /// degree-`k` application costs exactly `k` full-barrier crossings
    /// (one fused SpMV phase each) — **zero color sweeps** — so the
    /// per-iteration budgets are the sweep formulas with `sweep → k`,
    /// plus one extra input-finalization barrier per overlap window on
    /// the pipelined schedule (the fused first phase reads its input
    /// cross-strip where the sweep reads own-strip):
    ///
    /// * classic: `k + (I−1)(k+3) + 2` crossings, `2I` reduction phases,
    /// * single-reduction: `k+1 + (I−1)(k+2) + 1` crossings, `I` phases,
    /// * pipelined: `(I+2)k + I + 1` spin crossings (init `2k+1`, each
    ///   iteration `k+1`), `I+1` split crossings, `I+1` phases.
    #[test]
    fn barrier_counter_proves_polynomial_schedule() {
        let (a, colors, rhs) = plate(8);
        for k in [2usize, 4] {
            let par = ParallelMStepPcg::poly(&a, &colors, PolyKind::Chebyshev, k).unwrap();
            for threads in [1usize, 4] {
                let classic = par
                    .solve(&rhs, &variant_opts(PcgVariant::Classic, threads, 1e-8))
                    .unwrap();
                let sr = par
                    .solve(
                        &rhs,
                        &variant_opts(PcgVariant::SingleReduction, threads, 1e-8),
                    )
                    .unwrap();
                let pl = par
                    .solve(&rhs, &variant_opts(PcgVariant::Pipelined, threads, 1e-8))
                    .unwrap();
                assert!(classic.converged && sr.converged && pl.converged);
                assert_eq!(classic.variant, PcgVariant::Classic);
                assert_eq!(
                    sr.variant,
                    PcgVariant::SingleReduction,
                    "fell back, k = {k}, threads = {threads}"
                );
                assert_eq!(
                    pl.variant,
                    PcgVariant::Pipelined,
                    "fell back, k = {k}, threads = {threads}"
                );
                let (ic, is, ip) = (classic.iterations, sr.iterations, pl.iterations);
                assert!(ic >= 1 && is >= 1 && ip >= 1);
                assert_eq!(
                    classic.barrier_crossings,
                    k + (ic - 1) * (k + 3) + 2,
                    "classic poly barrier count, k = {k}, threads = {threads}"
                );
                assert_eq!(classic.reduction_phases, 2 * ic);
                assert_eq!(classic.split_crossings, 0);
                assert_eq!(
                    sr.barrier_crossings,
                    k + 1 + (is - 1) * (k + 2) + 1,
                    "single-reduction poly barrier count, k = {k}, threads = {threads}"
                );
                assert_eq!(sr.reduction_phases, is);
                assert_eq!(sr.split_crossings, 0);
                assert_eq!(
                    pl.barrier_crossings,
                    (ip + 2) * k + ip + 1,
                    "pipelined poly spin count, k = {k}, threads = {threads}"
                );
                assert_eq!(pl.split_crossings, ip + 1);
                assert_eq!(pl.reduction_phases, ip + 1);
            }
        }
    }

    #[test]
    fn poly_is_deterministic_and_format_insensitive() {
        let (a, colors, rhs) = plate(7);
        let sell = mspcg_sparse::SellCsMatrix::from_csr_default(&a);
        let par_csr = ParallelMStepPcg::poly(&a, &colors, PolyKind::Chebyshev, 3).unwrap();
        let par_sell = ParallelMStepPcg::poly(&sell, &colors, PolyKind::Chebyshev, 3).unwrap();
        for variant in [
            PcgVariant::Classic,
            PcgVariant::SingleReduction,
            PcgVariant::Pipelined,
        ] {
            let opts = variant_opts(variant, 4, 1e-8);
            let r1 = par_csr.solve(&rhs, &opts).unwrap();
            let r2 = par_csr.solve(&rhs, &opts).unwrap();
            // Bitwise reproducible within the variant.
            assert_eq!(r1.iterations, r2.iterations, "{variant:?}");
            assert_eq!(r1.x, r2.x, "{variant:?}");
            // And across storage formats: the SELL-C-σ row kernel is
            // bitwise the CSR row loop, so the Lanczos interval, the
            // schedule, and every iterate replay exactly.
            let rs = par_sell.solve(&rhs, &opts).unwrap();
            assert_eq!(r1.iterations, rs.iterations, "{variant:?}");
            assert!(
                r1.x.iter()
                    .zip(&rs.x)
                    .all(|(u, v)| u.to_bits() == v.to_bits()),
                "format divergence under {variant:?}"
            );
        }
    }

    /// The recovery ladder treats a poisoned polynomial msolve exactly
    /// like a poisoned sweep: same detection points, same rung walk,
    /// same counters.
    #[test]
    fn poly_schedules_walk_the_ladder_under_persistent_fault() {
        let (a, colors, rhs) = plate(6);
        let par = ParallelMStepPcg::poly(&a, &colors, PolyKind::Chebyshev, 2).unwrap();
        let exact = exact_solution(&a, &rhs);
        for (variant, final_variant, counters) in [
            (PcgVariant::Classic, PcgVariant::Classic, (1, 1, 0)),
            (PcgVariant::SingleReduction, PcgVariant::Classic, (2, 1, 1)),
            (PcgVariant::Pipelined, PcgVariant::Classic, (3, 1, 2)),
        ] {
            let rep = par
                .solve_with_faults(&rhs, &variant_opts(variant, 4, 1e-8), &nan_msolve_at(2))
                .unwrap();
            assert!(rep.converged, "{variant:?}");
            assert_eq!(rep.variant, final_variant, "{variant:?}");
            assert_eq!(
                (rep.faults_detected, rep.replacements, rep.recoveries),
                counters,
                "{variant:?}"
            );
            for (x, v) in rep.x.iter().zip(&exact) {
                assert!((x - v).abs() < 1e-5, "{x} vs {v} under {variant:?}");
            }
        }
    }

    #[test]
    fn auto_constructor_respects_pins_and_heuristic() {
        let (a, colors, rhs) = plate(6);
        // Pinned selections pass through the auto constructor verbatim.
        let ssor = ParallelMStepPcg::auto(&a, &colors, 2, PrecondKind::MStepSsor { m: 3 }).unwrap();
        assert_eq!(ssor.precond(), PrecondKind::MStepSsor { m: 3 });
        let poly = ParallelMStepPcg::auto(
            &a,
            &colors,
            2,
            PrecondKind::Poly {
                kind: PolyKind::Newton,
                degree: 5,
            },
        )
        .unwrap();
        assert_eq!(
            poly.precond(),
            PrecondKind::Poly {
                kind: PolyKind::Newton,
                degree: 5
            }
        );
        // Auto defers to the environment pin when one is set, else the
        // barrier-cost heuristic — assert the heuristic only when the
        // ambient environment leaves Auto unpinned.
        if mspcg_sparse::tuning::forced_precond().is_none() {
            let auto = ParallelMStepPcg::auto(&a, &colors, 2, PrecondKind::Auto).unwrap();
            assert_eq!(
                auto.precond(),
                PrecondKind::Auto.resolve(colors.num_blocks(), 2)
            );
        }
        // Both pinned solvers reach the true solution.
        let exact = exact_solution(&a, &rhs);
        for par in [&ssor, &poly] {
            let rep = par
                .solve(&rhs, &variant_opts(PcgVariant::Classic, 2, 1e-8))
                .unwrap();
            assert!(rep.converged);
            for (x, v) in rep.x.iter().zip(&exact) {
                assert!((x - v).abs() < 1e-5, "{x} vs {v}");
            }
        }
    }

    #[test]
    fn auto_heuristic_falls_back_to_ssor_on_degenerate_spectrum() {
        // K = 3I in a 2-color blocking: the barrier-cost heuristic alone
        // picks the polynomial (2C−1 = 3 > 2), but the Jacobi spectrum of
        // a scaled identity is the single point {1} — the RAW Lanczos
        // interval is degenerate, so the SPMD auto constructor must
        // revise the heuristic choice down to m-step SSOR, exactly like
        // [`mspcg_core::auto_preconditioner`].
        let n = 12;
        let mut c = mspcg_sparse::CooMatrix::new(n, n);
        for i in 0..n {
            c.push(i, i, 3.0).unwrap();
        }
        let a = c.to_csr();
        let colors = Partition::from_sizes(&[6, 6]).unwrap();
        let rhs: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        if mspcg_sparse::tuning::forced_precond().is_none() {
            // Sanity: the heuristic alone WOULD pick the polynomial here.
            assert!(matches!(
                PrecondKind::Auto.resolve(colors.num_blocks(), 2),
                PrecondKind::Poly { .. }
            ));
            let auto = ParallelMStepPcg::auto(&a, &colors, 2, PrecondKind::Auto).unwrap();
            assert_eq!(auto.precond(), PrecondKind::MStepSsor { m: 2 });
            let rep = auto
                .solve(&rhs, &variant_opts(PcgVariant::Classic, 2, 1e-10))
                .unwrap();
            assert!(rep.converged);
            for (x, f) in rep.x.iter().zip(&rhs) {
                assert!((x - f / 3.0).abs() < 1e-10, "{x} vs {}", f / 3.0);
            }
        }
        // A *pinned* polynomial stays pinned on the same spectrum: its
        // schedule absorbs the degenerate (safeguard-widened) interval.
        let pinned = ParallelMStepPcg::auto(
            &a,
            &colors,
            2,
            PrecondKind::Poly {
                kind: PolyKind::Chebyshev,
                degree: 2,
            },
        )
        .unwrap();
        assert_eq!(
            pinned.precond(),
            PrecondKind::Poly {
                kind: PolyKind::Chebyshev,
                degree: 2
            }
        );
    }

    // ------------------- s-step schedule --------------------------------

    #[test]
    fn sstep_matches_classic_solution() {
        let (a, colors, rhs) = plate(8);
        let par = ParallelMStepPcg::new(&a, &colors, vec![1.0; 2]).unwrap();
        let classic = par
            .solve(&rhs, &variant_opts(PcgVariant::Classic, 4, 1e-8))
            .unwrap();
        for s in [2usize, 4] {
            let st = par
                .solve(&rhs, &variant_opts(PcgVariant::SStep { s }, 4, 1e-8))
                .unwrap();
            assert!(st.converged, "s = {s}");
            assert_eq!(
                st.variant,
                PcgVariant::SStep { s },
                "fell back unexpectedly, s = {s}"
            );
            // Block-granular basis restarts cost at most a block of slack.
            assert!(
                (classic.iterations as isize - st.iterations as isize).abs()
                    <= (2 * s + 2) as isize,
                "classic {} vs s-step({s}) {}",
                classic.iterations,
                st.iterations
            );
            for (x, y) in classic.x.iter().zip(&st.x) {
                assert!((x - y).abs() < 1e-6, "{x} vs {y}, s = {s}");
            }
        }
    }

    /// The acceptance gate of the s-step schedule, by exact formula: for
    /// `B = ⌈I/s⌉` outer steps of a converged `I`-iteration run,
    ///
    /// * **reduction phases `B`** — ONE fused Gram phase per `s`
    ///   iterations (no init phase), against the classic `2I` and the
    ///   single-reduction/pipelined `I + 1`;
    /// * **spin crossings `B·(s·sweep + 2s)`** for m ≥ 1 (`sweep =
    ///   m(2C−1)`) and `B·(s + 1)` for plain CG, where `v₁ ≡ r` and the
    ///   Chebyshev step fuses into the SpMV phase;
    /// * **split crossings 0** — every reduction blocks at a spin
    ///   barrier.
    #[test]
    fn barrier_counter_proves_sstep_schedule() {
        let (a, colors, rhs) = plate(8);
        let c = colors.num_blocks();
        for m in [0usize, 1, 2] {
            let par = ParallelMStepPcg::new(&a, &colors, vec![1.0; m]).unwrap();
            let sweep = m * (2 * c - 1);
            for s in [2usize, 4] {
                for threads in [1usize, 4] {
                    let rep = par
                        .solve(&rhs, &variant_opts(PcgVariant::SStep { s }, threads, 1e-8))
                        .unwrap();
                    assert!(rep.converged);
                    assert_eq!(
                        rep.variant,
                        PcgVariant::SStep { s },
                        "fell back, m = {m}, s = {s}, threads = {threads}"
                    );
                    let blocks = rep.iterations.div_ceil(s);
                    assert_eq!(
                        rep.reduction_phases, blocks,
                        "ONE reduction phase per {s} iterations, m = {m}, threads = {threads}"
                    );
                    let per_block = if m == 0 { s + 1 } else { s * sweep + 2 * s };
                    assert_eq!(
                        rep.barrier_crossings,
                        blocks * per_block,
                        "s-step barrier count, m = {m}, s = {s}, threads = {threads}"
                    );
                    assert_eq!(rep.split_crossings, 0);
                }
            }
        }
    }

    /// s-step over the polynomial msolve: `s(k+2)` barriers per outer
    /// step (each of the `s` basis msolves costs `k`, each SpMV and each
    /// Chebyshev step one), still ONE reduction phase per `s` iterations
    /// — and the basis interval is the polynomial's construction-time
    /// estimate, so no second Lanczos run happens (asserted indirectly:
    /// the schedule is exact from the first solve).
    #[test]
    fn barrier_counter_proves_sstep_polynomial_schedule() {
        let (a, colors, rhs) = plate(8);
        for k in [2usize, 4] {
            let par = ParallelMStepPcg::poly(&a, &colors, PolyKind::Chebyshev, k).unwrap();
            for s in [2usize, 4] {
                for threads in [1usize, 4] {
                    let rep = par
                        .solve(&rhs, &variant_opts(PcgVariant::SStep { s }, threads, 1e-8))
                        .unwrap();
                    assert!(rep.converged);
                    assert_eq!(
                        rep.variant,
                        PcgVariant::SStep { s },
                        "fell back, k = {k}, s = {s}, threads = {threads}"
                    );
                    let blocks = rep.iterations.div_ceil(s);
                    assert_eq!(rep.reduction_phases, blocks);
                    assert_eq!(
                        rep.barrier_crossings,
                        blocks * (s * (k + 2)),
                        "s-step poly barrier count, k = {k}, s = {s}, threads = {threads}"
                    );
                    assert_eq!(rep.split_crossings, 0);
                }
            }
        }
    }

    #[test]
    fn sstep_is_deterministic_and_format_insensitive() {
        let (a, colors, rhs) = plate(7);
        let sell = mspcg_sparse::SellCsMatrix::from_csr_default(&a);
        let par_csr = ParallelMStepPcg::new(&a, &colors, vec![1.0; 2]).unwrap();
        let par_sell = ParallelMStepPcg::new(&sell, &colors, vec![1.0; 2]).unwrap();
        let opts = variant_opts(PcgVariant::SStep { s: 4 }, 4, 1e-8);
        let r1 = par_csr.solve(&rhs, &opts).unwrap();
        let r2 = par_csr.solve(&rhs, &opts).unwrap();
        // Bitwise reproducible within the variant (the cached interval
        // makes the second solve replay the first's basis exactly).
        assert_eq!(r1.iterations, r2.iterations);
        assert_eq!(r1.x, r2.x);
        // And across storage formats: the extracted sweep table — and
        // therefore the Lanczos probe and the interval — is identical.
        let rs = par_sell.solve(&rhs, &opts).unwrap();
        assert_eq!(r1.iterations, rs.iterations);
        assert!(r1
            .x
            .iter()
            .zip(&rs.x)
            .all(|(u, v)| u.to_bits() == v.to_bits()));
    }

    #[test]
    fn sstep_thread_count_insensitive_result() {
        let (a, colors, rhs) = plate(6);
        let par = ParallelMStepPcg::new(&a, &colors, vec![1.0]).unwrap();
        let solve = |threads: usize| {
            par.solve(
                &rhs,
                &variant_opts(PcgVariant::SStep { s: 2 }, threads, 1e-9),
            )
            .unwrap()
        };
        let r1 = solve(1);
        let r4 = solve(4);
        assert_eq!(r1.iterations, r4.iterations);
        for (u, v) in r1.x.iter().zip(&r4.x) {
            assert!((u - v).abs() < 1e-9, "{u} vs {v}");
        }
    }

    /// The four-rung ladder walk: the persistent msolve fault poisons the
    /// s-step basis (detected at the fused Gram phase), re-fires on the
    /// pipelined and single-reduction reruns, and is absorbed in place by
    /// the classic rung — four detections, three step-downs, one
    /// replacement.
    #[test]
    fn sstep_walks_the_full_ladder_under_persistent_fault() {
        let (a, colors, rhs) = plate(6);
        let par = ParallelMStepPcg::new(&a, &colors, vec![1.0]).unwrap();
        let rep = par
            .solve_with_faults(
                &rhs,
                &variant_opts(PcgVariant::SStep { s: 4 }, 4, 1e-8),
                &nan_msolve_at(2),
            )
            .unwrap();
        assert!(rep.converged);
        assert_eq!(rep.variant, PcgVariant::Classic);
        assert_eq!(
            (
                rep.faults_detected,
                rep.replacements,
                rep.recoveries,
                rep.audits
            ),
            (4, 1, 3, 0)
        );
        for (x, v) in rep.x.iter().zip(&exact_solution(&a, &rhs)) {
            assert!((x - v).abs() < 1e-5, "{x} vs {v}");
        }
    }

    /// The audit is detector-only on the s-step rung too: one extra
    /// barrier per audited block, no reduction phase, and a bitwise
    /// untouched iterate stream.
    #[test]
    fn sstep_audit_costs_one_barrier_per_audited_block() {
        let (a, colors, rhs) = plate(8);
        let par = ParallelMStepPcg::new(&a, &colors, vec![1.0]).unwrap();
        let off = par
            .solve(&rhs, &variant_opts(PcgVariant::SStep { s: 2 }, 4, 1e-8))
            .unwrap();
        let mut opts = variant_opts(PcgVariant::SStep { s: 2 }, 4, 1e-8);
        opts.recovery = RecoveryPolicy {
            replacement: mspcg_core::recovery::Toggle::On,
            audit_period: 4,
            ..RecoveryPolicy::default()
        };
        let on = par.solve(&rhs, &opts).unwrap();
        assert!(on.converged);
        assert_eq!(on.iterations, off.iterations);
        assert!(on
            .x
            .iter()
            .zip(&off.x)
            .all(|(u, v)| u.to_bits() == v.to_bits()));
        assert!(on.audits >= 1);
        assert_eq!(on.barrier_crossings, off.barrier_crossings + on.audits);
        assert_eq!(on.reduction_phases, off.reduction_phases);
        assert_eq!(
            (on.replacements, on.recoveries, on.faults_detected),
            (0, 0, 0)
        );
    }

    #[test]
    fn sstep_budget_and_sliver_are_exhaustion() {
        let (a, colors, rhs) = plate(6);
        let par = ParallelMStepPcg::new(&a, &colors, vec![1.0]).unwrap();
        // An unreachable tolerance exhausts whole blocks.
        let err = par.solve(
            &rhs,
            &ParallelSolverOptions {
                threads: 2,
                tol: 1e-14,
                max_iterations: 4,
                variant: PcgVariant::SStep { s: 2 },
                ..Default::default()
            },
        );
        assert!(matches!(
            err,
            Err(SparseError::DidNotConverge { iterations: 4, .. })
        ));
        // A budget shorter than one block never starts (the sliver is
        // exhaustion, not convergence) — and so is a zero budget.
        for max_iterations in [2usize, 0] {
            let err = par.solve(
                &rhs,
                &ParallelSolverOptions {
                    threads: 2,
                    tol: 1e-8,
                    max_iterations,
                    variant: PcgVariant::SStep { s: 4 },
                    ..Default::default()
                },
            );
            assert!(
                matches!(err, Err(SparseError::DidNotConverge { iterations: 0, .. })),
                "max_iterations = {max_iterations}"
            );
        }
    }
}
