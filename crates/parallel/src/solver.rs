//! SPMD parallel m-step SSOR PCG on real threads.
//!
//! Worker `t` owns a contiguous strip of the color-ordered unknowns; every
//! iteration phase is barrier-separated; worker 0 performs the scalar
//! reductions (α, β, the convergence test) exactly as the Finite Element
//! Machine's sum/max circuit and flag network did. ω is fixed at 1, the
//! paper's recommendation for multicolor orderings.
//!
//! The phase schedule per iteration (`C` colors, `m` steps):
//!
//! ```text
//! kp ← K·p            1 barrier
//! dot partials        1 barrier
//! α reduce            1 barrier
//! u, r update         1 barrier
//! stop test           1 barrier
//! preconditioner      m·(2C−1) barriers (one per color phase)
//! rz partials         1 barrier
//! β reduce            1 barrier
//! p update            1 barrier
//! ```
//!
//! Results are bit-deterministic across runs (fixed reduction order) and
//! agree with the sequential solver to rounding.

use crate::barrier::SpinBarrier;
use crate::shared::{slot, ScalarBank, SharedVec};
use mspcg_sparse::{vecops, CsrMatrix, Partition, SparseError};
use std::sync::Arc;

/// Options for the threaded solver.
#[derive(Debug, Clone, Copy)]
pub struct ParallelSolverOptions {
    /// Worker count (clamped to the problem size; 0 = use all available
    /// cores, capped at 8).
    pub threads: usize,
    /// Stopping tolerance on `‖u^{k+1} − uᵏ‖∞` (the paper's test).
    pub tol: f64,
    /// Iteration budget.
    pub max_iterations: usize,
}

impl Default for ParallelSolverOptions {
    fn default() -> Self {
        ParallelSolverOptions {
            threads: 0,
            tol: 1e-6,
            max_iterations: 50_000,
        }
    }
}

/// Outcome of a threaded solve.
#[derive(Debug, Clone)]
pub struct ParallelSolveReport {
    /// Solution in the color-ordered index space.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Final `‖Δu‖∞`.
    pub final_change: f64,
    /// Worker threads actually used.
    pub threads: usize,
}

/// Status codes passed from worker 0 to the main thread.
mod status {
    pub const RUNNING: f64 = 0.0;
    pub const CONVERGED: f64 = 1.0;
    pub const INDEFINITE_K: f64 = 2.0;
    pub const INDEFINITE_M: f64 = 3.0;
    pub const BUDGET: f64 = 4.0;
}

/// The threaded m-step SSOR PCG solver (ω = 1).
///
/// Holds the system behind [`Arc`] so a solver and the sequential
/// reference (or several solvers) can share one matrix without copies.
pub struct ParallelMStepPcg {
    matrix: Arc<CsrMatrix>,
    colors: Arc<Partition>,
    alphas: Vec<f64>,
    inv_diag: Vec<f64>,
    lo_split: Vec<usize>,
    hi_split: Vec<usize>,
}

impl ParallelMStepPcg {
    /// Build from a color-blocked matrix, cloning it once. `alphas` empty
    /// means plain CG (no preconditioner); otherwise `alphas[i]` multiplies
    /// `Gⁱ P⁻¹` (all-ones = unparametrized m-step). Callers that already
    /// hold `Arc`s should use [`ParallelMStepPcg::shared`].
    ///
    /// # Errors
    /// Same validation as the sequential `MulticolorSsor` (square matrix,
    /// diagonal color blocks, positive diagonal).
    pub fn new(
        matrix: &CsrMatrix,
        colors: &Partition,
        alphas: Vec<f64>,
    ) -> Result<Self, SparseError> {
        Self::shared(Arc::new(matrix.clone()), Arc::new(colors.clone()), alphas)
    }

    /// Build from shared handles — no matrix or partition copy.
    ///
    /// # Errors
    /// Same classes as [`ParallelMStepPcg::new`].
    pub fn shared(
        matrix: Arc<CsrMatrix>,
        colors: Arc<Partition>,
        alphas: Vec<f64>,
    ) -> Result<Self, SparseError> {
        if matrix.rows() != matrix.cols() {
            return Err(SparseError::NotSquare {
                rows: matrix.rows(),
                cols: matrix.cols(),
            });
        }
        if colors.total_len() != matrix.rows() {
            return Err(SparseError::ShapeMismatch {
                left: (matrix.rows(), matrix.cols()),
                right: (colors.total_len(), 1),
            });
        }
        let n = matrix.rows();
        let mut inv_diag = vec![0.0; n];
        let mut lo_split = vec![0usize; n];
        let mut hi_split = vec![0usize; n];
        for c in 0..colors.num_blocks() {
            let blk = colors.range(c);
            for i in blk.clone() {
                let row_lo = matrix.row_ptr()[i];
                let row_hi = matrix.row_ptr()[i + 1];
                let cols_slice = &matrix.col_idx()[row_lo..row_hi];
                let lo = row_lo + cols_slice.partition_point(|&j| (j as usize) < blk.start);
                let hi = row_lo + cols_slice.partition_point(|&j| (j as usize) < blk.end);
                match hi - lo {
                    1 if matrix.col_idx()[lo] as usize == i => {
                        let d = matrix.values()[lo];
                        if d <= 0.0 || !d.is_finite() {
                            return Err(SparseError::ZeroDiagonal { row: i });
                        }
                        inv_diag[i] = 1.0 / d;
                    }
                    0 => return Err(SparseError::ZeroDiagonal { row: i }),
                    _ => {
                        return Err(SparseError::InvalidPartition {
                            reason: format!("off-diagonal coupling inside color block at row {i}"),
                        })
                    }
                }
                lo_split[i] = lo;
                hi_split[i] = hi;
            }
        }
        Ok(ParallelMStepPcg {
            matrix,
            colors,
            alphas,
            inv_diag,
            lo_split,
            hi_split,
        })
    }

    /// Number of preconditioner steps (0 = plain CG).
    pub fn m(&self) -> usize {
        self.alphas.len()
    }

    fn resolve_threads(&self, requested: usize) -> usize {
        let hw = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let t = if requested == 0 { hw.min(8) } else { requested };
        t.clamp(1, self.matrix.rows().max(1))
    }

    /// Solve `K u = f` from the zero initial guess.
    ///
    /// # Errors
    /// [`SparseError::NotPositiveDefinite`] on breakdown,
    /// [`SparseError::DidNotConverge`] on budget exhaustion, shape errors
    /// on bad input.
    pub fn solve(
        &self,
        f: &[f64],
        opts: &ParallelSolverOptions,
    ) -> Result<ParallelSolveReport, SparseError> {
        let n = self.matrix.rows();
        if f.len() != n {
            return Err(SparseError::ShapeMismatch {
                left: (n, n),
                right: (f.len(), 1),
            });
        }
        let threads = self.resolve_threads(opts.threads);

        // Contiguous ownership strips.
        let strips: Vec<std::ops::Range<usize>> = {
            let base = n / threads;
            let extra = n % threads;
            let mut out = Vec::with_capacity(threads);
            let mut start = 0usize;
            for t in 0..threads {
                let len = base + usize::from(t < extra);
                out.push(start..start + len);
                start += len;
            }
            out
        };

        let u = SharedVec::zeros(n);
        let r = SharedVec::from_vec(f.to_vec());
        let z = SharedVec::zeros(n);
        let p = SharedVec::zeros(n);
        let kp = SharedVec::zeros(n);
        let y = SharedVec::zeros(n);
        let partials = SharedVec::zeros(threads);
        let bank = ScalarBank::new();
        let barrier = SpinBarrier::new(threads);
        let iters_out = SharedVec::zeros(2); // [iterations, final_change]

        std::thread::scope(|s| {
            for t in 0..threads {
                let strip = strips[t].clone();
                let (u, r, z, p, kp, y, partials, bank, barrier, iters_out) = (
                    &u, &r, &z, &p, &kp, &y, &partials, &bank, &barrier, &iters_out,
                );
                let this = &*self;
                // `serialized` pins the shared kernels to this worker:
                // each strip is small by construction, so nested pool
                // launches would only add contention.
                s.spawn(move || {
                    mspcg_sparse::par::serialized(|| {
                        this.worker(
                            t, threads, strip, u, r, z, p, kp, y, partials, bank, barrier,
                            iters_out, opts,
                        );
                    });
                });
            }
        });

        let code = unsafe { bank.get(slot::STOP) };
        let out = iters_out.into_vec();
        let iterations = out[0] as usize;
        let final_change = out[1];
        match code {
            c if c == status::INDEFINITE_K => Err(SparseError::NotPositiveDefinite {
                pivot: iterations,
                value: -1.0,
            }),
            c if c == status::INDEFINITE_M => Err(SparseError::NotPositiveDefinite {
                pivot: iterations,
                value: -2.0,
            }),
            c if c == status::BUDGET => Err(SparseError::DidNotConverge {
                iterations,
                residual: final_change,
            }),
            _ => Ok(ParallelSolveReport {
                x: u.into_vec(),
                iterations,
                converged: true,
                final_change,
                threads,
            }),
        }
    }

    /// The SPMD body run by every worker. All `unsafe` blocks follow the
    /// phase discipline documented in [`crate::shared`]: writes go only to
    /// owned ranges (or owned ∩ color block), reads only touch data
    /// finalized before the previous barrier.
    #[allow(clippy::too_many_arguments)]
    fn worker(
        &self,
        t: usize,
        threads: usize,
        strip: std::ops::Range<usize>,
        u: &SharedVec,
        r: &SharedVec,
        z: &SharedVec,
        p: &SharedVec,
        kp: &SharedVec,
        y: &SharedVec,
        partials: &SharedVec,
        bank: &ScalarBank,
        barrier: &SpinBarrier,
        iters_out: &SharedVec,
        opts: &ParallelSolverOptions,
    ) {
        let own = strip.clone();

        // --- init: z = M⁻¹ r; p = z; rz = (z, r) --------------------------
        self.msolve_phases(&own, r, z, y, barrier);
        unsafe {
            let zs = z.read();
            p.write(own.clone()).copy_from_slice(&zs[own.clone()]);
            let rs = r.read();
            let partial = vecops::dot(&zs[own.clone()], &rs[own.clone()]);
            partials.write_at(t, partial);
        }
        barrier.wait();
        if t == 0 {
            let rz: f64 = unsafe { partials.read().iter().sum() };
            unsafe {
                bank.set(slot::RZ, rz);
                bank.set(slot::STOP, status::RUNNING);
                if rz < 0.0 {
                    bank.set(slot::STOP, status::INDEFINITE_M);
                }
                if rz == 0.0 {
                    bank.set(slot::STOP, status::CONVERGED);
                    iters_out.write_at(0, 0.0);
                    iters_out.write_at(1, 0.0);
                }
            }
        }
        barrier.wait();
        if unsafe { bank.get(slot::STOP) } != status::RUNNING {
            return;
        }

        for iter in 1..=opts.max_iterations {
            // --- kp = K p (shared strip SpMV kernel) -----------------------
            unsafe {
                let pv = p.read();
                let out = kp.write(own.clone());
                self.matrix.mul_vec_range_into(pv, out, own.clone());
            }
            barrier.wait();

            // --- (p, Kp) partials -------------------------------------------
            unsafe {
                let (ps, kps) = (p.read(), kp.read());
                let partial = vecops::dot(&ps[own.clone()], &kps[own.clone()]);
                partials.write_at(t, partial);
            }
            barrier.wait();

            // --- α ----------------------------------------------------------
            if t == 0 {
                unsafe {
                    let denom: f64 = partials.read().iter().sum();
                    if denom <= 0.0 {
                        let rz = bank.get(slot::RZ);
                        bank.set(
                            slot::STOP,
                            if rz == 0.0 {
                                status::CONVERGED
                            } else {
                                status::INDEFINITE_K
                            },
                        );
                        iters_out.write_at(0, (iter - 1) as f64);
                    } else {
                        bank.set(slot::ALPHA, bank.get(slot::RZ) / denom);
                    }
                }
            }
            barrier.wait();
            if unsafe { bank.get(slot::STOP) } != status::RUNNING {
                return;
            }
            let alpha = unsafe { bank.get(slot::ALPHA) };

            // --- u += αp; r −= α·Kp; change partial --------------------------
            unsafe {
                let pv = p.read();
                let kpv = kp.read();
                let uo = u.write(own.clone());
                let mut maxp = 0.0f64;
                for (k, i) in own.clone().enumerate() {
                    uo[k] += alpha * pv[i];
                    maxp = maxp.max(pv[i].abs());
                }
                let ro = r.write(own.clone());
                vecops::axpy(-alpha, &kpv[own.clone()], ro);
                partials.write_at(t, alpha.abs() * maxp);
            }
            barrier.wait();

            // --- convergence test (flag network) -----------------------------
            if t == 0 {
                unsafe {
                    let change = partials.read().iter().fold(0.0f64, |a, &b| a.max(b));
                    bank.set(slot::CHANGE, change);
                    if change < opts.tol {
                        bank.set(slot::STOP, status::CONVERGED);
                        iters_out.write_at(0, iter as f64);
                        iters_out.write_at(1, change);
                    } else if iter == opts.max_iterations {
                        bank.set(slot::STOP, status::BUDGET);
                        iters_out.write_at(0, iter as f64);
                        iters_out.write_at(1, change);
                    }
                }
            }
            barrier.wait();
            if unsafe { bank.get(slot::STOP) } != status::RUNNING {
                return;
            }

            // --- z = M⁻¹ r ----------------------------------------------------
            self.msolve_phases(&own, r, z, y, barrier);

            // --- (z, r) partials ----------------------------------------------
            unsafe {
                let (zs, rs) = (z.read(), r.read());
                let partial = vecops::dot(&zs[own.clone()], &rs[own.clone()]);
                partials.write_at(t, partial);
            }
            barrier.wait();

            // --- β -------------------------------------------------------------
            if t == 0 {
                unsafe {
                    let rz_new: f64 = partials.read().iter().sum();
                    if rz_new < 0.0 {
                        bank.set(slot::STOP, status::INDEFINITE_M);
                        iters_out.write_at(0, iter as f64);
                    } else {
                        let rz = bank.get(slot::RZ);
                        bank.set(slot::BETA, rz_new / rz.max(1e-300));
                        bank.set(slot::RZ, rz_new);
                    }
                }
            }
            barrier.wait();
            if unsafe { bank.get(slot::STOP) } != status::RUNNING {
                return;
            }
            let beta = unsafe { bank.get(slot::BETA) };

            // --- p = z + βp (shared xpby kernel) -------------------------------
            unsafe {
                let zv = z.read();
                let po = p.write(own.clone());
                vecops::xpby(&zv[own.clone()], beta, po);
            }
            barrier.wait();
        }
        // Budget exhaustion is flagged inside the loop; nothing to do here.
        let _ = threads;
    }

    /// Barrier-per-color m-step SSOR solve `z ← M⁻¹ r` (ω = 1), or a plain
    /// copy when no coefficients are set (plain CG).
    fn msolve_phases(
        &self,
        own: &std::ops::Range<usize>,
        r: &SharedVec,
        z: &SharedVec,
        y: &SharedVec,
        barrier: &SpinBarrier,
    ) {
        if self.alphas.is_empty() {
            unsafe {
                let rs = r.read();
                z.write(own.clone()).copy_from_slice(&rs[own.clone()]);
            }
            barrier.wait();
            return;
        }
        unsafe {
            z.write(own.clone()).fill(0.0);
            y.write(own.clone()).fill(0.0);
        }
        barrier.wait();
        let m = self.alphas.len();
        let nb = self.colors.num_blocks();
        for s in 1..=m {
            let alpha = self.alphas[m - s];
            // Forward pass: one barrier per color. Within a color phase,
            // each row is written by exactly one worker (own ∩ color) and
            // reads only other colors (finalized) — the multicolor
            // guarantee.
            for c in 0..nb {
                let blk = self.colors.range(c);
                let lo = blk.start.max(own.start);
                let hi = blk.end.min(own.end);
                let last = c == nb - 1;
                unsafe {
                    let rv = r.read();
                    let zv = z.read();
                    let yv = y.read();
                    for i in lo..hi {
                        let lower = self.half_sum(i, zv, true);
                        let upper = if last { 0.0 } else { yv[i] };
                        let xi = (alpha * rv[i] - lower - upper) * self.inv_diag[i];
                        z.write_at(i, xi);
                        y.write_at(i, lower);
                    }
                }
                barrier.wait();
            }
            // Backward pass (skip the idempotent last color at ω = 1).
            for c in (0..nb.saturating_sub(1)).rev() {
                let blk = self.colors.range(c);
                let lo = blk.start.max(own.start);
                let hi = blk.end.min(own.end);
                unsafe {
                    let rv = r.read();
                    let zv = z.read();
                    let yv = y.read();
                    for i in lo..hi {
                        let upper = self.half_sum(i, zv, false);
                        let lower = yv[i];
                        let xi = (alpha * rv[i] - lower - upper) * self.inv_diag[i];
                        z.write_at(i, xi);
                        y.write_at(i, upper);
                    }
                }
                barrier.wait();
            }
        }
    }

    #[inline]
    fn half_sum(&self, i: usize, x: &[f64], lower: bool) -> f64 {
        let (from, to) = if lower {
            (self.matrix.row_ptr()[i], self.lo_split[i])
        } else {
            (self.hi_split[i], self.matrix.row_ptr()[i + 1])
        };
        let mut s = 0.0;
        for k in from..to {
            s += self.matrix.values()[k] * x[self.matrix.col_idx()[k] as usize];
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspcg_core::{pcg_solve, MStepSsorPreconditioner, PcgOptions};
    use mspcg_fem::plate::PlaneStressProblem;

    fn plate(a: usize) -> (CsrMatrix, Partition, Vec<f64>) {
        let asm = PlaneStressProblem::unit_square(a).assemble().unwrap();
        let ord = asm.multicolor().unwrap();
        (ord.matrix, ord.colors, ord.rhs)
    }

    #[test]
    fn matches_sequential_solver() {
        let (a, colors, rhs) = plate(8);
        let par = ParallelMStepPcg::new(&a, &colors, vec![1.0; 2]).unwrap();
        let rep = par
            .solve(
                &rhs,
                &ParallelSolverOptions {
                    threads: 4,
                    tol: 1e-8,
                    max_iterations: 10_000,
                },
            )
            .unwrap();
        let pre = MStepSsorPreconditioner::unparametrized(&a, &colors, 2).unwrap();
        let seq = pcg_solve(
            &a,
            &rhs,
            &pre,
            &PcgOptions {
                tol: 1e-8,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(rep.converged);
        // Iteration counts agree to within rounding slack.
        assert!(
            (rep.iterations as isize - seq.iterations as isize).abs() <= 2,
            "par {} vs seq {}",
            rep.iterations,
            seq.iterations
        );
        for (u, v) in rep.x.iter().zip(&seq.x) {
            assert!((u - v).abs() < 1e-6, "{u} vs {v}");
        }
    }

    #[test]
    fn plain_cg_mode_works() {
        let (a, colors, rhs) = plate(6);
        let par = ParallelMStepPcg::new(&a, &colors, vec![]).unwrap();
        assert_eq!(par.m(), 0);
        let rep = par
            .solve(
                &rhs,
                &ParallelSolverOptions {
                    threads: 3,
                    tol: 1e-8,
                    max_iterations: 10_000,
                },
            )
            .unwrap();
        let exact = a.to_dense().cholesky().unwrap().solve(&rhs);
        for (u, v) in rep.x.iter().zip(&exact) {
            assert!((u - v).abs() < 1e-5);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let (a, colors, rhs) = plate(7);
        let par = ParallelMStepPcg::new(&a, &colors, vec![1.0; 3]).unwrap();
        let opts = ParallelSolverOptions {
            threads: 4,
            tol: 1e-8,
            max_iterations: 10_000,
        };
        let r1 = par.solve(&rhs, &opts).unwrap();
        let r2 = par.solve(&rhs, &opts).unwrap();
        assert_eq!(r1.iterations, r2.iterations);
        assert_eq!(r1.x, r2.x); // bitwise: fixed reduction order
    }

    #[test]
    fn thread_count_insensitive_result() {
        let (a, colors, rhs) = plate(6);
        let par = ParallelMStepPcg::new(&a, &colors, vec![1.0]).unwrap();
        let solve = |threads: usize| {
            par.solve(
                &rhs,
                &ParallelSolverOptions {
                    threads,
                    tol: 1e-9,
                    max_iterations: 10_000,
                },
            )
            .unwrap()
        };
        let r1 = solve(1);
        let r4 = solve(4);
        assert_eq!(r1.iterations, r4.iterations);
        for (u, v) in r1.x.iter().zip(&r4.x) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn budget_exhaustion_reported() {
        let (a, colors, rhs) = plate(6);
        let par = ParallelMStepPcg::new(&a, &colors, vec![1.0]).unwrap();
        let err = par.solve(
            &rhs,
            &ParallelSolverOptions {
                threads: 2,
                tol: 1e-14,
                max_iterations: 2,
            },
        );
        assert!(matches!(err, Err(SparseError::DidNotConverge { .. })));
    }

    #[test]
    fn rejects_unordered_matrix() {
        // A matrix with intra-block coupling must be rejected.
        let asm = PlaneStressProblem::unit_square(5).assemble().unwrap();
        let single = Partition::single(asm.matrix.rows());
        assert!(ParallelMStepPcg::new(&asm.matrix, &single, vec![1.0]).is_err());
    }

    #[test]
    fn more_threads_than_rows_is_clamped() {
        let (a, colors, rhs) = plate(4);
        let par = ParallelMStepPcg::new(&a, &colors, vec![1.0]).unwrap();
        let rep = par
            .solve(
                &rhs,
                &ParallelSolverOptions {
                    threads: 64,
                    tol: 1e-6,
                    max_iterations: 10_000,
                },
            )
            .unwrap();
        assert!(rep.converged);
        assert!(rep.threads <= a.rows());
    }
}
