//! SPMD parallel m-step SSOR PCG on real threads.
//!
//! Worker `t` owns a contiguous strip of the color-ordered unknowns and
//! every iteration phase is barrier-separated. ω is fixed at 1, the
//! paper's recommendation for multicolor orderings.
//!
//! ## Fused phase schedule
//!
//! Each reduction is **fused into the phase that produces its operands**
//! (the kernel writes its strip, then immediately forms the strip partial
//! — no extra barrier), and the scalar reductions over the per-worker
//! partials are **replicated**: every worker sums the same partials in
//! the same order, so all workers reach bitwise-identical α, β and
//! stopping decisions without a broadcast phase — the sum/max circuit of
//! the Finite Element Machine, minus the dedicated round trips. Three
//! partial banks (`dot`, `change`, `rz`) rotate so a fast worker's writes
//! for phase k+1 can never race a slow worker's reads from phase k.
//!
//! Per iteration (`C` colors, `m` steps):
//!
//! ```text
//! kp ← K·p  ⊕ (p, Kp) partial          1 barrier
//! u += αp; r −= α·Kp ⊕ ‖Δu‖∞ partial   1 barrier   (fused vecops kernel)
//! preconditioner, `w₀ = 0` start fused
//!   into the first color sweep and the
//!   (z, r) partial into the last        m·(2C−1) barriers
//! p ← z + βp                            1 barrier
//! ```
//!
//! i.e. `m·(2C−1) + 3` barriers per iteration, down from the unfused
//! `m·(2C−1) + 9` (separate dot/stop/reduce/fill phases). Results are
//! bit-identical to the unfused schedule: the fused kernels perform the
//! same arithmetic in the same order, only without the barriers.

use crate::barrier::SpinBarrier;
use crate::shared::{slot, ScalarBank, SharedVec};
use mspcg_sparse::{vecops, Partition, SparseError, SparseOp};
use std::sync::Arc;

/// Options for the threaded solver.
#[derive(Debug, Clone, Copy)]
pub struct ParallelSolverOptions {
    /// Worker count (clamped to the problem size; 0 = use all available
    /// cores, capped at 8).
    pub threads: usize,
    /// Stopping tolerance on `‖u^{k+1} − uᵏ‖∞` (the paper's test).
    pub tol: f64,
    /// Iteration budget.
    pub max_iterations: usize,
}

impl Default for ParallelSolverOptions {
    fn default() -> Self {
        ParallelSolverOptions {
            threads: 0,
            tol: 1e-6,
            max_iterations: 50_000,
        }
    }
}

/// Outcome of a threaded solve.
#[derive(Debug, Clone)]
pub struct ParallelSolveReport {
    /// Solution in the color-ordered index space.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Final `‖Δu‖∞`.
    pub final_change: f64,
    /// Worker threads actually used.
    pub threads: usize,
}

/// Status codes passed from worker 0 to the main thread. The zeroed bank
/// (`0.0`) means no outcome was recorded — reachable only with
/// `max_iterations == 0`, which reports as converged-at-the-start.
mod status {
    pub const CONVERGED: f64 = 1.0;
    pub const INDEFINITE_K: f64 = 2.0;
    pub const INDEFINITE_M: f64 = 3.0;
    pub const BUDGET: f64 = 4.0;
}

/// The threaded m-step SSOR PCG solver (ω = 1), constructible from a
/// color-blocked operator in **any** [`SparseOp`] format.
///
/// Both the SSOR color sweeps (half-sums split at the own-color block) and
/// the strip `K·p` products need *indexed row structure*, which no
/// SpMV-oriented format is required to expose — so construction extracts
/// one private split-CSR sweep table through [`SparseOp::visit_row`] and
/// every iteration phase streams that single table (the source operator
/// is not retained: per-worker strips are tiny, so a format's slice/block
/// kernels could not be engaged anyway, and holding it would double the
/// matrix memory). The extraction walks rows in ascending column order,
/// so two formats storing the same matrix produce identical tables and
/// therefore **bitwise-identical** solver runs.
pub struct ParallelMStepPcg {
    colors: Arc<Partition>,
    alphas: Vec<f64>,
    inv_diag: Vec<f64>,
    /// Extracted sweep structure (ascending columns per row).
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
    /// Per row: sweep-table index of the first entry with column ≥
    /// own-block start / end.
    lo_split: Vec<usize>,
    hi_split: Vec<usize>,
}

impl ParallelMStepPcg {
    /// Build from a color-blocked operator in any [`SparseOp`] format.
    /// `alphas` empty means plain CG (no preconditioner); otherwise
    /// `alphas[i]` multiplies `Gⁱ P⁻¹` (all-ones = unparametrized m-step).
    ///
    /// # Errors
    /// Same validation as the sequential `MulticolorSsor` (square matrix,
    /// diagonal color blocks, positive diagonal).
    pub fn new<A: SparseOp>(
        matrix: &A,
        colors: &Partition,
        alphas: Vec<f64>,
    ) -> Result<Self, SparseError> {
        Self::shared(matrix, Arc::new(colors.clone()), alphas)
    }

    /// [`ParallelMStepPcg::new`] with a shared partition handle (no
    /// partition copy; the operator is only read during construction).
    ///
    /// # Errors
    /// Same classes as [`ParallelMStepPcg::new`].
    pub fn shared<A: SparseOp>(
        matrix: &A,
        colors: Arc<Partition>,
        alphas: Vec<f64>,
    ) -> Result<Self, SparseError> {
        let (rows, cols) = matrix.dims();
        if rows != cols {
            return Err(SparseError::NotSquare { rows, cols });
        }
        if colors.total_len() != rows {
            return Err(SparseError::ShapeMismatch {
                left: (rows, cols),
                right: (colors.total_len(), 1),
            });
        }
        let n = rows;
        // Extract the sweep table: per-row (col, value) pairs in ascending
        // column order — the order every SparseOp streams.
        let mut row_ptr = vec![0usize; n + 1];
        let mut col_idx: Vec<u32> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        for i in 0..n {
            matrix.visit_row(i, &mut |j, v| {
                col_idx.push(j as u32);
                values.push(v);
            });
            row_ptr[i + 1] = col_idx.len();
        }
        let mut inv_diag = vec![0.0; n];
        let mut lo_split = vec![0usize; n];
        let mut hi_split = vec![0usize; n];
        for c in 0..colors.num_blocks() {
            let blk = colors.range(c);
            for i in blk.clone() {
                let row_lo = row_ptr[i];
                let row_hi = row_ptr[i + 1];
                let cols_slice = &col_idx[row_lo..row_hi];
                let lo = row_lo + cols_slice.partition_point(|&j| (j as usize) < blk.start);
                let hi = row_lo + cols_slice.partition_point(|&j| (j as usize) < blk.end);
                match hi - lo {
                    1 if col_idx[lo] as usize == i => {
                        let d = values[lo];
                        if d <= 0.0 || !d.is_finite() {
                            return Err(SparseError::ZeroDiagonal { row: i });
                        }
                        inv_diag[i] = 1.0 / d;
                    }
                    0 => return Err(SparseError::ZeroDiagonal { row: i }),
                    _ => {
                        return Err(SparseError::InvalidPartition {
                            reason: format!("off-diagonal coupling inside color block at row {i}"),
                        })
                    }
                }
                lo_split[i] = lo;
                hi_split[i] = hi;
            }
        }
        Ok(ParallelMStepPcg {
            colors,
            alphas,
            inv_diag,
            row_ptr,
            col_idx,
            values,
            lo_split,
            hi_split,
        })
    }

    /// Number of preconditioner steps (0 = plain CG).
    pub fn m(&self) -> usize {
        self.alphas.len()
    }

    /// System dimension.
    #[inline]
    fn dim(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Serial SpMV over the worker's strip, off the extracted sweep table
    /// (same per-row ascending-column order as every `SparseOp` kernel).
    #[inline]
    fn strip_spmv(&self, x: &[f64], y: &mut [f64], rows: std::ops::Range<usize>) {
        for (k, i) in rows.enumerate() {
            let mut acc = 0.0;
            for j in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[j] * x[self.col_idx[j] as usize];
            }
            y[k] = acc;
        }
    }

    fn resolve_threads(&self, requested: usize) -> usize {
        let hw = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let t = if requested == 0 { hw.min(8) } else { requested };
        t.clamp(1, self.dim().max(1))
    }

    /// Solve `K u = f` from the zero initial guess.
    ///
    /// # Errors
    /// [`SparseError::NotPositiveDefinite`] on breakdown,
    /// [`SparseError::DidNotConverge`] on budget exhaustion, shape errors
    /// on bad input.
    pub fn solve(
        &self,
        f: &[f64],
        opts: &ParallelSolverOptions,
    ) -> Result<ParallelSolveReport, SparseError> {
        let n = self.dim();
        if f.len() != n {
            return Err(SparseError::ShapeMismatch {
                left: (n, n),
                right: (f.len(), 1),
            });
        }
        let threads = self.resolve_threads(opts.threads);

        // Contiguous ownership strips.
        let strips: Vec<std::ops::Range<usize>> = {
            let base = n / threads;
            let extra = n % threads;
            let mut out = Vec::with_capacity(threads);
            let mut start = 0usize;
            for t in 0..threads {
                let len = base + usize::from(t < extra);
                out.push(start..start + len);
                start += len;
            }
            out
        };

        let u = SharedVec::zeros(n);
        let r = SharedVec::from_vec(f.to_vec());
        let z = SharedVec::zeros(n);
        let p = SharedVec::zeros(n);
        let kp = SharedVec::zeros(n);
        let y = SharedVec::zeros(n);
        // Three rotating partial banks: a phase's partial writes must
        // never alias a straggler's replicated-reduction reads of the
        // previous bank (two barriers always separate reuse of one bank).
        let dot_partials = SharedVec::zeros(threads);
        let change_partials = SharedVec::zeros(threads);
        let rz_partials = SharedVec::zeros(threads);
        let bank = ScalarBank::new();
        let barrier = SpinBarrier::new(threads);
        let iters_out = SharedVec::zeros(2); // [iterations, final_change]

        std::thread::scope(|s| {
            for t in 0..threads {
                let strip = strips[t].clone();
                let (u, r, z, p, kp, y, bank, barrier, iters_out) =
                    (&u, &r, &z, &p, &kp, &y, &bank, &barrier, &iters_out);
                let (dot_partials, change_partials, rz_partials) =
                    (&dot_partials, &change_partials, &rz_partials);
                let this = &*self;
                // `serialized` pins the shared kernels to this worker:
                // each strip is small by construction, so nested pool
                // launches would only add contention.
                s.spawn(move || {
                    mspcg_sparse::par::serialized(|| {
                        this.worker(
                            t,
                            strip,
                            u,
                            r,
                            z,
                            p,
                            kp,
                            y,
                            dot_partials,
                            change_partials,
                            rz_partials,
                            bank,
                            barrier,
                            iters_out,
                            opts,
                        );
                    });
                });
            }
        });

        let code = unsafe { bank.get(slot::STOP) };
        let out = iters_out.into_vec();
        let iterations = out[0] as usize;
        let final_change = out[1];
        match code {
            c if c == status::INDEFINITE_K => Err(SparseError::NotPositiveDefinite {
                pivot: iterations,
                value: -1.0,
            }),
            c if c == status::INDEFINITE_M => Err(SparseError::NotPositiveDefinite {
                pivot: iterations,
                value: -2.0,
            }),
            c if c == status::BUDGET => Err(SparseError::DidNotConverge {
                iterations,
                residual: final_change,
            }),
            _ => Ok(ParallelSolveReport {
                x: u.into_vec(),
                iterations,
                converged: true,
                final_change,
                threads,
            }),
        }
    }

    /// The SPMD body run by every worker. All `unsafe` blocks follow the
    /// phase discipline documented in [`crate::shared`]: writes go only to
    /// owned ranges (or owned ∩ color block), reads only touch elements
    /// finalized before the previous barrier or written by this worker in
    /// the current phase.
    ///
    /// Scalar reductions (α, β, the stopping test) are **replicated**:
    /// after the barrier that publishes a partial bank, every worker sums
    /// it in ascending index order, obtaining bitwise-identical scalars —
    /// so every control-flow branch below is taken unanimously and no
    /// broadcast phase is needed. Worker 0 alone records the outcome for
    /// the main thread.
    #[allow(clippy::too_many_arguments)]
    fn worker(
        &self,
        t: usize,
        strip: std::ops::Range<usize>,
        u: &SharedVec,
        r: &SharedVec,
        z: &SharedVec,
        p: &SharedVec,
        kp: &SharedVec,
        y: &SharedVec,
        dot_partials: &SharedVec,
        change_partials: &SharedVec,
        rz_partials: &SharedVec,
        bank: &ScalarBank,
        barrier: &SpinBarrier,
        iters_out: &SharedVec,
        opts: &ParallelSolverOptions,
    ) {
        let own = strip.clone();

        // --- init: z = M⁻¹ r, with p ← z and the (z, r) partial fused
        // into the preconditioner's final color phase — no extra barriers.
        self.msolve_phases(&own, t, r, z, y, Some(p), rz_partials, barrier);
        let mut rz: f64 = unsafe { rz_partials.read().iter().sum() };
        if rz < 0.0 {
            if t == 0 {
                unsafe {
                    bank.set(slot::STOP, status::INDEFINITE_M);
                }
            }
            return;
        }
        if rz == 0.0 {
            if t == 0 {
                unsafe {
                    bank.set(slot::STOP, status::CONVERGED);
                    iters_out.write_at(0, 0.0);
                    iters_out.write_at(1, 0.0);
                }
            }
            return;
        }
        if opts.max_iterations == 0 {
            // A zero budget with a nonzero residual is exhaustion, not
            // convergence — the serial solver reports the same.
            if t == 0 {
                unsafe {
                    bank.set(slot::STOP, status::BUDGET);
                    iters_out.write_at(0, 0.0);
                    iters_out.write_at(1, f64::INFINITY);
                }
            }
            return;
        }

        for iter in 1..=opts.max_iterations {
            // --- kp = K p ⊕ (p, Kp) partial: the strip of kp this worker
            // just wrote is exactly the strip the partial reads, so the
            // dot needs no barrier of its own.
            unsafe {
                let pv = p.read();
                let out = kp.write(own.clone());
                self.strip_spmv(pv, out, own.clone());
                dot_partials.write_at(t, vecops::dot(&pv[own.clone()], out));
            }
            barrier.wait();

            // --- α (replicated) ---------------------------------------------
            let denom: f64 = unsafe { dot_partials.read().iter().sum() };
            if denom <= 0.0 {
                if t == 0 {
                    unsafe {
                        bank.set(
                            slot::STOP,
                            if rz == 0.0 {
                                status::CONVERGED
                            } else {
                                status::INDEFINITE_K
                            },
                        );
                        iters_out.write_at(0, (iter - 1) as f64);
                    }
                }
                return;
            }
            let alpha = rz / denom;

            // --- u += αp; r −= α·Kp ⊕ ‖Δu‖∞ partial (fused kernel) ----------
            unsafe {
                let pv = p.read();
                let kpv = kp.read();
                let uo = u.write(own.clone());
                let ro = r.write(own.clone());
                let norms = vecops::fused_axpy_axpy_norm(
                    alpha,
                    &pv[own.clone()],
                    &kpv[own.clone()],
                    uo,
                    ro,
                );
                change_partials.write_at(t, alpha.abs() * norms.p_norm_inf);
            }
            barrier.wait();

            // --- convergence test (replicated flag network) ------------------
            let change = unsafe { change_partials.read().iter().fold(0.0f64, |a, &b| a.max(b)) };
            if change < opts.tol {
                if t == 0 {
                    unsafe {
                        bank.set(slot::STOP, status::CONVERGED);
                        iters_out.write_at(0, iter as f64);
                        iters_out.write_at(1, change);
                    }
                }
                return;
            }
            if iter == opts.max_iterations {
                if t == 0 {
                    unsafe {
                        bank.set(slot::STOP, status::BUDGET);
                        iters_out.write_at(0, iter as f64);
                        iters_out.write_at(1, change);
                    }
                }
                return;
            }

            // --- z = M⁻¹ r, (z, r) partial fused into the final phase --------
            self.msolve_phases(&own, t, r, z, y, None, rz_partials, barrier);

            // --- β (replicated) ---------------------------------------------
            let rz_new: f64 = unsafe { rz_partials.read().iter().sum() };
            if rz_new < 0.0 {
                if t == 0 {
                    unsafe {
                        bank.set(slot::STOP, status::INDEFINITE_M);
                        iters_out.write_at(0, iter as f64);
                    }
                }
                return;
            }
            let beta = rz_new / rz.max(1e-300);
            rz = rz_new;

            // --- p = z + βp (shared xpby kernel) -----------------------------
            unsafe {
                let zv = z.read();
                let po = p.write(own.clone());
                vecops::xpby(&zv[own.clone()], beta, po);
            }
            barrier.wait();
        }
    }

    /// Barrier-per-color m-step SSOR solve `z ← M⁻¹ r` (ω = 1), or a plain
    /// copy when no coefficients are set (plain CG).
    ///
    /// Two fusions remove the surrounding barriers:
    /// * the `w₀ = 0` start is folded into the first forward sweep (step 1
    ///   reads neither `z` outside the current pass nor the `y` cache, so
    ///   the old zero-fill phase and its barrier are gone), exactly like
    ///   the sequential `MulticolorSsor::forward_first`;
    /// * the **final color phase** additionally forms this worker's
    ///   `(z, r)` strip partial — every `z` element of the strip was
    ///   written by this worker in this or an earlier phase of the solve,
    ///   so the partial needs no extra barrier — and, during
    ///   initialization (`p0 = Some`), copies the strip into `p⁰`.
    #[allow(clippy::too_many_arguments)]
    fn msolve_phases(
        &self,
        own: &std::ops::Range<usize>,
        t: usize,
        r: &SharedVec,
        z: &SharedVec,
        y: &SharedVec,
        p0: Option<&SharedVec>,
        rz_partials: &SharedVec,
        barrier: &SpinBarrier,
    ) {
        // Tail fused into the final phase, before its barrier. SAFETY of
        // the reads: only own-strip elements of z are touched, and all of
        // them were written by this worker (ownership is strip ∩ color);
        // r was finalized before the preconditioner began.
        let tail = || unsafe {
            let zs = z.read();
            let rs = r.read();
            if let Some(p) = p0 {
                p.write(own.clone()).copy_from_slice(&zs[own.clone()]);
            }
            rz_partials.write_at(t, vecops::dot(&zs[own.clone()], &rs[own.clone()]));
        };
        if self.alphas.is_empty() {
            unsafe {
                let rs = r.read();
                z.write(own.clone()).copy_from_slice(&rs[own.clone()]);
            }
            tail();
            barrier.wait();
            return;
        }
        let m = self.alphas.len();
        let nb = self.colors.num_blocks();
        for s in 1..=m {
            let alpha = self.alphas[m - s];
            let first_step = s == 1;
            let last_step = s == m;
            // Forward pass: one barrier per color. Within a color phase,
            // each row is written by exactly one worker (own ∩ color) and
            // reads only other colors (finalized) — the multicolor
            // guarantee. In the first step the upper half-sums are
            // structurally zero (fused `w₀ = 0` start), so the stale `y`
            // cache is never read.
            for c in 0..nb {
                let blk = self.colors.range(c);
                let lo = blk.start.max(own.start);
                let hi = blk.end.min(own.end);
                let last = c == nb - 1;
                unsafe {
                    let rv = r.read();
                    let zv = z.read();
                    let yv = y.read();
                    for i in lo..hi {
                        let lower = self.half_sum(i, zv, true);
                        let upper = if last || first_step { 0.0 } else { yv[i] };
                        let xi = (alpha * rv[i] - lower - upper) * self.inv_diag[i];
                        z.write_at(i, xi);
                        y.write_at(i, lower);
                    }
                }
                if last_step && last && nb == 1 {
                    // Single color: no backward pass — this is the final
                    // phase of the whole solve.
                    tail();
                }
                barrier.wait();
            }
            // Backward pass (skip the idempotent last color at ω = 1).
            for c in (0..nb.saturating_sub(1)).rev() {
                let blk = self.colors.range(c);
                let lo = blk.start.max(own.start);
                let hi = blk.end.min(own.end);
                unsafe {
                    let rv = r.read();
                    let zv = z.read();
                    let yv = y.read();
                    for i in lo..hi {
                        let upper = self.half_sum(i, zv, false);
                        let lower = yv[i];
                        let xi = (alpha * rv[i] - lower - upper) * self.inv_diag[i];
                        z.write_at(i, xi);
                        y.write_at(i, upper);
                    }
                }
                if last_step && c == 0 {
                    tail();
                }
                barrier.wait();
            }
        }
    }

    #[inline]
    fn half_sum(&self, i: usize, x: &[f64], lower: bool) -> f64 {
        let (from, to) = if lower {
            (self.row_ptr[i], self.lo_split[i])
        } else {
            (self.hi_split[i], self.row_ptr[i + 1])
        };
        let mut s = 0.0;
        for k in from..to {
            s += self.values[k] * x[self.col_idx[k] as usize];
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspcg_core::{pcg_solve, MStepSsorPreconditioner, PcgOptions};
    use mspcg_fem::plate::PlaneStressProblem;
    use mspcg_sparse::CsrMatrix;

    fn plate(a: usize) -> (CsrMatrix, Partition, Vec<f64>) {
        let asm = PlaneStressProblem::unit_square(a).assemble().unwrap();
        let ord = asm.multicolor().unwrap();
        (ord.matrix, ord.colors, ord.rhs)
    }

    #[test]
    fn matches_sequential_solver() {
        let (a, colors, rhs) = plate(8);
        let par = ParallelMStepPcg::new(&a, &colors, vec![1.0; 2]).unwrap();
        let rep = par
            .solve(
                &rhs,
                &ParallelSolverOptions {
                    threads: 4,
                    tol: 1e-8,
                    max_iterations: 10_000,
                },
            )
            .unwrap();
        let pre = MStepSsorPreconditioner::unparametrized(&a, &colors, 2).unwrap();
        let seq = pcg_solve(
            &a,
            &rhs,
            &pre,
            &PcgOptions {
                tol: 1e-8,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(rep.converged);
        // Iteration counts agree to within rounding slack.
        assert!(
            (rep.iterations as isize - seq.iterations as isize).abs() <= 2,
            "par {} vs seq {}",
            rep.iterations,
            seq.iterations
        );
        for (u, v) in rep.x.iter().zip(&seq.x) {
            assert!((u - v).abs() < 1e-6, "{u} vs {v}");
        }
    }

    #[test]
    fn plain_cg_mode_works() {
        let (a, colors, rhs) = plate(6);
        let par = ParallelMStepPcg::new(&a, &colors, vec![]).unwrap();
        assert_eq!(par.m(), 0);
        let rep = par
            .solve(
                &rhs,
                &ParallelSolverOptions {
                    threads: 3,
                    tol: 1e-8,
                    max_iterations: 10_000,
                },
            )
            .unwrap();
        let exact = a.to_dense().cholesky().unwrap().solve(&rhs);
        for (u, v) in rep.x.iter().zip(&exact) {
            assert!((u - v).abs() < 1e-5);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let (a, colors, rhs) = plate(7);
        let par = ParallelMStepPcg::new(&a, &colors, vec![1.0; 3]).unwrap();
        let opts = ParallelSolverOptions {
            threads: 4,
            tol: 1e-8,
            max_iterations: 10_000,
        };
        let r1 = par.solve(&rhs, &opts).unwrap();
        let r2 = par.solve(&rhs, &opts).unwrap();
        assert_eq!(r1.iterations, r2.iterations);
        assert_eq!(r1.x, r2.x); // bitwise: fixed reduction order
    }

    #[test]
    fn thread_count_insensitive_result() {
        let (a, colors, rhs) = plate(6);
        let par = ParallelMStepPcg::new(&a, &colors, vec![1.0]).unwrap();
        let solve = |threads: usize| {
            par.solve(
                &rhs,
                &ParallelSolverOptions {
                    threads,
                    tol: 1e-9,
                    max_iterations: 10_000,
                },
            )
            .unwrap()
        };
        let r1 = solve(1);
        let r4 = solve(4);
        assert_eq!(r1.iterations, r4.iterations);
        for (u, v) in r1.x.iter().zip(&r4.x) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    /// The acceptance gate of the operator abstraction: the SPMD solver
    /// driven through SELL-C-σ must replay the CSR run bitwise — same
    /// iterates, same iteration count, same final change — at every
    /// thread count.
    #[test]
    fn sellcs_operator_replays_csr_solver_bitwise() {
        let (a, colors, rhs) = plate(8);
        let sell = mspcg_sparse::SellCsMatrix::from_csr_default(&a);
        let par_csr = ParallelMStepPcg::new(&a, &colors, vec![1.0; 2]).unwrap();
        let par_sell = ParallelMStepPcg::new(&sell, &colors, vec![1.0; 2]).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let opts = ParallelSolverOptions {
                threads,
                tol: 1e-9,
                max_iterations: 10_000,
            };
            let rc = par_csr.solve(&rhs, &opts).unwrap();
            let rs = par_sell.solve(&rhs, &opts).unwrap();
            assert_eq!(rc.iterations, rs.iterations, "threads = {threads}");
            assert_eq!(
                rc.final_change.to_bits(),
                rs.final_change.to_bits(),
                "threads = {threads}"
            );
            assert!(
                rc.x.iter()
                    .zip(&rs.x)
                    .all(|(u, v)| u.to_bits() == v.to_bits()),
                "solution differs between formats at threads = {threads}"
            );
        }
    }

    #[test]
    fn budget_exhaustion_reported() {
        let (a, colors, rhs) = plate(6);
        let par = ParallelMStepPcg::new(&a, &colors, vec![1.0]).unwrap();
        let err = par.solve(
            &rhs,
            &ParallelSolverOptions {
                threads: 2,
                tol: 1e-14,
                max_iterations: 2,
            },
        );
        assert!(matches!(err, Err(SparseError::DidNotConverge { .. })));
    }

    #[test]
    fn zero_iteration_budget_is_exhaustion_not_convergence() {
        let (a, colors, rhs) = plate(6);
        let par = ParallelMStepPcg::new(&a, &colors, vec![1.0]).unwrap();
        let err = par.solve(
            &rhs,
            &ParallelSolverOptions {
                threads: 2,
                tol: 1e-8,
                max_iterations: 0,
            },
        );
        assert!(matches!(
            err,
            Err(SparseError::DidNotConverge { iterations: 0, .. })
        ));
    }

    #[test]
    fn rejects_unordered_matrix() {
        // A matrix with intra-block coupling must be rejected.
        let asm = PlaneStressProblem::unit_square(5).assemble().unwrap();
        let single = Partition::single(asm.matrix.rows());
        assert!(ParallelMStepPcg::new(&asm.matrix, &single, vec![1.0]).is_err());
    }

    #[test]
    fn more_threads_than_rows_is_clamped() {
        let (a, colors, rhs) = plate(4);
        let par = ParallelMStepPcg::new(&a, &colors, vec![1.0]).unwrap();
        let rep = par
            .solve(
                &rhs,
                &ParallelSolverOptions {
                    threads: 64,
                    tol: 1e-6,
                    max_iterations: 10_000,
                },
            )
            .unwrap();
        assert!(rep.converged);
        assert!(rep.threads <= a.rows());
    }
}
