//! Phase-disciplined shared vectors.
//!
//! The SPMD solver shares `f64` vectors between worker threads with a
//! strict *phase discipline* enforced by barriers:
//!
//! * within one phase, every element is written by **at most one** worker
//!   (ownership by contiguous strip, or by strip ∩ color block),
//! * elements *read* during a phase are never written in that same phase
//!   (the multicolor property: a row's off-diagonal couplings point into
//!   other color blocks, which the current phase does not touch),
//! * phases are separated by barriers, which establish happens-before
//!   edges between all writes of phase k and all reads of phase k+1.
//!
//! Rust cannot express this aliasing pattern with `&mut` splitting because
//! readers need the whole vector while writers hold disjoint parts, so
//! [`SharedVec`] wraps an `UnsafeCell` and exposes `unsafe` accessors whose
//! contracts restate the discipline. Debug builds additionally verify
//! write-range disjointness per phase via an epoch/range log.

use std::cell::UnsafeCell;

/// A fixed-length `f64` vector shared across the worker pool, stored as a
/// boxed slice of `UnsafeCell`s so element access never materializes a
/// reference to the whole container (the aliasing-correct pattern for
/// shared numeric buffers).
pub struct SharedVec {
    buf: Box<[UnsafeCell<f64>]>,
}

// SAFETY: all concurrent access goes through the `unsafe` accessors below,
// whose contracts (single writer per element per phase, no read of
// same-phase writes, barrier-separated phases) make every access either
// data-race free or unreachable. The type is only usable from this crate's
// solver, which upholds the discipline structurally.
unsafe impl Sync for SharedVec {}

impl SharedVec {
    /// Zero-initialized vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        SharedVec {
            buf: (0..n).map(|_| UnsafeCell::new(0.0)).collect(),
        }
    }

    /// Take ownership of an existing vector.
    pub fn from_vec(v: Vec<f64>) -> Self {
        SharedVec {
            buf: v.into_iter().map(UnsafeCell::new).collect(),
        }
    }

    /// Length.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Read-only view of the whole vector.
    ///
    /// # Safety
    /// No worker may concurrently write any element during the current
    /// phase (i.e. all writes to this vector happened before the last
    /// barrier).
    #[inline]
    pub unsafe fn read(&self) -> &[f64] {
        // SAFETY: UnsafeCell<f64> has the same layout as f64; the
        // forwarded contract rules out concurrent writers this phase.
        unsafe { std::slice::from_raw_parts(self.buf.as_ptr() as *const f64, self.buf.len()) }
    }

    /// Mutable view of a sub-range.
    ///
    /// # Safety
    /// The range must be disjoint from every other worker's write range in
    /// the current phase, and no worker may read these elements during the
    /// phase.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn write(&self, range: std::ops::Range<usize>) -> &mut [f64] {
        debug_assert!(range.end <= self.buf.len(), "write range out of bounds");
        // SAFETY: layout as above; the forwarded contract guarantees the
        // range is exclusively owned by the caller this phase.
        unsafe {
            std::slice::from_raw_parts_mut(
                self.buf.as_ptr().add(range.start) as *mut f64,
                range.len(),
            )
        }
    }

    /// Single-element write used by the color-sweep phases (ownership:
    /// strip ∩ color block, one writer per index).
    ///
    /// # Safety
    /// Same contract as [`SharedVec::write`] for the single index.
    #[inline]
    pub unsafe fn write_at(&self, i: usize, v: f64) {
        debug_assert!(i < self.buf.len(), "write index out of bounds");
        // SAFETY: forwarded contract — unique writer for index i.
        unsafe {
            *self.buf[i].get() = v;
        }
    }

    /// Consume into a plain vector (main thread, after all workers have
    /// joined).
    pub fn into_vec(self) -> Vec<f64> {
        self.buf
            .into_vec()
            .into_iter()
            .map(|c| c.into_inner())
            .collect()
    }
}

/// A tiny shared scalar bank for α, β, reduction results and control
/// flags, with the same phase discipline (worker 0 writes, everyone reads
/// after the next barrier).
pub struct ScalarBank {
    slots: SharedVec,
}

/// Indices into the scalar bank.
pub mod slot {
    /// α of the current iteration.
    pub const ALPHA: usize = 0;
    /// β of the current iteration.
    pub const BETA: usize = 1;
    /// (r̂, r) of the current iteration.
    pub const RZ: usize = 2;
    /// Convergence flag (1.0 = stop).
    pub const STOP: usize = 3;
    /// ‖Δu‖∞ of the current iteration.
    pub const CHANGE: usize = 4;
    /// Number of slots.
    pub const COUNT: usize = 5;
}

impl ScalarBank {
    /// Fresh bank, zeroed.
    pub fn new() -> Self {
        ScalarBank {
            slots: SharedVec::zeros(slot::COUNT),
        }
    }

    /// Write a slot (single designated writer per phase).
    ///
    /// # Safety
    /// Same single-writer/phase contract as [`SharedVec::write_at`].
    #[inline]
    pub unsafe fn set(&self, idx: usize, v: f64) {
        // SAFETY: forwarded contract.
        unsafe { self.slots.write_at(idx, v) }
    }

    /// Read a slot (after the barrier that sequenced the write).
    ///
    /// # Safety
    /// Same no-concurrent-writer contract as [`SharedVec::read`].
    #[inline]
    pub unsafe fn get(&self, idx: usize) -> f64 {
        // SAFETY: forwarded contract.
        unsafe { self.slots.read()[idx] }
    }
}

impl Default for ScalarBank {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    #[test]
    fn single_threaded_round_trip() {
        let v = SharedVec::zeros(4);
        unsafe {
            v.write(1..3).copy_from_slice(&[5.0, 6.0]);
            assert_eq!(v.read(), &[0.0, 5.0, 6.0, 0.0]);
            v.write_at(0, -1.0);
        }
        assert_eq!(v.into_vec(), vec![-1.0, 5.0, 6.0, 0.0]);
    }

    #[test]
    fn barrier_separated_multi_writer() {
        // Two threads write disjoint halves, barrier, then both read all.
        let v = SharedVec::zeros(8);
        let b = Barrier::new(2);
        std::thread::scope(|s| {
            for t in 0..2usize {
                let v = &v;
                let b = &b;
                s.spawn(move || {
                    let range = t * 4..(t + 1) * 4;
                    unsafe {
                        for (k, x) in v.write(range.clone()).iter_mut().enumerate() {
                            *x = (t * 4 + k) as f64;
                        }
                    }
                    b.wait();
                    let all = unsafe { v.read() };
                    let sum: f64 = all.iter().sum();
                    assert_eq!(sum, 28.0);
                });
            }
        });
    }

    #[test]
    fn scalar_bank_slots() {
        let bank = ScalarBank::new();
        unsafe {
            bank.set(slot::ALPHA, 0.5);
            bank.set(slot::STOP, 1.0);
            assert_eq!(bank.get(slot::ALPHA), 0.5);
            assert_eq!(bank.get(slot::STOP), 1.0);
            assert_eq!(bank.get(slot::BETA), 0.0);
        }
    }
}
