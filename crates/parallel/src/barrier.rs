//! A sense-reversing spin barrier.
//!
//! The SPMD solver synchronizes ~`8 + m·(2C−1)` times per CG iteration
//! (one per color phase). `std::sync::Barrier` parks threads through the
//! OS on every wait — microseconds each — which swamps the numeric work
//! for all but huge plates. HPC barriers spin instead: when all workers
//! arrive within a few hundred nanoseconds of each other (the common case
//! for balanced strips), a generation-counter spin costs ~100 ns.
//!
//! The implementation is the classic central counter + generation
//! ("sense") flag. Memory ordering: every worker's pre-barrier writes
//! happen-before its `fetch_add` (release); the last arriver's `fetch_add`
//! (acquire) therefore sees them all, and its generation bump (release) is
//! what the spinners acquire — transitively ordering all pre-barrier
//! writes before all post-barrier reads.
//!
//! To stay polite under oversubscription the spin yields to the scheduler
//! every 64 polls.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A reusable spin barrier for a fixed number of workers.
///
/// The barrier **counts its crossings** ([`SpinBarrier::crossings`]): one
/// increment per generation, regardless of worker count. The SPMD solver
/// publishes the count so the per-iteration synchronization cost of a
/// schedule — the quantity the paper's whole argument optimizes — is a
/// measured number, not a claim (a relaxed store by the last arriver;
/// nothing is added to the spin loop).
pub struct SpinBarrier {
    count: AtomicUsize,
    generation: AtomicUsize,
    crossings: AtomicUsize,
    total: usize,
}

impl SpinBarrier {
    /// Barrier for `n` workers.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one worker");
        SpinBarrier {
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            crossings: AtomicUsize::new(0),
            total: n,
        }
    }

    /// Completed barrier crossings (generations) since construction. One
    /// crossing = one synchronization of all `n` workers — the unit the
    /// `m·(2C−1) + k` per-iteration cost model counts.
    pub fn crossings(&self) -> usize {
        self.crossings.load(Ordering::Relaxed)
    }

    /// Block (spinning) until all `n` workers have called `wait`.
    pub fn wait(&self) {
        if self.total == 1 {
            self.crossings.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let gen = self.generation.load(Ordering::Acquire);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.total {
            // Last arriver: reset and release the generation.
            self.count.store(0, Ordering::Relaxed);
            self.crossings.fetch_add(1, Ordering::Relaxed);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins += 1;
                if spins.is_multiple_of(64) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

/// A **split-phase** spin barrier: [`SplitBarrier::arrive`] announces this
/// worker's phase is complete (publishing its pre-arrive writes) and
/// returns immediately with a generation ticket; [`SplitBarrier::wait`]
/// blocks until *every* worker of that generation has arrived. Work placed
/// between the two calls overlaps the other workers' straggling — the
/// split-phase analogue of `MPI_Iallreduce`: the pipelined PCG schedule
/// *initiates* its one reduction (arrive, right after the partials are
/// written) before the preconditioner + SpMV phase and only *consumes* it
/// (wait) afterwards, hiding the synchronization latency behind the
/// heaviest work of the iteration.
///
/// Memory ordering is the [`SpinBarrier`] argument verbatim: each worker's
/// pre-arrive writes happen-before its `fetch_add` (release); the last
/// arriver's `fetch_add` (acquire) sees them all and its generation bump
/// (release) is what `wait` acquires — so everything written before *any*
/// `arrive` is visible after *every* `wait` of that generation.
///
/// Contract: each worker alternates `arrive`/`wait` strictly (one
/// outstanding ticket per worker). A worker may `arrive` for generation
/// `g+1` while another still spins in `wait(g)` — tickets pin the
/// generation at arrival time, so a late `wait` whose generation already
/// completed returns immediately (the common case when enough work was
/// overlapped).
///
/// Crossings are instrumented exactly like [`SpinBarrier::crossings`]: one
/// increment per completed generation, by the last arriver.
pub struct SplitBarrier {
    count: AtomicUsize,
    generation: AtomicUsize,
    crossings: AtomicUsize,
    total: usize,
}

impl SplitBarrier {
    /// Split barrier for `n` workers.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one worker");
        SplitBarrier {
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            crossings: AtomicUsize::new(0),
            total: n,
        }
    }

    /// Completed generations since construction (the unit the pipelined
    /// schedule's cost model counts: one reduction in flight per
    /// crossing).
    pub fn crossings(&self) -> usize {
        self.crossings.load(Ordering::Relaxed)
    }

    /// Announce arrival at the current generation and return its ticket
    /// (to be passed to [`SplitBarrier::wait`]). Never blocks.
    pub fn arrive(&self) -> usize {
        if self.total == 1 {
            self.crossings.fetch_add(1, Ordering::Relaxed);
            return 0;
        }
        let gen = self.generation.load(Ordering::Acquire);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.total {
            // Last arriver: reset and release the generation.
            self.count.store(0, Ordering::Relaxed);
            self.crossings.fetch_add(1, Ordering::Relaxed);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
        }
        gen
    }

    /// Block (spinning) until every worker has arrived at the ticket's
    /// generation. Returns immediately when that generation already
    /// completed — the payoff case, where the overlapped work outlasted
    /// the stragglers.
    pub fn wait(&self, ticket: usize) {
        if self.total == 1 {
            return;
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == ticket {
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// `arrive` + `wait` back to back: a plain full barrier (the zero
    /// overlap-window degenerate case).
    pub fn arrive_and_wait(&self) {
        let ticket = self.arrive();
        self.wait(ticket);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn single_worker_never_blocks() {
        let b = SpinBarrier::new(1);
        for _ in 0..10 {
            b.wait();
        }
        assert_eq!(b.crossings(), 10);
    }

    #[test]
    fn crossings_count_generations_not_waits() {
        const T: usize = 4;
        const ROUNDS: usize = 50;
        let b = SpinBarrier::new(T);
        std::thread::scope(|s| {
            for _ in 0..T {
                let b = &b;
                s.spawn(move || {
                    for _ in 0..ROUNDS {
                        b.wait();
                    }
                });
            }
        });
        // 4 workers × 50 waits = 50 crossings.
        assert_eq!(b.crossings(), ROUNDS);
    }

    #[test]
    fn orders_phases_across_threads() {
        // Classic message-passing test: phase-1 writes must be visible
        // after the barrier in every thread, for many generations.
        const T: usize = 4;
        const ROUNDS: usize = 200;
        let b = SpinBarrier::new(T);
        let cells: Vec<AtomicU64> = (0..T).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|s| {
            for t in 0..T {
                let b = &b;
                let cells = &cells;
                s.spawn(move || {
                    for round in 1..=ROUNDS as u64 {
                        cells[t].store(round, Ordering::Relaxed);
                        b.wait();
                        for c in cells {
                            assert_eq!(c.load(Ordering::Relaxed), round);
                        }
                        b.wait();
                    }
                });
            }
        });
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        SpinBarrier::new(0);
    }

    #[test]
    fn split_single_worker_never_blocks() {
        // 1-thread degenerate case: arrive returns instantly, wait is a
        // no-op, crossings still count generations.
        let b = SplitBarrier::new(1);
        for _ in 0..10 {
            let t = b.arrive();
            b.wait(t);
        }
        assert_eq!(b.crossings(), 10);
        // A stale ticket must not deadlock a single worker either.
        b.wait(0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn split_zero_workers_rejected() {
        SplitBarrier::new(0);
    }

    #[test]
    fn split_crossings_count_generations_not_arrivals() {
        const T: usize = 4;
        const ROUNDS: usize = 50;
        let b = SplitBarrier::new(T);
        std::thread::scope(|s| {
            for _ in 0..T {
                let b = &b;
                s.spawn(move || {
                    for _ in 0..ROUNDS {
                        b.arrive_and_wait();
                    }
                });
            }
        });
        // 4 workers × 50 arrive/wait pairs = 50 crossings.
        assert_eq!(b.crossings(), ROUNDS);
    }

    #[test]
    fn split_orders_arrive_side_writes_before_wait_side_reads() {
        // The split-phase analogue of the message-passing test: every
        // write made before *any* arrive of generation g must be visible
        // after *every* wait of generation g, with an overlap window of
        // unrelated work in between, across many reused generations.
        const T: usize = 4;
        const ROUNDS: usize = 200;
        let b = SplitBarrier::new(T);
        let cells: Vec<AtomicU64> = (0..T).map(|_| AtomicU64::new(0)).collect();
        let scratch: Vec<AtomicU64> = (0..T).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|s| {
            for t in 0..T {
                let b = &b;
                let cells = &cells;
                let scratch = &scratch;
                s.spawn(move || {
                    for round in 1..=ROUNDS as u64 {
                        cells[t].store(round, Ordering::Relaxed);
                        let ticket = b.arrive();
                        // Overlap window: private work that must not
                        // disturb the in-flight generation.
                        scratch[t].store(round * round, Ordering::Relaxed);
                        b.wait(ticket);
                        for c in cells {
                            assert_eq!(c.load(Ordering::Relaxed), round);
                        }
                        // Second (full) crossing separates the rounds so a
                        // fast worker's next store cannot race the check.
                        b.arrive_and_wait();
                    }
                });
            }
        });
        assert_eq!(b.crossings(), 2 * ROUNDS);
    }

    #[test]
    fn split_interleaving_stress_with_randomized_delays() {
        // Loom-style interleaving smoke: per-thread xorshift delays jitter
        // the arrive→wait window so fast workers routinely arrive for
        // generation g+1 while slow ones still sit before wait(g). The
        // phase-1 visibility invariant must hold in every interleaving.
        const T: usize = 4;
        const ROUNDS: usize = 500;
        let b = SplitBarrier::new(T);
        let cells: Vec<AtomicU64> = (0..T).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|s| {
            for t in 0..T {
                let b = &b;
                let cells = &cells;
                s.spawn(move || {
                    let mut state = 0x9E37_79B9u64.wrapping_mul(t as u64 + 1) | 1;
                    let mut rng = move || {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        state
                    };
                    for round in 1..=ROUNDS as u64 {
                        cells[t].store(round, Ordering::Relaxed);
                        let ticket = b.arrive();
                        // Randomized overlap delay (0–255 spin hints).
                        for _ in 0..(rng() & 0xFF) {
                            std::hint::spin_loop();
                        }
                        b.wait(ticket);
                        for c in cells {
                            assert_eq!(c.load(Ordering::Relaxed), round);
                        }
                        // Randomized post-wait delay before the separating
                        // crossing, to jitter the read side too.
                        for _ in 0..(rng() & 0xFF) {
                            std::hint::spin_loop();
                        }
                        b.arrive_and_wait();
                    }
                });
            }
        });
        assert_eq!(b.crossings(), 2 * ROUNDS);
    }

    #[test]
    fn split_late_wait_returns_immediately_after_generation_completes() {
        // Reuse across generations with a deliberately late wait: worker 0
        // holds its ticket while the others complete the generation; its
        // wait must then pass without any further arrivals.
        const T: usize = 3;
        let b = SplitBarrier::new(T);
        let gate = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..T {
                let b = &b;
                let gate = &gate;
                s.spawn(move || {
                    let ticket = b.arrive();
                    gate.fetch_add(1, Ordering::SeqCst);
                    if t == 0 {
                        // Last to wait: by now the generation may already
                        // be complete — wait must not hang on a stale
                        // ticket.
                        while gate.load(Ordering::SeqCst) < T {
                            std::hint::spin_loop();
                        }
                    }
                    b.wait(ticket);
                });
            }
        });
        assert_eq!(b.crossings(), 1);
    }
}
