//! A sense-reversing spin barrier.
//!
//! The SPMD solver synchronizes ~`8 + m·(2C−1)` times per CG iteration
//! (one per color phase). `std::sync::Barrier` parks threads through the
//! OS on every wait — microseconds each — which swamps the numeric work
//! for all but huge plates. HPC barriers spin instead: when all workers
//! arrive within a few hundred nanoseconds of each other (the common case
//! for balanced strips), a generation-counter spin costs ~100 ns.
//!
//! The implementation is the classic central counter + generation
//! ("sense") flag. Memory ordering: every worker's pre-barrier writes
//! happen-before its `fetch_add` (release); the last arriver's `fetch_add`
//! (acquire) therefore sees them all, and its generation bump (release) is
//! what the spinners acquire — transitively ordering all pre-barrier
//! writes before all post-barrier reads.
//!
//! To stay polite under oversubscription the spin yields to the scheduler
//! every 64 polls.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A reusable spin barrier for a fixed number of workers.
///
/// The barrier **counts its crossings** ([`SpinBarrier::crossings`]): one
/// increment per generation, regardless of worker count. The SPMD solver
/// publishes the count so the per-iteration synchronization cost of a
/// schedule — the quantity the paper's whole argument optimizes — is a
/// measured number, not a claim (a relaxed store by the last arriver;
/// nothing is added to the spin loop).
pub struct SpinBarrier {
    count: AtomicUsize,
    generation: AtomicUsize,
    crossings: AtomicUsize,
    total: usize,
}

impl SpinBarrier {
    /// Barrier for `n` workers.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one worker");
        SpinBarrier {
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            crossings: AtomicUsize::new(0),
            total: n,
        }
    }

    /// Completed barrier crossings (generations) since construction. One
    /// crossing = one synchronization of all `n` workers — the unit the
    /// `m·(2C−1) + k` per-iteration cost model counts.
    pub fn crossings(&self) -> usize {
        self.crossings.load(Ordering::Relaxed)
    }

    /// Block (spinning) until all `n` workers have called `wait`.
    pub fn wait(&self) {
        if self.total == 1 {
            self.crossings.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let gen = self.generation.load(Ordering::Acquire);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.total {
            // Last arriver: reset and release the generation.
            self.count.store(0, Ordering::Relaxed);
            self.crossings.fetch_add(1, Ordering::Relaxed);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins += 1;
                if spins.is_multiple_of(64) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn single_worker_never_blocks() {
        let b = SpinBarrier::new(1);
        for _ in 0..10 {
            b.wait();
        }
        assert_eq!(b.crossings(), 10);
    }

    #[test]
    fn crossings_count_generations_not_waits() {
        const T: usize = 4;
        const ROUNDS: usize = 50;
        let b = SpinBarrier::new(T);
        std::thread::scope(|s| {
            for _ in 0..T {
                let b = &b;
                s.spawn(move || {
                    for _ in 0..ROUNDS {
                        b.wait();
                    }
                });
            }
        });
        // 4 workers × 50 waits = 50 crossings.
        assert_eq!(b.crossings(), ROUNDS);
    }

    #[test]
    fn orders_phases_across_threads() {
        // Classic message-passing test: phase-1 writes must be visible
        // after the barrier in every thread, for many generations.
        const T: usize = 4;
        const ROUNDS: usize = 200;
        let b = SpinBarrier::new(T);
        let cells: Vec<AtomicU64> = (0..T).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|s| {
            for t in 0..T {
                let b = &b;
                let cells = &cells;
                s.spawn(move || {
                    for round in 1..=ROUNDS as u64 {
                        cells[t].store(round, Ordering::Relaxed);
                        b.wait();
                        for c in cells {
                            assert_eq!(c.load(Ordering::Relaxed), round);
                        }
                        b.wait();
                    }
                });
            }
        });
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        SpinBarrier::new(0);
    }
}
