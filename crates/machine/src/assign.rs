//! Node-to-processor assignment for the Finite Element Machine (§3.2,
//! Figures 3 and 5).
//!
//! The paper assigns each processor "as nearly as possible, an equal
//! number of Red/Black/Green unconstrained nodes". We reproduce this with
//! contiguous row-major strips of the free nodes: because the R/B/G
//! coloring is cyclic with period 3 along the free-node ordering whenever
//! the number of free columns ≡ 2 (mod 3) — true for the paper's 6×6
//! plate — equal strip sizes divisible by 3 give *perfectly* balanced
//! colors, exactly as in Figure 5.

use mspcg_coloring::grid::NodeColor;
use mspcg_fem::plate::AssembledProblem;
use mspcg_fem::PlateMesh;
use mspcg_sparse::SparseError;

/// Which processor owns each unconstrained node.
#[derive(Debug, Clone)]
pub struct ProcessorAssignment {
    p: usize,
    mesh: PlateMesh,
    /// Full-grid node ids of the free nodes, row-major ascending.
    free_nodes: Vec<usize>,
    /// Owner processor of `free_nodes[k]`.
    owner: Vec<usize>,
    /// Owner lookup by full node id (usize::MAX = constrained).
    owner_by_node: Vec<usize>,
}

impl ProcessorAssignment {
    /// Contiguous balanced strips over the free nodes.
    ///
    /// # Errors
    /// [`SparseError::InvalidPartition`] if `p == 0` or `p` exceeds the
    /// number of free nodes.
    pub fn strips(asm: &AssembledProblem, p: usize) -> Result<Self, SparseError> {
        let mesh = asm.mesh;
        let mut free_nodes = Vec::new();
        for node in 0..mesh.num_nodes() {
            if asm.free_map.full_to_reduced(2 * node).is_some() {
                free_nodes.push(node);
            }
        }
        if p == 0 || p > free_nodes.len() {
            return Err(SparseError::InvalidPartition {
                reason: format!("{p} processors for {} free nodes", free_nodes.len()),
            });
        }
        let n = free_nodes.len();
        let base = n / p;
        let extra = n % p;
        let mut owner = Vec::with_capacity(n);
        for q in 0..p {
            let size = base + usize::from(q < extra);
            owner.extend(std::iter::repeat_n(q, size));
        }
        let mut owner_by_node = vec![usize::MAX; mesh.num_nodes()];
        for (k, &node) in free_nodes.iter().enumerate() {
            owner_by_node[node] = owner[k];
        }
        Ok(ProcessorAssignment {
            p,
            mesh,
            free_nodes,
            owner,
            owner_by_node,
        })
    }

    /// Number of processors.
    pub fn num_processors(&self) -> usize {
        self.p
    }

    /// Free nodes owned by processor `q` (full-grid node ids).
    pub fn nodes_of(&self, q: usize) -> Vec<usize> {
        self.free_nodes
            .iter()
            .zip(&self.owner)
            .filter(|&(_, &o)| o == q)
            .map(|(&n, _)| n)
            .collect()
    }

    /// Owner of a full-grid node id (`None` for constrained nodes).
    pub fn owner_of(&self, node: usize) -> Option<usize> {
        let o = self.owner_by_node[node];
        (o != usize::MAX).then_some(o)
    }

    /// R/B/G counts of processor `q`'s nodes.
    pub fn color_counts(&self, q: usize) -> [usize; 3] {
        let mut counts = [0usize; 3];
        for node in self.nodes_of(q) {
            let (r, c) = self.mesh.node_row_col(node);
            counts[NodeColor::of(r, c) as usize] += 1;
        }
        counts
    }

    /// True when every processor owns the same number of nodes of each
    /// color (the paper's requirement for ideal speedup).
    pub fn colors_balanced(&self) -> bool {
        let first = self.color_counts(0);
        (1..self.p).all(|q| self.color_counts(q) == first)
    }

    /// 2-D block assignment on a `pr × pc` processor grid (paper Fig. 3):
    /// the free-node bounding box is cut into `pr` row bands × `pc` column
    /// bands, as evenly as possible. Interior processors then talk over up
    /// to six of the machine's eight links (N, S, E, W + the two
    /// anti-diagonal neighbours of the triangulation), matching Fig. 4.
    ///
    /// Unlike [`ProcessorAssignment::strips`], block boundaries generally
    /// do not balance the color classes exactly — the trade the paper's
    /// figures illustrate (strips balance colors; blocks shorten borders).
    ///
    /// # Errors
    /// [`SparseError::InvalidPartition`] if either grid dimension is zero
    /// or exceeds the free rows/columns.
    pub fn blocks(asm: &AssembledProblem, pr: usize, pc: usize) -> Result<Self, SparseError> {
        let mesh = asm.mesh;
        let mut free_nodes = Vec::new();
        let (mut min_r, mut max_r, mut min_c, mut max_c) = (usize::MAX, 0usize, usize::MAX, 0usize);
        for node in 0..mesh.num_nodes() {
            if asm.free_map.full_to_reduced(2 * node).is_some() {
                free_nodes.push(node);
                let (r, c) = mesh.node_row_col(node);
                min_r = min_r.min(r);
                max_r = max_r.max(r);
                min_c = min_c.min(c);
                max_c = max_c.max(c);
            }
        }
        let rows = max_r - min_r + 1;
        let cols = max_c - min_c + 1;
        if pr == 0 || pc == 0 || pr > rows || pc > cols {
            return Err(SparseError::InvalidPartition {
                reason: format!("{pr}x{pc} processor grid for {rows}x{cols} free nodes"),
            });
        }
        // Band boundary: band b of `n` items over `p` bands.
        let band = |x: usize, n: usize, p: usize| -> usize {
            // Inverse of the balanced split sizes base + (b < extra).
            let base = n / p;
            let extra = n % p;
            let cut = extra * (base + 1);
            if x < cut {
                x / (base + 1)
            } else {
                extra + (x - cut) / base.max(1)
            }
        };
        let mut owner = Vec::with_capacity(free_nodes.len());
        for &node in &free_nodes {
            let (r, c) = mesh.node_row_col(node);
            let br = band(r - min_r, rows, pr);
            let bc = band(c - min_c, cols, pc);
            owner.push(br * pc + bc);
        }
        let mut owner_by_node = vec![usize::MAX; mesh.num_nodes()];
        for (k, &node) in free_nodes.iter().enumerate() {
            owner_by_node[node] = owner[k];
        }
        Ok(ProcessorAssignment {
            p: pr * pc,
            mesh,
            free_nodes,
            owner,
            owner_by_node,
        })
    }

    /// Neighbour processors of `q`: owners of free stencil neighbours of
    /// `q`'s nodes. Sorted, deduplicated, excludes `q`.
    pub fn neighbor_procs(&self, q: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .nodes_of(q)
            .into_iter()
            .flat_map(|node| {
                let (r, c) = self.mesh.node_row_col(node);
                self.mesh.stencil_neighbors(r, c)
            })
            .filter_map(|nb| self.owner_of(nb))
            .filter(|&o| o != q)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Border nodes of `q` facing neighbour `to`: nodes owned by `q` with
    /// at least one stencil neighbour owned by `to`. These are the nodes
    /// whose `(u, v)` values must be sent each exchange.
    pub fn border_nodes(&self, q: usize, to: usize) -> Vec<usize> {
        self.nodes_of(q)
            .into_iter()
            .filter(|&node| {
                let (r, c) = self.mesh.node_row_col(node);
                self.mesh
                    .stencil_neighbors(r, c)
                    .into_iter()
                    .any(|nb| self.owner_of(nb) == Some(to))
            })
            .collect()
    }

    /// Maximum number of distinct neighbour processors over all processors
    /// — must be ≤ 8 for the FEM's eight nearest-neighbour links
    /// (Figure 4 shows the plate problem using six of them).
    pub fn max_links_used(&self) -> usize {
        (0..self.p)
            .map(|q| self.neighbor_procs(q).len())
            .max()
            .unwrap_or(0)
    }

    /// ASCII map of the assignment (Figures 3/5): one digit per node
    /// (owner id mod 10), `·` for constrained nodes; bottom row last.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in (0..self.mesh.rows).rev() {
            for c in 0..self.mesh.cols {
                let node = self.mesh.node_index(r, c);
                match self.owner_of(node) {
                    Some(o) => out.push(char::from_digit((o % 10) as u32, 10).unwrap()),
                    None => out.push('.'),
                }
                out.push(' ');
            }
            out.push('\n');
        }
        out
    }

    /// Per-processor equation counts (2 dofs per owned node).
    pub fn equations_of(&self, q: usize) -> usize {
        2 * self.nodes_of(q).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspcg_fem::plate::PlaneStressProblem;

    fn plate6() -> AssembledProblem {
        PlaneStressProblem::unit_square(6).assemble().unwrap()
    }

    #[test]
    fn equal_node_counts_for_divisors() {
        let asm = plate6();
        for p in [1usize, 2, 3, 5, 6] {
            let a = ProcessorAssignment::strips(&asm, p).unwrap();
            let sizes: Vec<usize> = (0..p).map(|q| a.nodes_of(q).len()).collect();
            assert_eq!(sizes.iter().sum::<usize>(), 30);
            assert!(sizes.iter().all(|&s| s == 30 / p), "{sizes:?}");
        }
    }

    #[test]
    fn paper_assignments_have_balanced_colors() {
        // §4: "each processor has an equal number of R, B, and G nodes"
        // for the 1-, 2- and 5-processor splits of the 6×6 plate.
        let asm = plate6();
        for p in [1usize, 2, 5] {
            let a = ProcessorAssignment::strips(&asm, p).unwrap();
            assert!(a.colors_balanced(), "p = {p}");
            let c = a.color_counts(0);
            assert_eq!(c[0] + c[1] + c[2], 30 / p);
            assert_eq!(c[0], c[1]);
            assert_eq!(c[1], c[2]);
        }
    }

    #[test]
    fn two_processor_split_has_equal_borders() {
        let asm = plate6();
        let a = ProcessorAssignment::strips(&asm, 2).unwrap();
        let b01 = a.border_nodes(0, 1).len();
        let b10 = a.border_nodes(1, 0).len();
        assert!(b01 > 0 && b10 > 0);
        assert_eq!(b01, b10);
    }

    #[test]
    fn neighbor_procs_are_adjacent_strips() {
        let asm = plate6();
        let a = ProcessorAssignment::strips(&asm, 5).unwrap();
        for q in 0..5 {
            let nbrs = a.neighbor_procs(q);
            assert!(!nbrs.is_empty());
            // Strip q talks only to strips within distance 2 (row strips of
            // 6 nodes are ~1.2 mesh rows tall).
            for &o in &nbrs {
                assert!((o as isize - q as isize).abs() <= 2, "{q} -> {o}");
            }
        }
    }

    #[test]
    fn links_fit_the_machine() {
        let asm = plate6();
        for p in [1usize, 2, 5, 10] {
            let a = ProcessorAssignment::strips(&asm, p).unwrap();
            assert!(a.max_links_used() <= 8, "p = {p}: {}", a.max_links_used());
        }
    }

    #[test]
    fn owner_lookup_consistent() {
        let asm = plate6();
        let a = ProcessorAssignment::strips(&asm, 5).unwrap();
        for q in 0..5 {
            for node in a.nodes_of(q) {
                assert_eq!(a.owner_of(node), Some(q));
            }
        }
        // Constrained left-column nodes have no owner.
        assert_eq!(a.owner_of(0), None);
    }

    #[test]
    fn render_shows_grid() {
        let asm = plate6();
        let a = ProcessorAssignment::strips(&asm, 2).unwrap();
        let s = a.render();
        assert_eq!(s.lines().count(), 6);
        assert!(s.contains('.') && s.contains('0') && s.contains('1'));
    }

    #[test]
    fn rejects_too_many_processors() {
        let asm = plate6();
        assert!(ProcessorAssignment::strips(&asm, 0).is_err());
        assert!(ProcessorAssignment::strips(&asm, 31).is_err());
    }

    #[test]
    fn block_assignment_covers_all_nodes_evenly() {
        let asm = PlaneStressProblem::unit_square(13).assemble().unwrap();
        let a = ProcessorAssignment::blocks(&asm, 3, 4).unwrap();
        assert_eq!(a.num_processors(), 12);
        let sizes: Vec<usize> = (0..12).map(|q| a.nodes_of(q).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 13 * 12);
        let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        // Bands are balanced to ±1 row/column each: sizes within ~2x.
        assert!(hi - lo <= (13 / 3 + 1) + (12 / 4 + 1), "{sizes:?}");
    }

    #[test]
    fn interior_block_processor_uses_six_links() {
        // Paper Fig. 4: the plate problem needs six of the eight links.
        let asm = PlaneStressProblem::unit_square(16).assemble().unwrap();
        let a = ProcessorAssignment::blocks(&asm, 3, 3).unwrap();
        // Processor 4 (center of the 3x3 grid) has all six triangulation
        // neighbours: N, S, E, W, NW, SE.
        let nbrs = a.neighbor_procs(4);
        assert_eq!(nbrs.len(), 6, "{nbrs:?}");
        assert!(a.max_links_used() <= 8);
        // The anti-diagonal neighbours (NW = proc 6, SE = proc 2 in
        // row-major processor numbering) are present; NE/SW are not.
        assert!(nbrs.contains(&6) && nbrs.contains(&2));
        assert!(!nbrs.contains(&0) && !nbrs.contains(&8));
    }

    #[test]
    fn blocks_reject_degenerate_grids() {
        let asm = plate6();
        assert!(ProcessorAssignment::blocks(&asm, 0, 2).is_err());
        assert!(ProcessorAssignment::blocks(&asm, 7, 1).is_err());
        assert!(ProcessorAssignment::blocks(&asm, 2, 1).is_ok());
    }

    #[test]
    fn blocks_have_shorter_borders_than_strips_at_same_p() {
        // The reason Fig. 3 uses 2-D blocks: perimeter scales better.
        let asm = PlaneStressProblem::unit_square(16).assemble().unwrap();
        let strips = ProcessorAssignment::strips(&asm, 4).unwrap();
        let blocks = ProcessorAssignment::blocks(&asm, 2, 2).unwrap();
        let border_total = |a: &ProcessorAssignment| -> usize {
            (0..a.num_processors())
                .map(|q| {
                    a.neighbor_procs(q)
                        .into_iter()
                        .map(|o| a.border_nodes(q, o).len())
                        .sum::<usize>()
                })
                .sum()
        };
        assert!(
            border_total(&blocks) <= border_total(&strips),
            "blocks {} vs strips {}",
            border_total(&blocks),
            border_total(&strips)
        );
    }
}
