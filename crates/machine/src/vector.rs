//! CYBER 203/205 execution of the m-step SSOR PCG (§3.1, Table 2).
//!
//! The simulator runs the *real* solver on the color-ordered system for
//! exact iteration counts and then charges the pipeline clock analytically
//! from the matrix structure:
//!
//! * `K·p` is performed **by diagonals** (Madsen–Rodrigue–Karush): one
//!   fused multiply–add vector instruction per occupied diagonal of the
//!   color-blocked matrix (structure (3.2)),
//! * each preconditioner step touches every off-diagonal *block* diagonal
//!   once (Conrad–Wallach) plus per-color divides and adds,
//! * the two inner products per iteration pay the recursive-halving sum
//!   phase — "considerably slower than the other vector operations",
//! * vectors are stored by color **including the constrained nodes**
//!   (control-vector masking), so vector lengths are the padded per-color
//!   node counts, matching the `v` column of Table 2.

use crate::params::VectorMachineParams;
use mspcg_core::{
    cg_solve, pcg_solve, MStepSsorPreconditioner, PcgOptions, PcgSolution, StoppingCriterion,
};
use mspcg_fem::plate::{AssembledProblem, OrderedProblem};
use mspcg_sparse::{CsrMatrix, DiaMatrix, Partition, SparseError};

/// Which coefficient set to run (Table 2 rows `m` vs `mP`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoefficientChoice {
    /// `αᵢ = 1` (rows `1, 2, 3, 4` of Table 2).
    Unparametrized,
    /// Least-squares parametrized (rows `2P … 10P`).
    Parametrized,
}

/// Timing breakdown of one simulated run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CyberBreakdown {
    /// `K·p` products by diagonals.
    pub spmv: f64,
    /// Inner products (the α and β reductions).
    pub dots: f64,
    /// AXPY-style vector updates (u, r, p).
    pub updates: f64,
    /// Convergence test (vector subtract/abs + max reduction).
    pub convergence: f64,
    /// m-step SSOR preconditioner sweeps.
    pub preconditioner: f64,
}

impl CyberBreakdown {
    /// Total seconds.
    pub fn total(&self) -> f64 {
        self.spmv + self.dots + self.updates + self.convergence + self.preconditioner
    }
}

/// Result of a simulated CYBER run.
#[derive(Debug, Clone)]
pub struct CyberReport {
    /// m (0 = plain CG).
    pub m: usize,
    /// Parametrized or not (meaningless for m = 0).
    pub parametrized: bool,
    /// Exact iteration count (Table 2 column `I`).
    pub iterations: usize,
    /// Modelled wall time in seconds (Table 2 column `T`).
    pub seconds: f64,
    /// Maximum vector length of the padded color layout (column `v`).
    pub max_vector_length: usize,
    /// Phase breakdown.
    pub breakdown: CyberBreakdown,
    /// Cost-model constants: `A` = seconds per outer CG iteration.
    pub a_per_iteration: f64,
    /// `B` = seconds per preconditioner step.
    pub b_per_step: f64,
    /// The solver output (solution vector, stats, convergence data).
    pub solution: PcgSolution,
}

/// Structural analysis of the color-blocked matrix used by the clock
/// model: occupied diagonals of the full matrix and of each off-diagonal
/// block.
#[derive(Debug, Clone)]
pub struct BlockDiagonalStructure {
    /// Occupied diagonal count of the full color-blocked matrix.
    pub full_matrix_diagonals: usize,
    /// Per (block-row, block-col) pair, the number of occupied *local*
    /// diagonals of that block (0 when the block is empty).
    pub block_diagonals: Vec<Vec<usize>>,
    /// Block sizes.
    pub block_sizes: Vec<usize>,
}

impl BlockDiagonalStructure {
    /// Analyze a color-blocked matrix.
    pub fn analyze(a: &CsrMatrix, colors: &Partition) -> Self {
        let nb = colors.num_blocks();
        let full = DiaMatrix::from_csr(a).num_diagonals();
        let mut block_diagonals = vec![vec![0usize; nb]; nb];
        let offsets = colors.offsets();
        for (bi, row_range) in colors.iter().enumerate() {
            let mut sets: Vec<std::collections::BTreeSet<isize>> =
                vec![std::collections::BTreeSet::new(); nb];
            for i in row_range.clone() {
                let li = (i - offsets[bi]) as isize;
                for (j, _) in a.row_entries(i) {
                    let bj = colors.block_of(j);
                    let lj = (j - offsets[bj]) as isize;
                    sets[bj].insert(lj - li);
                }
            }
            for (bj, set) in sets.iter().enumerate() {
                block_diagonals[bi][bj] = set.len();
            }
        }
        BlockDiagonalStructure {
            full_matrix_diagonals: full,
            block_diagonals,
            block_sizes: (0..nb).map(|b| colors.block_len(b)).collect(),
        }
    }

    /// Total off-diagonal-block diagonal count (the vector-op count of one
    /// full set of block products).
    pub fn offdiag_block_diagonals(&self) -> usize {
        let nb = self.block_sizes.len();
        let mut s = 0;
        for i in 0..nb {
            for j in 0..nb {
                if i != j {
                    s += self.block_diagonals[i][j];
                }
            }
        }
        s
    }
}

/// Run the m-step SSOR PCG for the plate problem on the simulated CYBER.
///
/// `m == 0` runs plain CG (the paper's baseline row). Padded vector
/// lengths come from `asm` (constrained nodes included in the layout);
/// the solve itself runs on the reduced ordered system `ord`.
///
/// # Errors
/// Propagates solver and preconditioner construction failures.
pub fn run_cyber_pcg(
    asm: &AssembledProblem,
    ord: &OrderedProblem,
    m: usize,
    choice: CoefficientChoice,
    params: &VectorMachineParams,
    tol: f64,
) -> Result<CyberReport, SparseError> {
    let opts = PcgOptions {
        tol,
        max_iterations: 100_000,
        criterion: StoppingCriterion::DisplacementChange,
        ..Default::default()
    };
    let solution = if m == 0 {
        cg_solve(&ord.matrix, &ord.rhs, &opts)?
    } else {
        match choice {
            CoefficientChoice::Unparametrized => {
                let pre = MStepSsorPreconditioner::unparametrized(&ord.matrix, &ord.colors, m)?;
                pcg_solve(&ord.matrix, &ord.rhs, &pre, &opts)?
            }
            CoefficientChoice::Parametrized => {
                let pre = MStepSsorPreconditioner::parametrized(&ord.matrix, &ord.colors, m)?;
                pcg_solve(&ord.matrix, &ord.rhs, &pre, &opts)?
            }
        }
    };

    // ---- clock model -----------------------------------------------------
    let structure = BlockDiagonalStructure::analyze(&ord.matrix, &ord.colors);
    // Padded (control-vector) lengths: constrained nodes are stored too.
    let padded_blocks = asm.cyber_color_lengths();
    let n_padded: usize = padded_blocks.iter().sum();
    let max_len = padded_blocks.iter().copied().max().unwrap_or(0);

    // K·p by diagonals of the full blocked matrix: one fused multiply-add
    // per occupied diagonal; each runs at (roughly) full padded length.
    let spmv_time = structure.full_matrix_diagonals as f64 * params.vec_op(n_padded);
    // Two inner products per iteration at full padded length.
    let dots_time = 2.0 * params.dot(n_padded);
    // Vector updates: u += αp, r −= αKp, p = r̂ + βp.
    let updates_time = 3.0 * params.vec_op(n_padded);
    // Convergence: fused |Δu| + max reduction.
    let convergence_time = params.max_reduction(n_padded);
    let a_per_iteration = spmv_time + dots_time + updates_time + convergence_time;

    // One preconditioner step: every off-diagonal block diagonal once
    // (Conrad–Wallach), plus per color a divide and two adds at padded
    // block length (forward + backward ⇒ ~2(C−1)+1 block updates; charge
    // 2 per color for simplicity and one scalar loop per block).
    let mut b_per_step = 0.0;
    for (bi, row) in structure.block_diagonals.iter().enumerate() {
        for (bj, &d) in row.iter().enumerate() {
            if bi != bj {
                let len = padded_blocks[bi.min(padded_blocks.len() - 1)];
                b_per_step += d as f64 * params.vec_op(len);
            }
        }
    }
    for &len in &padded_blocks {
        // divide + two adds, twice per step (forward and backward pass).
        b_per_step += 2.0 * 3.0 * params.vec_op(len);
        b_per_step += params.scalar(2);
    }

    let iterations = solution.iterations;
    let precond_time = solution.stats.precond_steps as f64 * b_per_step;
    let breakdown = CyberBreakdown {
        spmv: iterations as f64 * spmv_time,
        dots: iterations as f64 * dots_time,
        updates: iterations as f64 * updates_time,
        convergence: iterations as f64 * convergence_time,
        preconditioner: precond_time,
    };

    Ok(CyberReport {
        m,
        parametrized: matches!(choice, CoefficientChoice::Parametrized) && m > 0,
        iterations,
        seconds: breakdown.total(),
        max_vector_length: max_len,
        breakdown,
        a_per_iteration,
        b_per_step,
        solution,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspcg_fem::plate::PlaneStressProblem;

    fn plate(a: usize) -> (AssembledProblem, OrderedProblem) {
        let asm = PlaneStressProblem::unit_square(a).assemble().unwrap();
        let ord = asm.multicolor().unwrap();
        (asm, ord)
    }

    #[test]
    fn blocked_matrix_has_bounded_diagonal_count() {
        // The 6-color block structure keeps the diagonal count small and
        // n-independent (structure (3.2) is what makes DIA storage viable).
        let (_, ord1) = plate(6);
        let (_, ord2) = plate(9);
        let s1 = BlockDiagonalStructure::analyze(&ord1.matrix, &ord1.colors);
        let s2 = BlockDiagonalStructure::analyze(&ord2.matrix, &ord2.colors);
        assert!(s2.full_matrix_diagonals <= 3 * s1.full_matrix_diagonals);
        assert!(s1.full_matrix_diagonals < 200);
    }

    #[test]
    fn cg_report_matches_direct_solver() {
        let (asm, ord) = plate(6);
        let r = run_cyber_pcg(
            &asm,
            &ord,
            0,
            CoefficientChoice::Unparametrized,
            &VectorMachineParams::default(),
            1e-6,
        )
        .unwrap();
        assert!(r.solution.converged);
        assert!(r.iterations > 0);
        assert!(r.seconds > 0.0);
        assert_eq!(r.breakdown.preconditioner, 0.0);
        // Solution correctness against dense Cholesky.
        let exact = ord.matrix.to_dense().cholesky().unwrap().solve(&ord.rhs);
        for (u, v) in r.solution.x.iter().zip(&exact) {
            assert!((u - v).abs() < 1e-4);
        }
    }

    #[test]
    fn preconditioning_reduces_iterations_and_adds_precond_time() {
        let (asm, ord) = plate(8);
        let params = VectorMachineParams::default();
        let cg = run_cyber_pcg(
            &asm,
            &ord,
            0,
            CoefficientChoice::Unparametrized,
            &params,
            1e-6,
        )
        .unwrap();
        let m1 = run_cyber_pcg(
            &asm,
            &ord,
            1,
            CoefficientChoice::Unparametrized,
            &params,
            1e-6,
        )
        .unwrap();
        assert!(m1.iterations < cg.iterations);
        assert!(m1.breakdown.preconditioner > 0.0);
    }

    #[test]
    fn parametrized_flag_recorded() {
        let (asm, ord) = plate(6);
        let params = VectorMachineParams::default();
        let r = run_cyber_pcg(
            &asm,
            &ord,
            2,
            CoefficientChoice::Parametrized,
            &params,
            1e-6,
        )
        .unwrap();
        assert!(r.parametrized);
        assert_eq!(r.m, 2);
    }

    #[test]
    fn max_vector_length_matches_formula() {
        let (asm, ord) = plate(9);
        let params = VectorMachineParams::default();
        let r = run_cyber_pcg(
            &asm,
            &ord,
            0,
            CoefficientChoice::Unparametrized,
            &params,
            1e-4,
        )
        .unwrap();
        assert_eq!(r.max_vector_length, (9 * 9usize).div_ceil(3));
    }

    #[test]
    fn cost_constants_are_positive_and_consistent() {
        let (asm, ord) = plate(6);
        let params = VectorMachineParams::default();
        let r = run_cyber_pcg(
            &asm,
            &ord,
            3,
            CoefficientChoice::Unparametrized,
            &params,
            1e-6,
        )
        .unwrap();
        assert!(r.a_per_iteration > 0.0 && r.b_per_step > 0.0);
        let predicted = r.iterations as f64 * r.a_per_iteration
            + r.solution.stats.precond_steps as f64 * r.b_per_step;
        assert!((predicted - r.seconds).abs() / r.seconds < 1e-9);
    }
}
