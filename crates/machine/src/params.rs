//! Machine model parameters.
//!
//! Defaults are calibrated to the qualitative facts the paper states, not
//! to vendor datasheets: what matters for reproducing the *shape* of
//! Tables 2 and 3 is the ratio between long-vector throughput, vector
//! startup, and reduction cost (CYBER), and between arithmetic and
//! communication (Finite Element Machine).

/// CYBER 203/205 pipeline model (§3.1).
///
/// A vector instruction over `n` elements costs
/// `(vector_startup + n · vector_per_element)` cycles, so the pipeline
/// efficiency is `n / (startup + n)`: with the default startup of 111
/// cycles this gives 90 % at n = 1000, ≈47 % at n = 100 and ≈8 % at
/// n = 10 — the figures quoted in the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VectorMachineParams {
    /// Seconds per machine cycle (CYBER 203 class: 40 ns).
    pub cycle_time: f64,
    /// Startup (pipeline fill) cycles per vector instruction.
    pub vector_startup: f64,
    /// Cycles per element in streaming mode.
    pub vector_per_element: f64,
    /// Cycles per scalar operation (address arithmetic, loop control).
    pub scalar_op: f64,
    /// Extra startup factor for the recursive-halving sum phase of an
    /// inner product: the sum costs `Σ_k (startup + n/2^k)` cycles
    /// ≈ `startup·log₂n + n`, which is what makes inner products
    /// "considerably slower than the other vector operations".
    pub reduction_levels_cost: f64,
}

impl Default for VectorMachineParams {
    fn default() -> Self {
        VectorMachineParams {
            cycle_time: 40e-9,
            vector_startup: 111.0,
            vector_per_element: 1.0,
            scalar_op: 10.0,
            reduction_levels_cost: 1.0,
        }
    }
}

impl VectorMachineParams {
    /// Seconds for one vector operation of length `n`.
    pub fn vec_op(&self, n: usize) -> f64 {
        (self.vector_startup + n as f64 * self.vector_per_element) * self.cycle_time
    }

    /// Pipeline efficiency at vector length `n` (asymptotic rate fraction).
    pub fn efficiency(&self, n: usize) -> f64 {
        let n = n as f64;
        n * self.vector_per_element / (self.vector_startup + n * self.vector_per_element)
    }

    /// Seconds for an inner product of length `n`: one vectorized multiply
    /// plus the recursive-halving partial-sum phase.
    pub fn dot(&self, n: usize) -> f64 {
        let mult = self.vec_op(n);
        let levels = (n.max(2) as f64).log2().ceil();
        let sums = (levels * self.vector_startup * self.reduction_levels_cost
            + n as f64 * self.vector_per_element)
            * self.cycle_time;
        mult + sums
    }

    /// Seconds for the max-norm convergence test: a fused
    /// subtract-and-absolute-value vector op plus a max reduction with the
    /// same halving structure as the dot sum phase.
    pub fn max_reduction(&self, n: usize) -> f64 {
        let vecphase = self.vec_op(n);
        let levels = (n.max(2) as f64).log2().ceil();
        vecphase
            + (levels * self.vector_startup * self.reduction_levels_cost
                + n as f64 * self.vector_per_element)
                * self.cycle_time
    }

    /// Seconds for `k` scalar operations.
    pub fn scalar(&self, k: usize) -> f64 {
        k as f64 * self.scalar_op * self.cycle_time
    }
}

/// Finite Element Machine model (§3.2).
///
/// An array of identical microprocessors; eight nearest-neighbour links;
/// a global flag network (AND of per-processor convergence flags); global
/// sums either through a software tree on the links or the sum/max
/// hardware circuit (O(log₂ P), the paper says the circuit was designed
/// precisely because the software path was "potentially detrimental").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayMachineParams {
    /// Seconds per floating-point operation on one processor (1983
    /// microprocessor class, software floating point).
    pub flop_time: f64,
    /// Per-message startup on a neighbour link (values of one color packed
    /// into a single record, as §3.2 recommends).
    pub comm_startup: f64,
    /// Per-8-byte-word transfer time on a link.
    pub comm_per_word: f64,
    /// Flag-network convergence test (synchronize + test-all-flags).
    pub flag_sync: f64,
    /// Use the sum/max hardware circuit for global reductions.
    pub sum_circuit: bool,
    /// Per-tree-level time of the sum/max circuit.
    pub sum_level_time: f64,
}

impl Default for ArrayMachineParams {
    fn default() -> Self {
        // Calibrated against the paper's own Table 3: 48 CG iterations on
        // 60 equations took 63.35 s on one processor (~650 µs per software
        // floating-point operation on the TI-9900-class CPUs), and the
        // per-step preconditioner cost B roughly equals the per-iteration
        // cost A. The communication constants reproduce the measured
        // speedups (≈1.9 on 2 processors, ≈3.6 on 5 for m = 0, drifting
        // down with m).
        ArrayMachineParams {
            flop_time: 600e-6,
            comm_startup: 6e-3,
            comm_per_word: 200e-6,
            flag_sync: 3e-3,
            sum_circuit: false,
            sum_level_time: 1e-3,
        }
    }
}

impl ArrayMachineParams {
    /// Seconds to send one record of `words` f64 values to a neighbour.
    pub fn message(&self, words: usize) -> f64 {
        self.comm_startup + words as f64 * self.comm_per_word
    }

    /// Seconds for a global sum across `p` processors (beyond the local
    /// partial sums): hardware circuit or software gather over the links.
    pub fn global_sum(&self, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        if self.sum_circuit {
            (p as f64).log2().ceil() * self.sum_level_time
        } else {
            // Software tree on the links: one message per level per node.
            let levels = (p as f64).log2().ceil();
            levels * self.message(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_matches_paper_quotes() {
        let p = VectorMachineParams::default();
        assert!((p.efficiency(1000) - 0.9).abs() < 0.01);
        assert!(p.efficiency(100) > 0.4 && p.efficiency(100) < 0.55);
        assert!(p.efficiency(10) < 0.12);
    }

    #[test]
    fn dot_is_slower_than_vec_op() {
        let p = VectorMachineParams::default();
        for n in [50usize, 500, 5000] {
            assert!(p.dot(n) > 1.5 * p.vec_op(n), "n = {n}");
        }
    }

    #[test]
    fn vec_op_scales_linearly_at_large_n() {
        let p = VectorMachineParams::default();
        let t1 = p.vec_op(10_000);
        let t2 = p.vec_op(20_000);
        assert!((t2 / t1 - 2.0).abs() < 0.02);
    }

    #[test]
    fn circuit_sum_is_faster_than_software() {
        let soft = ArrayMachineParams::default();
        let hard = ArrayMachineParams {
            sum_circuit: true,
            ..Default::default()
        };
        assert!(hard.global_sum(8) < soft.global_sum(8));
        assert_eq!(soft.global_sum(1), 0.0);
    }

    #[test]
    fn message_cost_has_startup() {
        let p = ArrayMachineParams::default();
        assert!(p.message(0) > 0.0);
        assert!(p.message(10) > p.message(1));
    }
}
