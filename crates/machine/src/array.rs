//! Finite Element Machine execution of Algorithm 3 (§3.2, Table 3).
//!
//! The machine is simulated phase by phase in lock step; each phase's time
//! is the maximum over processors (the paper's processors synchronize at
//! communications and at the flag network). Per CG iteration:
//!
//! 1. **border exchange** of `p` components with neighbour processors
//!    (one packed record per neighbour per direction),
//! 2. **local compute**: the owned rows of `K·p`, local dot partials and
//!    the three vector updates,
//! 3. **global reductions** for α and β — software tree over the links or
//!    the sum/max hardware circuit,
//! 4. **flag network** convergence test.
//!
//! Per preconditioner step (Algorithm 3): local multicolor sweep compute
//! plus the border `r̂` exchanges issued after every second color
//! (`c mod 2 = 0`), forward and backward — six exchanges per step for six
//! colors, which is why the paper's observation (3) finds preconditioner
//! communication, not inner products, dominating the overhead.

use crate::assign::ProcessorAssignment;
use crate::params::ArrayMachineParams;
use mspcg_core::{
    cg_solve, pcg_solve, MStepSsorPreconditioner, PcgOptions, PcgSolution, StoppingCriterion,
};
use mspcg_fem::plate::{AssembledProblem, OrderedProblem};
use mspcg_sparse::SparseError;

pub use crate::vector::CoefficientChoice;

/// Per-phase time totals of one simulated run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ArrayBreakdown {
    /// Arithmetic (max over processors, summed over phases).
    pub compute: f64,
    /// Border exchanges of `p` in the CG loop.
    pub cg_comm: f64,
    /// Border exchanges of `r̂` inside the preconditioner.
    pub precond_comm: f64,
    /// Global α/β reductions.
    pub reductions: f64,
    /// Flag-network convergence tests.
    pub flag: f64,
}

impl ArrayBreakdown {
    /// Total seconds.
    pub fn total(&self) -> f64 {
        self.compute + self.cg_comm + self.precond_comm + self.reductions + self.flag
    }

    /// Overhead fraction: everything that is not arithmetic.
    pub fn overhead_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            (t - self.compute) / t
        }
    }
}

/// Result of one simulated Finite Element Machine run.
#[derive(Debug, Clone)]
pub struct ArrayReport {
    /// Processor count.
    pub processors: usize,
    /// m (0 = plain CG).
    pub m: usize,
    /// Parametrized coefficients?
    pub parametrized: bool,
    /// Exact iteration count (identical across processor counts — the
    /// algorithm is deterministic; Table 3 shows the same property).
    pub iterations: usize,
    /// Modelled wall time in seconds.
    pub seconds: f64,
    /// Phase breakdown.
    pub breakdown: ArrayBreakdown,
    /// Solver output.
    pub solution: PcgSolution,
}

impl ArrayReport {
    /// Speedup relative to a baseline (usually the 1-processor run).
    pub fn speedup_over(&self, baseline: &ArrayReport) -> f64 {
        baseline.seconds / self.seconds
    }
}

/// Simulate the m-step SSOR PCG on `p` processors of the Finite Element
/// Machine, with the balanced-strips node assignment (the paper's Fig. 5
/// configuration for the 6×6 plate).
///
/// # Errors
/// Propagates solver, preconditioner and assignment construction errors.
pub fn run_fem_machine(
    asm: &AssembledProblem,
    ord: &OrderedProblem,
    m: usize,
    choice: CoefficientChoice,
    p: usize,
    params: &ArrayMachineParams,
    tol: f64,
) -> Result<ArrayReport, SparseError> {
    let assignment = ProcessorAssignment::strips(asm, p)?;
    run_fem_machine_assigned(asm, ord, m, choice, &assignment, params, tol)
}

/// Simulate with an explicit node-to-processor assignment (e.g. the 2-D
/// block layout of Fig. 3, built with [`ProcessorAssignment::blocks`]).
///
/// # Errors
/// Propagates solver and preconditioner construction errors.
pub fn run_fem_machine_assigned(
    asm: &AssembledProblem,
    ord: &OrderedProblem,
    m: usize,
    choice: CoefficientChoice,
    assignment: &ProcessorAssignment,
    params: &ArrayMachineParams,
    tol: f64,
) -> Result<ArrayReport, SparseError> {
    let p = assignment.num_processors();
    let opts = PcgOptions {
        tol,
        max_iterations: 100_000,
        criterion: StoppingCriterion::DisplacementChange,
        ..Default::default()
    };
    let solution = if m == 0 {
        cg_solve(&ord.matrix, &ord.rhs, &opts)?
    } else {
        match choice {
            CoefficientChoice::Unparametrized => {
                let pre = MStepSsorPreconditioner::unparametrized(&ord.matrix, &ord.colors, m)?;
                pcg_solve(&ord.matrix, &ord.rhs, &pre, &opts)?
            }
            CoefficientChoice::Parametrized => {
                let pre = MStepSsorPreconditioner::parametrized(&ord.matrix, &ord.colors, m)?;
                pcg_solve(&ord.matrix, &ord.rhs, &pre, &opts)?
            }
        }
    };

    // ---- per-processor structural counts ---------------------------------
    // Equations and stored nonzeros owned by each processor (from the
    // node-major reduced matrix; ownership by node).
    let mut eqs = vec![0usize; p];
    let mut nnz = vec![0usize; p];
    for q in 0..p {
        for node in assignment.nodes_of(q) {
            for dof in 0..2 {
                if let Some(row) = asm.free_map.full_to_reduced(2 * node + dof) {
                    eqs[q] += 1;
                    nnz[q] += asm.matrix.row_nnz(row);
                }
            }
        }
    }

    // ---- phase times (max over processors) --------------------------------
    let ft = params.flop_time;
    // CG compute: SpMV (2 flops/nonzero) + 2 dot partials (2 flops/eq each)
    // + 3 vector updates (2 flops/eq each).
    let cg_compute = (0..p)
        .map(|q| (2 * nnz[q] + 4 * eqs[q] + 6 * eqs[q]) as f64 * ft)
        .fold(0.0, f64::max);
    // Border exchange of p: one packed send + one receive per neighbour.
    let cg_comm_per_iter = (0..p)
        .map(|q| {
            assignment
                .neighbor_procs(q)
                .into_iter()
                .map(|o| {
                    let out_words = 2 * assignment.border_nodes(q, o).len();
                    let in_words = 2 * assignment.border_nodes(o, q).len();
                    params.message(out_words) + params.message(in_words)
                })
                .sum::<f64>()
        })
        .fold(0.0, f64::max);
    let reductions_per_iter = 2.0 * params.global_sum(p);
    let flag_per_iter = if p > 1 { params.flag_sync } else { 0.0 };

    // Preconditioner step: one multicolor SOR sweep of compute (2 flops per
    // nonzero via Conrad–Wallach + divide & adds per equation, performed in
    // both passes) ...
    let precond_compute_per_step = (0..p)
        .map(|q| (2 * nnz[q] + 6 * eqs[q]) as f64 * ft)
        .fold(0.0, f64::max);
    // ... plus border r̂ exchanges after every second color, forward and
    // backward: 6 exchanges per step for 6 colors, each carrying one
    // node-color's border values (≈ border/3 nodes × 2 dofs).
    let colors = ord.colors.num_blocks();
    let exchanges_per_step = colors; // c mod 2 == 0 in both passes
    let precond_comm_per_step = (0..p)
        .map(|q| {
            assignment
                .neighbor_procs(q)
                .into_iter()
                .map(|o| {
                    let border = assignment.border_nodes(q, o).len();
                    let border_in = assignment.border_nodes(o, q).len();
                    let words_out = (2 * border).div_ceil(3);
                    let words_in = (2 * border_in).div_ceil(3);
                    exchanges_per_step as f64
                        * (params.message(words_out) + params.message(words_in))
                })
                .sum::<f64>()
        })
        .fold(0.0, f64::max);

    let iters = solution.iterations as f64;
    let steps = solution.stats.precond_steps as f64;
    let breakdown = ArrayBreakdown {
        compute: iters * cg_compute + steps * precond_compute_per_step,
        cg_comm: if p > 1 { iters * cg_comm_per_iter } else { 0.0 },
        precond_comm: if p > 1 {
            steps * precond_comm_per_step
        } else {
            0.0
        },
        reductions: iters * reductions_per_iter,
        flag: iters * flag_per_iter,
    };

    Ok(ArrayReport {
        processors: p,
        m,
        parametrized: matches!(choice, CoefficientChoice::Parametrized) && m > 0,
        iterations: solution.iterations,
        seconds: breakdown.total(),
        breakdown,
        solution,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspcg_fem::plate::PlaneStressProblem;

    fn plate6() -> (AssembledProblem, OrderedProblem) {
        let asm = PlaneStressProblem::unit_square(6).assemble().unwrap();
        let ord = asm.multicolor().unwrap();
        (asm, ord)
    }

    #[test]
    fn iteration_count_is_processor_independent() {
        let (asm, ord) = plate6();
        let params = ArrayMachineParams::default();
        let runs: Vec<ArrayReport> = [1usize, 2, 5]
            .iter()
            .map(|&p| {
                run_fem_machine(
                    &asm,
                    &ord,
                    2,
                    CoefficientChoice::Unparametrized,
                    p,
                    &params,
                    1e-6,
                )
                .unwrap()
            })
            .collect();
        assert_eq!(runs[0].iterations, runs[1].iterations);
        assert_eq!(runs[1].iterations, runs[2].iterations);
    }

    #[test]
    fn speedups_are_in_the_papers_band() {
        // Table 3: speedup ≈ 1.8–1.95 on 2 processors, ≈ 3.0–3.7 on 5.
        let (asm, ord) = plate6();
        let params = ArrayMachineParams::default();
        for m in [0usize, 1, 2] {
            let r1 = run_fem_machine(
                &asm,
                &ord,
                m,
                CoefficientChoice::Unparametrized,
                1,
                &params,
                1e-6,
            )
            .unwrap();
            let r2 = run_fem_machine(
                &asm,
                &ord,
                m,
                CoefficientChoice::Unparametrized,
                2,
                &params,
                1e-6,
            )
            .unwrap();
            let r5 = run_fem_machine(
                &asm,
                &ord,
                m,
                CoefficientChoice::Unparametrized,
                5,
                &params,
                1e-6,
            )
            .unwrap();
            let s2 = r2.speedup_over(&r1);
            let s5 = r5.speedup_over(&r1);
            assert!(s2 > 1.5 && s2 < 2.0, "m = {m}: speedup(2) = {s2}");
            assert!(s5 > 2.5 && s5 < 5.0, "m = {m}: speedup(5) = {s5}");
        }
    }

    #[test]
    fn preconditioner_comm_dominates_cg_overhead() {
        // Paper observation (3): for multi-step runs the preconditioner
        // communication exceeds the inner-product overhead.
        let (asm, ord) = plate6();
        let params = ArrayMachineParams::default();
        let r = run_fem_machine(
            &asm,
            &ord,
            3,
            CoefficientChoice::Unparametrized,
            5,
            &params,
            1e-6,
        )
        .unwrap();
        assert!(
            r.breakdown.precond_comm > r.breakdown.reductions + r.breakdown.flag,
            "{:?}",
            r.breakdown
        );
    }

    #[test]
    fn single_processor_has_no_overhead() {
        let (asm, ord) = plate6();
        let params = ArrayMachineParams::default();
        let r = run_fem_machine(
            &asm,
            &ord,
            2,
            CoefficientChoice::Parametrized,
            1,
            &params,
            1e-6,
        )
        .unwrap();
        assert_eq!(r.breakdown.cg_comm, 0.0);
        assert_eq!(r.breakdown.precond_comm, 0.0);
        assert_eq!(r.breakdown.reductions, 0.0);
        assert_eq!(r.breakdown.flag, 0.0);
        assert!(r.breakdown.overhead_fraction() < 1e-12);
    }

    #[test]
    fn speedup_decreases_with_m() {
        // Paper Table 3: speedup drifts down as m grows (communication of
        // the preconditioner).
        let (asm, ord) = plate6();
        let params = ArrayMachineParams::default();
        let speedup = |m: usize| {
            let r1 = run_fem_machine(
                &asm,
                &ord,
                m,
                CoefficientChoice::Unparametrized,
                1,
                &params,
                1e-6,
            )
            .unwrap();
            let r2 = run_fem_machine(
                &asm,
                &ord,
                m,
                CoefficientChoice::Unparametrized,
                2,
                &params,
                1e-6,
            )
            .unwrap();
            r2.speedup_over(&r1)
        };
        let s0 = speedup(0);
        let s4 = speedup(4);
        assert!(s4 <= s0 + 1e-9, "speedup(m=4) = {s4} > speedup(m=0) = {s0}");
    }

    #[test]
    fn block_vs_strip_communication_tradeoff() {
        // Fig. 3's point is about border *volume*: 2-D blocks move fewer
        // words than 1-D strips, but they talk to more neighbours (up to 6
        // links vs 2). Which layout wins therefore depends on the
        // startup/bandwidth ratio of the links — measure both regimes.
        let asm = PlaneStressProblem::unit_square(16).assemble().unwrap();
        let ord = asm.multicolor().unwrap();
        let blocks_assign = ProcessorAssignment::blocks(&asm, 3, 3).unwrap();
        let run = |params: &ArrayMachineParams, blocks: bool| {
            if blocks {
                run_fem_machine_assigned(
                    &asm,
                    &ord,
                    2,
                    CoefficientChoice::Unparametrized,
                    &blocks_assign,
                    params,
                    1e-6,
                )
                .unwrap()
            } else {
                run_fem_machine(
                    &asm,
                    &ord,
                    2,
                    CoefficientChoice::Unparametrized,
                    9,
                    params,
                    1e-6,
                )
                .unwrap()
            }
        };
        // Startup-dominated links (the 1983 defaults): strips win — fewer,
        // larger messages.
        let startup_heavy = ArrayMachineParams::default();
        let s1 = run(&startup_heavy, false);
        let b1 = run(&startup_heavy, true);
        assert_eq!(s1.iterations, b1.iterations);
        assert!(s1.breakdown.precond_comm <= b1.breakdown.precond_comm);
        // Bandwidth-dominated links: blocks win — shorter borders.
        let bandwidth_heavy = ArrayMachineParams {
            comm_startup: 1e-5,
            comm_per_word: 2e-3,
            ..Default::default()
        };
        let s2 = run(&bandwidth_heavy, false);
        let b2 = run(&bandwidth_heavy, true);
        assert!(
            b2.breakdown.precond_comm < s2.breakdown.precond_comm,
            "blocks {:?} vs strips {:?}",
            b2.breakdown,
            s2.breakdown
        );
    }

    #[test]
    fn solution_matches_direct_solve() {
        let (asm, ord) = plate6();
        let params = ArrayMachineParams::default();
        let r = run_fem_machine(
            &asm,
            &ord,
            2,
            CoefficientChoice::Parametrized,
            5,
            &params,
            1e-8,
        )
        .unwrap();
        let exact = ord.matrix.to_dense().cholesky().unwrap().solve(&ord.rhs);
        for (u, v) in r.solution.x.iter().zip(&exact) {
            assert!((u - v).abs() < 1e-5);
        }
    }
}
