//! # mspcg-machine
//!
//! Deterministic simulators of the two 1983 target machines, replacing
//! hardware we cannot run (see DESIGN.md §2 for the substitution
//! rationale):
//!
//! * [`vector`] — the **CDC CYBER 203/205** (§3.1): a pipeline vector
//!   processor where every vector instruction costs
//!   `startup + n·per_element` cycles. The model is calibrated to the
//!   efficiency curve quoted in the paper (≈90 % at n = 1000, ≈50 % at
//!   n = 100, ≈10 % at n = 10) and charges inner products their infamous
//!   partial-sum phase. Sparse products run *by diagonals*
//!   (Madsen–Rodrigue–Karush) on the color-block structure (3.2), with the
//!   control-vector (bit-mask) trick for constrained nodes, which pads
//!   vectors to contiguous full-color length.
//! * [`mod@array`] — **NASA's Finite Element Machine** (§3.2): an MIMD array
//!   of microprocessors with eight nearest-neighbour links, a global flag
//!   network for convergence tests, and an optional sum/max circuit for
//!   O(log P) global reductions. Executes Algorithm 3 phase by phase with
//!   per-processor arithmetic/communication accounting.
//!
//! Both simulators run the *actual* solver from `mspcg-core` for exact
//! iteration counts and solution vectors; only the clock is modelled. The
//! iteration counts of Tables 2 and 3 are therefore real, and the timing
//! columns are reproduced in *shape* (who wins, where the optimum m sits),
//! not in absolute 1983 seconds.

// Indexed `for i in 0..n` loops are deliberate throughout the numeric
// kernels: they address several parallel arrays (CSR structure, split
// points, diagonals) by the same row index, where iterator zips would
// obscure the math. Clippy's needless_range_loop lint fires on exactly
// this pattern, so it is allowed crate-wide.
#![allow(clippy::needless_range_loop)]
pub mod array;
pub mod assign;
pub mod params;
pub mod vector;

pub use array::{run_fem_machine, ArrayReport};
pub use assign::ProcessorAssignment;
pub use params::{ArrayMachineParams, VectorMachineParams};
pub use vector::{run_cyber_pcg, CyberReport};
