//! The paper's structural test problem, end to end.
//!
//! A rectangular plate is discretized with linear triangles
//! ([`crate::mesh::PlateMesh`]), clamped along its left edge and loaded by
//! an in-plane traction along its right edge. The unknowns are the nodal
//! displacements `(u, v)`; the assembled stiffness matrix is SPD of order
//! `2·a·b` where `a` is the number of node rows and `b` the number of
//! unconstrained node columns — exactly the setting of §3.
//!
//! Equation numbering in the *full* system is `2·node + dof` (dof 0 = u,
//! dof 1 = v); Dirichlet elimination compresses to the free dofs and
//! [`AssembledProblem::multicolor`] renumbers those by the six colors
//! Red(u), Red(v), Black(u), Black(v), Green(u), Green(v) into the block
//! form (3.1).

use crate::element::{cst_stiffness, Material};
use crate::mesh::PlateMesh;
use mspcg_coloring::{rbg_node_coloring, Coloring};
use mspcg_sparse::{CooMatrix, CsrMatrix, Partition, Permutation, SparseError};

/// In-plane traction applied to the right edge of the plate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdgeLoad {
    /// Uniform normal traction (stretching, +x), total force given.
    TractionX(f64),
    /// Uniform shear traction (+y), total force given.
    TractionY(f64),
}

/// The plane-stress model problem (mesh + material + boundary conditions).
#[derive(Debug, Clone)]
pub struct PlaneStressProblem {
    /// Node grid.
    pub mesh: PlateMesh,
    /// Isotropic material.
    pub material: Material,
    /// Right-edge load.
    pub load: EdgeLoad,
}

impl PlaneStressProblem {
    /// The paper's test case: unit-square plate with `a × a` nodes, left
    /// column clamped, unit tension on the right edge, normalized material.
    /// The reduced system has `2·a·(a−1)` unknowns.
    ///
    /// # Panics
    /// Panics if `a < 3` (the R/B/G coloring needs 3 columns).
    pub fn unit_square(a: usize) -> Self {
        assert!(a >= 3, "plate needs at least 3x3 nodes for R/B/G coloring");
        PlaneStressProblem {
            mesh: PlateMesh::unit_square(a),
            material: Material::unit(),
            load: EdgeLoad::TractionX(1.0),
        }
    }

    /// General rectangular plate.
    pub fn rectangle(rows: usize, cols: usize, material: Material, load: EdgeLoad) -> Self {
        PlaneStressProblem {
            mesh: PlateMesh::rectangle(
                rows,
                cols,
                1.0 / (cols as f64 - 1.0),
                1.0 / (rows as f64 - 1.0),
            ),
            material,
            load,
        }
    }

    /// Assemble the constrained SPD system.
    ///
    /// # Errors
    /// Propagates sparse-construction errors (cannot occur for a
    /// well-formed mesh) and coloring errors for degenerate grids.
    pub fn assemble(&self) -> Result<AssembledProblem, SparseError> {
        let mesh = self.mesh;
        let n_nodes = mesh.num_nodes();
        let n_full = 2 * n_nodes;

        // --- full stiffness ---------------------------------------------
        let mut coo = CooMatrix::with_capacity(n_full, n_full, mesh.num_triangles() * 36);
        for tri in mesh.triangles() {
            let p: Vec<[f64; 2]> = tri.iter().map(|&n| mesh.node_coords(n)).collect();
            let ke = cst_stiffness(p[0], p[1], p[2], &self.material);
            for (r, &nr) in tri.iter().enumerate() {
                for dr in 0..2 {
                    let gi = 2 * nr + dr;
                    for (c, &nc) in tri.iter().enumerate() {
                        for dc in 0..2 {
                            let gj = 2 * nc + dc;
                            let v = ke[2 * r + dr][2 * c + dc];
                            if v != 0.0 {
                                coo.push(gi, gj, v)?;
                            }
                        }
                    }
                }
            }
        }
        let full = coo.to_csr();

        // --- load vector (trapezoid-weighted edge traction) --------------
        let mut f_full = vec![0.0; n_full];
        let (dir, total) = match self.load {
            EdgeLoad::TractionX(t) => (0usize, t),
            EdgeLoad::TractionY(t) => (1usize, t),
        };
        let edge_col = mesh.cols - 1;
        let edge_len = (mesh.rows - 1) as f64 * mesh.dy;
        // `total` is the resultant force; distribute it along the edge with
        // trapezoid weights so that Σ nodal forces = total exactly (no
        // thickness factor here — thickness already scales the stiffness).
        let per_length = total / edge_len;
        for r in 0..mesh.rows {
            let node = mesh.node_index(r, edge_col);
            let w = if r == 0 || r == mesh.rows - 1 {
                0.5 * mesh.dy
            } else {
                mesh.dy
            };
            f_full[2 * node + dir] += per_length * w;
        }

        // --- Dirichlet elimination (clamp left column) -------------------
        let mut keep = vec![true; n_full];
        for r in 0..mesh.rows {
            let node = mesh.node_index(r, 0);
            keep[2 * node] = false;
            keep[2 * node + 1] = false;
        }
        let free_map = FreeDofMap::new(&keep);
        let n_red = free_map.num_free();

        let mut red = CooMatrix::with_capacity(n_red, n_red, full.nnz());
        for gi in 0..n_full {
            let Some(ri) = free_map.full_to_reduced(gi) else {
                continue;
            };
            for (gj, v) in full.row_entries(gi) {
                if let Some(rj) = free_map.full_to_reduced(gj) {
                    red.push(ri, rj, v)?;
                }
            }
        }
        let matrix = red.to_csr();
        let rhs: Vec<f64> = (0..n_red)
            .map(|ri| f_full[free_map.reduced_to_full(ri)])
            .collect();

        let node_coloring = rbg_node_coloring(mesh.rows, mesh.cols)?;
        Ok(AssembledProblem {
            matrix,
            rhs,
            mesh,
            free_map,
            node_coloring,
        })
    }
}

/// Bidirectional map between full dof indices and reduced (free) indices.
#[derive(Debug, Clone)]
pub struct FreeDofMap {
    full_to_reduced: Vec<Option<u32>>,
    reduced_to_full: Vec<u32>,
}

impl FreeDofMap {
    /// Build from a keep mask over the full dof set.
    pub fn new(keep: &[bool]) -> Self {
        let mut full_to_reduced = vec![None; keep.len()];
        let mut reduced_to_full = Vec::new();
        for (i, &k) in keep.iter().enumerate() {
            if k {
                full_to_reduced[i] = Some(reduced_to_full.len() as u32);
                reduced_to_full.push(i as u32);
            }
        }
        FreeDofMap {
            full_to_reduced,
            reduced_to_full,
        }
    }

    /// Number of free dofs.
    #[inline]
    pub fn num_free(&self) -> usize {
        self.reduced_to_full.len()
    }

    /// Number of dofs in the full system.
    #[inline]
    pub fn num_full(&self) -> usize {
        self.full_to_reduced.len()
    }

    /// Reduced index of full dof `i`, if free.
    #[inline]
    pub fn full_to_reduced(&self, i: usize) -> Option<usize> {
        self.full_to_reduced[i].map(|x| x as usize)
    }

    /// Full dof index of reduced dof `r`.
    #[inline]
    pub fn reduced_to_full(&self, r: usize) -> usize {
        self.reduced_to_full[r] as usize
    }

    /// Expand a reduced vector to the full dof set (zeros at constraints).
    pub fn expand(&self, reduced: &[f64]) -> Vec<f64> {
        assert_eq!(reduced.len(), self.num_free(), "expand: length mismatch");
        let mut full = vec![0.0; self.num_full()];
        for (r, &v) in reduced.iter().enumerate() {
            full[self.reduced_to_full(r)] = v;
        }
        full
    }
}

/// The assembled, constrained system in the original (node-major) ordering.
#[derive(Debug, Clone)]
pub struct AssembledProblem {
    /// Reduced SPD stiffness matrix.
    pub matrix: CsrMatrix,
    /// Reduced load vector.
    pub rhs: Vec<f64>,
    /// Geometry (kept for machine assignment and figures).
    pub mesh: PlateMesh,
    /// Full ↔ reduced dof map.
    pub free_map: FreeDofMap,
    /// R/B/G coloring of *all* nodes (3 colors).
    pub node_coloring: Coloring,
}

impl AssembledProblem {
    /// Number of unknowns of the reduced system.
    pub fn num_unknowns(&self) -> usize {
        self.matrix.rows()
    }

    /// Six-color coloring of the *reduced* dofs: node colors refined per
    /// dof, restricted to free dofs. The six classes are nonempty for any
    /// plate with ≥ 3 unconstrained columns.
    ///
    /// # Errors
    /// Propagates coloring restriction errors on degenerate plates.
    pub fn reduced_dof_coloring(&self) -> Result<Coloring, SparseError> {
        let six = self.node_coloring.refine_per_dof(2)?;
        let keep: Vec<bool> = (0..self.free_map.num_full())
            .map(|i| self.free_map.full_to_reduced(i).is_some())
            .collect();
        six.restrict(&keep)
    }

    /// Renumber by the six-color ordering into the block form (3.1).
    ///
    /// # Errors
    /// Propagates coloring/permutation errors.
    pub fn multicolor(&self) -> Result<OrderedProblem, SparseError> {
        let coloring = self.reduced_dof_coloring()?;
        coloring.verify_for(&self.matrix)?;
        let ordering = coloring.ordering();
        let matrix = ordering.permute_matrix(&self.matrix)?;
        let rhs = ordering.permutation.gather(&self.rhs);
        Ok(OrderedProblem {
            matrix,
            rhs,
            colors: ordering.partition,
            permutation: ordering.permutation,
        })
    }

    /// Per-color vector lengths of the CYBER layout, which numbers the
    /// *constrained* nodes too so each color block is one contiguous vector
    /// (§3.1). Block `2c + d` holds the dof-`d` equations of node color `c`.
    pub fn cyber_color_lengths(&self) -> Vec<usize> {
        let node_sizes = self.node_coloring.class_sizes();
        let mut out = Vec::with_capacity(6);
        for c in 0..3 {
            out.push(node_sizes[c]); // u equations
            out.push(node_sizes[c]); // v equations
        }
        out
    }

    /// Maximum CYBER vector length (the `v` column of Table 2).
    pub fn max_vector_length(&self) -> usize {
        self.cyber_color_lengths().into_iter().max().unwrap_or(0)
    }
}

/// The color-ordered system: block form (3.1).
#[derive(Debug, Clone)]
pub struct OrderedProblem {
    /// Permuted SPD matrix; each diagonal color block is diagonal.
    pub matrix: CsrMatrix,
    /// Permuted load vector.
    pub rhs: Vec<f64>,
    /// The six contiguous color blocks.
    pub colors: Partition,
    /// New→old permutation (use [`Permutation::scatter`] to map solutions
    /// back to the node-major ordering).
    pub permutation: Permutation,
}

impl OrderedProblem {
    /// Map a solution of the ordered system back to node-major dof order.
    pub fn to_nodal(&self, x: &[f64]) -> Vec<f64> {
        self.permutation.scatter(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_square_dimensions_match_paper_formula() {
        // N = 2·a·(a−1): a rows, a−1 unconstrained columns.
        for a in [3usize, 4, 6] {
            let p = PlaneStressProblem::unit_square(a).assemble().unwrap();
            assert_eq!(p.num_unknowns(), 2 * a * (a - 1));
        }
    }

    #[test]
    fn six_by_six_plate_has_sixty_equations() {
        // §4: "6 rows and 6 columns of nodes (60 equations)".
        let p = PlaneStressProblem::unit_square(6).assemble().unwrap();
        assert_eq!(p.num_unknowns(), 60);
    }

    #[test]
    fn stiffness_is_symmetric_and_stencil_bounded() {
        let p = PlaneStressProblem::unit_square(6).assemble().unwrap();
        p.matrix.check_symmetric(1e-10).unwrap();
        // "each row of K will contain at most 14 nonzero elements".
        assert!(p.matrix.max_row_nnz() <= 14, "{}", p.matrix.max_row_nnz());
    }

    #[test]
    fn stiffness_is_positive_definite() {
        let p = PlaneStressProblem::unit_square(4).assemble().unwrap();
        p.matrix.to_dense().cholesky().unwrap();
    }

    #[test]
    fn load_only_on_right_edge() {
        let p = PlaneStressProblem::unit_square(5).assemble().unwrap();
        let mesh = p.mesh;
        for r in 0..p.num_unknowns() {
            let full = p.free_map.reduced_to_full(r);
            let node = full / 2;
            let (_, c) = mesh.node_row_col(node);
            if p.rhs[r] != 0.0 {
                assert_eq!(c, mesh.cols - 1, "load off the right edge");
            }
        }
        // Total applied force equals the requested traction resultant.
        let total: f64 = p.rhs.iter().sum();
        assert!((total - 1.0).abs() < 1e-12, "total {total}");
    }

    #[test]
    fn multicolor_blocks_are_diagonal() {
        let p = PlaneStressProblem::unit_square(5).assemble().unwrap();
        let o = p.multicolor().unwrap();
        assert_eq!(o.colors.num_blocks(), 6);
        for blk in o.colors.iter() {
            for i in blk.clone() {
                for (j, _) in o.matrix.row_entries(i) {
                    assert!(
                        !blk.contains(&j) || j == i,
                        "block not diagonal at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn multicolor_preserves_solution() {
        let p = PlaneStressProblem::unit_square(4).assemble().unwrap();
        let o = p.multicolor().unwrap();
        // Solve both orderings densely and compare through the permutation.
        let x0 = p.matrix.to_dense().cholesky().unwrap().solve(&p.rhs);
        let x1 = o.matrix.to_dense().cholesky().unwrap().solve(&o.rhs);
        let x1_nodal = o.to_nodal(&x1);
        for (a, b) in x0.iter().zip(&x1_nodal) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn clamped_edge_displacements_are_removed() {
        let a = 5;
        let p = PlaneStressProblem::unit_square(a).assemble().unwrap();
        for r in 0..a {
            let node = p.mesh.node_index(r, 0);
            assert!(p.free_map.full_to_reduced(2 * node).is_none());
            assert!(p.free_map.full_to_reduced(2 * node + 1).is_none());
        }
    }

    #[test]
    fn tension_pulls_plate_in_positive_x() {
        let p = PlaneStressProblem::unit_square(5).assemble().unwrap();
        let x = p.matrix.to_dense().cholesky().unwrap().solve(&p.rhs);
        let full = p.free_map.expand(&x);
        // Every free node should move right (u > 0) under uniform tension.
        for node in 0..p.mesh.num_nodes() {
            let (_, c) = p.mesh.node_row_col(node);
            if c > 0 {
                assert!(full[2 * node] > 0.0, "node {node} moved left");
            }
        }
    }

    #[test]
    fn cyber_lengths_match_table2_formula() {
        // v ≈ a²/3 for the unit square (Table 2 reports 561 for a = 41,
        // 1282 for a = 62, 2134 for a = 80).
        for (a, v_paper) in [(41usize, 561usize), (62, 1282), (80, 2134)] {
            let prob = PlaneStressProblem::unit_square(a);
            let asm = prob.assemble().unwrap();
            let v = asm.max_vector_length();
            assert_eq!(v, (a * a).div_ceil(3), "a = {a}");
            let rel = (v as f64 - v_paper as f64).abs() / v_paper as f64;
            assert!(rel < 0.01, "a = {a}: v = {v} vs paper {v_paper}");
        }
    }

    #[test]
    fn free_dof_map_round_trip() {
        let keep = vec![true, false, true, true, false];
        let m = FreeDofMap::new(&keep);
        assert_eq!(m.num_free(), 3);
        assert_eq!(m.reduced_to_full(1), 2);
        assert_eq!(m.full_to_reduced(2), Some(1));
        assert_eq!(m.full_to_reduced(1), None);
        let x = m.expand(&[1.0, 2.0, 3.0]);
        assert_eq!(x, vec![1.0, 0.0, 2.0, 3.0, 0.0]);
    }

    #[test]
    fn shear_load_produces_vertical_motion() {
        let p = PlaneStressProblem {
            load: EdgeLoad::TractionY(1.0),
            ..PlaneStressProblem::unit_square(4)
        }
        .assemble()
        .unwrap();
        let x = p.matrix.to_dense().cholesky().unwrap().solve(&p.rhs);
        let full = p.free_map.expand(&x);
        let tip = p.mesh.node_index(p.mesh.rows - 1, p.mesh.cols - 1);
        assert!(full[2 * tip + 1] > 0.0, "tip did not deflect upward");
    }
}
