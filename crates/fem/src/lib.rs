//! # mspcg-fem
//!
//! Finite-element substrate reproducing the paper's test problem: a
//! rectangular **plane-stress plate** discretized with linear (constant
//! strain) triangles, clamped along one edge and loaded along another
//! (§3 of Adams 1983). The assembled stiffness matrix is symmetric positive
//! definite, has dimension `2·a·b` (`a` rows of nodes, `b` columns of
//! unconstrained nodes, two displacement unknowns per node), and at most 14
//! nonzeros per row — the grid-point stencil of Fig. 2.
//!
//! Modules:
//! * [`element`] — the CST plane-stress element stiffness,
//! * [`mesh`] — the triangulated node grid (anti-diagonal cell split),
//! * [`plate`] — the full model problem: assembly, constraints, loads,
//!   multicolor ordering,
//! * [`stencil`] — stencil extraction and the Fig. 2 renderer,
//! * [`poisson`] — a 5-point Laplacian generator (red/black coloring) used
//!   to demonstrate that the method is not tied to elasticity.

// Indexed `for i in 0..n` loops are deliberate throughout the numeric
// kernels: they address several parallel arrays (CSR structure, split
// points, diagonals) by the same row index, where iterator zips would
// obscure the math. Clippy's needless_range_loop lint fires on exactly
// this pattern, so it is allowed crate-wide.
#![allow(clippy::needless_range_loop)]
pub mod element;
pub mod mesh;
pub mod plate;
pub mod poisson;
pub mod stencil;

pub use element::Material;
pub use mesh::PlateMesh;
pub use plate::{AssembledProblem, OrderedProblem, PlaneStressProblem};
