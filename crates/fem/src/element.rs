//! Constant-strain triangle (CST) for plane stress.
//!
//! The plate problem of §3 uses linear basis functions on triangles; the
//! resulting element stiffness is the classical `Kₑ = A·t·Bᵀ D B` with the
//! strain-displacement matrix `B` constant over the element. The governing
//! plane-stress equations are standard (the paper cites Norrie & DeVries
//! 1978) — what matters downstream is that assembly produces an SPD matrix
//! with the Fig. 2 stencil.

/// Isotropic plane-stress material.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Material {
    /// Young's modulus `E`.
    pub youngs: f64,
    /// Poisson ratio `ν ∈ (0, 0.5)`.
    pub poisson: f64,
    /// Plate thickness `t`.
    pub thickness: f64,
}

impl Material {
    /// Normalized material (`E = 1`, `ν = 0.3`, `t = 1`): keeps matrix
    /// entries O(1) so iteration counts, not floating-point range, drive the
    /// experiments. The preconditioned iteration is invariant under global
    /// scaling of `K`, so this loses no generality vs. steel.
    pub fn unit() -> Self {
        Material {
            youngs: 1.0,
            poisson: 0.3,
            thickness: 1.0,
        }
    }

    /// Steel-like values in SI units (Pa, m).
    pub fn steel() -> Self {
        Material {
            youngs: 200e9,
            poisson: 0.3,
            thickness: 0.01,
        }
    }

    /// The 3×3 plane-stress constitutive matrix
    /// `D = E/(1−ν²) · [[1, ν, 0], [ν, 1, 0], [0, 0, (1−ν)/2]]`.
    pub fn d_matrix(&self) -> [[f64; 3]; 3] {
        let e = self.youngs;
        let nu = self.poisson;
        let f = e / (1.0 - nu * nu);
        [
            [f, f * nu, 0.0],
            [f * nu, f, 0.0],
            [0.0, 0.0, f * (1.0 - nu) / 2.0],
        ]
    }
}

/// Element stiffness of the CST with vertices `p1, p2, p3` (counterclockwise
/// `(x, y)` pairs). Returns the 6×6 matrix over dofs
/// `(u₁, v₁, u₂, v₂, u₃, v₃)` and the signed area is validated.
///
/// # Panics
/// Panics on degenerate (zero-area) or clockwise triangles — mesh
/// generation controls orientation, so this is a programming error, not an
/// input error.
pub fn cst_stiffness(p1: [f64; 2], p2: [f64; 2], p3: [f64; 2], mat: &Material) -> [[f64; 6]; 6] {
    let det = (p2[0] - p1[0]) * (p3[1] - p1[1]) - (p3[0] - p1[0]) * (p2[1] - p1[1]);
    assert!(
        det > 1e-14,
        "degenerate or clockwise triangle (det = {det})"
    );
    let area = 0.5 * det;
    // b_i = y_j − y_k, c_i = x_k − x_j (cyclic i, j, k).
    let b = [p2[1] - p3[1], p3[1] - p1[1], p1[1] - p2[1]];
    let c = [p3[0] - p2[0], p1[0] - p3[0], p2[0] - p1[0]];
    let s = 1.0 / (2.0 * area);
    // B is 3×6: row 0 = ∂u/∂x, row 1 = ∂v/∂y, row 2 = shear.
    let mut bm = [[0.0f64; 6]; 3];
    for i in 0..3 {
        bm[0][2 * i] = s * b[i];
        bm[1][2 * i + 1] = s * c[i];
        bm[2][2 * i] = s * c[i];
        bm[2][2 * i + 1] = s * b[i];
    }
    let d = mat.d_matrix();
    // Kₑ = area · t · Bᵀ D B.
    let mut db = [[0.0f64; 6]; 3];
    for r in 0..3 {
        for col in 0..6 {
            let mut acc = 0.0;
            for k in 0..3 {
                acc += d[r][k] * bm[k][col];
            }
            db[r][col] = acc;
        }
    }
    let w = area * mat.thickness;
    let mut ke = [[0.0f64; 6]; 6];
    for r in 0..6 {
        for col in 0..6 {
            let mut acc = 0.0;
            for k in 0..3 {
                acc += bm[k][r] * db[k][col];
            }
            ke[r][col] = w * acc;
        }
    }
    ke
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_right_triangle() -> [[f64; 6]; 6] {
        cst_stiffness([0.0, 0.0], [1.0, 0.0], [0.0, 1.0], &Material::unit())
    }

    #[test]
    fn stiffness_is_symmetric() {
        let ke = unit_right_triangle();
        for i in 0..6 {
            for j in 0..6 {
                assert!((ke[i][j] - ke[j][i]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn rigid_translations_are_in_null_space() {
        let ke = unit_right_triangle();
        // Pure x-translation and pure y-translation produce zero force.
        for mode in [
            [1.0, 0.0, 1.0, 0.0, 1.0, 0.0],
            [0.0, 1.0, 0.0, 1.0, 0.0, 1.0],
        ] {
            for i in 0..6 {
                let f: f64 = (0..6).map(|j| ke[i][j] * mode[j]).sum();
                assert!(f.abs() < 1e-13, "row {i}: {f}");
            }
        }
    }

    #[test]
    fn rigid_rotation_is_in_null_space() {
        // Infinitesimal rotation about origin: (u, v) = (−y, x) at each node.
        let pts = [[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]];
        let ke = unit_right_triangle();
        let mut mode = [0.0f64; 6];
        for (k, p) in pts.iter().enumerate() {
            mode[2 * k] = -p[1];
            mode[2 * k + 1] = p[0];
        }
        for i in 0..6 {
            let f: f64 = (0..6).map(|j| ke[i][j] * mode[j]).sum();
            assert!(f.abs() < 1e-13, "row {i}: {f}");
        }
    }

    #[test]
    fn stiffness_is_positive_semidefinite() {
        // All 1D sections x'Kx >= 0 for a sample of vectors.
        let ke = unit_right_triangle();
        let probes = [
            [1.0, 0.0, -1.0, 0.5, 0.0, 0.25],
            [0.0, 2.0, 1.0, -1.0, 0.5, 0.0],
            [1.0, 1.0, 0.0, 0.0, -1.0, -1.0],
        ];
        for x in probes {
            let mut q = 0.0;
            for i in 0..6 {
                for j in 0..6 {
                    q += x[i] * ke[i][j] * x[j];
                }
            }
            assert!(q >= -1e-12, "negative energy {q}");
        }
    }

    #[test]
    fn scaling_with_youngs_modulus_is_linear() {
        let m1 = Material::unit();
        let m2 = Material {
            youngs: 7.0,
            ..Material::unit()
        };
        let k1 = cst_stiffness([0.0, 0.0], [1.0, 0.0], [0.0, 1.0], &m1);
        let k2 = cst_stiffness([0.0, 0.0], [1.0, 0.0], [0.0, 1.0], &m2);
        for i in 0..6 {
            for j in 0..6 {
                assert!((k2[i][j] - 7.0 * k1[i][j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_triangle_panics() {
        cst_stiffness([0.0, 0.0], [1.0, 0.0], [2.0, 0.0], &Material::unit());
    }

    #[test]
    fn d_matrix_plane_stress_structure() {
        let d = Material::unit().d_matrix();
        assert!((d[0][0] - 1.0 / 0.91).abs() < 1e-12);
        assert!((d[0][1] - 0.3 / 0.91).abs() < 1e-12);
        assert_eq!(d[0][2], 0.0);
        assert!((d[2][2] - 0.35 / 0.91).abs() < 1e-12);
    }
}
