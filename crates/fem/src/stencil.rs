//! Grid-point stencil extraction (paper Fig. 2).
//!
//! For linear triangles on the anti-diagonal split, the equations at a node
//! couple with the `(u, v)` pairs at the node itself and its six stencil
//! neighbours — at most `7 × 2 = 14` nonzeros per matrix row. This module
//! verifies that bound on an assembled matrix and renders the stencil.

use crate::plate::AssembledProblem;

/// The stencil of one node: offsets `(Δrow, Δcol)` of coupled nodes
/// (including `(0, 0)` itself).
pub fn node_stencil_offsets() -> [(isize, isize); 7] {
    [(0, 0), (0, 1), (0, -1), (1, 0), (-1, 0), (1, -1), (-1, 1)]
}

/// Observed stencil of a reduced matrix row: grid offsets of every coupled
/// node, derived from the assembled problem's free-dof map.
pub fn observed_stencil(p: &AssembledProblem, reduced_row: usize) -> Vec<(isize, isize)> {
    let mesh = p.mesh;
    let full_i = p.free_map.reduced_to_full(reduced_row);
    let (ri, ci) = mesh.node_row_col(full_i / 2);
    let mut offsets: Vec<(isize, isize)> = p
        .matrix
        .row_entries(reduced_row)
        .map(|(j, _)| {
            let full_j = p.free_map.reduced_to_full(j);
            let (rj, cj) = mesh.node_row_col(full_j / 2);
            (rj as isize - ri as isize, cj as isize - ci as isize)
        })
        .collect();
    offsets.sort_unstable();
    offsets.dedup();
    offsets
}

/// Check the Fig. 2 invariant on a whole assembled problem: every row has
/// ≤ 14 entries and every coupled node is a stencil neighbour.
pub fn verify_stencil(p: &AssembledProblem) -> bool {
    let allowed: std::collections::BTreeSet<(isize, isize)> =
        node_stencil_offsets().into_iter().collect();
    for row in 0..p.num_unknowns() {
        if p.matrix.row_nnz(row) > 14 {
            return false;
        }
        for off in observed_stencil(p, row) {
            if !allowed.contains(&off) {
                return false;
            }
        }
    }
    true
}

/// ASCII rendering of the Fig. 2 stencil.
pub fn render_stencil() -> String {
    let mut s = String::new();
    s.push_str("(u,v)---(u,v)\n");
    s.push_str("  |  \\    |  \\\n");
    s.push_str("(u,v)---(u,v)---(u,v)\n");
    s.push_str("     \\    |  \\    |\n");
    s.push_str("        (u,v)---(u,v)\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plate::PlaneStressProblem;

    #[test]
    fn stencil_has_seven_nodes() {
        assert_eq!(node_stencil_offsets().len(), 7);
    }

    #[test]
    fn assembled_plate_obeys_fig2() {
        let p = PlaneStressProblem::unit_square(6).assemble().unwrap();
        assert!(verify_stencil(&p));
    }

    #[test]
    fn interior_row_has_full_stencil() {
        let p = PlaneStressProblem::unit_square(6).assemble().unwrap();
        // An interior node sees all 7 stencil nodes. Of the 14 potential
        // dof couplings, two u–v cross terms cancel exactly on the uniform
        // anti-diagonal triangulation, so 12 survive — the paper's "at most
        // 14 nonzero elements" bound is tight only on distorted meshes.
        let mesh = p.mesh;
        let node = mesh.node_index(3, 3);
        let row = p.free_map.full_to_reduced(2 * node).unwrap();
        assert!(p.matrix.row_nnz(row) >= 12 && p.matrix.row_nnz(row) <= 14);
        assert_eq!(observed_stencil(&p, row).len(), 7);
    }

    #[test]
    fn render_contains_seven_uv_pairs() {
        let s = render_stencil();
        assert_eq!(s.matches("(u,v)").count(), 7);
    }

    #[test]
    fn boundary_rows_have_reduced_stencils() {
        let p = PlaneStressProblem::unit_square(5).assemble().unwrap();
        let mesh = p.mesh;
        // Bottom-right corner: neighbours W, N, NW -> 4 nodes incl. self.
        let node = mesh.node_index(0, mesh.cols - 1);
        let row = p.free_map.full_to_reduced(2 * node).unwrap();
        assert_eq!(observed_stencil(&p, row).len(), 4);
    }
}
