//! 5-point Laplacian model problem.
//!
//! The m-step method is not specific to elasticity: any SPD system with a
//! multicolor ordering works. This generator produces the classic
//! `−Δu = f` discretization on an `n × n` interior grid with a manufactured
//! solution, together with its red/black two-coloring — the smallest
//! multicolor ordering — so examples and tests can exercise the solver
//! stack on a second problem family (cf. Concus–Golub–O'Leary 1976).

use mspcg_coloring::Coloring;
use mspcg_sparse::{CooMatrix, CsrMatrix, SparseError};

/// A Poisson model problem on the unit square.
#[derive(Debug, Clone)]
pub struct PoissonProblem {
    /// SPD matrix (5-point stencil, scaled by `1/h²`).
    pub matrix: CsrMatrix,
    /// Right-hand side for the manufactured solution.
    pub rhs: Vec<f64>,
    /// The manufactured exact solution on the grid.
    pub exact: Vec<f64>,
    /// Red/black coloring of the grid points.
    pub coloring: Coloring,
    /// Interior grid dimension.
    pub n: usize,
}

/// Build the 5-point Poisson problem on an `n × n` interior grid with
/// manufactured solution `u(x, y) = x(1−x)·y(1−y)`.
///
/// Two deliberate properties of this choice:
/// * it is **not** an eigenfunction of the Laplacian, so the right-hand
///   side has full spectral content and iteration counts are honest
///   (a `sin·sin` solution makes CG converge in O(1) steps!),
/// * its fourth derivatives vanish, so the 5-point stencil is *exact* and
///   the discrete solution equals the manufactured one at the grid points
///   up to solver tolerance.
///
/// # Errors
/// Propagates construction errors (degenerate only for `n == 0`).
pub fn poisson5(n: usize) -> Result<PoissonProblem, SparseError> {
    assert!(n >= 2, "poisson grid needs n >= 2");
    let h = 1.0 / (n as f64 + 1.0);
    let n2 = n * n;
    let idx = |i: usize, j: usize| i * n + j;
    let mut coo = CooMatrix::with_capacity(n2, n2, 5 * n2);
    for i in 0..n {
        for j in 0..n {
            let me = idx(i, j);
            coo.push(me, me, 4.0)?;
            if i > 0 {
                coo.push(me, idx(i - 1, j), -1.0)?;
            }
            if i + 1 < n {
                coo.push(me, idx(i + 1, j), -1.0)?;
            }
            if j > 0 {
                coo.push(me, idx(i, j - 1), -1.0)?;
            }
            if j + 1 < n {
                coo.push(me, idx(i, j + 1), -1.0)?;
            }
        }
    }
    let mut matrix = coo.to_csr();
    // Scale to 1/h² (keeps the operator consistent with −Δ).
    let inv_h2 = 1.0 / (h * h);
    for v in matrix.values_mut() {
        *v *= inv_h2;
    }

    let mut exact = vec![0.0; n2];
    let mut rhs = vec![0.0; n2];
    for i in 0..n {
        for j in 0..n {
            let x = (j as f64 + 1.0) * h;
            let y = (i as f64 + 1.0) * h;
            // u = x(1−x)·y(1−y), f = −Δu = 2·[y(1−y) + x(1−x)].
            exact[idx(i, j)] = x * (1.0 - x) * y * (1.0 - y);
            rhs[idx(i, j)] = 2.0 * (y * (1.0 - y) + x * (1.0 - x));
        }
    }

    let labels: Vec<usize> = (0..n2)
        .map(|k| {
            let (i, j) = (k / n, k % n);
            (i + j) % 2
        })
        .collect();
    let coloring = Coloring::from_labels(labels, 2)?;
    Ok(PoissonProblem {
        matrix,
        rhs,
        exact,
        coloring,
        n,
    })
}

/// Build the **9-point** Laplacian (compact fourth-order stencil) on an
/// `n × n` interior grid with the same manufactured solution as
/// [`poisson5`], together with its **four-coloring** — §3's remark that
/// Algorithm 2 "can easily be modified … for finite differences as long as
/// a multicolor ordering is used", exercised on a denser stencil where two
/// colors no longer suffice.
///
/// Stencil (scaled by `1/(6h²)`): center 20, edge neighbours −4, corner
/// neighbours −1. Colors: `2·(i mod 2) + (j mod 2)` — the classic 2×2
/// block coloring that decouples all eight neighbours.
///
/// # Errors
/// Propagates construction errors.
pub fn poisson9(n: usize) -> Result<PoissonProblem, SparseError> {
    assert!(n >= 2, "poisson grid needs n >= 2");
    let h = 1.0 / (n as f64 + 1.0);
    let n2 = n * n;
    let idx = |i: usize, j: usize| i * n + j;
    let scale = 1.0 / (6.0 * h * h);
    let mut coo = CooMatrix::with_capacity(n2, n2, 9 * n2);
    for i in 0..n {
        for j in 0..n {
            let me = idx(i, j);
            coo.push(me, me, 20.0 * scale)?;
            let mut link = |di: isize, dj: isize, w: f64| -> Result<(), SparseError> {
                let (ii, jj) = (i as isize + di, j as isize + dj);
                if ii >= 0 && jj >= 0 && (ii as usize) < n && (jj as usize) < n {
                    coo.push(me, idx(ii as usize, jj as usize), w * scale)?;
                }
                Ok(())
            };
            for (di, dj) in [(-1isize, 0isize), (1, 0), (0, -1), (0, 1)] {
                link(di, dj, -4.0)?;
            }
            for (di, dj) in [(-1isize, -1isize), (-1, 1), (1, -1), (1, 1)] {
                link(di, dj, -1.0)?;
            }
        }
    }
    let matrix = coo.to_csr();

    let mut exact = vec![0.0; n2];
    for i in 0..n {
        for j in 0..n {
            let x = (j as f64 + 1.0) * h;
            let y = (i as f64 + 1.0) * h;
            exact[idx(i, j)] = x * (1.0 - x) * y * (1.0 - y);
        }
    }
    // Discrete manufactured RHS: f_h = A·u_exact. The manufactured u
    // vanishes on the boundary, so no Dirichlet correction terms arise and
    // the discrete solution equals `exact` up to solver tolerance.
    let rhs = matrix.mul_vec(&exact);

    let labels: Vec<usize> = (0..n2)
        .map(|k| {
            let (i, j) = (k / n, k % n);
            2 * (i % 2) + (j % 2)
        })
        .collect();
    let coloring = Coloring::from_labels(labels, 4)?;
    Ok(PoissonProblem {
        matrix,
        rhs,
        exact,
        coloring,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_spd_and_symmetric() {
        let p = poisson5(6).unwrap();
        p.matrix.check_symmetric(1e-12).unwrap();
        p.matrix.to_dense().cholesky().unwrap();
    }

    #[test]
    fn red_black_coloring_is_valid() {
        let p = poisson5(7).unwrap();
        p.coloring.verify_for(&p.matrix).unwrap();
        assert_eq!(p.coloring.num_colors(), 2);
    }

    #[test]
    fn direct_solution_equals_manufactured() {
        // The stencil is exact for this polynomial solution (4th
        // derivatives vanish), so the direct solve reproduces it to
        // rounding.
        let p = poisson5(20).unwrap();
        let x = p.matrix.to_dense().cholesky().unwrap().solve(&p.rhs);
        let err = x
            .iter()
            .zip(&p.exact)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(err < 1e-10, "should be exact, got {err}");
    }

    #[test]
    fn five_point_structure() {
        let p = poisson5(5).unwrap();
        assert!(p.matrix.max_row_nnz() <= 5);
        // Interior point has exactly 5 entries.
        assert_eq!(p.matrix.row_nnz(2 * 5 + 2), 5);
    }

    #[test]
    fn gershgorin_interval_is_positive_for_poisson() {
        let p = poisson5(8).unwrap();
        let (lo, hi) = p.matrix.gershgorin_interval();
        assert!(lo >= 0.0);
        assert!(hi > 0.0);
    }

    #[test]
    fn nine_point_matrix_is_spd_with_valid_four_coloring() {
        let p = poisson9(7).unwrap();
        p.matrix.check_symmetric(1e-9).unwrap();
        p.matrix.to_dense().cholesky().unwrap();
        assert_eq!(p.coloring.num_colors(), 4);
        p.coloring.verify_for(&p.matrix).unwrap();
        // Red/black would NOT decouple the 9-point stencil: diagonal
        // neighbours share the 2-color parity.
        let rb = Coloring::from_labels((0..49).map(|k| (k / 7 + k % 7) % 2).collect(), 2).unwrap();
        assert!(rb.verify_for(&p.matrix).is_err());
    }

    #[test]
    fn nine_point_direct_solution_matches_discrete_rhs() {
        let p = poisson9(10).unwrap();
        let x = p.matrix.to_dense().cholesky().unwrap().solve(&p.rhs);
        let err = x
            .iter()
            .zip(&p.exact)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(err < 1e-10, "rhs construction should be exact: {err}");
    }

    #[test]
    fn nine_point_stencil_has_nine_entries() {
        let p = poisson9(5).unwrap();
        assert!(p.matrix.max_row_nnz() <= 9);
        assert_eq!(p.matrix.row_nnz(2 * 5 + 2), 9);
    }

    #[test]
    fn mstep_ssor_works_on_four_colored_nine_point() {
        // End-to-end: the denser stencil runs through the same machinery.
        let p = poisson9(8).unwrap();
        let ord = p.coloring.ordering();
        let a = ord.permute_matrix(&p.matrix).unwrap();
        let rhs = ord.permutation.gather(&p.rhs);
        use mspcg_sparse::vecops;
        // Direct reference.
        let exact = a.to_dense().cholesky().unwrap().solve(&rhs);
        // 2-step multicolor SSOR PCG via the core crate is tested in the
        // integration suite; here verify the blocked structure invariant
        // that enables it: diagonal blocks are diagonal.
        for blk in ord.partition.iter() {
            for i in blk.clone() {
                for (j, _) in a.row_entries(i) {
                    assert!(!blk.contains(&j) || j == i);
                }
            }
        }
        assert!(vecops::norm2(&exact) > 0.0);
    }
}
