//! The triangulated rectangular node grid.
//!
//! Nodes form a `rows × cols` lattice, numbered row-major from the bottom
//! left (the paper's "bottom to top, left to right"). Every grid cell is
//! split into two triangles by its **anti-diagonal** (from the cell's
//! top-left to bottom-right corner), which yields exactly the Fig. 2
//! grid-point stencil: a node couples to its N, S, E, W neighbours plus the
//! NW and SE diagonal neighbours — 7 nodes × 2 dofs = 14 entries per matrix
//! row.

/// A structured triangulated rectangle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlateMesh {
    /// Number of node rows (the paper's `a`).
    pub rows: usize,
    /// Number of node columns.
    pub cols: usize,
    /// Horizontal node spacing.
    pub dx: f64,
    /// Vertical node spacing.
    pub dy: f64,
}

impl PlateMesh {
    /// Unit-square plate with `n × n` nodes (the paper's test geometry; the
    /// triangle width is `1/(n−1)`, cf. the "width 1/54 when a = 55"
    /// remark in §3.1).
    ///
    /// # Panics
    /// Panics if `n < 2`.
    pub fn unit_square(n: usize) -> Self {
        assert!(n >= 2, "mesh needs at least 2x2 nodes");
        let h = 1.0 / (n as f64 - 1.0);
        PlateMesh {
            rows: n,
            cols: n,
            dx: h,
            dy: h,
        }
    }

    /// General rectangle with explicit spacing.
    ///
    /// # Panics
    /// Panics if either dimension has fewer than 2 nodes or spacing ≤ 0.
    pub fn rectangle(rows: usize, cols: usize, dx: f64, dy: f64) -> Self {
        assert!(rows >= 2 && cols >= 2, "mesh needs at least 2x2 nodes");
        assert!(dx > 0.0 && dy > 0.0, "node spacing must be positive");
        PlateMesh { rows, cols, dx, dy }
    }

    /// Total node count.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.rows * self.cols
    }

    /// Total triangle count (two per cell).
    #[inline]
    pub fn num_triangles(&self) -> usize {
        2 * (self.rows - 1) * (self.cols - 1)
    }

    /// Row-major node index of grid position `(row, col)`.
    #[inline]
    pub fn node_index(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }

    /// Grid position of node `idx`.
    #[inline]
    pub fn node_row_col(&self, idx: usize) -> (usize, usize) {
        (idx / self.cols, idx % self.cols)
    }

    /// Physical coordinates of node `idx`.
    #[inline]
    pub fn node_coords(&self, idx: usize) -> [f64; 2] {
        let (r, c) = self.node_row_col(idx);
        [c as f64 * self.dx, r as f64 * self.dy]
    }

    /// Iterate all triangles as CCW node-index triples.
    ///
    /// Cell `(i, j)` (lower-left node `(i, j)`) produces:
    /// * lower triangle `[(i,j), (i,j+1), (i+1,j)]`,
    /// * upper triangle `[(i,j+1), (i+1,j+1), (i+1,j)]`.
    pub fn triangles(&self) -> impl Iterator<Item = [usize; 3]> + '_ {
        let cols = self.cols;
        (0..self.rows - 1).flat_map(move |i| {
            (0..cols - 1).flat_map(move |j| {
                let bl = i * cols + j;
                let br = bl + 1;
                let tl = bl + cols;
                let tr = tl + 1;
                [[bl, br, tl], [br, tr, tl]]
            })
        })
    }

    /// Stencil neighbours of node `(row, col)` under the anti-diagonal
    /// triangulation: N, S, E, W, NW, SE (those inside the grid). Excludes
    /// the node itself.
    pub fn stencil_neighbors(&self, row: usize, col: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(6);
        let r = row as isize;
        let c = col as isize;
        for (dr, dc) in [(0, 1), (0, -1), (1, 0), (-1, 0), (1, -1), (-1, 1)] {
            let (nr, nc) = (r + dr, c + dc);
            if nr >= 0 && nr < self.rows as isize && nc >= 0 && nc < self.cols as isize {
                out.push(self.node_index(nr as usize, nc as usize));
            }
        }
        out
    }

    /// Verify mesh/triangulation consistency: every triangle CCW, every
    /// triangle edge between stencil neighbours.
    pub fn is_consistent(&self) -> bool {
        for t in self.triangles() {
            let p: Vec<[f64; 2]> = t.iter().map(|&n| self.node_coords(n)).collect();
            let det = (p[1][0] - p[0][0]) * (p[2][1] - p[0][1])
                - (p[2][0] - p[0][0]) * (p[1][1] - p[0][1]);
            if det <= 0.0 {
                return false;
            }
            for k in 0..3 {
                let (a, b) = (t[k], t[(k + 1) % 3]);
                let (ar, ac) = self.node_row_col(a);
                if !self.stencil_neighbors(ar, ac).contains(&b) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_square_spacing() {
        let m = PlateMesh::unit_square(5);
        assert_eq!(m.num_nodes(), 25);
        assert_eq!(m.num_triangles(), 32);
        assert!((m.dx - 0.25).abs() < 1e-15);
        assert_eq!(m.node_coords(24), [1.0, 1.0]);
    }

    #[test]
    fn node_indexing_round_trip() {
        let m = PlateMesh::rectangle(3, 4, 0.5, 0.25);
        for idx in 0..m.num_nodes() {
            let (r, c) = m.node_row_col(idx);
            assert_eq!(m.node_index(r, c), idx);
        }
    }

    #[test]
    fn triangles_are_ccw_and_cover_cells() {
        let m = PlateMesh::unit_square(4);
        assert!(m.is_consistent());
        assert_eq!(m.triangles().count(), m.num_triangles());
    }

    #[test]
    fn interior_node_has_six_stencil_neighbors() {
        let m = PlateMesh::unit_square(5);
        assert_eq!(m.stencil_neighbors(2, 2).len(), 6);
        // Corner (0,0) touches E, N, NW(out), SE(out) -> E, N only... plus
        // the anti-diagonal: NW is (1,-1) out, SE is (-1,1) out: 2 nbrs.
        assert_eq!(m.stencil_neighbors(0, 0).len(), 2);
        // Corner (0, cols-1): W, N, NW -> 3 neighbours.
        assert_eq!(m.stencil_neighbors(0, 4).len(), 3);
    }

    #[test]
    fn stencil_is_symmetric() {
        let m = PlateMesh::unit_square(6);
        for idx in 0..m.num_nodes() {
            let (r, c) = m.node_row_col(idx);
            for &n in &m.stencil_neighbors(r, c) {
                let (nr, nc) = m.node_row_col(n);
                assert!(
                    m.stencil_neighbors(nr, nc).contains(&idx),
                    "asymmetric stencil {idx} <-> {n}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn tiny_mesh_panics() {
        PlateMesh::unit_square(1);
    }
}
