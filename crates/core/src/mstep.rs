//! The m-step preconditioner — the paper's contribution, packaged.
//!
//! `M_m⁻¹ = (Σ_{i<m} αᵢ Gⁱ) P⁻¹` for a splitting `K = P − Q`, evaluated by
//! the Horner recurrence `w_s = G w_{s−1} + α_{m−s} P⁻¹ r` (`w_0 = 0`),
//! which the [`crate::splitting::Splitting::msolve`] implementations
//! perform — for the multicolor SSOR splitting, with the Conrad–Wallach
//! cost of one SOR sweep per step (Algorithm 2).
//!
//! Constructors cover the paper's whole design space:
//! * **unparametrized** (`αᵢ = 1`): m steps of the stationary method; for
//!   the Jacobi splitting this is the truncated Neumann series of
//!   Dubois–Greenbaum–Rodrigue (1979),
//! * **parametrized**: least-squares or min-max coefficients on the
//!   estimated spectral interval of `P⁻¹K` (§2.2). Construction *fails*
//!   with [`SparseError::NotPositiveDefinite`] if the fitted polynomial is
//!   not positive on the interval — the §2.1 SPD requirement.

use crate::coeffs::{least_squares_alphas, minimax_alphas, spd_margin, Weight};
use crate::preconditioner::Preconditioner;
use crate::splitting::{JacobiSplitting, Splitting};
use crate::ssor::MulticolorSsor;
use mspcg_sparse::{CsrMatrix, Partition, SparseError, SparseOp};
use std::sync::Arc;

/// Power-iteration budget used when a constructor must estimate the
/// spectral interval itself.
const SPECTRUM_ITERS: usize = 60;

/// An m-step preconditioner over any splitting.
#[derive(Debug)]
pub struct MStep<S: Splitting> {
    splitting: S,
    alphas: Vec<f64>,
    interval: Option<(f64, f64)>,
}

impl<S: Splitting> MStep<S> {
    /// Unparametrized m-step preconditioner (`αᵢ = 1`).
    ///
    /// # Errors
    /// [`SparseError::InvalidPartition`] if `m == 0`.
    pub fn new_unparametrized(splitting: S, m: usize) -> Result<Self, SparseError> {
        if m == 0 {
            return Err(SparseError::InvalidPartition {
                reason: "m must be at least 1".into(),
            });
        }
        Ok(MStep {
            splitting,
            alphas: vec![1.0; m],
            interval: None,
        })
    }

    /// Explicit coefficients (`alphas[i]` multiplies `Gⁱ P⁻¹`).
    ///
    /// # Errors
    /// [`SparseError::InvalidPartition`] for an empty coefficient vector.
    pub fn new_with_coefficients(splitting: S, alphas: Vec<f64>) -> Result<Self, SparseError> {
        if alphas.is_empty() {
            return Err(SparseError::InvalidPartition {
                reason: "coefficient vector must be nonempty".into(),
            });
        }
        Ok(MStep {
            splitting,
            alphas,
            interval: None,
        })
    }

    /// Least-squares parametrized preconditioner; the spectral interval of
    /// `P⁻¹K` is estimated from the splitting.
    ///
    /// # Errors
    /// Estimation/fit failures, or [`SparseError::NotPositiveDefinite`] if
    /// the fitted symbol is not positive on the interval (M would not be
    /// SPD, violating §2.1).
    pub fn new_least_squares(splitting: S, m: usize, weight: Weight) -> Result<Self, SparseError> {
        let interval = splitting.spectrum_interval(SPECTRUM_ITERS)?;
        let alphas = least_squares_alphas(m, interval, weight)?;
        Self::checked(splitting, alphas, interval)
    }

    /// Min-max (Chebyshev) parametrized preconditioner.
    ///
    /// # Errors
    /// Same classes as [`MStep::new_least_squares`].
    pub fn new_minimax(splitting: S, m: usize) -> Result<Self, SparseError> {
        let interval = splitting.spectrum_interval(SPECTRUM_ITERS)?;
        let alphas = minimax_alphas(m, interval)?;
        Self::checked(splitting, alphas, interval)
    }

    fn checked(splitting: S, alphas: Vec<f64>, interval: (f64, f64)) -> Result<Self, SparseError> {
        let margin = spd_margin(&alphas, interval);
        if margin <= 0.0 {
            return Err(SparseError::NotPositiveDefinite {
                pivot: 0,
                value: margin,
            });
        }
        Ok(MStep {
            splitting,
            alphas,
            interval: Some(interval),
        })
    }

    /// Number of steps `m`.
    pub fn m(&self) -> usize {
        self.alphas.len()
    }

    /// Coefficients (length `m`); all ones when unparametrized.
    pub fn alphas(&self) -> &[f64] {
        &self.alphas
    }

    /// The spectral interval used for fitting, when one was estimated.
    pub fn interval(&self) -> Option<(f64, f64)> {
        self.interval
    }

    /// Borrow the underlying splitting.
    pub fn splitting(&self) -> &S {
        &self.splitting
    }
}

impl<S: Splitting> Preconditioner for MStep<S> {
    fn dim(&self) -> usize {
        self.splitting.dim()
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        self.splitting.msolve(&self.alphas, r, z);
    }

    fn steps_per_apply(&self) -> usize {
        self.alphas.len()
    }

    fn scratch_len(&self) -> usize {
        self.splitting.msolve_scratch_len()
    }

    fn apply_with(&self, r: &[f64], z: &mut [f64], scratch: &mut [f64]) {
        self.splitting.msolve_with(&self.alphas, r, z, scratch);
    }
}

/// The paper's headline configuration: m-step **multicolor SSOR** PCG.
pub type MStepSsorPreconditioner = MStep<MulticolorSsor>;

impl MStepSsorPreconditioner {
    /// Unparametrized m-step SSOR (ω = 1) on a color-blocked matrix.
    ///
    /// Clones the matrix and partition once; sweep-style callers building
    /// many preconditioners over one system should use
    /// [`MStepSsorPreconditioner::unparametrized_shared`].
    ///
    /// # Errors
    /// Propagates [`MulticolorSsor::new`] validation errors.
    pub fn unparametrized(
        a: &CsrMatrix,
        colors: &Partition,
        m: usize,
    ) -> Result<Self, SparseError> {
        Self::unparametrized_shared(Arc::new(a.clone()), Arc::new(colors.clone()), m)
    }

    /// Unparametrized m-step SSOR (ω = 1) from a color-blocked operator in
    /// **any** [`SparseOp`] format: the SSOR sweep structure is
    /// materialized via [`MulticolorSsor::from_op`], so a solver driving
    /// its SpMV through SELL-C-σ (or any future format) gets a
    /// preconditioner bitwise identical to the CSR-built one.
    ///
    /// # Errors
    /// Propagates [`MulticolorSsor::new`] validation errors.
    pub fn unparametrized_op<A: SparseOp>(
        a: &A,
        colors: &Partition,
        m: usize,
    ) -> Result<Self, SparseError> {
        let s = MulticolorSsor::from_op(a, Arc::new(colors.clone()), 1.0)?;
        Self::new_unparametrized(s, m)
    }

    /// Least-squares parametrized m-step SSOR (ω = 1) from a
    /// color-blocked operator in any [`SparseOp`] format — the generic
    /// twin of [`MStepSsorPreconditioner::parametrized`].
    ///
    /// # Errors
    /// Propagates construction, estimation and SPD-check errors.
    pub fn parametrized_op<A: SparseOp>(
        a: &A,
        colors: &Partition,
        m: usize,
    ) -> Result<Self, SparseError> {
        let s = MulticolorSsor::from_op(a, Arc::new(colors.clone()), 1.0)?;
        Self::new_least_squares(s, m, Weight::Uniform)
    }

    /// Unparametrized m-step SSOR (ω = 1) sharing the system via `Arc` —
    /// no matrix or partition copy.
    ///
    /// # Errors
    /// Propagates [`MulticolorSsor::new`] validation errors.
    pub fn unparametrized_shared(
        a: Arc<CsrMatrix>,
        colors: Arc<Partition>,
        m: usize,
    ) -> Result<Self, SparseError> {
        let s = MulticolorSsor::new(a, colors, 1.0)?;
        Self::new_unparametrized(s, m)
    }

    /// Parametrized m-step SSOR (ω = 1) with least-squares coefficients on
    /// the estimated `σ(P⁻¹K)` interval — the paper's `mP` rows of
    /// Tables 2 and 3.
    ///
    /// # Errors
    /// Propagates construction, estimation and SPD-check errors.
    pub fn parametrized(a: &CsrMatrix, colors: &Partition, m: usize) -> Result<Self, SparseError> {
        Self::parametrized_shared(Arc::new(a.clone()), Arc::new(colors.clone()), m)
    }

    /// Least-squares parametrized m-step SSOR sharing the system via
    /// `Arc` — no matrix or partition copy.
    ///
    /// # Errors
    /// Propagates construction, estimation and SPD-check errors.
    pub fn parametrized_shared(
        a: Arc<CsrMatrix>,
        colors: Arc<Partition>,
        m: usize,
    ) -> Result<Self, SparseError> {
        let s = MulticolorSsor::new(a, colors, 1.0)?;
        Self::new_least_squares(s, m, Weight::Uniform)
    }

    /// Parametrized with the min-max (Chebyshev) criterion instead.
    ///
    /// # Errors
    /// Propagates construction, estimation and SPD-check errors.
    pub fn parametrized_minimax(
        a: &CsrMatrix,
        colors: &Partition,
        m: usize,
    ) -> Result<Self, SparseError> {
        let s = MulticolorSsor::new(a.clone(), colors.clone(), 1.0)?;
        Self::new_minimax(s, m)
    }

    /// Unparametrized with an explicit relaxation parameter (the ω-sweep
    /// ablation; the paper fixes ω = 1).
    ///
    /// # Errors
    /// Propagates construction errors (including ω ∉ (0, 2)).
    pub fn unparametrized_omega(
        a: &CsrMatrix,
        colors: &Partition,
        m: usize,
        omega: f64,
    ) -> Result<Self, SparseError> {
        Self::unparametrized_omega_shared(Arc::new(a.clone()), Arc::new(colors.clone()), m, omega)
    }

    /// ω-sweep constructor sharing the system via `Arc` — the sweep builds
    /// one splitting per ω without ever copying the matrix.
    ///
    /// # Errors
    /// Propagates construction errors (including ω ∉ (0, 2)).
    pub fn unparametrized_omega_shared(
        a: Arc<CsrMatrix>,
        colors: Arc<Partition>,
        m: usize,
        omega: f64,
    ) -> Result<Self, SparseError> {
        let s = MulticolorSsor::new(a, colors, omega)?;
        Self::new_unparametrized(s, m)
    }
}

/// m-step **Jacobi** preconditioner.
pub type MStepJacobiPreconditioner = MStep<JacobiSplitting>;

impl MStepJacobiPreconditioner {
    /// Truncated Neumann-series preconditioner
    /// (Dubois–Greenbaum–Rodrigue 1979): unparametrized m-step Jacobi.
    ///
    /// # Errors
    /// Propagates [`JacobiSplitting::new`] validation errors.
    pub fn neumann(a: &CsrMatrix, m: usize) -> Result<Self, SparseError> {
        let s = JacobiSplitting::new(a)?;
        Self::new_unparametrized(s, m)
    }

    /// Parametrized m-step Jacobi — the original Johnson–Micchelli–Paul
    /// polynomial preconditioner (least squares).
    ///
    /// # Errors
    /// Propagates construction, estimation and SPD-check errors.
    pub fn parametrized_jacobi(a: &CsrMatrix, m: usize) -> Result<Self, SparseError> {
        let s = JacobiSplitting::new(a)?;
        Self::new_least_squares(s, m, Weight::Uniform)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspcg_coloring::Coloring;
    use mspcg_sparse::CooMatrix;

    fn rb_system(n: usize) -> (CsrMatrix, Partition) {
        let mut a = CooMatrix::new(n, n);
        for i in 0..n {
            a.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                a.push_sym(i, i + 1, -1.0).unwrap();
            }
        }
        let a = a.to_csr();
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let ord = Coloring::from_labels(labels, 2).unwrap().ordering();
        (ord.permute_matrix(&a).unwrap(), ord.partition)
    }

    #[test]
    fn zero_steps_rejected() {
        let (a, p) = rb_system(6);
        assert!(MStepSsorPreconditioner::unparametrized(&a, &p, 0).is_err());
    }

    #[test]
    fn parametrized_records_interval() {
        let (a, p) = rb_system(10);
        let pre = MStepSsorPreconditioner::parametrized(&a, &p, 3).unwrap();
        let (lo, hi) = pre.interval().unwrap();
        assert!(lo > 0.0 && hi == 1.0);
        assert_eq!(pre.m(), 3);
        assert_eq!(pre.steps_per_apply(), 3);
    }

    #[test]
    fn unparametrized_alphas_are_ones() {
        let (a, p) = rb_system(8);
        let pre = MStepSsorPreconditioner::unparametrized(&a, &p, 4).unwrap();
        assert_eq!(pre.alphas(), &[1.0, 1.0, 1.0, 1.0]);
        assert!(pre.interval().is_none());
    }

    #[test]
    fn apply_with_m1_equals_p_solve() {
        let (a, p) = rb_system(8);
        let pre = MStepSsorPreconditioner::unparametrized(&a, &p, 1).unwrap();
        let r: Vec<f64> = (0..8).map(|i| (i as f64).sin()).collect();
        let mut z1 = vec![0.0; 8];
        pre.apply(&r, &mut z1);
        let mut z2 = vec![0.0; 8];
        pre.splitting().solve_p(&r, &mut z2);
        for (u, v) in z1.iter().zip(&z2) {
            assert!((u - v).abs() < 1e-14);
        }
    }

    #[test]
    fn neumann_matches_manual_series() {
        // Unparametrized Jacobi m-step: z = Σ_{i<m} (D⁻¹(D−K))ⁱ D⁻¹ r.
        let (a, _) = rb_system(6);
        let m = 3;
        let pre = MStepJacobiPreconditioner::neumann(&a, m).unwrap();
        let r: Vec<f64> = (0..6).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let mut z = vec![0.0; 6];
        pre.apply(&r, &mut z);

        let d = a.diag().unwrap();
        let dinv_r: Vec<f64> = r.iter().zip(&d).map(|(x, di)| x / di).collect();
        let mut term = dinv_r.clone();
        let mut sum = dinv_r.clone();
        for _ in 1..m {
            // term ← D⁻¹(D−K) term = term − D⁻¹ K term.
            let kt = a.mul_vec(&term);
            for i in 0..6 {
                term[i] -= kt[i] / d[i];
            }
            for i in 0..6 {
                sum[i] += term[i];
            }
        }
        for (u, v) in z.iter().zip(&sum) {
            assert!((u - v).abs() < 1e-13, "{u} vs {v}");
        }
    }

    #[test]
    fn parametrized_jacobi_constructs_and_is_spd_checked() {
        let (a, _) = rb_system(12);
        let pre = MStepJacobiPreconditioner::parametrized_jacobi(&a, 4).unwrap();
        assert_eq!(pre.m(), 4);
        let (lo, hi) = pre.interval().unwrap();
        assert!(lo > 0.0 && hi > 1.0); // Jacobi interval extends past 1
    }

    #[test]
    fn explicit_coefficients_are_used_verbatim() {
        let (a, p) = rb_system(6);
        let s = MulticolorSsor::new(a.clone(), p.clone(), 1.0).unwrap();
        let pre = MStep::new_with_coefficients(s, vec![2.0]).unwrap();
        let r = vec![1.0; 6];
        let mut z = vec![0.0; 6];
        pre.apply(&r, &mut z);
        let mut half = vec![0.0; 6];
        pre.splitting().solve_p(&r, &mut half);
        for (u, v) in z.iter().zip(&half) {
            assert!((u - 2.0 * v).abs() < 1e-14);
        }
    }

    #[test]
    fn empty_coefficients_rejected() {
        let (a, p) = rb_system(6);
        let s = MulticolorSsor::new(a.clone(), p.clone(), 1.0).unwrap();
        assert!(MStep::new_with_coefficients(s, vec![]).is_err());
    }
}
