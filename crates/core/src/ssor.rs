//! Multicolor block SSOR — paper Algorithm 2.
//!
//! After the multicolor renumbering, the matrix has the block form (3.1):
//! every diagonal color block `D_c` is *diagonal*, so the SOR sweeps of
//! SSOR reduce to, per color, an off-diagonal block multiply followed by a
//! pointwise diagonal solve — long vector operations / embarrassingly
//! parallel loops. The per-color row loops here run on the `mspcg-sparse`
//! worker pool (`par` feature) for large blocks: rows within one color
//! update independently (the multicolor guarantee), so the parallel sweep
//! is bitwise identical to the serial one for any thread count.
//!
//! ## The Conrad–Wallach auxiliary vector
//!
//! A textbook SSOR step touches every off-diagonal entry twice (once in the
//! forward sweep, once in the backward sweep). Conrad & Wallach (1979)
//! observed that the half-sums can be cached: the forward update of row `i`
//! (color `c`) needs `lower_i = Σ_{color(j)<c} a_ij x_j` (which must be
//! computed fresh, those x just changed) and `upper_i = Σ_{color(j)>c} a_ij
//! x_j` (unchanged since the previous backward pass — read it from the cache
//! `y`). Symmetrically the backward pass computes `upper` fresh and reads
//! `lower` from `y`. Every off-diagonal entry is then touched **once per
//! SSOR step**, which is the paper's claim that the m-step SSOR
//! preconditioner costs only m multicolor SOR sweeps.
//!
//! The m-step `msolve` additionally *fuses* the `w_0 = 0` initialization
//! into the first forward sweep: since every lower half-sum of step 1 reads
//! only rows already updated in that same pass and every upper half-sum is
//! structurally zero, the first sweep writes every element of `z` and of
//! the cache without reading either — no `fill(0)` passes over the full
//! vectors, and each color block is swept exactly once per step.
//!
//! ## Schedule details (paper Algorithm 2/3 loop bounds)
//!
//! With `ω = 1` the backward re-update of the *last* color is the identity
//! (the forward update already used final values for every lower color and
//! there are no upper colors), so the backward sweep runs from the
//! next-to-last color — the paper's `c = 5 down to 2` plus its trailing
//! color-1 solve with `α₀`. We run the backward sweep down to color 1
//! (0-indexed color 0) *inside* the loop with the step's own coefficient:
//! algebraically identical (the intermediate color-1 value is overwritten
//! unread by the next forward pass — with `ω = 1` the update has no
//! self-term — and the final step's backward color-1 solve uses `α₀`, which
//! is exactly the paper's trailing step (3)), and it keeps the `y` cache for
//! color 1 fresh, which the paper's OCR-garbled loop bounds leave implicit.
//! With `ω ≠ 1` the last color's backward update has a genuine `(1−ω)x`
//! self-term, so the full backward sweep is performed.

use crate::splitting::Splitting;
use mspcg_sparse::lanczos::power_spectral_radius;
use mspcg_sparse::par::{self, ParSlice};
use mspcg_sparse::{tuning, CsrMatrix, Partition, SparseError, SparseOp};
use std::sync::{Arc, Mutex};

/// Multicolor SSOR(ω) splitting of a color-blocked SPD matrix.
///
/// Constructed from a matrix already permuted into contiguous color blocks
/// (see `mspcg-coloring`); validates that each diagonal block is diagonal.
/// The matrix and partition are held by [`Arc`], so building many
/// splittings over one system (the ω sweep, the condition studies, the
/// Table 2/3 m sweeps) shares the data instead of deep-cloning it.
#[derive(Debug)]
pub struct MulticolorSsor {
    a: Arc<CsrMatrix>,
    colors: Arc<Partition>,
    omega: f64,
    inv_diag: Vec<f64>,
    /// Per row: CSR index of the first entry with column ≥ own-block start.
    lo_split: Vec<usize>,
    /// Per row: CSR index of the first entry with column ≥ own-block end.
    hi_split: Vec<usize>,
    /// Conrad–Wallach half-sum cache (valid only inside one msolve call;
    /// a mutex rather than a `RefCell` so the splitting stays `Sync` and
    /// can be shared with the worker pool and across solver threads).
    y: Mutex<Vec<f64>>,
}

impl MulticolorSsor {
    /// Build from a color-blocked matrix. `ω = 1` is the paper's choice
    /// (§5: for multicolor orderings with few colors, `ω = 1` is good).
    ///
    /// Accepts anything convertible into shared handles: pass `Arc`s to
    /// share one system across many splittings (no copy), or owned values
    /// to move them in. Borrowing callers can clone explicitly — the old
    /// implicit deep copy of both matrix and partition is gone.
    ///
    /// # Errors
    /// * [`SparseError::NotSquare`] / shape mismatch with the partition,
    /// * [`SparseError::InvalidPartition`] if an off-diagonal entry lies
    ///   inside its own color block (the coloring failed to decouple),
    /// * [`SparseError::ZeroDiagonal`] for missing/nonpositive diagonals,
    /// * [`SparseError::InvalidPartition`] for ω outside `(0, 2)`.
    pub fn new(
        a: impl Into<Arc<CsrMatrix>>,
        colors: impl Into<Arc<Partition>>,
        omega: f64,
    ) -> Result<Self, SparseError> {
        let a: Arc<CsrMatrix> = a.into();
        let colors: Arc<Partition> = colors.into();
        if a.rows() != a.cols() {
            return Err(SparseError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        if colors.total_len() != a.rows() {
            return Err(SparseError::ShapeMismatch {
                left: (a.rows(), a.cols()),
                right: (colors.total_len(), 1),
            });
        }
        if !(omega > 0.0 && omega < 2.0) {
            return Err(SparseError::InvalidPartition {
                reason: format!("SSOR omega {omega} outside (0, 2)"),
            });
        }
        let n = a.rows();
        let mut inv_diag = vec![0.0; n];
        let mut lo_split = vec![0usize; n];
        let mut hi_split = vec![0usize; n];
        for c in 0..colors.num_blocks() {
            let blk = colors.range(c);
            for i in blk.clone() {
                let row_lo = a.row_ptr()[i];
                let row_hi = a.row_ptr()[i + 1];
                let cols = &a.col_idx()[row_lo..row_hi];
                let lo = row_lo + cols.partition_point(|&j| (j as usize) < blk.start);
                let hi = row_lo + cols.partition_point(|&j| (j as usize) < blk.end);
                // Entries in [lo, hi) lie inside the block: must be the
                // diagonal alone.
                match hi - lo {
                    0 => return Err(SparseError::ZeroDiagonal { row: i }),
                    1 => {
                        let j = a.col_idx()[lo] as usize;
                        if j != i {
                            return Err(SparseError::InvalidPartition {
                                reason: format!(
                                    "off-diagonal entry ({i}, {j}) inside color block {c}"
                                ),
                            });
                        }
                        let d = a.values()[lo];
                        if d <= 0.0 || !d.is_finite() {
                            return Err(SparseError::ZeroDiagonal { row: i });
                        }
                        inv_diag[i] = 1.0 / d;
                    }
                    _ => {
                        return Err(SparseError::InvalidPartition {
                            reason: format!("multiple in-block entries in row {i} (block {c})"),
                        });
                    }
                }
                lo_split[i] = lo;
                hi_split[i] = hi;
            }
        }
        Ok(MulticolorSsor {
            a,
            colors,
            omega,
            inv_diag,
            lo_split,
            hi_split,
            y: Mutex::new(vec![0.0; n]),
        })
    }

    /// Build from a color-blocked operator in **any** [`SparseOp`]
    /// format: the splitting's sweep structure (split CSR arrays walked
    /// row-by-row in color order) is materialized once via
    /// [`SparseOp::csr_copy`]. Because `csr_copy` reproduces the stored
    /// entries in ascending-column order, the resulting splitting is
    /// bitwise identical to one built from the original CSR matrix —
    /// solving through SELL-C-σ replays the CSR preconditioner exactly.
    ///
    /// # Errors
    /// Same classes as [`MulticolorSsor::new`].
    pub fn from_op<A: SparseOp>(
        a: &A,
        colors: impl Into<Arc<Partition>>,
        omega: f64,
    ) -> Result<Self, SparseError> {
        Self::new(Arc::new(a.csr_copy()), colors, omega)
    }

    /// The relaxation parameter.
    pub fn omega(&self) -> f64 {
        self.omega
    }

    /// The color partition.
    pub fn colors(&self) -> &Partition {
        &self.colors
    }

    /// Shared handle to the color partition.
    pub fn colors_arc(&self) -> &Arc<Partition> {
        &self.colors
    }

    /// The (color-blocked) matrix.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.a
    }

    /// Shared handle to the matrix.
    pub fn matrix_arc(&self) -> &Arc<CsrMatrix> {
        &self.a
    }

    #[inline]
    fn lower_sum(&self, i: usize, x: &[f64]) -> f64 {
        let cols = self.a.col_idx();
        let vals = self.a.values();
        let mut s = 0.0;
        for k in self.a.row_ptr()[i]..self.lo_split[i] {
            s += vals[k] * x[cols[k] as usize];
        }
        s
    }

    #[inline]
    fn upper_sum(&self, i: usize, x: &[f64]) -> f64 {
        let cols = self.a.col_idx();
        let vals = self.a.values();
        let mut s = 0.0;
        for k in self.hi_split[i]..self.a.row_ptr()[i + 1] {
            s += vals[k] * x[cols[k] as usize];
        }
        s
    }

    /// Lower half-sum reading through a shared slice (parallel sweep path).
    ///
    /// # Safety
    /// Every column index in the lower half of row `i` must not be
    /// concurrently written (guaranteed by the multicolor property: those
    /// columns lie in colors already finalized this pass).
    #[inline]
    unsafe fn lower_sum_shared(&self, i: usize, x: &ParSlice<'_>) -> f64 {
        let cols = self.a.col_idx();
        let vals = self.a.values();
        let mut s = 0.0;
        for k in self.a.row_ptr()[i]..self.lo_split[i] {
            // SAFETY: forwarded contract.
            s += vals[k] * unsafe { x.get(cols[k] as usize) };
        }
        s
    }

    /// Upper half-sum through a shared slice; same contract as
    /// [`MulticolorSsor::lower_sum_shared`] for the upper half.
    #[inline]
    unsafe fn upper_sum_shared(&self, i: usize, x: &ParSlice<'_>) -> f64 {
        let cols = self.a.col_idx();
        let vals = self.a.values();
        let mut s = 0.0;
        for k in self.hi_split[i]..self.a.row_ptr()[i + 1] {
            // SAFETY: forwarded contract.
            s += vals[k] * unsafe { x.get(cols[k] as usize) };
        }
        s
    }

    #[inline]
    fn relax(&self, i: usize, rhs_minus_sums: f64, x: &mut [f64]) {
        let xi = x[i];
        x[i] = (1.0 - self.omega) * xi + self.omega * rhs_minus_sums * self.inv_diag[i];
    }

    /// Stored entries in color block `c` — the work measure deciding
    /// whether its row loop is worth running on the pool.
    #[inline]
    fn block_nnz(&self, blk: &std::ops::Range<usize>) -> usize {
        self.a.row_ptr()[blk.end] - self.a.row_ptr()[blk.start]
    }

    /// Forward sweep with half-sum cache: fresh lower sums, cached upper
    /// sums; caches the fresh lower sums for the backward pass.
    ///
    /// The last color has no upper colors, so its upper sum is structurally
    /// zero — read it as such rather than from the cache (with ω = 1 the
    /// backward pass skips the last color, leaving a stale *lower* sum in
    /// `y` there).
    ///
    /// Each color's row loop is data parallel: row `i` writes only `x[i]`
    /// and `y[i]` and reads `x` only at columns of *other* colors.
    fn forward_cached(&self, scale: f64, b: &[f64], x: &mut [f64], y: &mut [f64]) {
        let nb = self.colors.num_blocks();
        for c in 0..nb {
            let blk = self.colors.range(c);
            let last = c == nb - 1;
            let threads = par::threads_for(self.block_nnz(&blk), tuning::par_min_nnz());
            if threads <= 1 {
                for i in blk {
                    let lower = self.lower_sum(i, x);
                    let upper = if last { 0.0 } else { y[i] };
                    self.relax(i, scale * b[i] - lower - upper, x);
                    y[i] = lower;
                }
            } else {
                let xs = ParSlice::new(x);
                let ys = ParSlice::new(y);
                let (chunk_nnz, nchunks) = par::spmv_layout(self.block_nnz(&blk));
                par::for_each_chunk(nchunks, threads, &|ci| {
                    let rows =
                        par::spmv_chunk_rows_range(self.a.row_ptr(), blk.clone(), chunk_nnz, ci);
                    for i in rows {
                        // SAFETY: row i is owned by this chunk (disjoint
                        // chunks of one color block); reads touch other
                        // colors only — the multicolor property.
                        unsafe {
                            let lower = self.lower_sum_shared(i, &xs);
                            let upper = if last { 0.0 } else { ys.get(i) };
                            let xi = xs.get(i);
                            xs.set(
                                i,
                                (1.0 - self.omega) * xi
                                    + self.omega
                                        * (scale * b[i] - lower - upper)
                                        * self.inv_diag[i],
                            );
                            ys.set(i, lower);
                        }
                    }
                });
            }
        }
    }

    /// First forward sweep of an msolve, fused with the `w₀ = 0` start:
    /// identical to [`MulticolorSsor::forward_cached`] on zero-filled
    /// `x`/`y`, but never *reads* either — the `(1−ω)x` self-term and the
    /// cached upper sums are structurally zero — so the zero-fill passes
    /// are skipped entirely.
    fn forward_first(&self, scale: f64, b: &[f64], x: &mut [f64], y: &mut [f64]) {
        let nb = self.colors.num_blocks();
        for c in 0..nb {
            let blk = self.colors.range(c);
            let threads = par::threads_for(self.block_nnz(&blk), tuning::par_min_nnz());
            if threads <= 1 {
                for i in blk {
                    let lower = self.lower_sum(i, x);
                    x[i] = self.omega * (scale * b[i] - lower) * self.inv_diag[i];
                    y[i] = lower;
                }
            } else {
                let xs = ParSlice::new(x);
                let ys = ParSlice::new(y);
                let (chunk_nnz, nchunks) = par::spmv_layout(self.block_nnz(&blk));
                par::for_each_chunk(nchunks, threads, &|ci| {
                    let rows =
                        par::spmv_chunk_rows_range(self.a.row_ptr(), blk.clone(), chunk_nnz, ci);
                    for i in rows {
                        // SAFETY: as in forward_cached; additionally, the
                        // lower sums of color 0 are empty and of color c>0
                        // read only rows written in earlier (barriered)
                        // color phases of this same pass.
                        unsafe {
                            let lower = self.lower_sum_shared(i, &xs);
                            xs.set(i, self.omega * (scale * b[i] - lower) * self.inv_diag[i]);
                            ys.set(i, lower);
                        }
                    }
                });
            }
        }
    }

    /// Backward sweep with half-sum cache, from block `from` (inclusive)
    /// down to block 0; per-color row loops data parallel like the forward
    /// sweep.
    fn backward_cached(&self, scale: f64, b: &[f64], x: &mut [f64], y: &mut [f64], from: usize) {
        for c in (0..=from).rev() {
            let blk = self.colors.range(c);
            let threads = par::threads_for(self.block_nnz(&blk), tuning::par_min_nnz());
            if threads <= 1 {
                for i in blk {
                    let upper = self.upper_sum(i, x);
                    let lower = y[i];
                    self.relax(i, scale * b[i] - lower - upper, x);
                    y[i] = upper;
                }
            } else {
                let xs = ParSlice::new(x);
                let ys = ParSlice::new(y);
                let (chunk_nnz, nchunks) = par::spmv_layout(self.block_nnz(&blk));
                par::for_each_chunk(nchunks, threads, &|ci| {
                    let rows =
                        par::spmv_chunk_rows_range(self.a.row_ptr(), blk.clone(), chunk_nnz, ci);
                    for i in rows {
                        // SAFETY: as in forward_cached, mirrored.
                        unsafe {
                            let upper = self.upper_sum_shared(i, &xs);
                            let lower = ys.get(i);
                            let xi = xs.get(i);
                            xs.set(
                                i,
                                (1.0 - self.omega) * xi
                                    + self.omega
                                        * (scale * b[i] - lower - upper)
                                        * self.inv_diag[i],
                            );
                            ys.set(i, upper);
                        }
                    }
                });
            }
        }
    }

    /// Which block the backward sweep starts from: with ω = 1 the last
    /// color's backward update is the identity and is skipped (paper's
    /// `c = 5 down to 2` optimization); otherwise it is required.
    fn backward_start(&self) -> usize {
        let last = self.colors.num_blocks() - 1;
        if self.omega == 1.0 {
            last.saturating_sub(1)
        } else {
            last
        }
    }

    /// Count of off-diagonal multiply–adds per SSOR step (the Conrad–Wallach
    /// cost: each off-diagonal entry exactly once).
    pub fn offdiag_ops_per_step(&self) -> usize {
        self.a.nnz() - self.a.rows()
    }
}

impl Splitting for MulticolorSsor {
    fn dim(&self) -> usize {
        self.a.rows()
    }

    /// One full SSOR step from an *arbitrary* starting vector: both
    /// half-sums are computed fresh (no cache assumption). Used by generic
    /// spectrum estimation; `msolve` below uses the cached fast path.
    fn step(&self, scale: f64, b: &[f64], x: &mut [f64]) {
        assert_eq!(b.len(), self.dim(), "mc-ssor step: b length mismatch");
        assert_eq!(x.len(), self.dim(), "mc-ssor step: x length mismatch");
        let nb = self.colors.num_blocks();
        // Forward: fresh lower AND upper sums.
        for c in 0..nb {
            for i in self.colors.range(c) {
                let s = self.lower_sum(i, x) + self.upper_sum(i, x);
                self.relax(i, scale * b[i] - s, x);
            }
        }
        // Backward: skip the last color when ω = 1 (identity update).
        let from = self.backward_start();
        for c in (0..=from).rev() {
            for i in self.colors.range(c) {
                let s = self.lower_sum(i, x) + self.upper_sum(i, x);
                self.relax(i, scale * b[i] - s, x);
            }
        }
    }

    /// Algorithm 2: m-step multicolor SSOR solve of `M r̂ = r` with the
    /// Conrad–Wallach cache carried across steps. Step `s` uses coefficient
    /// `α_{m−s}` on the right-hand side (the final backward color-1 update
    /// runs with `α₀`, which is the paper's trailing step (3)). The
    /// `r̂ = 0`, `y = 0` start is fused into the first forward sweep — no
    /// zero-fill passes, each color block swept once per step. This entry
    /// point borrows the internal mutex-guarded cache; concurrent callers
    /// sharing one splitting should use [`Splitting::msolve_with`].
    fn msolve(&self, alphas: &[f64], r: &[f64], z: &mut [f64]) {
        let mut y = self.y.lock().unwrap_or_else(|e| e.into_inner());
        self.msolve_with(alphas, r, z, y.as_mut_slice());
    }

    /// The Conrad–Wallach half-sum cache: one `f64` per unknown.
    fn msolve_scratch_len(&self) -> usize {
        self.dim()
    }

    /// Algorithm 2 with a **caller-owned** half-sum cache instead of the
    /// internal mutex-guarded one, so concurrent solves sharing one
    /// splitting (the batched multi-RHS workload) never serialize on a
    /// lock. Numerically identical to [`Splitting::msolve`]; the cache
    /// contents on entry are irrelevant (the `w₀ = 0` start is fused into
    /// the first forward sweep, which writes the cache before reading it).
    fn msolve_with(&self, alphas: &[f64], r: &[f64], z: &mut [f64], scratch: &mut [f64]) {
        assert!(!alphas.is_empty(), "msolve needs at least one coefficient");
        assert_eq!(r.len(), self.dim(), "mc-ssor msolve: r length mismatch");
        assert_eq!(z.len(), self.dim(), "mc-ssor msolve: z length mismatch");
        assert_eq!(
            scratch.len(),
            self.dim(),
            "mc-ssor msolve: scratch length mismatch"
        );
        let m = alphas.len();
        let y = scratch;
        let from = self.backward_start();
        self.forward_first(alphas[m - 1], r, z, y);
        self.backward_cached(alphas[m - 1], r, z, y, from);
        for s in 2..=m {
            let alpha = alphas[m - s];
            self.forward_cached(alpha, r, z, y);
            self.backward_cached(alpha, r, z, y, from);
        }
    }

    fn spectrum_interval(&self, iters: usize) -> Result<(f64, f64), SparseError> {
        // σ(G_SSOR) ⊆ [0, ρ] for SPD K and ω ∈ (0, 2) ⇒ σ(P⁻¹K) ⊆ [1−ρ, 1].
        let n = self.dim();
        let rho = power_spectral_radius(n, iters, 0x5EED, |x, y| {
            y.copy_from_slice(x);
            self.step(0.0, x, y);
        })?;
        let rho = rho.min(0.999_999);
        Ok(((1.0 - rho).max(1e-12), 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::splitting::NaturalSsorSplitting;
    use mspcg_coloring::Coloring;
    use mspcg_sparse::CooMatrix;

    /// Red/black 1-D Laplacian, already permuted into two color blocks.
    fn rb_laplacian(n: usize) -> (CsrMatrix, Partition) {
        let mut a = CooMatrix::new(n, n);
        for i in 0..n {
            a.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                a.push_sym(i, i + 1, -1.0).unwrap();
            }
        }
        let a = a.to_csr();
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let coloring = Coloring::from_labels(labels, 2).unwrap();
        let ord = coloring.ordering();
        let b = ord.permute_matrix(&a).unwrap();
        (b, ord.partition)
    }

    #[test]
    fn new_rejects_coupling_inside_block() {
        // Natural-ordered Laplacian with a single block: rows couple inside.
        let mut c = CooMatrix::new(4, 4);
        for i in 0..4 {
            c.push(i, i, 2.0).unwrap();
            if i + 1 < 4 {
                c.push_sym(i, i + 1, -1.0).unwrap();
            }
        }
        let a = c.to_csr();
        let p = Partition::single(4);
        assert!(matches!(
            MulticolorSsor::new(a, p, 1.0),
            Err(SparseError::InvalidPartition { .. })
        ));
    }

    #[test]
    fn new_rejects_missing_diagonal() {
        let mut c = CooMatrix::new(2, 2);
        c.push_sym(0, 1, -1.0).unwrap();
        c.push(0, 0, 2.0).unwrap(); // row 1 has no diagonal
        let a = c.to_csr();
        let p = Partition::from_sizes(&[1, 1]).unwrap();
        assert!(matches!(
            MulticolorSsor::new(a, p, 1.0),
            Err(SparseError::ZeroDiagonal { row: 1 })
        ));
    }

    #[test]
    fn shared_handles_are_not_cloned() {
        let (a, p) = rb_laplacian(8);
        let a = Arc::new(a);
        let p = Arc::new(p);
        let mc = MulticolorSsor::new(Arc::clone(&a), Arc::clone(&p), 1.0).unwrap();
        assert!(Arc::ptr_eq(mc.matrix_arc(), &a));
        assert!(Arc::ptr_eq(mc.colors_arc(), &p));
        // Two splittings over the same system share the same storage.
        let mc2 = MulticolorSsor::new(Arc::clone(&a), Arc::clone(&p), 1.5).unwrap();
        assert!(Arc::ptr_eq(mc.matrix_arc(), mc2.matrix_arc()));
    }

    #[test]
    fn step_matches_natural_ssor_on_same_matrix() {
        // On the *permuted* matrix, natural-order SSOR and multicolor SSOR
        // are the same iteration (colors are contiguous ascending blocks) —
        // up to the skipped idempotent last-color backward update at ω = 1.
        let (a, p) = rb_laplacian(8);
        let mc = MulticolorSsor::new(a.clone(), p, 1.0).unwrap();
        let nat = NaturalSsorSplitting::new(&a, 1.0).unwrap();
        let b: Vec<f64> = (0..8).map(|i| (i as f64).sin()).collect();
        let mut x1 = vec![0.25; 8];
        let mut x2 = x1.clone();
        mc.step(1.0, &b, &mut x1);
        nat.step(1.0, &b, &mut x2);
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-13, "{u} vs {v}");
        }
    }

    #[test]
    fn step_matches_natural_ssor_with_omega() {
        let (a, p) = rb_laplacian(9);
        let mc = MulticolorSsor::new(a.clone(), p, 1.4).unwrap();
        let nat = NaturalSsorSplitting::new(&a, 1.4).unwrap();
        let b: Vec<f64> = (0..9).map(|i| 1.0 + i as f64).collect();
        let mut x1 = vec![0.0; 9];
        let mut x2 = vec![0.0; 9];
        for _ in 0..3 {
            mc.step(1.0, &b, &mut x1);
            nat.step(1.0, &b, &mut x2);
        }
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-12, "{u} vs {v}");
        }
    }

    #[test]
    fn cached_msolve_equals_generic_msolve() {
        // Algorithm 2's auxiliary-vector path must agree with the naive
        // "m independent full steps" Horner evaluation.
        let (a, p) = rb_laplacian(10);
        for omega in [1.0, 0.8, 1.5] {
            let mc = MulticolorSsor::new(a.clone(), p.clone(), omega).unwrap();
            let r: Vec<f64> = (0..10).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
            for alphas in [vec![1.0], vec![1.0, 1.0, 1.0], vec![0.5, 2.0, -0.25, 1.25]] {
                let mut z_fast = vec![0.0; 10];
                mc.msolve(&alphas, &r, &mut z_fast);
                // Generic path: default trait implementation via step().
                let mut z_ref = vec![0.0; 10];
                let m = alphas.len();
                for s in 1..=m {
                    mc.step(alphas[m - s], &r, &mut z_ref);
                }
                for (u, v) in z_fast.iter().zip(&z_ref) {
                    assert!(
                        (u - v).abs() < 1e-12,
                        "omega {omega}, alphas {alphas:?}: {u} vs {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn msolve_ignores_stale_output_buffer() {
        // The fused first sweep must not read z or the cache: poisoning
        // both beforehand may not change the result.
        let (a, p) = rb_laplacian(10);
        let mc = MulticolorSsor::new(a, p, 1.3).unwrap();
        let r: Vec<f64> = (0..10).map(|i| (i as f64 * 0.9).cos()).collect();
        let alphas = [1.0, -0.5, 2.0];
        let mut z1 = vec![0.0; 10];
        mc.msolve(&alphas, &r, &mut z1);
        let mut z2 = vec![f64::MAX; 10];
        mc.y.lock().unwrap().fill(f64::NAN);
        mc.msolve(&alphas, &r, &mut z2);
        assert_eq!(z1, z2);
    }

    #[test]
    fn msolve_is_linear_in_r() {
        let (a, p) = rb_laplacian(8);
        let mc = MulticolorSsor::new(a, p, 1.0).unwrap();
        let alphas = [1.0, 2.0, 0.5];
        let r1: Vec<f64> = (0..8).map(|i| (i as f64).cos()).collect();
        let r2: Vec<f64> = (0..8).map(|i| (i as f64 * 0.3).sin()).collect();
        let rsum: Vec<f64> = r1.iter().zip(&r2).map(|(a, b)| a + b).collect();
        let mut z1 = vec![0.0; 8];
        let mut z2 = vec![0.0; 8];
        let mut zs = vec![0.0; 8];
        mc.msolve(&alphas, &r1, &mut z1);
        mc.msolve(&alphas, &r2, &mut z2);
        mc.msolve(&alphas, &rsum, &mut zs);
        for i in 0..8 {
            assert!((zs[i] - z1[i] - z2[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn preconditioner_matrix_is_symmetric() {
        // M⁻¹ = p(G) P⁻¹ must be symmetric: check e_iᵀ M⁻¹ e_j == e_jᵀ M⁻¹ e_i.
        let (a, p) = rb_laplacian(6);
        let mc = MulticolorSsor::new(a, p, 1.0).unwrap();
        let alphas = [1.0, 3.0, -0.5];
        let n = 6;
        let mut minv = vec![vec![0.0; n]; n];
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            let mut z = vec![0.0; n];
            mc.msolve(&alphas, &e, &mut z);
            for i in 0..n {
                minv[i][j] = z[i];
            }
        }
        for i in 0..n {
            for j in 0..n {
                assert!(
                    (minv[i][j] - minv[j][i]).abs() < 1e-12,
                    "asymmetry at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn m_steps_reduce_stationary_error() {
        let (a, p) = rb_laplacian(12);
        let mc = MulticolorSsor::new(a.clone(), p, 1.0).unwrap();
        let x_true: Vec<f64> = (0..12).map(|i| (i as f64 * 0.4).cos()).collect();
        let r = a.mul_vec(&x_true);
        let err = |m: usize| -> f64 {
            let mut z = vec![0.0; 12];
            mc.msolve(&vec![1.0; m], &r, &mut z);
            z.iter()
                .zip(&x_true)
                .map(|(u, v)| (u - v).abs())
                .fold(0.0, f64::max)
        };
        let e1 = err(1);
        let e3 = err(3);
        let e6 = err(6);
        assert!(e3 < e1 && e6 < e3, "{e1} {e3} {e6}");
    }

    #[test]
    fn spectrum_interval_upper_is_one() {
        let (a, p) = rb_laplacian(16);
        let mc = MulticolorSsor::new(a, p, 1.0).unwrap();
        let (lo, hi) = mc.spectrum_interval(80).unwrap();
        assert_eq!(hi, 1.0);
        assert!(lo > 0.0 && lo < 1.0);
    }

    #[test]
    fn offdiag_ops_count() {
        let (a, p) = rb_laplacian(8);
        let nnz = a.nnz();
        let mc = MulticolorSsor::new(a, p, 1.0).unwrap();
        assert_eq!(mc.offdiag_ops_per_step(), nnz - 8);
    }

    /// Parallel sweeps must agree bitwise with the serial path across
    /// thread counts — the SSOR leg of the determinism contract. The
    /// problem is sized past the parallel threshold.
    #[test]
    fn msolve_is_thread_count_insensitive() {
        let (a, p) = rb_laplacian(40_000);
        let mc = MulticolorSsor::new(a, p, 1.0).unwrap();
        let r: Vec<f64> = (0..40_000)
            .map(|i| ((i * 29 + 13) % 89) as f64 * 0.02 - 0.9)
            .collect();
        let alphas = [1.0, 0.75, 1.25];
        let before = par::max_threads();
        par::set_max_threads(1);
        let mut z1 = vec![0.0; 40_000];
        mc.msolve(&alphas, &r, &mut z1);
        for t in [2usize, 4, 8] {
            par::set_max_threads(t);
            let mut zt = vec![0.0; 40_000];
            mc.msolve(&alphas, &r, &mut zt);
            assert!(
                z1.iter().zip(&zt).all(|(u, v)| u.to_bits() == v.to_bits()),
                "msolve differs at t = {t}"
            );
        }
        par::set_max_threads(before);
    }
}
