//! Cost model and spectral analysis — Eq. (4.1), inequality (4.2), and the
//! κ(M⁻¹K)-vs-m study backing §2.1.
//!
//! The paper models the execution time of the m-step method as
//!
//! ```text
//! T_m = N_m (A + m·B)                                  (4.1)
//! ```
//!
//! where `N_m` is the iteration count, `A` the cost of one outer CG
//! iteration and `B` the cost of one preconditioner step. Taking `m+1`
//! steps instead of `m` is beneficial iff either
//!
//! 1. `(m+1)·N_{m+1} − m·N_m < 0` (fewer total inner steps), or
//! 2. `B/A < (N_m − N_{m+1}) / ((m+1)·N_{m+1} − m·N_m)`      (4.2)
//!
//! — the crossover the paper evaluates for m = 9 → 10 on the CYBER.

use crate::preconditioner::Preconditioner;
use mspcg_sparse::{CsrMatrix, SparseError};

/// Machine constants of Eq. (4.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// `A`: time of one outer CG iteration (SpMV + 2 inner products +
    /// vector updates).
    pub a: f64,
    /// `B`: time of one preconditioner step (one multicolor SOR sweep).
    pub b: f64,
}

impl CostModel {
    /// Predicted time `T_m = N_m (A + m B)`.
    pub fn time(&self, m: usize, n_m: usize) -> f64 {
        n_m as f64 * (self.a + m as f64 * self.b)
    }

    /// The machine's `B/A` ratio (left side of inequality (4.2)-(2)).
    pub fn b_over_a(&self) -> f64 {
        self.b / self.a
    }
}

/// Outcome of the (4.2) test for one m → m+1 transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepDecision {
    /// Condition (1): total inner steps decrease.
    pub inner_loops_decrease: bool,
    /// Left side of condition (2): the machine ratio `B/A`.
    pub lhs: f64,
    /// Right side of condition (2):
    /// `(N_m − N_{m+1}) / ((m+1)N_{m+1} − mN_m)` (`∞` when condition (1)
    /// already holds).
    pub rhs: f64,
    /// Whether taking `m+1` steps is predicted to beat `m` steps.
    pub beneficial: bool,
}

/// Evaluate inequality (4.2) for the transition `m → m+1`.
///
/// # Panics
/// Panics if `n_m1 > n_m` (the paper's assumption `N_{m+1} ≤ N_m` — callers
/// should not ask about transitions that *increase* the iteration count;
/// those are never beneficial).
pub fn step_increase_beneficial(
    m: usize,
    n_m: usize,
    n_m1: usize,
    model: CostModel,
) -> StepDecision {
    assert!(
        n_m1 <= n_m,
        "inequality (4.2) assumes N_(m+1) <= N_m ({n_m1} > {n_m})"
    );
    let s = (m as f64 + 1.0) * n_m1 as f64 - m as f64 * n_m as f64;
    let delta = n_m as f64 - n_m1 as f64;
    if s < 0.0 {
        return StepDecision {
            inner_loops_decrease: true,
            lhs: model.b_over_a(),
            rhs: f64::INFINITY,
            beneficial: true,
        };
    }
    if s == 0.0 {
        // Equal inner-loop totals: m+1 wins iff it saves outer iterations.
        return StepDecision {
            inner_loops_decrease: false,
            lhs: model.b_over_a(),
            rhs: f64::INFINITY,
            beneficial: delta > 0.0,
        };
    }
    let rhs = delta / s;
    StepDecision {
        inner_loops_decrease: false,
        lhs: model.b_over_a(),
        rhs,
        beneficial: model.b_over_a() < rhs,
    }
}

/// Classical CG iteration bound: to reduce the energy-norm error by `eps`,
/// CG needs at most `⌈√κ · ln(2/eps) / 2⌉` iterations. Applied to
/// `κ(M_m⁻¹K)` this links the §2.1 condition-number theory to the observed
/// Table-2 iteration counts (the bound is pessimistic — CG exploits
/// eigenvalue clustering — but the *ratios* across m track well).
///
/// # Panics
/// Panics for nonpositive `kappa` or `eps` outside `(0, 1)`.
pub fn cg_iteration_bound(kappa: f64, eps: f64) -> usize {
    assert!(kappa >= 1.0, "condition number must be >= 1, got {kappa}");
    assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1), got {eps}");
    (kappa.sqrt() * (2.0 / eps).ln() / 2.0).ceil() as usize
}

/// Pick the time-minimizing m from measured `(m, N_m)` pairs under a cost
/// model. Returns `(m, predicted_time)`.
///
/// # Panics
/// Panics on an empty slice.
pub fn optimal_m(counts: &[(usize, usize)], model: CostModel) -> (usize, f64) {
    assert!(
        !counts.is_empty(),
        "optimal_m needs at least one data point"
    );
    counts
        .iter()
        .map(|&(m, n)| (m, model.time(m, n)))
        .min_by(|x, y| x.1.partial_cmp(&y.1).unwrap())
        .unwrap()
}

/// Spectral condition number of the preconditioned operator `M⁻¹K`,
/// computed *exactly* (dense) via the symmetric similarity
/// `S = Lᵀ M⁻¹ L`, `K = L Lᵀ` — `σ(S) = σ(M⁻¹K)` and `S` is symmetric, so
/// the cyclic Jacobi eigensolver applies.
///
/// O(n³); intended for the small plates of the condition-number experiment
/// (n ≲ 500).
///
/// # Errors
/// Propagates Cholesky and eigensolver failures;
/// [`SparseError::NotPositiveDefinite`] if the preconditioned spectrum is
/// not strictly positive (indefinite `M`).
pub fn preconditioned_condition_number(
    k: &CsrMatrix,
    pre: &impl Preconditioner,
) -> Result<f64, SparseError> {
    let spectrum = preconditioned_spectrum(k, pre)?;
    let (lo, hi) = (spectrum[0], spectrum[spectrum.len() - 1]);
    if lo <= 0.0 {
        return Err(SparseError::NotPositiveDefinite {
            pivot: 0,
            value: lo,
        });
    }
    Ok(hi / lo)
}

/// Full (sorted ascending) spectrum of `M⁻¹K` by the same dense method.
///
/// # Errors
/// Propagates Cholesky and eigensolver failures.
pub fn preconditioned_spectrum(
    k: &CsrMatrix,
    pre: &impl Preconditioner,
) -> Result<Vec<f64>, SparseError> {
    let n = k.rows();
    if pre.dim() != n {
        return Err(SparseError::ShapeMismatch {
            left: (n, n),
            right: (pre.dim(), pre.dim()),
        });
    }
    let chol = k.to_dense().cholesky()?;
    let l = chol.l_matrix();
    // C = M⁻¹ L, column by column.
    let mut c = mspcg_sparse::DenseMatrix::zeros(n, n);
    let mut col = vec![0.0; n];
    let mut z = vec![0.0; n];
    for j in 0..n {
        for (i, item) in col.iter_mut().enumerate() {
            *item = l[(i, j)];
        }
        pre.apply(&col, &mut z);
        for (i, &v) in z.iter().enumerate() {
            c[(i, j)] = v;
        }
    }
    // S = Lᵀ C, symmetrized against rounding.
    let mut s = l.transpose().mul_mat(&c);
    for i in 0..n {
        for j in (i + 1)..n {
            let avg = 0.5 * (s[(i, j)] + s[(j, i)]);
            s[(i, j)] = avg;
            s[(j, i)] = avg;
        }
    }
    s.sym_eigenvalues()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mstep::MStepSsorPreconditioner;
    use crate::preconditioner::IdentityPreconditioner;
    use mspcg_coloring::Coloring;
    use mspcg_sparse::{CooMatrix, Partition};

    fn rb(n: usize) -> (CsrMatrix, Partition) {
        let mut a = CooMatrix::new(n, n);
        for i in 0..n {
            a.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                a.push_sym(i, i + 1, -1.0).unwrap();
            }
        }
        let a = a.to_csr();
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let ord = Coloring::from_labels(labels, 2).unwrap().ordering();
        (ord.permute_matrix(&a).unwrap(), ord.partition)
    }

    #[test]
    fn cost_model_time_is_affine_in_m() {
        let model = CostModel { a: 2.0, b: 0.5 };
        assert_eq!(model.time(0, 100), 200.0);
        assert_eq!(model.time(4, 50), 50.0 * 4.0);
        assert_eq!(model.b_over_a(), 0.25);
    }

    #[test]
    fn condition_one_dominates() {
        // N: 100 -> 40 at m = 1 -> 2: 2·40 − 1·100 = −20 < 0.
        let d = step_increase_beneficial(1, 100, 40, CostModel { a: 1.0, b: 100.0 });
        assert!(d.inner_loops_decrease);
        assert!(d.beneficial);
    }

    #[test]
    fn condition_two_crossover() {
        // N: 100 -> 80 at m = 4 -> 5: S = 5·80 − 4·100 = 0? no: 400−400 = 0.
        let d = step_increase_beneficial(4, 100, 80, CostModel { a: 1.0, b: 1.0 });
        assert!(d.beneficial); // equal inner loops, fewer outer iterations

        // N: 100 -> 90 at m = 4 -> 5: S = 450 − 400 = 50, Δ = 10, rhs = 0.2.
        let cheap = step_increase_beneficial(4, 100, 90, CostModel { a: 1.0, b: 0.1 });
        assert!(cheap.beneficial); // B/A = 0.1 < 0.2
        let dear = step_increase_beneficial(4, 100, 90, CostModel { a: 1.0, b: 0.5 });
        assert!(!dear.beneficial); // B/A = 0.5 > 0.2
        assert!((dear.rhs - 0.2).abs() < 1e-12);
    }

    #[test]
    fn optimal_m_matches_brute_force() {
        let counts = [(0usize, 271usize), (1, 111), (2, 77), (3, 61), (4, 65)];
        let model = CostModel { a: 1.0, b: 0.6 };
        let (m_star, t_star) = optimal_m(&counts, model);
        let brute: Vec<f64> = counts.iter().map(|&(m, n)| model.time(m, n)).collect();
        let best = brute
            .iter()
            .enumerate()
            .min_by(|x, y| x.1.partial_cmp(y.1).unwrap())
            .unwrap();
        assert_eq!(counts[best.0].0, m_star);
        assert!((t_star - best.1).abs() < 1e-12);
    }

    #[test]
    fn identity_preconditioner_recovers_kappa_of_k() {
        let (a, _) = rb(12);
        let id = IdentityPreconditioner::new(12);
        let kappa_pre = preconditioned_condition_number(&a, &id).unwrap();
        let kappa_direct = a.to_dense().sym_condition_number().unwrap();
        assert!((kappa_pre - kappa_direct).abs() / kappa_direct < 1e-8);
    }

    #[test]
    fn condition_number_decreases_with_m() {
        let (a, p) = rb(24);
        let mut prev = f64::INFINITY;
        for m in 1..=4 {
            let pre = MStepSsorPreconditioner::unparametrized(&a, &p, m).unwrap();
            let kappa = preconditioned_condition_number(&a, &pre).unwrap();
            assert!(kappa < prev, "m = {m}: {kappa} !< {prev}");
            assert!(kappa >= 1.0 - 1e-9);
            prev = kappa;
        }
    }

    #[test]
    fn improvement_ratio_bounded_by_m() {
        // Adams 1982: κ(M₁⁻¹K)/κ(M_m⁻¹K) ≤ m (asymptotically). Allow a
        // small slack for finite problems.
        let (a, p) = rb(24);
        let k1 = {
            let pre = MStepSsorPreconditioner::unparametrized(&a, &p, 1).unwrap();
            preconditioned_condition_number(&a, &pre).unwrap()
        };
        for m in 2..=5 {
            let pre = MStepSsorPreconditioner::unparametrized(&a, &p, m).unwrap();
            let km = preconditioned_condition_number(&a, &pre).unwrap();
            assert!(
                k1 / km <= m as f64 * 1.1,
                "m = {m}: ratio {} exceeds bound",
                k1 / km
            );
        }
    }

    #[test]
    fn preconditioned_spectrum_clusters_toward_one() {
        let (a, p) = rb(16);
        let pre = MStepSsorPreconditioner::parametrized(&a, &p, 3).unwrap();
        let spec = preconditioned_spectrum(&a, &pre).unwrap();
        assert!(spec[0] > 0.0);
        // All eigenvalues within (0, ~1.5] and the bulk near 1.
        assert!(spec[spec.len() - 1] < 2.0);
    }

    #[test]
    #[should_panic(expected = "assumes")]
    fn increasing_iteration_count_panics() {
        step_increase_beneficial(1, 50, 60, CostModel { a: 1.0, b: 1.0 });
    }

    #[test]
    fn iteration_bound_shrinks_like_sqrt_kappa() {
        let b1 = cg_iteration_bound(100.0, 1e-6);
        let b2 = cg_iteration_bound(400.0, 1e-6);
        assert!(b2 >= 2 * b1 - 2 && b2 <= 2 * b1 + 2, "{b1} vs {b2}");
        assert_eq!(cg_iteration_bound(1.0, 0.5), 1);
    }

    #[test]
    fn iteration_bound_dominates_measured_iterations() {
        // The bound must upper-bound real CG behaviour on the
        // preconditioned operator (eigenvalue clustering only helps).
        use crate::pcg::{pcg_solve, PcgOptions, StoppingCriterion};
        let (a, p) = rb(32);
        let rhs: Vec<f64> = (0..32).map(|i| ((i % 9) as f64) - 4.0).collect();
        for m in [1usize, 2, 3] {
            let pre = MStepSsorPreconditioner::unparametrized(&a, &p, m).unwrap();
            let kappa = preconditioned_condition_number(&a, &pre).unwrap();
            let eps = 1e-8;
            let sol = pcg_solve(
                &a,
                &rhs,
                &pre,
                &PcgOptions {
                    tol: eps,
                    criterion: StoppingCriterion::RelativeResidual,
                    ..Default::default()
                },
            )
            .unwrap();
            let bound = cg_iteration_bound(kappa, eps);
            assert!(
                sol.iterations <= bound,
                "m = {m}: {} iterations > bound {bound} (kappa {kappa})",
                sol.iterations
            );
        }
    }

    #[test]
    #[should_panic(expected = "condition number")]
    fn iteration_bound_rejects_bad_kappa() {
        cg_iteration_bound(0.5, 1e-6);
    }
}
