//! Gauss–Legendre quadrature.
//!
//! The least-squares parametrization of §2.2 minimizes a weighted integral
//! of the residual polynomial over the spectral interval. The integrands
//! are polynomials of degree ≤ 2m + 2, so an n-point Gauss–Legendre rule
//! with `2n − 1 ≥ 2m + 2` integrates them *exactly*; we use a generous rule
//! so the normal equations are exact up to rounding.
//!
//! Nodes are computed by Newton iteration on the Legendre polynomial with
//! the classical Chebyshev-based initial guess — no tables, any order.

/// Nodes and weights of the `n`-point Gauss–Legendre rule on `[−1, 1]`.
///
/// # Panics
/// Panics if `n == 0`.
pub fn gauss_legendre(n: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(n > 0, "quadrature order must be positive");
    let mut nodes = vec![0.0; n];
    let mut weights = vec![0.0; n];
    let m = n.div_ceil(2);
    for i in 0..m {
        // Initial guess: Chebyshev-like approximation of the i-th root.
        let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
        // Newton iteration on P_n(x).
        for _ in 0..100 {
            let (p, dp) = legendre_and_derivative(n, x);
            let dx = p / dp;
            x -= dx;
            if dx.abs() < 1e-15 {
                break;
            }
        }
        let (_, dp) = legendre_and_derivative(n, x);
        let w = 2.0 / ((1.0 - x * x) * dp * dp);
        nodes[i] = -x;
        nodes[n - 1 - i] = x;
        weights[i] = w;
        weights[n - 1 - i] = w;
    }
    if n % 2 == 1 {
        // Center point of odd rules is exactly 0.
        nodes[n / 2] = 0.0;
        let (_, dp) = legendre_and_derivative(n, 0.0);
        weights[n / 2] = 2.0 / (dp * dp);
    }
    (nodes, weights)
}

/// `(P_n(x), P_n'(x))` via the three-term recurrence.
fn legendre_and_derivative(n: usize, x: f64) -> (f64, f64) {
    let mut p0 = 1.0f64;
    let mut p1 = x;
    if n == 0 {
        return (1.0, 0.0);
    }
    for k in 2..=n {
        let k = k as f64;
        let p2 = ((2.0 * k - 1.0) * x * p1 - (k - 1.0) * p0) / k;
        p0 = p1;
        p1 = p2;
    }
    // P_n'(x) = n (x P_n − P_{n−1}) / (x² − 1).
    let dp = if (x * x - 1.0).abs() < 1e-300 {
        // Endpoint derivative: n(n+1)/2 with sign.
        let nn = n as f64;
        x.signum().powi(n as i32 + 1) * nn * (nn + 1.0) / 2.0
    } else {
        n as f64 * (x * p1 - p0) / (x * x - 1.0)
    };
    (p1, dp)
}

/// Integrate `f` over `[a, b]` with the `n`-point rule.
///
/// # Panics
/// Panics if `n == 0` or `b < a`.
pub fn integrate<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, n: usize) -> f64 {
    assert!(b >= a, "inverted integration interval");
    let (nodes, weights) = gauss_legendre(n);
    let c = 0.5 * (a + b);
    let h = 0.5 * (b - a);
    let mut s = 0.0;
    for (x, w) in nodes.iter().zip(&weights) {
        s += w * f(c + h * x);
    }
    s * h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_two() {
        for n in [1usize, 2, 3, 5, 8, 16, 33, 64] {
            let (_, w) = gauss_legendre(n);
            let s: f64 = w.iter().sum();
            assert!((s - 2.0).abs() < 1e-13, "n = {n}: {s}");
        }
    }

    #[test]
    fn nodes_are_symmetric_and_sorted() {
        let (x, _) = gauss_legendre(7);
        for i in 0..7 {
            assert!((x[i] + x[6 - i]).abs() < 1e-14);
            if i > 0 {
                assert!(x[i] > x[i - 1]);
            }
        }
    }

    #[test]
    fn exact_for_polynomials_up_to_degree_2n_minus_1() {
        // n = 4 integrates degree 7 exactly: ∫₀¹ x⁷ dx = 1/8.
        let v = integrate(|x| x.powi(7), 0.0, 1.0, 4);
        assert!((v - 0.125).abs() < 1e-14, "{v}");
        // Degree 8 with n = 4 is NOT exact — sanity that the bound is tight.
        let v8 = integrate(|x| x.powi(8), 0.0, 1.0, 4);
        assert!((v8 - 1.0 / 9.0).abs() > 1e-9);
        let v8b = integrate(|x| x.powi(8), 0.0, 1.0, 5);
        assert!((v8b - 1.0 / 9.0).abs() < 1e-14);
    }

    #[test]
    fn integrates_transcendental_accurately() {
        let v = integrate(f64::sin, 0.0, std::f64::consts::PI, 24);
        assert!((v - 2.0).abs() < 1e-12, "{v}");
    }

    #[test]
    fn one_point_rule_is_midpoint() {
        let (x, w) = gauss_legendre(1);
        assert_eq!(x, vec![0.0]);
        assert!((w[0] - 2.0).abs() < 1e-15);
    }

    #[test]
    fn high_order_rules_stay_stable() {
        let (x, w) = gauss_legendre(128);
        assert!(x.iter().all(|v| v.is_finite() && v.abs() < 1.0));
        assert!(w.iter().all(|v| v.is_finite() && *v > 0.0));
    }
}
