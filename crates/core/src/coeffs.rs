//! Parametrization of the m-step preconditioner (§2.2, Table 1).
//!
//! With `G = P⁻¹Q` and `t` ranging over the spectrum of `P⁻¹K ⊆ [λ₁, λₙ]`,
//! the preconditioned operator's eigenvalues are
//!
//! ```text
//! q(t) = t · Σ_{i=0}^{m−1} αᵢ (1 − t)ⁱ
//! ```
//!
//! Johnson–Micchelli–Paul (1983) choose the `αᵢ` so `q(t) ≈ 1` on
//! `[λ₁, λₙ]` under either a **least-squares** or a **min-max** criterion;
//! Adams applies the same idea to arbitrary splittings (SSOR in
//! particular). Unparametrized means `αᵢ = 1`, i.e. plain m-step stationary
//! iteration.
//!
//! * [`least_squares_alphas`] — minimizes `∫ w(t) (1 − q(t))² dt` by
//!   solving the (tiny, SPD) normal equations with exact Gauss–Legendre
//!   quadrature and dense Cholesky,
//! * [`minimax_alphas`] — the Chebyshev min-max solution
//!   `1 − q(t) = T_m(μ(t)) / T_m(μ(0))`, expanded into the `(1 − t)ⁱ`
//!   basis by interpolation,
//! * [`residual_at`] / [`spd_margin`] — evaluation helpers used by tests
//!   and by the SPD validity check of §2.1 (necessary and sufficient: the
//!   symbol `σ(g) = Σ αᵢ gⁱ` must stay positive on the spectrum of `G`).

use crate::quadrature::gauss_legendre;
use mspcg_sparse::{DenseMatrix, SparseError};

/// Weight for the least-squares criterion.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Weight {
    /// `w(t) = 1`.
    #[default]
    Uniform,
    /// `w(t) = t^k` — emphasizes the high end of the spectrum; `k = 1` is
    /// the classical Jacobi-weighted choice of Johnson–Micchelli–Paul.
    Power(u32),
}

impl Weight {
    fn eval(self, t: f64) -> f64 {
        match self {
            Weight::Uniform => 1.0,
            Weight::Power(k) => t.powi(k as i32),
        }
    }
}

/// Least-squares coefficients: minimize `∫_{λ₁}^{λₙ} w(t)(1 − q(t))² dt`
/// over `q(t) = t Σ αᵢ (1−t)ⁱ`, degree `m − 1` polynomial `p`.
///
/// # Errors
/// * [`SparseError::InvalidPartition`] for `m == 0` or a degenerate
///   interval,
/// * [`SparseError::NotPositiveDefinite`] if the normal equations are
///   numerically singular (interval too small for the requested degree).
pub fn least_squares_alphas(
    m: usize,
    interval: (f64, f64),
    weight: Weight,
) -> Result<Vec<f64>, SparseError> {
    validate(m, interval)?;
    let (lo, hi) = interval;
    // Basis φᵢ(t) = t(1−t)ⁱ. Normal equations: A αᵃ = b with
    // A_ik = ∫ w φᵢ φ_k, b_i = ∫ w φᵢ. Integrands are polynomials of degree
    // ≤ 2m + 2 (+ weight power): exact with enough Gauss points.
    let quad_n = (2 * m + 8).max(16);
    let (nodes, weights) = gauss_legendre(quad_n);
    let c = 0.5 * (lo + hi);
    let h = 0.5 * (hi - lo);

    let mut a = DenseMatrix::zeros(m, m);
    let mut b = vec![0.0; m];
    let mut phi = vec![0.0; m];
    for (x, w) in nodes.iter().zip(&weights) {
        let t = c + h * x;
        let wt = weight.eval(t) * w * h;
        let mut g = 1.0; // (1−t)^i
        for item in phi.iter_mut() {
            *item = t * g;
            g *= 1.0 - t;
        }
        for i in 0..m {
            b[i] += wt * phi[i];
            for k in 0..m {
                a[(i, k)] += wt * phi[i] * phi[k];
            }
        }
    }
    let chol = a.cholesky()?;
    Ok(chol.solve(&b))
}

/// Min-max (Chebyshev) coefficients: the residual
/// `1 − q(t) = T_m(μ(t)) / T_m(μ(0))`, `μ(t) = (λₙ + λ₁ − 2t)/(λₙ − λ₁)`,
/// is the minimal-∞-norm residual among degree-m polynomials with
/// `residual(0) = 1`. The resulting `q(t)/t` is expanded in the
/// `(1 − t)ⁱ` basis by solving an interpolation system at Chebyshev points.
///
/// # Errors
/// Same classes as [`least_squares_alphas`].
pub fn minimax_alphas(m: usize, interval: (f64, f64)) -> Result<Vec<f64>, SparseError> {
    validate(m, interval)?;
    let (lo, hi) = interval;
    let mu = |t: f64| (hi + lo - 2.0 * t) / (hi - lo);
    let tm0 = cheb_t(m, mu(0.0));
    if tm0.abs() < 1e-300 {
        return Err(SparseError::NotPositiveDefinite {
            pivot: 0,
            value: tm0,
        });
    }
    // p(t) = (1 − T_m(μ(t))/T_m(μ(0))) / t has degree m−1; interpolate at m
    // Chebyshev points of the interval (none of which is 0 since lo > 0).
    let mut ts = Vec::with_capacity(m);
    for k in 0..m {
        let theta = std::f64::consts::PI * (k as f64 + 0.5) / m as f64;
        ts.push(0.5 * (lo + hi) + 0.5 * (hi - lo) * theta.cos());
    }
    let mut v = DenseMatrix::zeros(m, m);
    let mut rhs = vec![0.0; m];
    for (r, &t) in ts.iter().enumerate() {
        let mut g = 1.0;
        for c in 0..m {
            v[(r, c)] = g;
            g *= 1.0 - t;
        }
        rhs[r] = (1.0 - cheb_t(m, mu(t)) / tm0) / t;
    }
    let lu = v.lu()?;
    Ok(lu.solve(&rhs))
}

/// Chebyshev polynomial `T_n(x)` (stable for `|x| > 1` via cosh form).
fn cheb_t(n: usize, x: f64) -> f64 {
    if x.abs() <= 1.0 {
        ((n as f64) * x.acos()).cos()
    } else {
        let s = x.signum();
        let y = x.abs();
        // T_n(x) = cosh(n·arccosh|x|)·sign(x)ⁿ.
        let t = ((n as f64) * (y + (y * y - 1.0).sqrt()).ln()).cosh();
        if n.is_multiple_of(2) {
            t
        } else {
            s * t
        }
    }
}

/// Residual `1 − q(t)` of a coefficient vector at `t`.
pub fn residual_at(alphas: &[f64], t: f64) -> f64 {
    1.0 - t * symbol_at(alphas, 1.0 - t)
}

/// The symbol `σ(g) = Σ αᵢ gⁱ` at `g` (Horner).
pub fn symbol_at(alphas: &[f64], g: f64) -> f64 {
    let mut s = 0.0;
    for &a in alphas.iter().rev() {
        s = s * g + a;
    }
    s
}

/// Minimum of the symbol `σ(g)` over `g ∈ [1 − λₙ, 1 − λ₁]` (dense
/// sampling). §2.1: the m-step preconditioner `M` is SPD **iff** this
/// margin is positive (given SPD `P`), so callers should reject
/// coefficient sets with a nonpositive margin.
pub fn spd_margin(alphas: &[f64], interval: (f64, f64)) -> f64 {
    let (lo, hi) = interval;
    let (glo, ghi) = (1.0 - hi, 1.0 - lo);
    let samples = 512;
    let mut min = f64::INFINITY;
    for k in 0..=samples {
        let g = glo + (ghi - glo) * k as f64 / samples as f64;
        min = min.min(symbol_at(alphas, g));
    }
    min
}

/// Maximum |residual| over the interval (dense sampling) — the quantity the
/// min-max criterion minimizes; used to compare criteria in tests/benches.
pub fn residual_sup(alphas: &[f64], interval: (f64, f64)) -> f64 {
    let (lo, hi) = interval;
    let samples = 512;
    let mut sup = 0.0f64;
    for k in 0..=samples {
        let t = lo + (hi - lo) * k as f64 / samples as f64;
        sup = sup.max(residual_at(alphas, t).abs());
    }
    sup
}

fn validate(m: usize, interval: (f64, f64)) -> Result<(), SparseError> {
    let (lo, hi) = interval;
    if m == 0 {
        return Err(SparseError::InvalidPartition {
            reason: "m must be at least 1".into(),
        });
    }
    if !(lo > 0.0 && hi > lo && hi.is_finite()) {
        return Err(SparseError::InvalidPartition {
            reason: format!("invalid spectral interval [{lo}, {hi}]"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SSOR_LIKE: (f64, f64) = (0.05, 1.0);
    const JACOBI_LIKE: (f64, f64) = (0.05, 1.95);

    #[test]
    fn m1_least_squares_is_projection_scalar() {
        // m = 1: q(t) = α₀ t; minimizing ∫ (1 − α₀t)² dt gives
        // α₀ = ∫t / ∫t² over the interval.
        let (lo, hi) = SSOR_LIKE;
        let a = least_squares_alphas(1, SSOR_LIKE, Weight::Uniform).unwrap();
        let num = (hi * hi - lo * lo) / 2.0;
        let den = (hi * hi * hi - lo * lo * lo) / 3.0;
        assert!((a[0] - num / den).abs() < 1e-12, "{a:?}");
    }

    #[test]
    fn closed_form_m2_on_unit_interval() {
        // On (0, 1] with uniform weight the m = 2 optimum has the closed
        // form derived from the shifted-Legendre kernel: α₀ = 2/3,
        // α₁ = 10/3 at interval [0, 1]. With lo → 0 we approach it.
        let a = least_squares_alphas(2, (1e-9, 1.0), Weight::Uniform).unwrap();
        assert!((a[0] - 2.0 / 3.0).abs() < 1e-5, "{a:?}");
        assert!((a[1] - 10.0 / 3.0).abs() < 1e-4, "{a:?}");
    }

    #[test]
    fn least_squares_beats_unparametrized_residual() {
        for m in 2..=6 {
            let a = least_squares_alphas(m, SSOR_LIKE, Weight::Uniform).unwrap();
            let ones = vec![1.0; m];
            // Compare the integral of squared residuals by sampling.
            let err = |al: &[f64]| -> f64 {
                let mut s = 0.0;
                for k in 0..=200 {
                    let t = SSOR_LIKE.0 + (SSOR_LIKE.1 - SSOR_LIKE.0) * k as f64 / 200.0;
                    s += residual_at(al, t).powi(2);
                }
                s
            };
            assert!(err(&a) < err(&ones), "m = {m}");
        }
    }

    #[test]
    fn minimax_residual_is_equioscillating_and_small() {
        let m = 4;
        let a = minimax_alphas(m, SSOR_LIKE).unwrap();
        let sup = residual_sup(&a, SSOR_LIKE);
        // Theoretical value: 1/T_m(μ(0)).
        let mu0 = (SSOR_LIKE.1 + SSOR_LIKE.0) / (SSOR_LIKE.1 - SSOR_LIKE.0);
        let expect = 1.0 / super::cheb_t(m, mu0);
        assert!((sup - expect).abs() < 1e-6, "sup {sup} vs {expect}");
    }

    #[test]
    fn minimax_beats_least_squares_in_sup_norm() {
        for m in 2..=6 {
            let ls = least_squares_alphas(m, JACOBI_LIKE, Weight::Uniform).unwrap();
            let mm = minimax_alphas(m, JACOBI_LIKE).unwrap();
            assert!(
                residual_sup(&mm, JACOBI_LIKE) <= residual_sup(&ls, JACOBI_LIKE) + 1e-12,
                "m = {m}"
            );
        }
    }

    #[test]
    fn parametrized_residual_shrinks_with_m() {
        let mut prev = f64::INFINITY;
        for m in 1..=8 {
            let a = minimax_alphas(m, SSOR_LIKE).unwrap();
            let sup = residual_sup(&a, SSOR_LIKE);
            assert!(sup < prev, "m = {m}: {sup} !< {prev}");
            prev = sup;
        }
    }

    #[test]
    fn spd_margin_positive_for_computed_coefficients() {
        for m in 1..=6 {
            let ls = least_squares_alphas(m, SSOR_LIKE, Weight::Uniform).unwrap();
            assert!(spd_margin(&ls, SSOR_LIKE) > 0.0, "LS m = {m}");
            let mm = minimax_alphas(m, SSOR_LIKE).unwrap();
            assert!(spd_margin(&mm, SSOR_LIKE) > 0.0, "MM m = {m}");
        }
    }

    #[test]
    fn unparametrized_margin_positive_on_ssor_interval() {
        // σ(g) = 1 + g + … + g^{m−1} > 0 on g ∈ [0, 1): always SPD for SSOR.
        for m in 1..=10 {
            assert!(spd_margin(&vec![1.0; m], SSOR_LIKE) > 0.0);
        }
    }

    #[test]
    fn unparametrized_even_m_can_fail_on_jacobi_interval() {
        // Known Dubois–Greenbaum–Rodrigue caveat: for the Jacobi splitting
        // with eigenvalues of G near −1 (t near 2), even m gives
        // σ(g) = 1 + g + … which can vanish: 1 + g = 0 at g = −1.
        let margin = spd_margin(&[1.0; 2], (0.01, 1.999));
        assert!(margin < 0.05, "margin {margin}");
    }

    #[test]
    fn weighted_fit_moves_accuracy_toward_high_end() {
        let m = 3;
        let uni = least_squares_alphas(m, JACOBI_LIKE, Weight::Uniform).unwrap();
        let pw = least_squares_alphas(m, JACOBI_LIKE, Weight::Power(2)).unwrap();
        let hi = JACOBI_LIKE.1;
        assert!(residual_at(&pw, hi).abs() <= residual_at(&uni, hi).abs() + 1e-9);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(least_squares_alphas(0, SSOR_LIKE, Weight::Uniform).is_err());
        assert!(least_squares_alphas(3, (0.0, 1.0), Weight::Uniform).is_err());
        assert!(least_squares_alphas(3, (0.5, 0.4), Weight::Uniform).is_err());
        assert!(minimax_alphas(0, SSOR_LIKE).is_err());
    }

    #[test]
    fn cheb_t_matches_recurrence_outside_unit_interval() {
        // T_3(x) = 4x³ − 3x.
        for x in [1.5f64, 2.0, -1.7, 0.3, -0.9] {
            let direct = 4.0 * x.powi(3) - 3.0 * x;
            assert!((super::cheb_t(3, x) - direct).abs() < 1e-10 * direct.abs().max(1.0));
        }
    }

    #[test]
    fn residual_at_zero_is_one() {
        // q(0) = 0 always: the residual polynomial is pinned at t = 0.
        for m in 1..=5 {
            let a = minimax_alphas(m, SSOR_LIKE).unwrap();
            assert!((residual_at(&a, 0.0) - 1.0).abs() < 1e-12);
        }
    }
}
