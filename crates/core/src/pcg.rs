//! Algorithm 1: the preconditioned conjugate gradient loop.
//!
//! Direct transcription of the paper's Algorithm 1 (Chandra 1978 form):
//!
//! ```text
//! r⁰ = f − K u⁰;  M r̂⁰ = r⁰;  p⁰ = r̂⁰
//! for k = 0, 1, …:
//!   αₖ = (r̂ᵏ, rᵏ) / (pᵏ, K pᵏ)
//!   u^{k+1} = uᵏ + αₖ pᵏ
//!   stop when ‖u^{k+1} − uᵏ‖∞ < ε          (step (3) of the paper)
//!   r^{k+1} = rᵏ − αₖ K pᵏ
//!   M r̂^{k+1} = r^{k+1}
//!   βₖ = (r̂^{k+1}, r^{k+1}) / (r̂ᵏ, rᵏ)
//!   p^{k+1} = r̂^{k+1} + βₖ pᵏ
//! ```
//!
//! The two inner products per iteration are the paper's motivating cost on
//! vector and array machines; [`PcgStats`] counts them so the machine
//! models in `mspcg-machine` can charge them faithfully.
//!
//! ## Iteration variants
//!
//! The classic loop above serializes its two inner products: `(p, Kp)`
//! must finish before `α`, and `(r̂, r)` — available only after the
//! preconditioner — before `β`. On a parallel machine each is a global
//! synchronization point. [`PcgVariant::SingleReduction`] runs the
//! **Chronopoulos–Gear** two-term recurrence instead: the iteration
//! carries `s = Kp` and `w = Kz` and obtains *both* scalars from **one
//! fused reduction phase** per iteration
//! ([`vecops::fused_dot3_norm`]: `γ = (r, z)`, `δ = (w, z)`, plus the
//! `(p, s)` breakdown guard and the stopping norm), with
//! `β = γ′/γ` and `α = γ′ / (δ − β·γ′/α_old)`. The recurrence has a
//! different-but-bounded rounding path, so the contract is: bitwise
//! deterministic across thread counts *within* the variant, and
//! classic-vs-single-reduction agreement to a relative-residual tolerance
//! (`tests/pcg_variants.rs`). When the recurrence breaks down
//! (`(p, s) ≤ 0` or a nonpositive reconstructed denominator) the solve
//! **falls back to the classic loop from the current iterate** instead of
//! erroring (recorded in [`PcgStats::fallbacks`]). Selection:
//! [`PcgOptions::variant`], with the validated `MSPCG_PCG_VARIANT`
//! environment override resolving [`PcgVariant::Auto`].
//!
//! [`PcgVariant::Pipelined`] goes one synchronization step further
//! (Ghysels–Vanroose): two extra recurrence carries (`q = M⁻¹s`, `K·q`)
//! and two recomputed auxiliaries (`mv = M⁻¹w`, `nv = K·mv`) rearrange
//! the iteration so the one fused reduction reads only vectors finished
//! *before* the preconditioner + SpMV — on the SPMD executor the
//! reduction is initiated (split-barrier arrive) before that heavy phase
//! and consumed (wait) after it, hiding its latency entirely. Same
//! breakdown-fallback contract, with stricter guards (see
//! `pipelined_loop`).
//!
//! [`PcgVariant::SStep`] is the endpoint of the synchronization-count
//! war: per *outer step* it builds an s-dimensional Krylov block with the
//! Chebyshev three-term basis recurrence (on cached eigenvalue bounds —
//! see [`sstep_loop`]), amortizes **all** inner products of those `s`
//! iterations into ONE fused Gram-matrix reduction phase, solves the
//! small `s×s` Gram system by a replicated dense Cholesky, and applies
//! `s` local update sub-steps — `1/s` reduction phases per iteration. In
//! exact arithmetic the block (conjugated against the previous direction
//! block, Chronopoulos–Gear style) reproduces `s` classic iterations;
//! in finite precision the basis can lose conditioning, so a breakdown
//! (nonpositive Cholesky pivot, non-finite Gram scalar) steps down warm
//! onto the Pipelined → SingleReduction → Classic ladder.
//!
//! Breakdown guards double as SPD validation: a nonpositive `(p, Kp)`
//! reveals an indefinite `K`, a nonpositive `(r̂, r)` an indefinite `M`;
//! both return typed errors instead of silently diverging.

use crate::preconditioner::{IdentityPreconditioner, Preconditioner};
use crate::recovery::{audit_due, diverged, replacement_bound, RecoveryPolicy};
use mspcg_sparse::lanczos::{lanczos_extremes, SpectralInterval};
use mspcg_sparse::{vecops, SparseError, SparseOp};

pub use mspcg_sparse::PcgVariant;

/// Convergence test selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoppingCriterion {
    /// `‖u^{k+1} − uᵏ‖∞ < ε` — the paper's test (cheap on the Finite
    /// Element Machine's flag network: no global reduction needed).
    #[default]
    DisplacementChange,
    /// `‖r^{k+1}‖₂ ≤ ε · ‖f‖₂` — the conventional modern test; costs one
    /// extra inner product per iteration.
    RelativeResidual,
}

/// Options for [`pcg_solve`].
#[derive(Debug, Clone, Copy)]
pub struct PcgOptions {
    /// Tolerance ε.
    pub tol: f64,
    /// Iteration budget.
    pub max_iterations: usize,
    /// Which convergence test to run.
    pub criterion: StoppingCriterion,
    /// Record the per-iteration criterion value in
    /// [`PcgSolution::history`].
    pub record_history: bool,
    /// Which iteration variant to run. [`PcgVariant::Auto`] (the default)
    /// resolves the validated `MSPCG_PCG_VARIANT` environment override and
    /// falls back to [`PcgVariant::Classic`].
    pub variant: PcgVariant,
    /// Detection/recovery policy: residual auditing with replacement, the
    /// recovery-ladder budget, and the `MSPCG_RESIDUAL_REPLACEMENT` /
    /// `MSPCG_AUDIT_PERIOD` override resolution. The default
    /// ([`crate::recovery::Toggle::Auto`]) audits only the drift-prone
    /// variants at tight tolerances; [`RecoveryPolicy::off`] pins the
    /// exact pre-recovery arithmetic and operation schedule.
    pub recovery: RecoveryPolicy,
}

impl Default for PcgOptions {
    fn default() -> Self {
        PcgOptions {
            tol: 1e-6,
            max_iterations: 50_000,
            criterion: StoppingCriterion::DisplacementChange,
            record_history: false,
            variant: PcgVariant::Auto,
            recovery: RecoveryPolicy::default(),
        }
    }
}

/// Operation counters (the quantities the machine cost models consume).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcgStats {
    /// Sparse matrix–vector products with `K`.
    pub spmv: usize,
    /// Inner products (global reductions).
    pub inner_products: usize,
    /// Fused **reduction phases** feeding the `α`/`β` recurrence: a phase
    /// is one sweep (one synchronization point on a parallel machine)
    /// regardless of how many scalars it produces. The classic loop
    /// performs two serialized phases per iteration (`(p, Kp)`, then
    /// `(r̂, r)`); the single-reduction variant performs **one**
    /// ([`vecops::fused_dot3_norm`]). Stopping-test norms are not counted:
    /// their partials ride the update kernels' existing phase (the paper's
    /// flag network).
    pub reduction_phases: usize,
    /// Preconditioner applications (`M r̂ = r` solves).
    pub precond_applications: usize,
    /// Total stationary steps inside the preconditioner
    /// (`applications × m`).
    pub precond_steps: usize,
    /// Recovery-ladder steps: a single-reduction or pipelined attempt
    /// whose guards fired (breakdown or detected corruption) handed the
    /// current iterate one rung down
    /// (Pipelined → SingleReduction → Classic) and this counter records
    /// it — the report "says `FALLBACK`" instead of hiding the rescue.
    pub fallbacks: usize,
    /// Residual audits performed: true-residual recomputations `f − K·u`
    /// (one extra SpMV each) compared against the recurrence residual.
    pub audits: usize,
    /// Residual replacements plus non-finite recovery restarts: times the
    /// carried vectors were re-derived from the current iterate, bounded
    /// by [`RecoveryPolicy::max_replacements`].
    pub replacements: usize,
    /// Non-finite reduction scalars detected by the fused-kernel checks
    /// (injected faults or genuine data corruption).
    pub faults_detected: usize,
}

/// Result of a (P)CG solve.
#[derive(Debug, Clone)]
pub struct PcgSolution {
    /// The final iterate.
    pub x: Vec<f64>,
    /// Iterations performed (the paper's `I` column).
    pub iterations: usize,
    /// Whether the stopping test fired within the budget.
    pub converged: bool,
    /// Final `‖u^{k+1} − uᵏ‖∞`.
    pub final_change: f64,
    /// Final `‖r‖₂ / ‖f‖₂`.
    pub final_relative_residual: f64,
    /// Per-iteration criterion values (empty unless requested).
    pub history: Vec<f64>,
    /// Operation counts.
    pub stats: PcgStats,
}

/// Allocation-free view of a solve's outcome, returned by
/// [`pcg_solve_into`] (the solution lives in the caller's buffer, the
/// history — if recorded — in the [`PcgWorkspace`]).
#[derive(Debug, Clone, Copy)]
pub struct PcgReport {
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the stopping test fired within the budget.
    pub converged: bool,
    /// Final `‖u^{k+1} − uᵏ‖∞`.
    pub final_change: f64,
    /// Final `‖r‖₂ / ‖f‖₂`.
    pub final_relative_residual: f64,
    /// Operation counts.
    pub stats: PcgStats,
}

/// Reusable scratch buffers for the PCG loop.
///
/// Algorithm 1 needs four working vectors (`r`, `r̂`, `p`, `Kp`); the
/// single-reduction variant carries one more (`w = Kz`; its second carried
/// vector `s = Kp` reuses the `Kp` slot, which that recurrence updates
/// instead of recomputing), and the pipelined variant four more (`q`,
/// `K·q`, `mv = M⁻¹w`, `nv = K·mv`). The one-shot entry points ([`pcg_solve`],
/// [`pcg_solve_from`]) allocate them per call; repeated solves over
/// systems of one size — the ω sweep, the condition scans, the Table 2/3
/// m sweeps — should construct one `PcgWorkspace` and call
/// [`pcg_solve_into`], whose iteration performs **no heap allocation**
/// after workspace construction for *any variant* (when history
/// recording is off; with it on, [`PcgWorkspace::reserve_history`]
/// preallocates the record too). The pipelined carries are sized by the
/// first pipelined solve — one warm-up allocation, so non-pipelined
/// workspaces never pay for them.
#[derive(Debug, Clone)]
pub struct PcgWorkspace {
    r: Vec<f64>,
    rhat: Vec<f64>,
    p: Vec<f64>,
    kp: Vec<f64>,
    /// `w = Kz` carry of the single-reduction variant (allocated up front
    /// so variant selection — including the env override — can never
    /// reintroduce a per-solve allocation).
    w: Vec<f64>,
    /// `q = M⁻¹s` direction carry of the pipelined variant. The four
    /// pipelined-only slots start **empty** (a classic or
    /// single-reduction workspace must not pay 4·n dead floats) and are
    /// sized by the first pipelined solve — a warm-up-once allocation,
    /// after which pipelined solves are as allocation free as the rest.
    q: Vec<f64>,
    /// `K·q` direction carry of the pipelined variant.
    zz: Vec<f64>,
    /// `mv = M⁻¹w` auxiliary of the pipelined variant (the heavy-phase
    /// product the overlapped reduction hides behind).
    mv: Vec<f64>,
    /// `nv = K·mv` auxiliary of the pipelined variant.
    nv: Vec<f64>,
    /// True-residual scratch of the audit pass (`aud = f − K·u`). Like
    /// the pipelined carries it starts empty and is sized by the first
    /// audited solve, so non-audited workspaces never pay for it.
    aud: Vec<f64>,
    /// s-step block storage: the basis block `V`, its image `A·V`, and
    /// the parity pair of direction blocks (`P`, `AP`, current and
    /// previous) — six flattened `s×n` column blocks. Starts empty and is
    /// sized by the first s-step solve, like the pipelined carries.
    sstep: Vec<f64>,
    /// Small dense s-step scratch: the Gram blocks `G1 = VᵀAV` and
    /// `G2 = AP_prevᵀV`, the coupling matrix `B`, the parity pair of
    /// Cholesky factors, and four `s`-long coefficient strips
    /// (`5s² + 4s` floats).
    sstep_small: Vec<f64>,
    /// Block width the s-step storage is sized for.
    sstep_s: usize,
    /// Basis-interval cache of the s-step rung: one spectral estimate per
    /// workspace × operator, reused by every subsequent s-step solve (and
    /// across basis degrees — the estimate is degree independent).
    /// Cleared on resize; bound accuracy affects only basis conditioning,
    /// so reuse across a parameter sweep on one system is always safe.
    pub(crate) sstep_interval: Option<SpectralInterval>,
    /// Preconditioner scratch (sized on first use from
    /// [`Preconditioner::scratch_len`]); lets the hot loop call
    /// [`Preconditioner::apply_with`], bypassing any internal lock.
    precond_scratch: Vec<f64>,
    history: Vec<f64>,
}

impl PcgWorkspace {
    /// Workspace for systems of dimension `n`.
    pub fn new(n: usize) -> Self {
        PcgWorkspace {
            r: vec![0.0; n],
            rhat: vec![0.0; n],
            p: vec![0.0; n],
            kp: vec![0.0; n],
            w: vec![0.0; n],
            q: Vec::new(),
            zz: Vec::new(),
            mv: Vec::new(),
            nv: Vec::new(),
            aud: Vec::new(),
            sstep: Vec::new(),
            sstep_small: Vec::new(),
            sstep_s: 0,
            sstep_interval: None,
            precond_scratch: Vec::new(),
            history: Vec::new(),
        }
    }

    /// Dimension the workspace is sized for.
    pub fn dim(&self) -> usize {
        self.r.len()
    }

    /// Resize for a different dimension (reallocates only when `n` grows
    /// past the current capacity).
    pub fn resize(&mut self, n: usize) {
        self.r.resize(n, 0.0);
        self.rhat.resize(n, 0.0);
        self.p.resize(n, 0.0);
        self.kp.resize(n, 0.0);
        self.w.resize(n, 0.0);
        // Pipelined-only and audit-only slots track the dimension only
        // once in use.
        if !self.q.is_empty() {
            self.ensure_pipelined(n);
        }
        if !self.aud.is_empty() {
            self.ensure_audit(n);
        }
        if !self.sstep.is_empty() {
            let s = self.sstep_s;
            self.sstep.resize(6 * s * n, 0.0);
        }
        // A different dimension means a different operator: the cached
        // basis interval no longer describes it.
        self.sstep_interval = None;
    }

    /// Size the four pipelined-only carries. Called by the first
    /// pipelined solve on this workspace (allocates once); afterwards a
    /// no-op, keeping the hot loop allocation free.
    fn ensure_pipelined(&mut self, n: usize) {
        self.q.resize(n, 0.0);
        self.zz.resize(n, 0.0);
        self.mv.resize(n, 0.0);
        self.nv.resize(n, 0.0);
    }

    /// Size the audit scratch vector. Called by the first audited solve
    /// on this workspace (allocates once); afterwards a no-op.
    fn ensure_audit(&mut self, n: usize) {
        self.aud.resize(n, 0.0);
    }

    /// Size the s-step block storage for width `s`. Called by the first
    /// s-step solve on this workspace (allocates once per `(n, s)`
    /// shape); afterwards a no-op, keeping the outer loop allocation
    /// free.
    fn ensure_sstep(&mut self, n: usize, s: usize) {
        if self.sstep_s != s || self.sstep.len() != 6 * s * n {
            self.sstep.resize(6 * s * n, 0.0);
            self.sstep_small.resize(5 * s * s + 4 * s, 0.0);
            self.sstep_s = s;
        }
    }

    /// Preallocate the history record so that solves with
    /// `record_history` stay allocation free up to `iters` iterations.
    pub fn reserve_history(&mut self, iters: usize) {
        self.history.reserve(iters);
    }

    /// Criterion history of the most recent [`pcg_solve_into`] call
    /// (empty unless `record_history` was set).
    pub fn history(&self) -> &[f64] {
        &self.history
    }
}

/// Solve `K u = f` by PCG from the zero initial guess.
///
/// ```
/// use mspcg_core::pcg::{pcg_solve, PcgOptions};
/// use mspcg_core::preconditioner::DiagonalPreconditioner;
/// use mspcg_sparse::CooMatrix;
///
/// // 1-D Laplacian, 5 unknowns.
/// let mut coo = CooMatrix::new(5, 5);
/// for i in 0..5 {
///     coo.push(i, i, 2.0)?;
///     if i + 1 < 5 { coo.push_sym(i, i + 1, -1.0)?; }
/// }
/// let k = coo.to_csr();
/// let m = DiagonalPreconditioner::from_diag(&k.diag()?)?;
/// let sol = pcg_solve(&k, &[1.0; 5], &m, &PcgOptions::default())?;
/// assert!(sol.converged && sol.iterations <= 5);
/// # Ok::<(), mspcg_sparse::SparseError>(())
/// ```
///
/// # Errors
/// * [`SparseError::NotSquare`] / [`SparseError::ShapeMismatch`] on shape
///   violations,
/// * [`SparseError::NotPositiveDefinite`] on inner-product breakdown
///   (indefinite `K` or preconditioner),
/// * [`SparseError::DidNotConverge`] when the budget is exhausted.
pub fn pcg_solve<A: SparseOp>(
    k: &A,
    f: &[f64],
    m: &impl Preconditioner,
    opts: &PcgOptions,
) -> Result<PcgSolution, SparseError> {
    let x0 = vec![0.0; f.len()];
    pcg_solve_from(k, f, &x0, m, opts)
}

/// Solve `K u = f` by PCG from the initial guess `u0`.
///
/// Allocates a fresh [`PcgWorkspace`]; sweep-style callers should hold one
/// workspace and use [`pcg_solve_into`] directly.
///
/// # Errors
/// Same classes as [`pcg_solve`].
pub fn pcg_solve_from<A: SparseOp>(
    k: &A,
    f: &[f64],
    u0: &[f64],
    m: &impl Preconditioner,
    opts: &PcgOptions,
) -> Result<PcgSolution, SparseError> {
    let mut ws = PcgWorkspace::new(f.len());
    let mut u = u0.to_vec();
    let rep = pcg_solve_into(k, f, &mut u, m, opts, &mut ws)?;
    Ok(PcgSolution {
        x: u,
        iterations: rep.iterations,
        converged: rep.converged,
        final_change: rep.final_change,
        final_relative_residual: rep.final_relative_residual,
        history: std::mem::take(&mut ws.history),
        stats: rep.stats,
    })
}

/// Solve `K u = f` by PCG with caller-owned storage: `u` holds the initial
/// guess on entry and the solution on exit, and every scratch vector lives
/// in `ws`.
///
/// This is the zero-allocation entry point: after `ws` is constructed (and
/// sized for `k` and the preconditioner), the iteration loop performs
/// **no heap allocation** — the SpMV, the preconditioner application, both
/// inner products and all vector updates run in place. Reusing one
/// workspace across a parameter sweep (ω scans, m sweeps, repeated
/// right-hand sides) therefore costs zero allocator traffic per solve, and
/// two consecutive calls with the same inputs produce bitwise-identical
/// results.
///
/// The iteration body runs on **fused kernels**
/// ([`vecops::fused_axpy_axpy_norm`], [`vecops::fused_xpby_dot`],
/// [`vecops::norm2_with_max`]): the `u`/`r` updates and the stopping-test
/// reduction partials are computed in a single pass per iteration instead
/// of three to four, with bitwise-identical results to the unfused
/// kernel sequence (`tests/par_determinism.rs`). With
/// [`PcgOptions::variant`] set to [`PcgVariant::SingleReduction`] the
/// Chronopoulos–Gear recurrence runs instead, collapsing the two
/// serialized inner products into one [`vecops::fused_dot3_norm`]
/// reduction phase per iteration (classic fallback on breakdown).
///
/// An undersized workspace is resized on entry (that path allocates once).
///
/// # Errors
/// Same classes as [`pcg_solve`].
pub fn pcg_solve_into<A: SparseOp>(
    k: &A,
    f: &[f64],
    u: &mut [f64],
    m: &impl Preconditioner,
    opts: &PcgOptions,
    ws: &mut PcgWorkspace,
) -> Result<PcgReport, SparseError> {
    let rep = pcg_try_solve_into(k, f, u, m, opts, ws)?;
    if rep.converged {
        Ok(rep)
    } else {
        Err(SparseError::DidNotConverge {
            iterations: rep.iterations,
            residual: rep.final_relative_residual,
        })
    }
}

/// [`pcg_solve_into`] with budget exhaustion reported as **data** instead
/// of an error: the returned report has `converged == false` and carries
/// the *true* final relative residual `‖f − K·u‖₂ / ‖f‖₂`, recomputed
/// from the exit iterate rather than read from the recursively updated
/// in-loop residual (which drifts from the true one). Batched callers
/// ([`crate::multi::pcg_solve_multi`]) use this so one stubborn
/// right-hand side cannot abort a whole batch.
///
/// [`PcgOptions::variant`] selects the iteration: the classic two-dot
/// loop, or the single-reduction Chronopoulos–Gear recurrence — which on
/// breakdown (`(p, s) ≤ 0` or a nonpositive reconstructed denominator)
/// **falls back to the classic loop from the current iterate**, counting
/// the iterations already spent against the same budget.
///
/// # Errors
/// Shape violations and inner-product breakdowns only.
pub fn pcg_try_solve_into<A: SparseOp>(
    k: &A,
    f: &[f64],
    u: &mut [f64],
    m: &impl Preconditioner,
    opts: &PcgOptions,
    ws: &mut PcgWorkspace,
) -> Result<PcgReport, SparseError> {
    let n = k.rows();
    if k.cols() != n {
        return Err(SparseError::NotSquare {
            rows: k.rows(),
            cols: k.cols(),
        });
    }
    if f.len() != n || u.len() != n || m.dim() != n {
        return Err(SparseError::ShapeMismatch {
            left: (n, n),
            right: (f.len(), u.len().max(m.dim())),
        });
    }
    if !(opts.tol.is_finite() && opts.tol > 0.0) {
        return Err(SparseError::InvalidTolerance { value: opts.tol });
    }
    // Reject non-finite inputs up front: a NaN anywhere in `f` or `u⁰`
    // poisons every subsequent reduction, so without this check the solve
    // would iterate on garbage until the budget runs out.
    if f.iter().any(|v| !v.is_finite()) {
        return Err(SparseError::NonFinite {
            phase: "rhs",
            iteration: 0,
        });
    }
    if u.iter().any(|v| !v.is_finite()) {
        return Err(SparseError::NonFinite {
            phase: "initial-guess",
            iteration: 0,
        });
    }
    if ws.dim() != n {
        ws.resize(n);
    }
    if ws.precond_scratch.len() != m.scratch_len() {
        ws.precond_scratch.resize(m.scratch_len(), 0.0);
    }
    ws.history.clear();

    let mut stats = PcgStats::default();

    let f_norm = vecops::norm2(f);
    if f_norm == 0.0 {
        // Trivial system: for SPD `K`, `K u = 0` has exactly the zero
        // solution. Write it — returning with `u` untouched would hand a
        // warm-started caller back its stale guess as "the solution".
        vecops::zero(u);
        return Ok(PcgReport {
            iterations: 0,
            converged: true,
            final_change: 0.0,
            final_relative_residual: 0.0,
            stats,
        });
    }

    // The audit decision is resolved ONCE from the *requested* (resolved)
    // variant and the tolerance, so ladder reruns — including the classic
    // bottom rung — inherit the same auditing the drift-prone variant
    // opted into.
    let resolved = opts.variant.resolve();
    let audit = AuditPlan::resolve(&opts.recovery, resolved, opts.tol, f_norm);
    if audit.enabled {
        ws.ensure_audit(n);
    }

    // The recovery ladder. Each rung starts from the iterate currently in
    // `u` (re-deriving its carries), charging the iterations already
    // performed against the shared budget:
    // * `Done` — the rung produced a final report;
    // * `Fallback` — breakdown or detected corruption: step DOWN one rung
    //   (SStep → Pipelined → SingleReduction → Classic; classic recovers
    //   in place);
    // * `Replace` — audit divergence: re-enter the SAME rung warm (the
    //   re-derivation from `u` *is* the residual replacement), bounded by
    //   the `max_replacements` budget checked at the emit site.
    // Termination: `Replace` strictly advances `start` (audit schedule),
    // `Fallback` strictly descends, and classic terminates on its own.
    let mut rung = resolved;
    let mut start = 0usize;
    let mut change = f64::INFINITY;
    loop {
        let flow = match rung {
            PcgVariant::SingleReduction => single_reduction_loop(
                k, f, u, m, opts, ws, &mut stats, f_norm, &audit, start, change,
            )?,
            PcgVariant::Pipelined => {
                ws.ensure_pipelined(n);
                pipelined_loop(
                    k, f, u, m, opts, ws, &mut stats, f_norm, &audit, start, change,
                )?
            }
            PcgVariant::SStep { s } => {
                ws.ensure_sstep(n, s);
                // A failed spectral estimate (a poisoned or degenerate
                // operator breaking the setup Lanczos) is a detected
                // fault, not a solve-fatal error: step down warm like
                // any other basis breakdown.
                match sstep_basis_interval(k, m, ws) {
                    Ok(interval) => sstep_loop(
                        k, f, u, m, opts, ws, &mut stats, f_norm, &audit, start, change, s,
                        interval,
                    )?,
                    Err(_) => {
                        stats.faults_detected += 1;
                        SrFlow::Fallback {
                            completed: start,
                            change,
                        }
                    }
                }
            }
            _ => {
                return classic_loop(
                    k, f, u, m, opts, ws, &mut stats, f_norm, &audit, start, change,
                )
            }
        };
        match flow {
            SrFlow::Done(report) => return Ok(report),
            SrFlow::Fallback {
                completed,
                change: c,
            } => {
                stats.fallbacks += 1;
                rung = match rung {
                    PcgVariant::SStep { .. } => PcgVariant::Pipelined,
                    PcgVariant::Pipelined => PcgVariant::SingleReduction,
                    _ => PcgVariant::Classic,
                };
                start = completed;
                change = c;
            }
            SrFlow::Replace {
                completed,
                change: c,
            } => {
                stats.replacements += 1;
                start = completed;
                change = c;
            }
        }
    }
}

/// Resolved audit configuration for one solve (policy × variant ×
/// tolerance × ‖f‖₂), fixed before the ladder runs so every rung sees the
/// same decision.
struct AuditPlan {
    enabled: bool,
    period: usize,
    /// Squared replacement bound: comparing `‖r_true − r‖₂²` against it
    /// avoids a square root, and [`diverged`] reads a NaN deviation
    /// (poisoned residual) as divergent.
    bound2: f64,
    max_replacements: usize,
}

impl AuditPlan {
    fn resolve(policy: &RecoveryPolicy, variant: PcgVariant, tol: f64, f_norm: f64) -> Self {
        let bound = replacement_bound(tol, f_norm);
        AuditPlan {
            enabled: policy.audit_enabled(variant, tol),
            period: policy.period(),
            bound2: bound * bound,
            max_replacements: policy.max_replacements,
        }
    }
}

/// One audit: recompute the true residual `f − K·u` into `aud` and return
/// its squared deviation from the recurrence residual `r`. The sum of
/// squares propagates NaN (unlike a max-based norm, which swallows it),
/// so a poisoned recurrence residual always reads as divergent.
fn audit_deviation2<A: SparseOp>(
    k: &A,
    f: &[f64],
    u: &[f64],
    r: &[f64],
    aud: &mut [f64],
    stats: &mut PcgStats,
) -> f64 {
    stats.audits += 1;
    vecops::copy(f, aud);
    k.mul_vec_axpy(-1.0, u, aud);
    stats.spmv += 1;
    aud.iter()
        .zip(r.iter())
        .map(|(t, ri)| {
            let d = t - ri;
            d * d
        })
        .sum()
}

/// Shared no-stopping-test exit: recompute the TRUE residual `f − K·u`
/// from the exit iterate (the recursively updated in-loop `r` drifts from
/// it over many iterations, so reporting its norm would overstate — or
/// understate — how close the returned iterate actually is).
#[allow(clippy::too_many_arguments)]
fn exit_report<A: SparseOp>(
    k: &A,
    f: &[f64],
    u: &[f64],
    r: &mut [f64],
    stats: &mut PcgStats,
    f_norm: f64,
    iterations: usize,
    converged: bool,
    change: f64,
) -> PcgReport {
    vecops::copy(f, r);
    k.mul_vec_axpy(-1.0, u, r);
    stats.spmv += 1;
    let final_rel = vecops::norm2(r) / f_norm.max(1e-300);
    PcgReport {
        iterations,
        converged,
        final_change: change,
        final_relative_residual: final_rel,
        stats: *stats,
    }
}

/// The classic rung driver: run [`classic_pass`] until it produces a
/// final report, re-entering it on every in-place recovery restart (audit
/// replacement or budgeted non-finite recovery). The classic loop is the
/// ladder's bottom rung, so it recovers by restarting *itself* from the
/// current iterate — each pass re-derives `r`, `r̂`, `p` from `u`, which
/// is exactly the residual-replacement transformation. Termination: audit
/// restarts strictly advance `start` ([`audit_due`]) and non-finite
/// restarts spend the `max_replacements` budget.
#[allow(clippy::too_many_arguments)]
fn classic_loop<A: SparseOp>(
    k: &A,
    f: &[f64],
    u: &mut [f64],
    m: &impl Preconditioner,
    opts: &PcgOptions,
    ws: &mut PcgWorkspace,
    stats: &mut PcgStats,
    f_norm: f64,
    audit: &AuditPlan,
    start_iter: usize,
    initial_change: f64,
) -> Result<PcgReport, SparseError> {
    let mut start = start_iter;
    let mut change = initial_change;
    loop {
        match classic_pass(k, f, u, m, opts, ws, stats, f_norm, audit, start, change)? {
            ClassicFlow::Done(report) => return Ok(report),
            ClassicFlow::Restart {
                completed,
                change: c,
            } => {
                start = completed;
                change = c;
            }
        }
    }
}

/// Control flow of one classic pass.
enum ClassicFlow {
    /// The pass produced a final report.
    Done(PcgReport),
    /// In-place recovery after `completed` iterations: re-enter the pass
    /// from the iterate in `u` (already counted against the replacement
    /// budget at the emit site).
    Restart { completed: usize, change: f64 },
}

/// Shared non-finite handling of the classic pass: count the detection,
/// then recover in place while the replacement budget lasts, surfacing
/// the typed error once it is spent.
fn nonfinite_flow(
    stats: &mut PcgStats,
    audit: &AuditPlan,
    phase: &'static str,
    iteration: usize,
    completed: usize,
    change: f64,
) -> Result<ClassicFlow, SparseError> {
    stats.faults_detected += 1;
    if stats.replacements < audit.max_replacements {
        stats.replacements += 1;
        Ok(ClassicFlow::Restart { completed, change })
    } else {
        Err(SparseError::NonFinite { phase, iteration })
    }
}

/// The classic Algorithm 1 loop (two serialized inner products per
/// iteration), starting from the iterate already in `u`. `start_iter`
/// iterations have been charged against the budget by a preceding
/// ladder rung or restart (0 for a direct classic solve);
/// `initial_change` is that attempt's last measured ‖Δu‖∞ (infinity for a
/// direct solve), reported if the loop body never runs — a breakdown on
/// the final budgeted iteration must not erase the measured step size.
///
/// Non-finite reduction scalars (a NaN/Inf out of a corrupted SpMV or
/// preconditioner application) are detected on the scalars *before* they
/// feed `α`/`β` — the iterate is still finite at every detection point,
/// so the in-place restart recovers from it (see [`nonfinite_flow`]).
/// When auditing is enabled, every [`AuditPlan::period`] iterations the
/// true residual is compared against the recurrence residual and
/// divergence beyond the bound triggers the same restart (which *is* the
/// replacement: the pass re-derives `r` from `u`). With auditing off and
/// finite scalars, the arithmetic is bit-for-bit the pre-recovery loop.
#[allow(clippy::too_many_arguments)]
fn classic_pass<A: SparseOp>(
    k: &A,
    f: &[f64],
    u: &mut [f64],
    m: &impl Preconditioner,
    opts: &PcgOptions,
    ws: &mut PcgWorkspace,
    stats: &mut PcgStats,
    f_norm: f64,
    audit: &AuditPlan,
    start_iter: usize,
    initial_change: f64,
) -> Result<ClassicFlow, SparseError> {
    let PcgWorkspace {
        r,
        rhat,
        p,
        kp,
        aud,
        precond_scratch,
        history,
        ..
    } = ws;

    // r⁰ = f − K u⁰.
    vecops::copy(f, r);
    k.mul_vec_axpy(-1.0, u, r);
    stats.spmv += 1;

    m.apply_with(r, rhat, precond_scratch);
    stats.precond_applications += 1;
    stats.precond_steps += m.steps_per_apply();

    // p⁰ ← r̂⁰ and rz₀ = (r̂⁰, r⁰) in one fused pass (b = 0 is an exact
    // copy, so stale workspace contents in p cannot leak).
    let mut rz = vecops::fused_xpby_dot(rhat, 0.0, p, r);
    stats.inner_products += 1;
    stats.reduction_phases += 1;
    if !rz.is_finite() {
        // A corrupted initial msolve (possible on a restart whose own
        // re-derivation hits the fault): recover before iterating.
        return nonfinite_flow(
            stats,
            audit,
            "msolve-reduction",
            start_iter,
            start_iter,
            initial_change,
        );
    }
    if rz < 0.0 {
        return Err(SparseError::NotPositiveDefinite {
            pivot: start_iter,
            value: rz,
        });
    }

    let mut change = initial_change;
    let mut completed = start_iter;
    for iter in start_iter + 1..=opts.max_iterations {
        // Residual audit: compare the recurrence residual against the
        // freshly recomputed true residual (state after iteration
        // `iter − 1`). Skipped once the replacement budget is spent — an
        // audit that cannot act would only burn an SpMV.
        if audit.enabled
            && audit_due(iter, start_iter, audit.period)
            && stats.replacements < audit.max_replacements
        {
            let dev2 = audit_deviation2(k, f, u, r, aud, stats);
            if diverged(dev2, audit.bound2) {
                stats.replacements += 1;
                return Ok(ClassicFlow::Restart {
                    completed: iter - 1,
                    change,
                });
            }
        }

        k.mul_vec_into(p, kp);
        stats.spmv += 1;
        let denom = vecops::dot(p, kp);
        stats.inner_products += 1;
        stats.reduction_phases += 1;
        if !denom.is_finite() {
            // Checked before the sign guard: NaN fails `<= 0.0` and would
            // otherwise flow straight into α. `u` has not been touched
            // this iteration, so the restart recovers from a clean
            // iterate.
            return nonfinite_flow(stats, audit, "spmv-reduction", iter, iter - 1, change);
        }
        if denom <= 0.0 {
            if rz == 0.0 {
                // Exact convergence in fewer than n steps: residual is 0.
                break;
            }
            return Err(SparseError::NotPositiveDefinite {
                pivot: iter,
                value: denom,
            });
        }
        completed = iter;
        let alpha = rz / denom;
        // One fused pass: u += αp, r −= α·Kp, and the ‖p‖∞ / ‖r‖∞
        // partials for both stopping tests.
        let norms = vecops::fused_axpy_axpy_norm(alpha, p, kp, u, r);
        // ‖u^{k+1} − uᵏ‖∞ = |α|·‖p‖∞ — no extra vector needed.
        change = alpha.abs() * norms.p_norm_inf;
        if !norms.all_finite() {
            // An Inf slipped past the finite dot (cancelation in the
            // reduction): `r` is poisoned but `u` was updated with the
            // already-validated α and a finite `p`, so the restart's
            // `r = f − K·u` re-derivation recovers. (A NaN in `r` hides
            // from the max-based norm and is caught one step later by the
            // msolve-reduction scalar.)
            return nonfinite_flow(stats, audit, "update", iter, iter, change);
        }

        let crit_value = match opts.criterion {
            StoppingCriterion::DisplacementChange => change,
            StoppingCriterion::RelativeResidual => {
                stats.inner_products += 1;
                vecops::norm2_with_max(r, norms.r_norm_inf) / f_norm.max(1e-300)
            }
        };
        if opts.record_history {
            history.push(crit_value);
        }
        if crit_value < opts.tol {
            let final_rel = vecops::norm2_with_max(r, norms.r_norm_inf) / f_norm.max(1e-300);
            return Ok(ClassicFlow::Done(PcgReport {
                iterations: iter,
                converged: true,
                final_change: change,
                final_relative_residual: final_rel,
                stats: *stats,
            }));
        }

        m.apply_with(r, rhat, precond_scratch);
        stats.precond_applications += 1;
        stats.precond_steps += m.steps_per_apply();
        let rz_new = vecops::dot(rhat, r);
        stats.inner_products += 1;
        stats.reduction_phases += 1;
        if !rz_new.is_finite() {
            // NaN/Inf out of the preconditioner (or a NaN residual the
            // max-norm swallowed above): detected on the scalar before β
            // is formed, while `u` is still finite.
            return nonfinite_flow(stats, audit, "msolve-reduction", iter, iter, change);
        }
        if rz_new < 0.0 {
            return Err(SparseError::NotPositiveDefinite {
                pivot: iter,
                value: rz_new,
            });
        }
        let beta = rz_new / rz.max(1e-300);
        rz = rz_new;
        vecops::xpby(rhat, beta, p);
    }

    // rz == 0 exact-breakdown exit lands here with converged status. The
    // `change < tol` arm is meaningful only for the displacement test:
    // under RelativeResidual a sub-tolerance *step size* says nothing
    // about the residual the caller asked to bound (a stagnating solve
    // must not be reported as converged). A carried `initial_change`
    // cannot take the arm: the single-reduction loop would have returned
    // converged itself before falling back with a sub-tolerance step.
    let converged =
        rz == 0.0 || (opts.criterion == StoppingCriterion::DisplacementChange && change < opts.tol);
    let iterations = if converged {
        completed
    } else {
        opts.max_iterations
    };
    Ok(ClassicFlow::Done(exit_report(
        k, f, u, r, stats, f_norm, iterations, converged, change,
    )))
}

/// Control flow of a single-reduction or pipelined attempt.
enum SrFlow {
    /// The attempt produced a final report (converged, exact breakdown,
    /// or budget exhaustion).
    Done(PcgReport),
    /// Recurrence breakdown or detected corruption after `completed`
    /// iterations: the ladder must step DOWN one rung from the iterate in
    /// `u`, carrying the last measured ‖Δu‖∞ for reporting.
    Fallback { completed: usize, change: f64 },
    /// Audit divergence after `completed` iterations: the ladder must
    /// re-enter the SAME rung warm — the rung's re-initialization from
    /// `u` recomputes `r = f − K·u` and re-derives every carry and CG
    /// scalar from it, which is precisely the residual replacement.
    Replace { completed: usize, change: f64 },
}

/// The single-reduction (Chronopoulos–Gear) loop: carry `s = Kp` (in the
/// workspace's `Kp` slot) and `w = Kz`, and obtain `α` and `β` from one
/// fused reduction phase per iteration:
///
/// ```text
/// z = M⁻¹ r;  w = K z
/// γ′ = (r, z),  δ = (w, z),  guard (p, s)     ← ONE fused sweep
/// β = γ′/γ;  α = γ′ / (δ − β·γ′/α_old)
/// p ← z + βp;  s ← w + βs                     ← one fused sweep
/// u += αp;  r −= αs  ⊕ stopping partials      ← one fused sweep
/// ```
///
/// The recurrence reconstructs the classic denominator `(p, Kp)` from
/// already-reduced scalars, so no reduction has to wait on the direction
/// update — on the SPMD solver the whole iteration needs one reduction
/// phase (and one barrier for it) where the classic loop serializes two.
#[allow(clippy::too_many_arguments)]
fn single_reduction_loop<A: SparseOp>(
    k: &A,
    f: &[f64],
    u: &mut [f64],
    m: &impl Preconditioner,
    opts: &PcgOptions,
    ws: &mut PcgWorkspace,
    stats: &mut PcgStats,
    f_norm: f64,
    audit: &AuditPlan,
    start_iter: usize,
    initial_change: f64,
) -> Result<SrFlow, SparseError> {
    let PcgWorkspace {
        r,
        rhat,
        p,
        kp: s,
        w,
        aud,
        precond_scratch,
        history,
        ..
    } = ws;

    // r⁰ = f − K u⁰;  z⁰ = M⁻¹ r⁰;  w⁰ = K z⁰.
    vecops::copy(f, r);
    k.mul_vec_axpy(-1.0, u, r);
    stats.spmv += 1;
    m.apply_with(r, rhat, precond_scratch);
    stats.precond_applications += 1;
    stats.precond_steps += m.steps_per_apply();
    k.mul_vec_into(rhat, w);
    stats.spmv += 1;
    // γ₀ = (r̂, r) and δ₀ = (w, r̂): one reduction phase (the SPMD
    // schedule forms both partials in the phase that produces `w`).
    let mut gamma = vecops::dot(rhat, r);
    let delta = vecops::dot(w, rhat);
    stats.inner_products += 2;
    stats.reduction_phases += 1;
    if !(gamma.is_finite() && delta.is_finite()) {
        // Corrupted initialization (the fault hit the re-derivation
        // itself): step down — the classic rung's budgeted in-place
        // restarts absorb even a persistent fault.
        stats.faults_detected += 1;
        return Ok(SrFlow::Fallback {
            completed: start_iter,
            change: initial_change,
        });
    }
    if gamma < 0.0 {
        return Err(SparseError::NotPositiveDefinite {
            pivot: start_iter,
            value: gamma,
        });
    }
    if gamma == 0.0 {
        // z = 0 against a nonzero f: exact convergence at the start (the
        // classic loop's rz == 0 probe path, minus the probe SpMV).
        return Ok(SrFlow::Done(exit_report(
            k,
            f,
            u,
            r,
            stats,
            f_norm,
            start_iter,
            true,
            initial_change,
        )));
    }
    if delta <= 0.0 {
        // (z, Kz) ≤ 0 with z ≠ 0: K is not SPD on this subspace. Hand the
        // start iterate to the classic loop, whose own probes produce the
        // canonical typed error.
        return Ok(SrFlow::Fallback {
            completed: start_iter,
            change: initial_change,
        });
    }
    let mut alpha = gamma / delta;
    let mut beta = 0.0f64;
    let mut change = initial_change;

    for iter in start_iter + 1..=opts.max_iterations {
        // Residual audit on the recurrence residual (state after
        // iteration `iter − 1`); divergence re-enters this rung warm,
        // which re-derives every carry from the true residual.
        if audit.enabled
            && audit_due(iter, start_iter, audit.period)
            && stats.replacements < audit.max_replacements
        {
            let dev2 = audit_deviation2(k, f, u, r, aud, stats);
            if diverged(dev2, audit.bound2) {
                return Ok(SrFlow::Replace {
                    completed: iter - 1,
                    change,
                });
            }
        }

        // p ← z + βp and s ← w + βs in one sweep (β = 0 makes both exact
        // copies: the initialization path).
        vecops::fused_xpby_xpby(rhat, w, beta, p, s);
        // u += αp, r −= αs ⊕ the ‖p‖∞ / ‖r‖∞ stopping partials.
        let norms = vecops::fused_axpy_axpy_norm(alpha, p, s, u, r);
        change = alpha.abs() * norms.p_norm_inf;
        if opts.criterion == StoppingCriterion::DisplacementChange {
            if opts.record_history {
                history.push(change);
            }
            if change < opts.tol {
                // Same exit point as the classic loop: the converging
                // iteration skips the preconditioner.
                let final_rel = vecops::norm2_with_max(r, norms.r_norm_inf) / f_norm.max(1e-300);
                return Ok(SrFlow::Done(PcgReport {
                    iterations: iter,
                    converged: true,
                    final_change: change,
                    final_relative_residual: final_rel,
                    stats: *stats,
                }));
            }
        }

        // z = M⁻¹ r;  w = K z;  then THE one fused reduction phase.
        m.apply_with(r, rhat, precond_scratch);
        stats.precond_applications += 1;
        stats.precond_steps += m.steps_per_apply();
        k.mul_vec_into(rhat, w);
        stats.spmv += 1;
        let d3 = vecops::fused_dot3_norm(r, rhat, w, p, s, norms.r_norm_inf);
        stats.inner_products += 3;
        stats.reduction_phases += 1;

        // Non-finite detection on the fused scalars, BEFORE any of them
        // is consumed: a NaN/Inf anywhere in r/z/w/p/s poisons at least
        // one dot product, while `u` — updated with the previous
        // iteration's validated α — is still finite, so the next rung
        // recovers from it.
        if !d3.all_finite() {
            stats.faults_detected += 1;
            return Ok(SrFlow::Fallback {
                completed: iter,
                change,
            });
        }

        if opts.criterion == StoppingCriterion::RelativeResidual {
            let rel = d3.r_norm2 / f_norm.max(1e-300);
            if opts.record_history {
                history.push(rel);
            }
            if rel < opts.tol {
                return Ok(SrFlow::Done(PcgReport {
                    iterations: iter,
                    converged: true,
                    final_change: change,
                    final_relative_residual: rel,
                    stats: *stats,
                }));
            }
        }

        if d3.rz < 0.0 {
            return Err(SparseError::NotPositiveDefinite {
                pivot: iter,
                value: d3.rz,
            });
        }
        if d3.rz == 0.0 {
            // Exact convergence in fewer than n steps.
            return Ok(SrFlow::Done(exit_report(
                k, f, u, r, stats, f_norm, iter, true, change,
            )));
        }
        // Breakdown guard on the *directly measured* curvature (p, s) —
        // bounded where the reconstructed denominator has drifted — plus
        // the reconstruction itself: either nonpositive means the
        // recurrence can no longer be trusted; continue classically.
        if d3.ps <= 0.0 {
            return Ok(SrFlow::Fallback {
                completed: iter,
                change,
            });
        }
        let beta_new = d3.rz / gamma.max(1e-300);
        let denom = d3.wz - beta_new * d3.rz / alpha;
        if !(denom.is_finite() && denom > 0.0) {
            return Ok(SrFlow::Fallback {
                completed: iter,
                change,
            });
        }
        beta = beta_new;
        alpha = d3.rz / denom;
        gamma = d3.rz;
    }

    Ok(SrFlow::Done(exit_report(
        k,
        f,
        u,
        r,
        stats,
        f_norm,
        opts.max_iterations,
        false,
        change,
    )))
}

/// The pipelined (Ghysels–Vanroose) loop: on top of the single-reduction
/// carries `s = Kp` and `w = Kz`, the iteration carries `q = M⁻¹s` and
/// `zz = K·q`, plus the recomputed auxiliaries `mv = M⁻¹w` and
/// `nv = K·mv`, so the fused reduction phase only consumes vectors that
/// were finished *before* the heavy phase of the iteration:
///
/// ```text
/// p ← z + βp;  s ← w + βs;  q ← mv + βq;  zz ← nv + βzz
/// u += αp;  r −= αs;  z −= αq;  w −= αzz   ⊕ stopping partials
/// γ′ = (r, z), δ = (w, z), guard (p, s)    ← reduction INITIATED here
/// mv = M⁻¹ w;  nv = K·mv                   ← overlapped heavy phase
/// β = γ′/γ;  α = γ′/(δ − β·γ′/α_old)       ← reduction CONSUMED here
/// ```
///
/// Nothing the heavy phase computes feeds the reduction, so the SPMD
/// executor *initiates* the reduction (split-barrier `arrive`) before
/// `M⁻¹w` / `K·mv` and *consumes* it (`wait`) after them — the reduction
/// latency hides behind the heaviest work of the iteration. This serial
/// analogue runs the same recurrences with the same stats; it consumes
/// the reduction (and runs its guards) *before* the heavy phase, which
/// changes no arithmetic — the scalars never feed `mv`/`nv` — but lets a
/// converging or breaking-down final iteration skip one preconditioner
/// application and SpMV.
///
/// Every iteration vector except `mv`/`nv` is a recurrence carry, so the
/// rounding drift is larger than the single-reduction variant's; the
/// guards are correspondingly stricter — a nonpositive carried
/// `γ′ = (r, z)` routes to the classic **fallback**, not to an
/// indefiniteness error, because a drifted carry cannot certify the sign
/// of the true quadratic form (the classic continuation's fresh probes
/// produce the canonical error if the system really is indefinite).
#[allow(clippy::too_many_arguments)]
fn pipelined_loop<A: SparseOp>(
    k: &A,
    f: &[f64],
    u: &mut [f64],
    m: &impl Preconditioner,
    opts: &PcgOptions,
    ws: &mut PcgWorkspace,
    stats: &mut PcgStats,
    f_norm: f64,
    audit: &AuditPlan,
    start_iter: usize,
    initial_change: f64,
) -> Result<SrFlow, SparseError> {
    let PcgWorkspace {
        r,
        rhat: z,
        p,
        kp: s,
        w,
        q,
        zz,
        mv,
        nv,
        aud,
        precond_scratch,
        history,
        ..
    } = ws;

    // r⁰ = f − K u⁰;  z⁰ = M⁻¹ r⁰;  w⁰ = K z⁰.
    vecops::copy(f, r);
    k.mul_vec_axpy(-1.0, u, r);
    stats.spmv += 1;
    m.apply_with(r, z, precond_scratch);
    stats.precond_applications += 1;
    stats.precond_steps += m.steps_per_apply();
    k.mul_vec_into(z, w);
    stats.spmv += 1;
    // γ₀ = (r, z) and δ₀ = (w, z): one reduction phase, which the SPMD
    // schedule initiates before — and consumes after — the mv/nv phase.
    let mut gamma = vecops::dot(z, r);
    let delta = vecops::dot(w, z);
    stats.inner_products += 2;
    stats.reduction_phases += 1;
    if !(gamma.is_finite() && delta.is_finite()) {
        // Corrupted initialization: step down the ladder.
        stats.faults_detected += 1;
        return Ok(SrFlow::Fallback {
            completed: start_iter,
            change: initial_change,
        });
    }
    if gamma < 0.0 {
        // Freshly computed quadratic form (no drift yet): indefinite M.
        return Err(SparseError::NotPositiveDefinite {
            pivot: start_iter,
            value: gamma,
        });
    }
    if gamma == 0.0 {
        return Ok(SrFlow::Done(exit_report(
            k,
            f,
            u,
            r,
            stats,
            f_norm,
            start_iter,
            true,
            initial_change,
        )));
    }
    if delta <= 0.0 {
        // (z, Kz) ≤ 0 with z ≠ 0: hand the start iterate down the
        // ladder; the classic rung's probes produce the canonical typed
        // error if the system really is indefinite.
        return Ok(SrFlow::Fallback {
            completed: start_iter,
            change: initial_change,
        });
    }
    // mv⁰ = M⁻¹ w⁰;  nv⁰ = K mv⁰ — the first overlapped heavy phase.
    m.apply_with(w, mv, precond_scratch);
    stats.precond_applications += 1;
    stats.precond_steps += m.steps_per_apply();
    k.mul_vec_into(mv, nv);
    stats.spmv += 1;
    let mut alpha = gamma / delta;
    let mut beta = 0.0f64;
    let mut change = initial_change;

    for iter in start_iter + 1..=opts.max_iterations {
        // Residual audit (state after iteration `iter − 1`, before this
        // iteration's carries move): divergence re-enters this rung warm,
        // re-deriving all six carries from the true residual.
        if audit.enabled
            && audit_due(iter, start_iter, audit.period)
            && stats.replacements < audit.max_replacements
        {
            let dev2 = audit_deviation2(k, f, u, r, aud, stats);
            if diverged(dev2, audit.bound2) {
                return Ok(SrFlow::Replace {
                    completed: iter - 1,
                    change,
                });
            }
        }

        // The four direction carries, then the four iterate/carry updates,
        // in four fused sweeps (β = 0 makes the direction carries exact
        // copies: the initialization path).
        vecops::fused_xpby_xpby(z, w, beta, p, s);
        vecops::fused_xpby_xpby(mv, nv, beta, q, zz);
        let norms = vecops::fused_axpy_axpy_norm(alpha, p, s, u, r);
        vecops::fused_axpy2(-alpha, q, z, zz, w);
        change = alpha.abs() * norms.p_norm_inf;
        if opts.criterion == StoppingCriterion::DisplacementChange {
            if opts.record_history {
                history.push(change);
            }
            if change < opts.tol {
                let final_rel = vecops::norm2_with_max(r, norms.r_norm_inf) / f_norm.max(1e-300);
                return Ok(SrFlow::Done(PcgReport {
                    iterations: iter,
                    converged: true,
                    final_change: change,
                    final_relative_residual: final_rel,
                    stats: *stats,
                }));
            }
        }

        // THE fused reduction phase: γ′, δ, the (p, s) guard and ‖r‖₂ in
        // one sweep over the freshly updated carries.
        let d3 = vecops::fused_dot3_norm(r, z, w, p, s, norms.r_norm_inf);
        stats.inner_products += 3;
        stats.reduction_phases += 1;

        // Non-finite detection on the fused scalars before any is
        // consumed. A fault in the overlapped heavy phase (mv/nv) lands
        // here one iteration later — after it has flowed through q/zz
        // into z/w — but still before `u` is touched by a poisoned α, so
        // the next rung recovers from a finite iterate.
        if !d3.all_finite() {
            stats.faults_detected += 1;
            return Ok(SrFlow::Fallback {
                completed: iter,
                change,
            });
        }

        if opts.criterion == StoppingCriterion::RelativeResidual {
            let rel = d3.r_norm2 / f_norm.max(1e-300);
            if opts.record_history {
                history.push(rel);
            }
            if rel < opts.tol {
                return Ok(SrFlow::Done(PcgReport {
                    iterations: iter,
                    converged: true,
                    final_change: change,
                    final_relative_residual: rel,
                    stats: *stats,
                }));
            }
        }

        // Guards: γ′ is a product of two recurrence carries (see the
        // function docs), so every nonpositive scalar — carried γ′,
        // measured curvature (p, s), or the reconstructed denominator —
        // routes to the classic fallback.
        if d3.rz <= 0.0 || d3.ps <= 0.0 {
            return Ok(SrFlow::Fallback {
                completed: iter,
                change,
            });
        }
        let beta_new = d3.rz / gamma.max(1e-300);
        let denom = d3.wz - beta_new * d3.rz / alpha;
        if !(denom.is_finite() && denom > 0.0) {
            return Ok(SrFlow::Fallback {
                completed: iter,
                change,
            });
        }

        // Overlapped heavy phase: the scalars above never feed it — the
        // SPMD schedule runs it between the reduction's arrive and wait.
        m.apply_with(w, mv, precond_scratch);
        stats.precond_applications += 1;
        stats.precond_steps += m.steps_per_apply();
        k.mul_vec_into(mv, nv);
        stats.spmv += 1;

        beta = beta_new;
        alpha = d3.rz / denom;
        gamma = d3.rz;
    }

    Ok(SrFlow::Done(exit_report(
        k,
        f,
        u,
        r,
        stats,
        f_norm,
        opts.max_iterations,
        false,
        change,
    )))
}

/// Lanczos budget and starting seed of the s-step rung's fallback
/// spectral estimate — mirrors the polynomial preconditioner's
/// construction-time estimate so the two boundaries of the interval
/// cache behave alike. Public so the SPMD executor's estimate follows
/// the identical recipe (same budget, same seed, same safeguard).
pub const SSTEP_SPECTRUM_STEPS: usize = 60;
pub const SSTEP_SPECTRUM_SEED: u64 = 0x5EED;

/// Eigenvalue bounds for the s-step Chebyshev basis recurrence, sourced
/// in priority order:
///
/// 1. the preconditioner's own [`Preconditioner::spectral_hint`] — the
///    polynomial preconditioner already paid a Lanczos run for its
///    schedule, and this is the poly-precond ↔ s-step-basis half of the
///    one-estimate-per-operator cache;
/// 2. the interval already cached in the workspace by an earlier s-step
///    solve on this system;
/// 3. a fresh estimate, cached for every later solve: Lanczos on the
///    composite `x ↦ M⁻¹(K x)` — the operator the recurrence actually
///    iterates. That map is self-adjoint in the `M` inner product, not
///    the Euclidean one, so the Ritz values carry an orthogonality
///    error; but bound accuracy affects only the *conditioning* of the
///    basis (any increasing-degree recurrence spans the same Krylov
///    space), and a snug bracket on `M⁻¹K` keeps the Chebyshev basis
///    near-orthogonal where a loose surrogate (the Jacobi-scaled
///    spectrum of `K`, a superset interval for SSOR-class `M`) drives
///    the Gram condition number up like a monomial basis.
///
/// Estimation is setup cost — charged like polynomial-preconditioner
/// construction, i.e. not counted in [`PcgStats`].
fn sstep_basis_interval<A: SparseOp>(
    k: &A,
    m: &impl Preconditioner,
    ws: &mut PcgWorkspace,
) -> Result<SpectralInterval, SparseError> {
    if let Some(hint) = m.spectral_hint() {
        return Ok(hint);
    }
    if let Some(cached) = ws.sstep_interval {
        return Ok(cached);
    }
    let n = k.rows();
    let est = {
        let mut tmp = vec![0.0; n];
        let mut scratch = vec![0.0; m.scratch_len()];
        lanczos_extremes(n, SSTEP_SPECTRUM_STEPS, SSTEP_SPECTRUM_SEED, |x, y| {
            k.mul_vec_into(x, &mut tmp);
            m.apply_with(&tmp, y, &mut scratch);
        })?
    };
    let interval = crate::poly::safeguard_jacobi_interval(est);
    ws.sstep_interval = Some(interval);
    Ok(interval)
}

/// In-place rank-revealing Cholesky factorization `W = L·Lᵀ` of a
/// row-major `s×s` symmetric matrix; only the lower triangle is read,
/// and it is overwritten with `L`. Returns the number of columns
/// factored before a pivot collapsed — the factorization stops at the
/// first pivot that is non-finite, nonpositive, or below roundoff
/// relative to the largest original diagonal entry.
///
/// A return of `0` is the s-step Gram breakdown signal (an indefinite
/// or numerically collapsed basis), which the caller handles by
/// stepping down the recovery ladder. A return in `1..s` is the
/// *endgame* signal: the residual's remaining Krylov grade is smaller
/// than the block, so the trailing basis vectors are linearly dependent
/// to machine precision and only the leading sub-steps carry
/// information. Without the relative-pivot cutoff those trailing pivots
/// pass `> 0.0` at roundoff level, the triangular solves amplify the
/// noise, and the final block's "updates" destroy the superlinear
/// terminal convergence classic CG gets for free. Public so the SPMD
/// solver's replicated scalar phase runs bitwise-identical arithmetic.
pub fn small_cholesky_factor(w: &mut [f64], s: usize) -> usize {
    debug_assert!(w.len() >= s * s, "small_cholesky_factor: undersized");
    let mut max_diag: f64 = 0.0;
    for i in 0..s {
        max_diag = max_diag.max(w[i * s + i]);
    }
    if !(max_diag.is_finite() && max_diag > 0.0) {
        return 0;
    }
    // Pivots of an SPD Gram matrix decay with the basis conditioning;
    // anything this far under the largest diagonal is pure roundoff.
    let floor = max_diag * (s as f64) * f64::EPSILON;
    for i in 0..s {
        for j in 0..=i {
            let mut sum = w[i * s + j];
            for t in 0..j {
                sum -= w[i * s + t] * w[j * s + t];
            }
            if i == j {
                if !(sum.is_finite() && sum > floor) {
                    return i;
                }
                w[i * s + i] = sum.sqrt();
            } else {
                w[i * s + j] = sum / w[j * s + j];
            }
        }
    }
    s
}

/// Solve the leading `cols×cols` system `L·Lᵀ·x = b` in place given a
/// factor from [`small_cholesky_factor`] stored at row stride `s`
/// (`b[..cols]` holds `x` on exit; `b[cols..]` is untouched).
pub fn small_cholesky_solve(l: &[f64], s: usize, cols: usize, b: &mut [f64]) {
    debug_assert!(
        cols <= s && l.len() >= s * s && b.len() >= cols,
        "small_cholesky_solve: undersized"
    );
    for i in 0..cols {
        let mut x = b[i];
        for t in 0..i {
            x -= l[i * s + t] * b[t];
        }
        b[i] = x / l[i * s + i];
    }
    for i in (0..cols).rev() {
        let mut x = b[i];
        for t in i + 1..cols {
            x -= l[t * s + i] * b[t];
        }
        b[i] = x / l[i * s + i];
    }
}

/// The s-step (communication-avoiding) rung. Per outer step:
///
/// ```text
/// v₁ = M⁻¹r;   vⱼ₊₁ = (2/δ)(M⁻¹K·vⱼ − θ·vⱼ) − vⱼ₋₁     (Chebyshev basis)
/// G1 = VᵀAV, G2 = AP'ᵀV, gv = Vᵀr, gp = P'ᵀr, (r,r)    ← ONE reduction
/// B = −W'⁻¹G2;  P = V + P'B;  AP = AV + AP'B           (replicated s×s)
/// W = G1 + G2ᵀB = PᵀKP;  a = W⁻¹(gv + Bᵀgp)            (dense Cholesky)
/// u += aⱼpⱼ, r −= aⱼ·apⱼ, j = 1…s                      (s update sub-steps)
/// ```
///
/// where primes mark the previous outer step's direction block (parity
/// double-buffered; the first block has `B = 0`, `P = V`). Conjugating
/// the block against the previous block only is the Chronopoulos–Gear
/// s-step formulation: in exact arithmetic conjugacy against older
/// blocks is automatic from the Krylov structure, and the iterate after
/// each sub-step's update matches the classic iteration — so `s`
/// iterations cost ONE reduction phase (the fused Gram sweep; on the
/// SPMD executor, one barrier) instead of the classic 2s.
///
/// The displacement stopping test runs per sub-step on the classic
/// per-iteration quantity `|aⱼ|·‖pⱼ‖∞` (fused into the update sweep, not
/// a counted reduction); the relative-residual test reads the block's
/// entering `‖r‖₂` off the Gram phase, converging at block granularity.
/// History records one value per sub-step (displacement) or per outer
/// step (residual). A final partial block is not run: the loop exits
/// with budget-exhaustion when fewer than `s` budgeted iterations
/// remain.
///
/// Breakdown — non-finite Gram scalars (faults), a nonpositive Cholesky
/// pivot, or a non-finite update — emits [`SrFlow::Fallback`] and the
/// ladder steps down warm onto the Pipelined rung; audit divergence
/// emits [`SrFlow::Replace`] as usual. A negative fresh quadratic form
/// `(M⁻¹r, r)` is an indefinite preconditioner: typed error, exactly as
/// in the other rungs.
#[allow(clippy::too_many_arguments)]
fn sstep_loop<A: SparseOp>(
    k: &A,
    f: &[f64],
    u: &mut [f64],
    m: &impl Preconditioner,
    opts: &PcgOptions,
    ws: &mut PcgWorkspace,
    stats: &mut PcgStats,
    f_norm: f64,
    audit: &AuditPlan,
    start_iter: usize,
    initial_change: f64,
    s: usize,
    interval: SpectralInterval,
) -> Result<SrFlow, SparseError> {
    let n = u.len();
    let msteps = m.steps_per_apply();
    let PcgWorkspace {
        r,
        rhat: t,
        aud,
        precond_scratch,
        history,
        sstep,
        sstep_small,
        ..
    } = ws;

    // Six s×n column blocks; the (pa, apa)/(pb, apb) pairs alternate
    // between "current" and "previous" roles each outer step.
    let (v_blk, rest) = sstep.split_at_mut(s * n);
    let (av_blk, rest) = rest.split_at_mut(s * n);
    let (pa_blk, rest) = rest.split_at_mut(s * n);
    let (apa_blk, rest) = rest.split_at_mut(s * n);
    let (pb_blk, apb_blk) = rest.split_at_mut(s * n);
    let (g1, rest) = sstep_small.split_at_mut(s * s);
    let (g2, rest) = rest.split_at_mut(s * s);
    let (bmat, rest) = rest.split_at_mut(s * s);
    let (wfac_a, rest) = rest.split_at_mut(s * s);
    let (wfac_b, rest) = rest.split_at_mut(s * s);
    let (gv, rest) = rest.split_at_mut(s);
    let (gp, rest) = rest.split_at_mut(s);
    let (gcur, acoef) = rest.split_at_mut(s);

    // r = f − K·u (fresh on rung entry; a warm Replace re-entry makes
    // this re-derivation the residual replacement).
    vecops::copy(f, r);
    k.mul_vec_axpy(-1.0, u, r);
    stats.spmv += 1;

    // Zero the first "previous" parity so the unanimous-by-construction
    // Gram sweep over it reads deterministic zeros regardless of stale
    // workspace contents (its results are unused while B = 0).
    vecops::zero(pb_blk);
    vecops::zero(apb_blk);

    let theta = 0.5 * (interval.max + interval.min);
    let delta = 0.5 * (interval.max - interval.min);
    let degenerate = interval.is_degenerate();

    let mut completed = start_iter;
    let mut change = initial_change;
    let mut first_block = true;
    let mut parity = false;

    while completed + s <= opts.max_iterations {
        // Residual audit between outer steps (state after the previous
        // block), due when any of the block's sub-step indices hits the
        // audit schedule. Skipped once the replacement budget is spent.
        if audit.enabled
            && stats.replacements < audit.max_replacements
            && (completed + 1..=completed + s).any(|i| audit_due(i, start_iter, audit.period))
        {
            let dev2 = audit_deviation2(k, f, u, r, aud, stats);
            if diverged(dev2, audit.bound2) {
                return Ok(SrFlow::Replace { completed, change });
            }
        }

        let (p_cur, ap_cur, p_prev, ap_prev) = if parity {
            (&mut *pb_blk, &mut *apb_blk, &*pa_blk, &*apa_blk)
        } else {
            (&mut *pa_blk, &mut *apa_blk, &*pb_blk, &*apb_blk)
        };
        let (wfac_cur, wfac_prev) = if parity {
            (&mut *wfac_b, &*wfac_a)
        } else {
            (&mut *wfac_a, &*wfac_b)
        };

        // ---- Basis block: v₁ = M⁻¹r, then the three-term recurrence.
        m.apply_with(r, &mut v_blk[..n], precond_scratch);
        stats.precond_applications += 1;
        stats.precond_steps += msteps;
        for j in 1..s {
            k.mul_vec_into(&v_blk[(j - 1) * n..j * n], &mut av_blk[(j - 1) * n..j * n]);
            stats.spmv += 1;
            m.apply_with(&av_blk[(j - 1) * n..j * n], t, precond_scratch);
            stats.precond_applications += 1;
            stats.precond_steps += msteps;
            let (head, tail) = v_blk.split_at_mut(j * n);
            let vj = &mut tail[..n];
            let vp = &head[(j - 1) * n..];
            if degenerate {
                // Collapsed interval: scaled-monomial fallback vⱼ = t/θ
                // (θ > 0 for any safeguarded interval).
                vecops::fused_cheb_basis(1.0 / theta, 0.0, 0.0, t, vp, vp, vj);
            } else if j == 1 {
                vecops::fused_cheb_basis(1.0 / delta, theta, 0.0, t, vp, vp, vj);
            } else {
                let vpp = &head[(j - 2) * n..(j - 1) * n];
                vecops::fused_cheb_basis(2.0 / delta, theta, 1.0, t, vp, vpp, vj);
            }
        }
        // Final SpMV completes A·V (on the SPMD executor the Gram
        // partials below ride this phase's barrier).
        k.mul_vec_into(&v_blk[(s - 1) * n..], &mut av_blk[(s - 1) * n..]);
        stats.spmv += 1;

        // ---- ONE fused Gram reduction phase for the whole block.
        for i in 0..s {
            let avi = &av_blk[i * n..(i + 1) * n];
            for j in 0..=i {
                let d = vecops::dot(&v_blk[j * n..(j + 1) * n], avi);
                g1[i * s + j] = d;
                g1[j * s + i] = d;
            }
        }
        for i in 0..s {
            let api = &ap_prev[i * n..(i + 1) * n];
            for j in 0..s {
                g2[i * s + j] = vecops::dot(api, &v_blk[j * n..(j + 1) * n]);
            }
        }
        for j in 0..s {
            gv[j] = vecops::dot(&v_blk[j * n..(j + 1) * n], r);
            gp[j] = vecops::dot(&p_prev[j * n..(j + 1) * n], r);
        }
        let rr = vecops::dot(r, r);
        stats.inner_products += s * (s + 1) / 2 + s * s + 2 * s + 1;
        stats.reduction_phases += 1;

        // ---- Guards on the reduced scalars (the iterate is untouched).
        let finite = rr.is_finite()
            && g1.iter().all(|x| x.is_finite())
            && g2.iter().all(|x| x.is_finite())
            && gv.iter().all(|x| x.is_finite())
            && gp.iter().all(|x| x.is_finite());
        if !finite {
            stats.faults_detected += 1;
            return Ok(SrFlow::Fallback { completed, change });
        }
        // gv[0] = (M⁻¹r, r) is a fresh quadratic form every block.
        if gv[0] < 0.0 {
            return Err(SparseError::NotPositiveDefinite {
                pivot: completed,
                value: gv[0],
            });
        }
        if gv[0] == 0.0 {
            // Exact convergence: r = 0 under an SPD preconditioner.
            return Ok(SrFlow::Done(exit_report(
                k, f, u, r, stats, f_norm, completed, true, change,
            )));
        }
        if opts.criterion == StoppingCriterion::RelativeResidual {
            let rel = rr.sqrt() / f_norm.max(1e-300);
            if opts.record_history {
                history.push(rel);
            }
            if rel < opts.tol {
                return Ok(SrFlow::Done(exit_report(
                    k, f, u, r, stats, f_norm, completed, true, change,
                )));
            }
        }

        // ---- Replicated small dense work: coupling, Gram assembly,
        // Cholesky. (On the SPMD executor every worker runs this
        // identically on the reduced scalars — unanimous branching.)
        if first_block {
            // No previous block: B = 0, P = V, AP = AV, W = G1, g = gv.
            p_cur.copy_from_slice(v_blk);
            ap_cur.copy_from_slice(av_blk);
            wfac_cur.copy_from_slice(g1);
            gcur.copy_from_slice(gv);
        } else {
            // B = −W'⁻¹·G2, column by column via the carried factor.
            for j in 0..s {
                for i in 0..s {
                    acoef[i] = -g2[i * s + j];
                }
                small_cholesky_solve(wfac_prev, s, s, acoef);
                for i in 0..s {
                    bmat[i * s + j] = acoef[i];
                }
            }
            // P = V + P'·B and AP = AV + AP'·B (block A-conjugation).
            for j in 0..s {
                let pj = &mut p_cur[j * n..(j + 1) * n];
                pj.copy_from_slice(&v_blk[j * n..(j + 1) * n]);
                for i in 0..s {
                    vecops::axpy(bmat[i * s + j], &p_prev[i * n..(i + 1) * n], pj);
                }
            }
            for j in 0..s {
                let apj = &mut ap_cur[j * n..(j + 1) * n];
                apj.copy_from_slice(&av_blk[j * n..(j + 1) * n]);
                for i in 0..s {
                    vecops::axpy(bmat[i * s + j], &ap_prev[i * n..(i + 1) * n], apj);
                }
            }
            // W = PᵀKP = G1 + G2ᵀB (only the lower triangle feeds the
            // Cholesky, sidestepping the floating-point asymmetry of the
            // product), and g = gv + Bᵀgp.
            for i in 0..s {
                for j in 0..=i {
                    let mut sum = g1[i * s + j];
                    for q in 0..s {
                        sum += g2[q * s + i] * bmat[q * s + j];
                    }
                    wfac_cur[i * s + j] = sum;
                }
            }
            for j in 0..s {
                let mut sum = gv[j];
                for i in 0..s {
                    sum += bmat[i * s + j] * gp[i];
                }
                gcur[j] = sum;
            }
        }
        let cols = small_cholesky_factor(wfac_cur, s);
        if cols == 0 {
            // Ill-conditioned or indefinite Gram matrix: the basis has
            // numerically collapsed — step down the ladder warm.
            return Ok(SrFlow::Fallback { completed, change });
        }
        // cols < s is the endgame: the residual's Krylov grade ran out
        // mid-block. Take only the well-conditioned leading sub-steps
        // and restart the block recurrence from the updated residual —
        // the trailing "directions" are roundoff-level linear
        // dependencies whose coefficients would wreck the terminal
        // superlinear drop.
        acoef.copy_from_slice(gcur);
        small_cholesky_solve(wfac_cur, s, cols, acoef);
        if acoef[..cols].iter().any(|x| !x.is_finite()) {
            stats.faults_detected += 1;
            return Ok(SrFlow::Fallback { completed, change });
        }

        // ---- Local update sub-steps (all s of them, or the factored
        // leading `cols` in the endgame), each on the classic fused
        // update kernel with the classic per-iteration displacement.
        let mut converged_at = None;
        for j in 0..cols {
            let alpha = acoef[j];
            let norms = vecops::fused_axpy_axpy_norm(
                alpha,
                &p_cur[j * n..(j + 1) * n],
                &ap_cur[j * n..(j + 1) * n],
                u,
                r,
            );
            completed += 1;
            change = alpha.abs() * norms.p_norm_inf;
            if opts.record_history && opts.criterion == StoppingCriterion::DisplacementChange {
                history.push(change);
            }
            if !norms.all_finite() {
                // u took a finite update (α and p passed the Gram
                // guards); the next rung's r = f − K·u re-derivation
                // recovers the poisoned residual.
                stats.faults_detected += 1;
                return Ok(SrFlow::Fallback { completed, change });
            }
            if opts.criterion == StoppingCriterion::DisplacementChange && change < opts.tol {
                converged_at = Some(completed);
                break;
            }
        }
        if let Some(iterations) = converged_at {
            return Ok(SrFlow::Done(exit_report(
                k, f, u, r, stats, f_norm, iterations, true, change,
            )));
        }
        // An endgame-truncated block leaves no full-rank carried factor
        // to conjugate against — restart the recurrence from r.
        first_block = cols < s;
        parity = !parity;
    }

    // Budget exhausted (including a final sliver shorter than one block).
    Ok(SrFlow::Done(exit_report(
        k, f, u, r, stats, f_norm, completed, false, change,
    )))
}

/// Plain conjugate gradients (`M = I`) — the paper's `m = 0` baseline rows.
///
/// # Errors
/// Same classes as [`pcg_solve`].
pub fn cg_solve<A: SparseOp>(
    k: &A,
    f: &[f64],
    opts: &PcgOptions,
) -> Result<PcgSolution, SparseError> {
    pcg_solve(k, f, &IdentityPreconditioner::new(f.len()), opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mstep::MStepSsorPreconditioner;
    use crate::preconditioner::DiagonalPreconditioner;
    use mspcg_coloring::Coloring;
    use mspcg_sparse::CsrMatrix;
    use mspcg_sparse::{CooMatrix, Partition};

    fn laplacian(n: usize) -> CsrMatrix {
        let mut a = CooMatrix::new(n, n);
        for i in 0..n {
            a.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                a.push_sym(i, i + 1, -1.0).unwrap();
            }
        }
        a.to_csr()
    }

    fn rb(n: usize) -> (CsrMatrix, Partition) {
        let a = laplacian(n);
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let ord = Coloring::from_labels(labels, 2).unwrap().ordering();
        (ord.permute_matrix(&a).unwrap(), ord.partition)
    }

    #[test]
    fn cg_solves_laplacian_to_direct_accuracy() {
        let n = 24;
        let a = laplacian(n);
        let x_true: Vec<f64> = (0..n).map(|i| ((i * i) % 7) as f64 - 3.0).collect();
        let b = a.mul_vec(&x_true);
        let opts = PcgOptions {
            tol: 1e-12,
            criterion: StoppingCriterion::RelativeResidual,
            ..Default::default()
        };
        let sol = cg_solve(&a, &b, &opts).unwrap();
        assert!(sol.converged);
        for (u, v) in sol.x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn cg_on_zero_rhs_returns_zero() {
        let a = laplacian(5);
        let sol = cg_solve(&a, &[0.0; 5], &PcgOptions::default()).unwrap();
        assert!(sol.converged);
        assert_eq!(sol.iterations, 0);
        assert_eq!(sol.x, vec![0.0; 5]);
    }

    #[test]
    fn pcg_with_mstep_ssor_converges_in_fewer_iterations() {
        let (a, p) = rb(64);
        let x_true: Vec<f64> = (0..64).map(|i| (i as f64 * 0.1).sin()).collect();
        let b = a.mul_vec(&x_true);
        let opts = PcgOptions {
            tol: 1e-10,
            ..Default::default()
        };
        let plain = cg_solve(&a, &b, &opts).unwrap();
        let pre = MStepSsorPreconditioner::unparametrized(&a, &p, 1).unwrap();
        let pcg = pcg_solve(&a, &b, &pre, &opts).unwrap();
        assert!(pcg.converged && plain.converged);
        assert!(
            pcg.iterations < plain.iterations,
            "pcg {} !< cg {}",
            pcg.iterations,
            plain.iterations
        );
        // Both reach the true solution.
        for (u, v) in pcg.x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn parametrized_beats_unparametrized_at_same_m() {
        let (a, p) = rb(128);
        let b: Vec<f64> = (0..128).map(|i| ((i % 13) as f64) - 6.0).collect();
        let opts = PcgOptions {
            tol: 1e-10,
            ..Default::default()
        };
        for m in [2usize, 3, 4] {
            let un = MStepSsorPreconditioner::unparametrized(&a, &p, m).unwrap();
            let pa = MStepSsorPreconditioner::parametrized(&a, &p, m).unwrap();
            let s_un = pcg_solve(&a, &b, &un, &opts).unwrap();
            let s_pa = pcg_solve(&a, &b, &pa, &opts).unwrap();
            assert!(
                s_pa.iterations <= s_un.iterations,
                "m = {m}: parametrized {} > unparametrized {}",
                s_pa.iterations,
                s_un.iterations
            );
        }
    }

    #[test]
    fn iterations_decrease_with_m() {
        let (a, p) = rb(128);
        let b: Vec<f64> = (0..128).map(|i| (i as f64 * 0.05).cos()).collect();
        let opts = PcgOptions {
            tol: 1e-10,
            ..Default::default()
        };
        let iters: Vec<usize> = [1usize, 2, 4, 8]
            .iter()
            .map(|&m| {
                let pre = MStepSsorPreconditioner::unparametrized(&a, &p, m).unwrap();
                pcg_solve(&a, &b, &pre, &opts).unwrap().iterations
            })
            .collect();
        assert!(
            iters.windows(2).all(|w| w[1] <= w[0]),
            "not monotone: {iters:?}"
        );
    }

    #[test]
    fn indefinite_matrix_is_reported() {
        let mut c = CooMatrix::new(2, 2);
        c.push(0, 0, 1.0).unwrap();
        c.push(1, 1, -1.0).unwrap();
        let a = c.to_csr();
        let err = cg_solve(&a, &[1.0, 1.0], &PcgOptions::default());
        assert!(matches!(err, Err(SparseError::NotPositiveDefinite { .. })));
    }

    #[test]
    fn tiny_step_does_not_fake_residual_convergence() {
        // A stiff system takes a sub-tolerance *step* in its first
        // iteration while the relative residual is still enormous; under
        // the RelativeResidual criterion the budget exit must not promote
        // that step size to "converged".
        let mut a = laplacian(50);
        for v in a.values_mut() {
            *v *= 1e6;
        }
        let b = vec![1.0; 50];
        let opts = PcgOptions {
            tol: 1e-3,
            max_iterations: 1,
            criterion: StoppingCriterion::RelativeResidual,
            // Pinned classic: the premise needs the first iteration to
            // actually run, and a forced `sstep:S` block cannot fit a
            // 1-iteration budget (the s-step budget exit has its own
            // dedicated test).
            variant: PcgVariant::Classic,
            ..Default::default()
        };
        let mut ws = PcgWorkspace::new(50);
        let mut u = vec![0.0; 50];
        let rep = pcg_try_solve_into(
            &a,
            &b,
            &mut u,
            &IdentityPreconditioner::new(50),
            &opts,
            &mut ws,
        )
        .unwrap();
        assert!(
            rep.final_change < opts.tol,
            "test premise: step below tol, got {}",
            rep.final_change
        );
        assert!(rep.final_relative_residual > opts.tol);
        assert!(!rep.converged, "step size must not fake convergence");
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let a = laplacian(50);
        let b = vec![1.0; 50];
        let opts = PcgOptions {
            tol: 1e-14,
            max_iterations: 2,
            ..Default::default()
        };
        // Deliberately not pinned: exhaustion must surface under every
        // ambient variant. The count is granular — the s-step schedule
        // runs whole `s`-blocks, so a forced `sstep:S` with `S > 2`
        // exhausts this budget at 0 iterations.
        match cg_solve(&a, &b, &opts) {
            Err(SparseError::DidNotConverge { iterations, .. }) => {
                assert!(iterations <= 2, "budget overrun: {iterations}");
            }
            other => panic!("expected DidNotConverge, got {other:?}"),
        }
    }

    #[test]
    fn stats_count_two_inner_products_per_iteration() {
        let a = laplacian(16);
        let b = vec![1.0; 16];
        // Pinned classic: the count below is the classic loop's signature
        // (the env override must not redirect this assertion).
        let opts = PcgOptions {
            variant: PcgVariant::Classic,
            ..Default::default()
        };
        let sol = cg_solve(&a, &b, &opts).unwrap();
        // 1 initial + 2 per iteration, except the converging iteration (or
        // an exact-breakdown probe) skips the second one: ≈ 2·I total —
        // the paper's "two inner products per iteration".
        assert!(
            sol.stats.inner_products >= 2 * sol.iterations
                && sol.stats.inner_products <= 2 * sol.iterations + 2,
            "{} inner products for {} iterations",
            sol.stats.inner_products,
            sol.iterations
        );
        // + initial residual, + an exact-breakdown probe, + the true-residual
        // recompute on the breakdown exit path.
        assert!(sol.stats.spmv >= sol.iterations && sol.stats.spmv <= sol.iterations + 3);
    }

    #[test]
    fn history_is_recorded_and_decreasing_overall() {
        let a = laplacian(32);
        let b = vec![1.0; 32];
        let opts = PcgOptions {
            record_history: true,
            ..Default::default()
        };
        let sol = cg_solve(&a, &b, &opts).unwrap();
        assert_eq!(sol.history.len(), sol.iterations);
        let first = sol.history[0];
        let last = *sol.history.last().unwrap();
        assert!(last < first);
    }

    #[test]
    fn diagonal_preconditioner_equals_cg_on_constant_diagonal() {
        // With a constant diagonal, Jacobi scaling is a scalar multiple:
        // identical iterates, identical counts.
        let a = laplacian(20);
        let b: Vec<f64> = (0..20).map(|i| (i as f64).sin()).collect();
        let opts = PcgOptions {
            tol: 1e-9,
            ..Default::default()
        };
        let cg = cg_solve(&a, &b, &opts).unwrap();
        let dp = DiagonalPreconditioner::from_diag(&a.diag().unwrap()).unwrap();
        let pj = pcg_solve(&a, &b, &dp, &opts).unwrap();
        assert_eq!(cg.iterations, pj.iterations);
    }

    #[test]
    fn warm_start_converges_immediately_at_solution() {
        let a = laplacian(10);
        let x_true: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let b = a.mul_vec(&x_true);
        let pre = IdentityPreconditioner::new(10);
        let sol = pcg_solve_from(&a, &b, &x_true, &pre, &PcgOptions::default()).unwrap();
        assert!(sol.converged);
        assert!(sol.iterations <= 1);
    }

    #[test]
    fn workspace_reuse_is_deterministic() {
        // Two consecutive solves on one PcgWorkspace must agree bitwise,
        // and both must agree with the allocating wrapper.
        let (a, p) = rb(64);
        let pre = MStepSsorPreconditioner::unparametrized(&a, &p, 2).unwrap();
        let b: Vec<f64> = (0..64).map(|i| ((i * 11 + 3) % 17) as f64 - 8.0).collect();
        let opts = PcgOptions {
            tol: 1e-10,
            ..Default::default()
        };
        let mut ws = PcgWorkspace::new(64);
        let mut u1 = vec![0.0; 64];
        let rep1 = pcg_solve_into(&a, &b, &mut u1, &pre, &opts, &mut ws).unwrap();
        let mut u2 = vec![0.0; 64];
        let rep2 = pcg_solve_into(&a, &b, &mut u2, &pre, &opts, &mut ws).unwrap();
        assert_eq!(u1, u2);
        assert_eq!(rep1.iterations, rep2.iterations);
        assert_eq!(rep1.final_change, rep2.final_change);
        let sol = pcg_solve(&a, &b, &pre, &opts).unwrap();
        assert_eq!(sol.x, u1);
        assert_eq!(sol.iterations, rep1.iterations);
    }

    #[test]
    fn workspace_records_history_and_resizes() {
        let a = laplacian(20);
        let b = vec![1.0; 20];
        let opts = PcgOptions {
            record_history: true,
            ..Default::default()
        };
        let mut ws = PcgWorkspace::new(4); // undersized: must self-resize
        ws.reserve_history(64);
        let mut u = vec![0.0; 20];
        let rep = pcg_solve_into(
            &a,
            &b,
            &mut u,
            &IdentityPreconditioner::new(20),
            &opts,
            &mut ws,
        )
        .unwrap();
        assert_eq!(ws.dim(), 20);
        assert_eq!(ws.history().len(), rep.iterations);
        let sol = cg_solve(&a, &b, &opts).unwrap();
        assert_eq!(sol.history, ws.history());
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = laplacian(4);
        let err = cg_solve(&a, &[1.0; 5], &PcgOptions::default());
        assert!(matches!(err, Err(SparseError::ShapeMismatch { .. })));
    }

    fn variant_opts(variant: PcgVariant, tol: f64) -> PcgOptions {
        PcgOptions {
            tol,
            variant,
            ..Default::default()
        }
    }

    #[test]
    fn single_reduction_matches_classic_solution() {
        let (a, p) = rb(128);
        let b: Vec<f64> = (0..128)
            .map(|i| ((i * 7 + 5) % 23) as f64 * 0.2 - 2.0)
            .collect();
        for m in [1usize, 2, 4] {
            let pre = MStepSsorPreconditioner::unparametrized(&a, &p, m).unwrap();
            let classic =
                pcg_solve(&a, &b, &pre, &variant_opts(PcgVariant::Classic, 1e-10)).unwrap();
            let sr = pcg_solve(
                &a,
                &b,
                &pre,
                &variant_opts(PcgVariant::SingleReduction, 1e-10),
            )
            .unwrap();
            assert!(classic.converged && sr.converged);
            // Same preconditioned Krylov space: iteration counts agree to
            // within rounding slack, solutions to solver accuracy.
            assert!(
                (classic.iterations as isize - sr.iterations as isize).abs() <= 2,
                "m = {m}: classic {} vs single-reduction {}",
                classic.iterations,
                sr.iterations
            );
            for (x, y) in classic.x.iter().zip(&sr.x) {
                assert!((x - y).abs() < 1e-7, "m = {m}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn single_reduction_performs_one_reduction_phase_per_iteration() {
        let (a, p) = rb(96);
        let b: Vec<f64> = (0..96).map(|i| (i as f64 * 0.17).sin()).collect();
        let pre = MStepSsorPreconditioner::unparametrized(&a, &p, 2).unwrap();
        let sr = pcg_solve(
            &a,
            &b,
            &pre,
            &variant_opts(PcgVariant::SingleReduction, 1e-10),
        )
        .unwrap();
        // 1 init phase + 1 per iteration (the converging displacement-test
        // iteration skips its reduction phase).
        assert!(
            sr.stats.reduction_phases >= sr.iterations
                && sr.stats.reduction_phases <= sr.iterations + 1,
            "{} reduction phases for {} iterations",
            sr.stats.reduction_phases,
            sr.iterations
        );
        // 3 fused dots per full iteration + 2 at init.
        assert!(
            sr.stats.inner_products <= 3 * sr.iterations + 2,
            "{} inner products for {} iterations",
            sr.stats.inner_products,
            sr.iterations
        );
        let classic = pcg_solve(&a, &b, &pre, &variant_opts(PcgVariant::Classic, 1e-10)).unwrap();
        // Classic serializes two phases per iteration.
        assert!(
            classic.stats.reduction_phases >= 2 * classic.iterations,
            "{} classic phases for {} iterations",
            classic.stats.reduction_phases,
            classic.iterations
        );
    }

    #[test]
    fn single_reduction_workspace_reuse_is_bitwise_deterministic() {
        let (a, p) = rb(64);
        let pre = MStepSsorPreconditioner::unparametrized(&a, &p, 2).unwrap();
        let b: Vec<f64> = (0..64).map(|i| ((i * 11 + 3) % 17) as f64 - 8.0).collect();
        let opts = variant_opts(PcgVariant::SingleReduction, 1e-10);
        let mut ws = PcgWorkspace::new(64);
        let mut u1 = vec![0.0; 64];
        let rep1 = pcg_solve_into(&a, &b, &mut u1, &pre, &opts, &mut ws).unwrap();
        let mut u2 = vec![0.0; 64];
        let rep2 = pcg_solve_into(&a, &b, &mut u2, &pre, &opts, &mut ws).unwrap();
        assert_eq!(u1, u2);
        assert_eq!(rep1.iterations, rep2.iterations);
        assert_eq!(rep1.final_change.to_bits(), rep2.final_change.to_bits());
    }

    #[test]
    fn single_reduction_rejects_indefinite_matrix_via_fallback() {
        // Indefinite K: the single-reduction guards hand the iterate to
        // the classic loop, whose probes produce the canonical error — the
        // two variants must agree on the failure class.
        let mut c = CooMatrix::new(2, 2);
        c.push(0, 0, 1.0).unwrap();
        c.push(1, 1, -1.0).unwrap();
        let a = c.to_csr();
        let err = cg_solve(
            &a,
            &[1.0, 1.0],
            &variant_opts(PcgVariant::SingleReduction, 1e-6),
        );
        assert!(matches!(err, Err(SparseError::NotPositiveDefinite { .. })));
    }

    #[test]
    fn single_reduction_budget_exhaustion_reports_true_residual() {
        let a = laplacian(50);
        let b = vec![1.0; 50];
        let opts = PcgOptions {
            tol: 1e-14,
            max_iterations: 3,
            variant: PcgVariant::SingleReduction,
            ..Default::default()
        };
        let mut ws = PcgWorkspace::new(50);
        let mut u = vec![0.0; 50];
        let rep = pcg_try_solve_into(
            &a,
            &b,
            &mut u,
            &IdentityPreconditioner::new(50),
            &opts,
            &mut ws,
        )
        .unwrap();
        assert!(!rep.converged);
        assert_eq!(rep.iterations, 3);
        assert!(rep.final_relative_residual.is_finite() && rep.final_relative_residual > 0.0);
    }

    #[test]
    fn single_reduction_zero_rhs_and_warm_start() {
        let a = laplacian(10);
        let opts = variant_opts(PcgVariant::SingleReduction, 1e-8);
        let sol = cg_solve(&a, &[0.0; 10], &opts).unwrap();
        assert!(sol.converged);
        assert_eq!(sol.x, vec![0.0; 10]);
        // Warm start at the exact solution: γ = 0 at init.
        let x_true: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let b = a.mul_vec(&x_true);
        let pre = IdentityPreconditioner::new(10);
        let sol = pcg_solve_from(&a, &b, &x_true, &pre, &opts).unwrap();
        assert!(sol.converged);
        assert!(sol.iterations <= 1);
    }

    /// A "preconditioner" that is the identity except on one application,
    /// where it returns a vector crafted to drive the Chronopoulos–Gear
    /// reconstructed denominator `δ − β·γ′/α` nonpositive while `K` stays
    /// SPD — the classic loop's true `(p, Kp)` never goes nonpositive, so
    /// the fallback must rescue the solve rather than error.
    struct SabotagePreconditioner {
        n: usize,
        at_call: usize,
        calls: std::cell::Cell<usize>,
    }

    impl Preconditioner for SabotagePreconditioner {
        fn dim(&self) -> usize {
            self.n
        }
        fn apply(&self, r: &[f64], z: &mut [f64]) {
            let call = self.calls.get();
            self.calls.set(call + 1);
            z.copy_from_slice(r);
            if call == self.at_call {
                // Add a huge component along the constant vector — the
                // 1-D Laplacian's lowest-curvature direction, so (z, Kz)
                // grows far slower than (r, z)² and the reconstructed
                // denominator goes negative. Signed by Σr to keep
                // γ′ = (r, z) positive (a negative γ′ would be the
                // indefinite-M error path, not the fallback).
                let s: f64 = r.iter().sum();
                let t = 1e6f64.copysign(s);
                for zi in z.iter_mut() {
                    *zi += t;
                }
            }
        }
    }

    #[test]
    fn recurrence_breakdown_falls_back_to_classic_and_converges() {
        let a = laplacian(32);
        let x_true: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).cos()).collect();
        let b = a.mul_vec(&x_true);
        let pre = SabotagePreconditioner {
            n: 32,
            at_call: 2,
            calls: std::cell::Cell::new(0),
        };
        let opts = PcgOptions {
            tol: 1e-10,
            criterion: StoppingCriterion::RelativeResidual,
            variant: PcgVariant::SingleReduction,
            ..Default::default()
        };
        let sol = pcg_solve(&a, &b, &pre, &opts).unwrap();
        assert!(sol.converged, "fallback did not rescue the solve");
        assert!(sol.final_relative_residual < 1e-10);
        for (x, y) in sol.x.iter().zip(&x_true) {
            assert!((x - y).abs() < 1e-6);
        }
        // The report says FALLBACK: the rescue is a recorded event, not a
        // silent rerun.
        assert_eq!(sol.stats.fallbacks, 1);
        // The classic continuation is visible in the counters: a pure
        // single-reduction run performs at most iterations + 1 phases,
        // while the fallback's classic suffix adds two per iteration.
        assert!(
            sol.stats.reduction_phases >= sol.iterations + 2,
            "{} phases for {} iterations — fallback never ran",
            sol.stats.reduction_phases,
            sol.iterations
        );
    }

    #[test]
    fn pipelined_matches_classic_solution() {
        let (a, p) = rb(128);
        let b: Vec<f64> = (0..128)
            .map(|i| ((i * 7 + 5) % 23) as f64 * 0.2 - 2.0)
            .collect();
        for m in [1usize, 2, 4] {
            let pre = MStepSsorPreconditioner::unparametrized(&a, &p, m).unwrap();
            let classic =
                pcg_solve(&a, &b, &pre, &variant_opts(PcgVariant::Classic, 1e-8)).unwrap();
            let pl = pcg_solve(&a, &b, &pre, &variant_opts(PcgVariant::Pipelined, 1e-8)).unwrap();
            assert!(classic.converged && pl.converged);
            // At essential convergence the carried γ′ can dip nonpositive
            // and trip the guard — the designed breakdown path. The
            // ladder steps Pipelined → SingleReduction → Classic, and the
            // single-reduction rung can itself break down near
            // convergence, so up to two steps are legitimate; more would
            // mean the guards thrash.
            assert!(pl.stats.fallbacks <= 2, "m = {m}: guards thrash");
            // The pipelined recurrences drift more than the single-
            // reduction ones; the Krylov space is still the same.
            assert!(
                (classic.iterations as isize - pl.iterations as isize).abs() <= 3,
                "m = {m}: classic {} vs pipelined {}",
                classic.iterations,
                pl.iterations
            );
            let scale = pl.x.iter().fold(1.0f64, |a, &v| a.max(v.abs()));
            for (x, y) in classic.x.iter().zip(&pl.x) {
                assert!((x - y).abs() < 1e-5 * scale, "m = {m}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn pipelined_performs_one_reduction_phase_per_iteration() {
        let (a, p) = rb(96);
        let b: Vec<f64> = (0..96).map(|i| (i as f64 * 0.17).sin()).collect();
        let pre = MStepSsorPreconditioner::unparametrized(&a, &p, 2).unwrap();
        let pl = pcg_solve(&a, &b, &pre, &variant_opts(PcgVariant::Pipelined, 1e-10)).unwrap();
        // 1 init phase + 1 per iteration (the converging displacement-test
        // iteration exits before its reduction phase).
        assert!(
            pl.stats.reduction_phases >= pl.iterations
                && pl.stats.reduction_phases <= pl.iterations + 1,
            "{} reduction phases for {} iterations",
            pl.stats.reduction_phases,
            pl.iterations
        );
        // One SpMV per full iteration (nv = K·mv) + three at init.
        assert!(
            pl.stats.spmv <= pl.iterations + 3,
            "{} SpMVs for {} iterations",
            pl.stats.spmv,
            pl.iterations
        );
        // One preconditioner application per full iteration + two at init.
        assert!(
            pl.stats.precond_applications <= pl.iterations + 2,
            "{} preconditioner applications for {} iterations",
            pl.stats.precond_applications,
            pl.iterations
        );
    }

    #[test]
    fn pipelined_workspace_reuse_is_bitwise_deterministic() {
        let (a, p) = rb(64);
        let pre = MStepSsorPreconditioner::unparametrized(&a, &p, 2).unwrap();
        let b: Vec<f64> = (0..64).map(|i| ((i * 11 + 3) % 17) as f64 - 8.0).collect();
        let opts = variant_opts(PcgVariant::Pipelined, 1e-10);
        let mut ws = PcgWorkspace::new(64);
        let mut u1 = vec![0.0; 64];
        let rep1 = pcg_solve_into(&a, &b, &mut u1, &pre, &opts, &mut ws).unwrap();
        let mut u2 = vec![0.0; 64];
        let rep2 = pcg_solve_into(&a, &b, &mut u2, &pre, &opts, &mut ws).unwrap();
        assert_eq!(u1, u2);
        assert_eq!(rep1.iterations, rep2.iterations);
        assert_eq!(rep1.final_change.to_bits(), rep2.final_change.to_bits());
    }

    #[test]
    fn pipelined_rejects_indefinite_matrix_via_fallback() {
        // Indefinite K: the pipelined guards hand the iterate to the
        // classic loop, whose probes produce the canonical error.
        let mut c = CooMatrix::new(2, 2);
        c.push(0, 0, 1.0).unwrap();
        c.push(1, 1, -1.0).unwrap();
        let a = c.to_csr();
        let err = cg_solve(&a, &[1.0, 1.0], &variant_opts(PcgVariant::Pipelined, 1e-6));
        assert!(matches!(err, Err(SparseError::NotPositiveDefinite { .. })));
    }

    #[test]
    fn pipelined_budget_exhaustion_reports_true_residual() {
        let a = laplacian(50);
        let b = vec![1.0; 50];
        let opts = PcgOptions {
            tol: 1e-14,
            max_iterations: 3,
            variant: PcgVariant::Pipelined,
            ..Default::default()
        };
        let mut ws = PcgWorkspace::new(50);
        let mut u = vec![0.0; 50];
        let rep = pcg_try_solve_into(
            &a,
            &b,
            &mut u,
            &IdentityPreconditioner::new(50),
            &opts,
            &mut ws,
        )
        .unwrap();
        assert!(!rep.converged);
        assert_eq!(rep.iterations, 3);
        assert!(rep.final_relative_residual.is_finite() && rep.final_relative_residual > 0.0);
    }

    #[test]
    fn pipelined_zero_rhs_and_warm_start() {
        let a = laplacian(10);
        let opts = variant_opts(PcgVariant::Pipelined, 1e-8);
        let sol = cg_solve(&a, &[0.0; 10], &opts).unwrap();
        assert!(sol.converged);
        assert_eq!(sol.x, vec![0.0; 10]);
        // Warm start at the exact solution: γ = 0 at init.
        let x_true: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let b = a.mul_vec(&x_true);
        let pre = IdentityPreconditioner::new(10);
        let sol = pcg_solve_from(&a, &b, &x_true, &pre, &opts).unwrap();
        assert!(sol.converged);
        assert!(sol.iterations <= 1);
    }

    #[test]
    fn sstep_matches_classic_solution() {
        let (a, p) = rb(128);
        let b: Vec<f64> = (0..128)
            .map(|i| ((i * 7 + 5) % 23) as f64 * 0.2 - 2.0)
            .collect();
        for s in [2usize, 4] {
            for m in [1usize, 2] {
                let pre = MStepSsorPreconditioner::unparametrized(&a, &p, m).unwrap();
                let classic =
                    pcg_solve(&a, &b, &pre, &variant_opts(PcgVariant::Classic, 1e-10)).unwrap();
                let ss =
                    pcg_solve(&a, &b, &pre, &variant_opts(PcgVariant::SStep { s }, 1e-10)).unwrap();
                assert!(classic.converged && ss.converged);
                // Exact-arithmetic equivalent iteration: counts agree to
                // within block-granularity slack.
                assert!(
                    (classic.iterations as isize - ss.iterations as isize).abs()
                        <= 2 * s as isize + 2,
                    "s = {s}, m = {m}: classic {} vs s-step {}",
                    classic.iterations,
                    ss.iterations
                );
                for (x, y) in classic.x.iter().zip(&ss.x) {
                    assert!((x - y).abs() < 1e-7, "s = {s}, m = {m}: {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn sstep_performs_one_reduction_phase_per_outer_step() {
        let (a, p) = rb(96);
        let b: Vec<f64> = (0..96).map(|i| (i as f64 * 0.17).sin()).collect();
        for s in [2usize, 4] {
            let pre = MStepSsorPreconditioner::unparametrized(&a, &p, 2).unwrap();
            let ss =
                pcg_solve(&a, &b, &pre, &variant_opts(PcgVariant::SStep { s }, 1e-10)).unwrap();
            assert!(ss.converged);
            assert_eq!(ss.stats.fallbacks, 0, "s = {s}: breakdown on a clean solve");
            // EXACTLY one fused Gram reduction phase per outer step — the
            // tentpole schedule (≈ 1/s phases per iteration).
            let outer = ss.iterations.div_ceil(s);
            assert_eq!(
                ss.stats.reduction_phases, outer,
                "s = {s}: {} phases for {} iterations",
                ss.stats.reduction_phases, ss.iterations
            );
            // …and the phase's exact scalar census: G1 (symmetric half),
            // G2, gv, gp, and the entering ‖r‖₂².
            let per_phase = s * (s + 1) / 2 + s * s + 2 * s + 1;
            assert_eq!(
                ss.stats.inner_products,
                outer * per_phase,
                "s = {s}: {} inner products over {} outer steps",
                ss.stats.inner_products,
                outer
            );
        }
    }

    #[test]
    fn sstep_workspace_reuse_is_bitwise_deterministic_and_caches_interval() {
        let (a, p) = rb(64);
        let pre = MStepSsorPreconditioner::unparametrized(&a, &p, 2).unwrap();
        let b: Vec<f64> = (0..64).map(|i| ((i * 11 + 3) % 17) as f64 - 8.0).collect();
        let opts = variant_opts(PcgVariant::SStep { s: 4 }, 1e-10);
        let mut ws = PcgWorkspace::new(64);
        let mut u1 = vec![0.0; 64];
        let rep1 = pcg_solve_into(&a, &b, &mut u1, &pre, &opts, &mut ws).unwrap();
        // The first s-step solve paid ONE spectral estimate and cached it…
        let cached = ws.sstep_interval.expect("interval must be cached");
        let mut u2 = vec![0.0; 64];
        let rep2 = pcg_solve_into(&a, &b, &mut u2, &pre, &opts, &mut ws).unwrap();
        // …which the second solve reused unchanged (Lanczos once per
        // workspace × operator), replaying bitwise.
        assert_eq!(ws.sstep_interval, Some(cached));
        assert_eq!(u1, u2);
        assert_eq!(rep1.iterations, rep2.iterations);
        assert_eq!(rep1.final_change.to_bits(), rep2.final_change.to_bits());
    }

    #[test]
    fn sstep_reuses_polynomial_precond_interval_across_the_boundary() {
        // The poly-precond ↔ s-step-basis half of the interval cache: a
        // solve preconditioned by the polynomial preconditioner must take
        // the basis bounds from its spectral hint and never run (or cache)
        // a second estimate.
        let a = laplacian(48);
        let pre = crate::poly::PolynomialPreconditioner::chebyshev(a.clone(), 4).unwrap();
        let b: Vec<f64> = (0..48).map(|i| (i as f64 * 0.3).cos()).collect();
        let opts = variant_opts(PcgVariant::SStep { s: 4 }, 1e-10);
        let mut ws = PcgWorkspace::new(48);
        let mut u = vec![0.0; 48];
        let rep = pcg_solve_into(&a, &b, &mut u, &pre, &opts, &mut ws).unwrap();
        assert!(rep.converged);
        assert_eq!(
            ws.sstep_interval, None,
            "hint path must not burn a workspace estimate"
        );
    }

    #[test]
    fn sstep_degenerate_hint_takes_the_monomial_fallback_and_converges() {
        // A collapsed spectral hint (λmin = λmax) must not poison the
        // basis: the recurrence degrades to a scaled monomial basis and
        // the solve still converges.
        struct DegenerateHint(IdentityPreconditioner);
        impl Preconditioner for DegenerateHint {
            fn dim(&self) -> usize {
                self.0.dim()
            }
            fn apply(&self, r: &[f64], z: &mut [f64]) {
                self.0.apply(r, z);
            }
            fn steps_per_apply(&self) -> usize {
                0
            }
            fn spectral_hint(&self) -> Option<SpectralInterval> {
                Some(SpectralInterval {
                    min: 2.0,
                    max: 2.0,
                    steps: 1,
                })
            }
        }
        let a = laplacian(32);
        let x_true: Vec<f64> = (0..32).map(|i| (i as f64 * 0.4).sin()).collect();
        let b = a.mul_vec(&x_true);
        let opts = variant_opts(PcgVariant::SStep { s: 2 }, 1e-10);
        let sol = pcg_solve(
            &a,
            &b,
            &DegenerateHint(IdentityPreconditioner::new(32)),
            &opts,
        )
        .unwrap();
        assert!(sol.converged);
        for (x, y) in sol.x.iter().zip(&x_true) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn sstep_rejects_indefinite_matrix_via_fallback() {
        let mut c = CooMatrix::new(2, 2);
        c.push(0, 0, 1.0).unwrap();
        c.push(1, 1, -1.0).unwrap();
        let a = c.to_csr();
        let err = cg_solve(
            &a,
            &[1.0, 1.0],
            &variant_opts(PcgVariant::SStep { s: 2 }, 1e-6),
        );
        assert!(matches!(err, Err(SparseError::NotPositiveDefinite { .. })));
    }

    #[test]
    fn sstep_budget_exhaustion_reports_true_residual() {
        let a = laplacian(50);
        let b = vec![1.0; 50];
        let opts = PcgOptions {
            tol: 1e-14,
            max_iterations: 3,
            variant: PcgVariant::SStep { s: 2 },
            ..Default::default()
        };
        let mut ws = PcgWorkspace::new(50);
        let mut u = vec![0.0; 50];
        let rep = pcg_try_solve_into(
            &a,
            &b,
            &mut u,
            &IdentityPreconditioner::new(50),
            &opts,
            &mut ws,
        )
        .unwrap();
        assert!(!rep.converged);
        // A final sliver shorter than one block is not run: 3 budgeted
        // iterations fit one s = 2 block.
        assert_eq!(rep.iterations, 2);
        assert!(rep.final_relative_residual.is_finite() && rep.final_relative_residual > 0.0);
    }

    #[test]
    fn sstep_zero_rhs_and_warm_start() {
        let a = laplacian(10);
        let opts = variant_opts(PcgVariant::SStep { s: 2 }, 1e-8);
        let sol = cg_solve(&a, &[0.0; 10], &opts).unwrap();
        assert!(sol.converged);
        assert_eq!(sol.x, vec![0.0; 10]);
        // Warm start at the exact solution: γ = (M⁻¹r, r) = 0 at the
        // first Gram phase.
        let x_true: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let b = a.mul_vec(&x_true);
        let pre = IdentityPreconditioner::new(10);
        let sol = pcg_solve_from(&a, &b, &x_true, &pre, &opts).unwrap();
        assert!(sol.converged);
        assert_eq!(sol.iterations, 0);
    }

    #[test]
    fn sstep_nan_mid_block_falls_back_down_the_ladder_and_converges() {
        // A NaN out of a basis msolve mid-block poisons the Gram scalars:
        // the finiteness guard fires (the iterate is untouched), the
        // ladder steps down warm onto the pipelined rung, and the rescue
        // must converge — with the detection and the single ladder step
        // visible in the counters.
        struct NanOnce {
            n: usize,
            at_call: usize,
            calls: std::cell::Cell<usize>,
        }
        impl Preconditioner for NanOnce {
            fn dim(&self) -> usize {
                self.n
            }
            fn apply(&self, r: &[f64], z: &mut [f64]) {
                let call = self.calls.get();
                self.calls.set(call + 1);
                z.copy_from_slice(r);
                if call == self.at_call {
                    z[0] = f64::NAN;
                }
            }
            // Pin the basis bounds (M ≈ I, so M⁻¹K is the laplacian)
            // so no setup Lanczos runs and the counted applies are
            // exactly the solve's own msolves.
            fn spectral_hint(&self) -> Option<SpectralInterval> {
                Some(SpectralInterval {
                    min: 0.009,
                    max: 3.992,
                    steps: 1,
                })
            }
        }
        let a = laplacian(32);
        let x_true: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).cos()).collect();
        let b = a.mul_vec(&x_true);
        let pre = NanOnce {
            n: 32,
            at_call: 2, // a basis msolve inside the first outer step
            calls: std::cell::Cell::new(0),
        };
        let opts = PcgOptions {
            tol: 1e-10,
            criterion: StoppingCriterion::RelativeResidual,
            variant: PcgVariant::SStep { s: 4 },
            recovery: RecoveryPolicy::off(),
            ..Default::default()
        };
        let sol = pcg_solve(&a, &b, &pre, &opts).unwrap();
        assert!(sol.converged, "fallback did not rescue the solve");
        assert!(sol.final_relative_residual < 1e-10);
        for (x, y) in sol.x.iter().zip(&x_true) {
            assert!((x - y).abs() < 1e-6);
        }
        assert_eq!(sol.stats.faults_detected, 1);
        assert_eq!(sol.stats.fallbacks, 1);
        assert_eq!(sol.stats.replacements, 0);
    }

    #[test]
    fn pipelined_breakdown_falls_back_to_classic_and_converges() {
        // The sabotaged application lands on mv = M⁻¹w (the pipelined
        // heavy phase), poisoning the q/z carries: the next iteration's
        // carried γ′/δ disagree with the true quadratic forms and a guard
        // fires. The fallback must continue from the current iterate —
        // visible in the counters — and the report must say FALLBACK.
        let a = laplacian(32);
        let x_true: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).cos()).collect();
        let b = a.mul_vec(&x_true);
        let pre = SabotagePreconditioner {
            n: 32,
            at_call: 3,
            calls: std::cell::Cell::new(0),
        };
        let opts = PcgOptions {
            tol: 1e-10,
            criterion: StoppingCriterion::RelativeResidual,
            variant: PcgVariant::Pipelined,
            ..Default::default()
        };
        let sol = pcg_solve(&a, &b, &pre, &opts).unwrap();
        assert!(sol.converged, "fallback did not rescue the solve");
        assert!(sol.final_relative_residual < 1e-10);
        for (x, y) in sol.x.iter().zip(&x_true) {
            assert!((x - y).abs() < 1e-6);
        }
        // The report says FALLBACK. The ladder now steps through the
        // single-reduction rung first; it usually finishes the rescue
        // itself (one step), but may break down near convergence and hand
        // off to classic (two).
        assert!(
            (1..=2).contains(&sol.stats.fallbacks),
            "fallbacks = {}",
            sol.stats.fallbacks
        );
        // …and the continuation ran from the current iterate: the rescue
        // rungs' extra phases are visible in the counter.
        assert!(
            sol.stats.reduction_phases >= sol.iterations + 2,
            "{} phases for {} iterations — fallback never ran",
            sol.stats.reduction_phases,
            sol.iterations
        );
    }

    #[test]
    fn non_finite_inputs_and_tolerances_are_rejected_up_front() {
        let a = laplacian(8);
        let mut b = vec![1.0; 8];
        b[3] = f64::NAN;
        assert!(matches!(
            cg_solve(&a, &b, &PcgOptions::default()),
            Err(SparseError::NonFinite {
                phase: "rhs",
                iteration: 0
            })
        ));
        let b = vec![1.0; 8];
        let mut u0 = vec![0.0; 8];
        u0[0] = f64::INFINITY;
        let pre = IdentityPreconditioner::new(8);
        assert!(matches!(
            pcg_solve_from(&a, &b, &u0, &pre, &PcgOptions::default()),
            Err(SparseError::NonFinite {
                phase: "initial-guess",
                iteration: 0
            })
        ));
        for bad in [0.0, -1e-6, f64::NAN, f64::INFINITY] {
            let opts = PcgOptions {
                tol: bad,
                ..Default::default()
            };
            assert!(
                matches!(
                    cg_solve(&a, &b, &opts),
                    Err(SparseError::InvalidTolerance { .. })
                ),
                "tolerance {bad} accepted"
            );
        }
    }

    #[test]
    fn classic_recovers_in_place_from_injected_nan_in_msolve() {
        use crate::recovery::{ApplicationFault, FaultKind, FaultyPreconditioner};
        let a = laplacian(32);
        let x_true: Vec<f64> = (0..32).map(|i| (i as f64 * 0.2).sin()).collect();
        let b = a.mul_vec(&x_true);
        // NaN out of msolve application 2 (init is application 0, then
        // one per iteration): the classic loop must detect it on the
        // (r̂, r) scalar, restart in place, and still converge — no audit
        // and no opt-in needed (non-finite detection is always on).
        let pre = FaultyPreconditioner::new(
            IdentityPreconditioner::new(32),
            vec![ApplicationFault {
                application: 2,
                index: 7,
                kind: FaultKind::NaN,
            }],
        );
        let opts = PcgOptions {
            tol: 1e-10,
            criterion: StoppingCriterion::RelativeResidual,
            variant: PcgVariant::Classic,
            // Pin the exact counters below against environment overrides
            // (MSPCG_RESIDUAL_REPLACEMENT=1 would add audits).
            recovery: crate::recovery::RecoveryPolicy::off(),
            ..Default::default()
        };
        let sol = pcg_solve(&a, &b, &pre, &opts).unwrap();
        assert!(sol.converged);
        assert!(sol.final_relative_residual < 1e-10);
        assert_eq!(pre.injected(), 1);
        // Exact counters: one detection, one in-place recovery, no ladder
        // step, no audits (auditing pinned off).
        assert_eq!(sol.stats.faults_detected, 1);
        assert_eq!(sol.stats.replacements, 1);
        assert_eq!(sol.stats.fallbacks, 0);
        assert_eq!(sol.stats.audits, 0);
        for (x, y) in sol.x.iter().zip(&x_true) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn exhausted_replacement_budget_surfaces_typed_nonfinite_error() {
        use crate::recovery::{ApplicationFault, FaultKind, FaultyPreconditioner, RecoveryPolicy};
        let a = laplacian(16);
        let b = vec![1.0; 16];
        let pre = FaultyPreconditioner::new(
            IdentityPreconditioner::new(16),
            vec![ApplicationFault {
                application: 1,
                index: 0,
                kind: FaultKind::NaN,
            }],
        );
        let opts = PcgOptions {
            variant: PcgVariant::Classic,
            recovery: RecoveryPolicy {
                max_replacements: 0,
                ..RecoveryPolicy::off()
            },
            ..Default::default()
        };
        assert!(matches!(
            pcg_solve(&a, &b, &pre, &opts),
            Err(SparseError::NonFinite {
                phase: "msolve-reduction",
                ..
            })
        ));
    }

    #[test]
    fn audit_catches_silent_spmv_corruption_and_replaces() {
        use crate::recovery::{ApplicationFault, FaultKind, FaultyOp, RecoveryPolicy};
        let a = laplacian(64);
        let x_true: Vec<f64> = (0..64).map(|i| (i as f64 * 0.13).cos()).collect();
        let b = SparseOp::mul_vec(&a, &x_true);
        // A moderate, FINITE corruption of one SpMV output: in the
        // single-reduction recurrence the poisoned w flows into the `s`
        // carry at the next direction update, after which `r −= αs` and
        // `u += αp` use INCONSISTENT vectors — the recurrence residual
        // silently drifts from `f − K·u`. The perturbation is kept small
        // enough that every reduction scalar stays finite and plausible
        // (a huge one would trip the breakdown guards instead), so only
        // the audit can catch it.
        let op = FaultyOp::new(
            a.clone(),
            vec![ApplicationFault {
                application: 4,
                index: 20,
                kind: FaultKind::ScaledNoise(0.01),
            }],
        );
        let opts = PcgOptions {
            tol: 1e-10,
            criterion: StoppingCriterion::RelativeResidual,
            variant: PcgVariant::SingleReduction,
            recovery: RecoveryPolicy {
                audit_period: 4,
                ..RecoveryPolicy::on()
            },
            ..Default::default()
        };
        let sol = pcg_solve(&op, &b, &IdentityPreconditioner::new(64), &opts).unwrap();
        assert!(sol.converged, "replacement did not rescue the solve");
        assert_eq!(op.injected(), 1);
        assert!(sol.stats.audits >= 1, "no audit ran");
        assert!(
            sol.stats.replacements >= 1,
            "drift was never replaced: iters = {}, stats = {:?}",
            sol.iterations,
            sol.stats
        );
        assert_eq!(sol.stats.faults_detected, 0, "corruption was finite");
        // Converged to the TRUE residual tolerance: verify from scratch
        // against the clean matrix.
        let mut rt = b.clone();
        SparseOp::mul_vec_axpy(&a, -1.0, &sol.x, &mut rt);
        let rel = vecops::norm2(&rt) / vecops::norm2(&b);
        assert!(rel < 1e-9, "true relative residual {rel:e}");
    }

    #[test]
    fn clean_audited_solve_replays_bitwise_and_counts_audits_exactly() {
        use crate::recovery::RecoveryPolicy;
        let (a, p) = rb(64);
        let pre = MStepSsorPreconditioner::unparametrized(&a, &p, 2).unwrap();
        let b: Vec<f64> = (0..64).map(|i| ((i * 5 + 1) % 19) as f64 - 9.0).collect();
        let opts = PcgOptions {
            tol: 1e-10,
            variant: PcgVariant::SingleReduction,
            recovery: RecoveryPolicy {
                audit_period: 3,
                ..RecoveryPolicy::on()
            },
            ..Default::default()
        };
        let mut ws = PcgWorkspace::new(64);
        let mut u1 = vec![0.0; 64];
        let rep1 = pcg_solve_into(&a, &b, &mut u1, &pre, &opts, &mut ws).unwrap();
        let mut u2 = vec![0.0; 64];
        let rep2 = pcg_solve_into(&a, &b, &mut u2, &pre, &opts, &mut ws).unwrap();
        assert_eq!(u1, u2);
        assert_eq!(rep1.stats, rep2.stats);
        // Clean solve: audits fire on schedule (iterations 4, 7, 10, …)
        // but never replace.
        let expected_audits = if rep1.iterations > 3 {
            (rep1.iterations - 1) / 3
        } else {
            0
        };
        assert_eq!(rep1.stats.audits, expected_audits);
        assert_eq!(rep1.stats.replacements, 0);
        assert_eq!(rep1.stats.faults_detected, 0);
        // And the audited solution equals the unaudited one bitwise: a
        // non-replacing audit must not perturb the iteration.
        let plain = PcgOptions {
            recovery: RecoveryPolicy::off(),
            ..opts
        };
        let mut u3 = vec![0.0; 64];
        let rep3 = pcg_solve_into(&a, &b, &mut u3, &pre, &plain, &mut ws).unwrap();
        assert_eq!(u1, u3);
        assert_eq!(rep3.stats.audits, 0);
    }
}
