//! Fault injection, residual auditing and the structured recovery ladder.
//!
//! The communication-avoiding variants (PRs 4–5) buy their barrier cuts by
//! *carrying* recurrence vectors that drift away from the true residual
//! `f − Ku`; a silent data corruption (a flipped bit in an SpMV output, a
//! NaN out of a preconditioner application) is the same failure mode in
//! concentrated form. This module supplies the three robustness layers the
//! solver stack threads through every entry point:
//!
//! 1. **Fault injection** — [`FaultyOp`] / [`FaultyPreconditioner`] wrap
//!    any operator/preconditioner and perturb chosen *applications*
//!    deterministically ([`FaultKind`]: bit flips, NaN/Inf, scaled noise),
//!    and [`FaultPlan`] describes iteration-indexed faults for the SPMD
//!    solver (whose sweep table never calls back into the operator). Every
//!    detection and recovery path below is exercised under injection by
//!    `tests/fault_injection.rs` instead of being trusted.
//! 2. **Residual audit + replacement** — every [`RecoveryPolicy::period`]
//!    iterations the solver recomputes the true residual, compares it with
//!    the recurrence residual, and on divergence beyond
//!    [`replacement_bound`] replaces the carried vectors from the true
//!    residual and re-derives the CG scalars (van der Vorst/Ye-style
//!    residual replacement). Enabled by policy: explicitly, through the
//!    validated `MSPCG_RESIDUAL_REPLACEMENT` override, or automatically
//!    for the drift-prone variants at tight tolerances ([`TIGHT_TOL`]).
//! 3. **Recovery ladder** — instead of the old single classic-fallback
//!    shot, breakdown and detected corruption step down
//!    Pipelined → SingleReduction → Classic, each rung re-deriving its
//!    carries from the current iterate (serial) or rerunning the schedule
//!    (SPMD); non-finite reduction scalars surface as
//!    [`SparseError::NonFinite`] only once the replacement budget is
//!    exhausted.
//!
//! Everything is *measured*: audits, replacements, ladder steps and
//! detected/injected faults are counted in `PcgStats` and
//! `ParallelSolveReport`, exactly like the barrier/reduction counters.

use crate::preconditioner::Preconditioner;
use mspcg_sparse::tuning::{self, PcgVariant};
use mspcg_sparse::SparseOp;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Tolerances at or below this are "tight": the recurrence drift of the
/// single-reduction and pipelined variants can plausibly exceed the
/// stopping threshold, so [`RecoveryPolicy::Auto`](Toggle::Auto) enables
/// auditing for them without being asked.
pub const TIGHT_TOL: f64 = 1e-11;

/// Default replacement budget: enough for persistent-fault scenarios
/// (a fault re-injected on every rerun of a ladder rung) while still
/// bounding a pathological always-corrupting operator.
pub const DEFAULT_MAX_REPLACEMENTS: usize = 32;

/// Three-state switch following the `PcgVariant::Auto` convention: the
/// explicit states win, `Auto` resolves the environment override and then
/// a heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Toggle {
    /// Resolve at solve time: the `MSPCG_RESIDUAL_REPLACEMENT` override if
    /// set, otherwise on only for drift-prone variants at tight tolerance.
    #[default]
    Auto,
    /// Always audit (and replace on divergence).
    On,
    /// Never audit — the schedule-pinning choice for counter tests and
    /// for bitwise compatibility with pre-recovery releases.
    Off,
}

/// How a solve detects and recovers from drift and corruption. Carried in
/// `PcgOptions::recovery` / `ParallelSolverOptions::recovery`; `Copy` and
/// cheap so options stay plain-old-data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Residual auditing + replacement switch.
    pub replacement: Toggle,
    /// Iterations between audits; `0` delegates to the validated
    /// `MSPCG_AUDIT_PERIOD` override (default
    /// [`tuning::DEFAULT_AUDIT_PERIOD`]).
    pub audit_period: usize,
    /// Upper bound on replacements (audit-triggered and non-finite
    /// recoveries) per solve; once exhausted, audit divergence is ignored
    /// and a non-finite scalar surfaces as [`SparseError::NonFinite`].
    ///
    /// [`SparseError::NonFinite`]: mspcg_sparse::SparseError::NonFinite
    pub max_replacements: usize,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            replacement: Toggle::Auto,
            audit_period: 0,
            max_replacements: DEFAULT_MAX_REPLACEMENTS,
        }
    }
}

impl RecoveryPolicy {
    /// Auditing unconditionally on (period/budget at their defaults).
    pub fn on() -> Self {
        RecoveryPolicy {
            replacement: Toggle::On,
            ..RecoveryPolicy::default()
        }
    }

    /// Auditing unconditionally off — pins the exact barrier/reduction
    /// schedule regardless of environment overrides.
    pub fn off() -> Self {
        RecoveryPolicy {
            replacement: Toggle::Off,
            ..RecoveryPolicy::default()
        }
    }

    /// Effective audit period (resolving `0` to the environment/default).
    pub fn period(&self) -> usize {
        if self.audit_period == 0 {
            tuning::audit_period()
        } else {
            self.audit_period
        }
    }

    /// Whether auditing is active for a solve of `variant` (already
    /// resolved, never `Auto`) at tolerance `tol`. Explicit `On`/`Off`
    /// win; `Auto` resolves `MSPCG_RESIDUAL_REPLACEMENT`, then enables
    /// auditing only for the drift-prone recurrences at tight tolerance.
    pub fn audit_enabled(&self, variant: PcgVariant, tol: f64) -> bool {
        match self.replacement {
            Toggle::On => true,
            Toggle::Off => false,
            Toggle::Auto => tuning::forced_residual_replacement().unwrap_or(
                matches!(
                    variant,
                    PcgVariant::SingleReduction | PcgVariant::Pipelined | PcgVariant::SStep { .. }
                ) && tol <= TIGHT_TOL,
            ),
        }
    }
}

/// Divergence bound of the residual audit: the recurrence residual is
/// replaced when `‖(f − Ku) − r‖₂` exceeds this. Relative to `‖f‖₂`, an
/// order of magnitude above the stopping tolerance (benign drift below the
/// tolerance cannot block convergence), floored well above machine epsilon
/// so a clean classic solve never replaces.
pub fn replacement_bound(tol: f64, f_norm: f64) -> f64 {
    (10.0 * tol).max(1e3 * f64::EPSILON) * f_norm
}

/// Audit schedule predicate, shared by the serial loops and the SPMD
/// workers: at the *top* of (1-based) iteration `iter`, audit the state
/// left by iteration `iter − 1`. `start` is the warm-start point of the
/// current rung — requiring `iter − 1 > start` guarantees every
/// audit-triggered restart strictly advances, so the restart loop
/// terminates on the iteration budget alone.
pub fn audit_due(iter: usize, start: usize, period: usize) -> bool {
    let done = iter - 1;
    done > start && done.is_multiple_of(period.max(1))
}

/// Audit verdict: does the squared deviation `‖aud − r‖₂²` exceed the
/// squared [`replacement_bound`]? Written as a *negated* `<=` on purpose:
/// a NaN deviation (corruption reached the residual itself) compares
/// false against any bound and must count as divergence, which `dev2 >
/// bound2` would miss.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
pub fn diverged(dev2: f64, bound2: f64) -> bool {
    !(dev2 <= bound2)
}

/// The perturbation a fault applies to one `f64` of a kernel's output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// XOR bit `b % 64` of the IEEE-754 representation — the classic
    /// silent-data-corruption model. High exponent bits give the large,
    /// *finite* perturbations only the audit can catch.
    BitFlip(u32),
    /// Replace the value with NaN (poisons every reduction it feeds).
    NaN,
    /// Replace the value with +∞.
    Inf,
    /// Add `scale · max(|v|, 1)` — a large-but-structured analog error.
    ScaledNoise(f64),
}

/// Apply `kind` to `v`.
pub fn perturb(v: f64, kind: FaultKind) -> f64 {
    match kind {
        FaultKind::BitFlip(bit) => f64::from_bits(v.to_bits() ^ (1u64 << (bit % 64))),
        FaultKind::NaN => f64::NAN,
        FaultKind::Inf => f64::INFINITY,
        FaultKind::ScaledNoise(scale) => v + scale * v.abs().max(1.0),
    }
}

/// A fault pinned to one *application* of a wrapped kernel: the
/// `application`-th top-level product (or preconditioner solve) since
/// construction perturbs output element `index`. Application counting is
/// global and deterministic — the serial solvers call the wrapped kernels
/// in a fixed order, so a plan replays bitwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApplicationFault {
    /// 0-based application (top-level `mul_vec_into`/`mul_vec_axpy` or
    /// `apply`/`apply_with` call) at which to inject.
    pub application: usize,
    /// Output element to perturb.
    pub index: usize,
    /// The perturbation.
    pub kind: FaultKind,
}

/// Deterministic seeded fault set: `count` faults at xorshift-derived
/// applications in `0..max_application` and indices in `0..n`, cycling
/// through the perturbation kinds. Purely a convenience for randomized
/// campaign tests — explicit [`ApplicationFault`] lists stay the precise
/// tool.
pub fn seeded_faults(
    seed: u64,
    count: usize,
    n: usize,
    max_application: usize,
) -> Vec<ApplicationFault> {
    // Odd-constant multiply is a bijection on u64, so distinct seeds give
    // distinct streams (plain `seed | 1` would collapse even/odd pairs).
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    if state == 0 {
        state = 0x9E37_79B9_7F4A_7C15;
    }
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let kinds = [
        FaultKind::BitFlip(55),
        FaultKind::NaN,
        FaultKind::Inf,
        FaultKind::ScaledNoise(1e6),
    ];
    (0..count)
        .map(|k| ApplicationFault {
            application: (next() as usize) % max_application.max(1),
            index: (next() as usize) % n.max(1),
            kind: kinds[k % kinds.len()],
        })
        .collect()
}

/// Shared injection bookkeeping of the two wrappers.
#[derive(Debug)]
struct InjectionState {
    faults: Vec<ApplicationFault>,
    applications: AtomicUsize,
    injected: AtomicUsize,
}

impl InjectionState {
    fn new(faults: Vec<ApplicationFault>) -> Self {
        InjectionState {
            faults,
            applications: AtomicUsize::new(0),
            injected: AtomicUsize::new(0),
        }
    }

    /// Count one application and perturb `out` if a fault is due.
    fn inject(&self, out: &mut [f64]) {
        let app = self.applications.fetch_add(1, Ordering::Relaxed);
        for f in &self.faults {
            if f.application == app && f.index < out.len() {
                out[f.index] = perturb(out[f.index], f.kind);
                self.injected.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// A [`SparseOp`] whose **top-level products** (`mul_vec_into` /
/// `mul_vec_axpy`) inject the planned perturbations into their output
/// *after* the clean product — the range kernels and structure hooks
/// delegate untouched, so construction paths (splitting extraction, sweep
/// tables) see the clean matrix and only the solver-facing applications
/// are corrupted. Counters use atomics so the wrapper stays `Sync` like
/// every operator.
#[derive(Debug)]
pub struct FaultyOp<A> {
    inner: A,
    state: InjectionState,
}

impl<A: SparseOp> FaultyOp<A> {
    /// Wrap `inner` with a fault plan.
    pub fn new(inner: A, faults: Vec<ApplicationFault>) -> Self {
        FaultyOp {
            inner,
            state: InjectionState::new(faults),
        }
    }

    /// Top-level applications counted so far.
    pub fn applications(&self) -> usize {
        self.state.applications.load(Ordering::Relaxed)
    }

    /// Faults actually injected so far.
    pub fn injected(&self) -> usize {
        self.state.injected.load(Ordering::Relaxed)
    }

    /// The wrapped (clean) operator.
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<A: SparseOp> SparseOp for FaultyOp<A> {
    fn rows(&self) -> usize {
        self.inner.rows()
    }

    fn cols(&self) -> usize {
        self.inner.cols()
    }

    fn nnz(&self) -> usize {
        self.inner.nnz()
    }

    fn mul_vec_range_into(&self, x: &[f64], y: &mut [f64], rows: Range<usize>) {
        self.inner.mul_vec_range_into(x, y, rows)
    }

    fn mul_vec_axpy_range(&self, a: f64, x: &[f64], y: &mut [f64], rows: Range<usize>) {
        self.inner.mul_vec_axpy_range(a, x, y, rows)
    }

    fn visit_row(&self, i: usize, visit: &mut dyn FnMut(usize, f64)) {
        self.inner.visit_row(i, visit)
    }

    fn chunk_rows(&self, chunk_nnz: usize, c: usize) -> Range<usize> {
        self.inner.chunk_rows(chunk_nnz, c)
    }

    fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        self.inner.mul_vec_into(x, y);
        self.state.inject(y);
    }

    fn mul_vec_axpy(&self, a: f64, x: &[f64], y: &mut [f64]) {
        self.inner.mul_vec_axpy(a, x, y);
        self.state.inject(y);
    }
}

/// A [`Preconditioner`] wrapper injecting planned perturbations into the
/// output of chosen `apply`/`apply_with` calls — the msolve analog of
/// [`FaultyOp`].
#[derive(Debug)]
pub struct FaultyPreconditioner<P> {
    inner: P,
    state: InjectionState,
}

impl<P: Preconditioner> FaultyPreconditioner<P> {
    /// Wrap `inner` with a fault plan.
    pub fn new(inner: P, faults: Vec<ApplicationFault>) -> Self {
        FaultyPreconditioner {
            inner,
            state: InjectionState::new(faults),
        }
    }

    /// Applications counted so far.
    pub fn applications(&self) -> usize {
        self.state.applications.load(Ordering::Relaxed)
    }

    /// Faults actually injected so far.
    pub fn injected(&self) -> usize {
        self.state.injected.load(Ordering::Relaxed)
    }

    /// The wrapped (clean) preconditioner.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: Preconditioner> Preconditioner for FaultyPreconditioner<P> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        self.inner.apply(r, z);
        self.state.inject(z);
    }

    fn steps_per_apply(&self) -> usize {
        self.inner.steps_per_apply()
    }

    fn scratch_len(&self) -> usize {
        self.inner.scratch_len()
    }

    fn apply_with(&self, r: &[f64], z: &mut [f64], scratch: &mut [f64]) {
        self.inner.apply_with(r, z, scratch);
        self.state.inject(z);
    }
}

/// The kernel a [`FaultPlan`] fault targets inside the SPMD solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// The iteration's SpMV product (`kp`, `w = Kz` or `nv = K·mv`,
    /// depending on the schedule).
    Spmv,
    /// The iteration's preconditioner output (`z` or `mv`).
    Msolve,
}

/// A fault pinned to one *iteration* of the SPMD schedule. The
/// `ParallelMStepPcg` extracts a private sweep table at construction and
/// never calls back into the operator, so wrapper injection cannot reach
/// it; instead the workers consult the plan at fixed schedule points —
/// every worker evaluates the (replicated) lookup, only the strip owning
/// `index` writes, so injection is deterministic across thread counts.
/// Iteration numbers are the solver's 1-based loop counter; every rerun of
/// a ladder rung restarts the counter, so a planned fault re-fires on each
/// rung — the persistent-fault model the classic rung's replacement
/// machinery must (and does) absorb.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationFault {
    /// Which kernel's output to perturb.
    pub target: FaultTarget,
    /// 1-based iteration at which to inject.
    pub iteration: usize,
    /// Vector element to perturb.
    pub index: usize,
    /// The perturbation.
    pub kind: FaultKind,
}

/// An iteration-indexed fault plan for the SPMD solver
/// (`ParallelMStepPcg::solve_with_faults`).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// The planned faults.
    pub faults: Vec<IterationFault>,
}

impl FaultPlan {
    /// Plan containing the given faults.
    pub fn new(faults: Vec<IterationFault>) -> Self {
        FaultPlan { faults }
    }

    /// The fault due at `(target, iteration)`, if any (first match wins).
    pub fn find(&self, target: FaultTarget, iteration: usize) -> Option<&IterationFault> {
        self.faults
            .iter()
            .find(|f| f.target == target && f.iteration == iteration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preconditioner::IdentityPreconditioner;
    use mspcg_sparse::CooMatrix;

    fn sample() -> mspcg_sparse::CsrMatrix {
        let mut a = CooMatrix::new(4, 4);
        for i in 0..4 {
            a.push(i, i, 4.0).unwrap();
            if i + 1 < 4 {
                a.push_sym(i, i + 1, -1.0).unwrap();
            }
        }
        a.to_csr()
    }

    #[test]
    fn perturbations_are_deterministic_and_typed() {
        let v = 1.5f64;
        assert_eq!(
            perturb(v, FaultKind::BitFlip(0)),
            perturb(v, FaultKind::BitFlip(0))
        );
        assert_ne!(perturb(v, FaultKind::BitFlip(52)), v);
        // Flipping the same bit twice round-trips.
        let once = perturb(v, FaultKind::BitFlip(55));
        assert_eq!(perturb(once, FaultKind::BitFlip(55)), v);
        assert!(perturb(v, FaultKind::NaN).is_nan());
        assert!(perturb(v, FaultKind::Inf).is_infinite());
        assert_eq!(perturb(v, FaultKind::ScaledNoise(2.0)), 1.5 + 2.0 * 1.5);
        assert_eq!(perturb(0.0, FaultKind::ScaledNoise(2.0)), 2.0);
    }

    #[test]
    fn faulty_op_injects_only_at_planned_applications() {
        let a = sample();
        let clean = a.clone();
        let op = FaultyOp::new(
            a,
            vec![ApplicationFault {
                application: 1,
                index: 2,
                kind: FaultKind::NaN,
            }],
        );
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut y = vec![0.0; 4];
        // Application 0: clean.
        SparseOp::mul_vec_into(&op, &x, &mut y);
        assert_eq!(y, SparseOp::mul_vec(&clean, &x));
        assert_eq!(op.injected(), 0);
        // Application 1: element 2 poisoned, the rest clean.
        SparseOp::mul_vec_into(&op, &x, &mut y);
        assert!(y[2].is_nan());
        assert_eq!(y[0], SparseOp::mul_vec(&clean, &x)[0]);
        assert_eq!(op.injected(), 1);
        assert_eq!(op.applications(), 2);
        // Range kernels and structure hooks stay clean (not applications).
        let mut yr = vec![0.0; 4];
        op.mul_vec_range_into(&x, &mut yr, 0..4);
        assert_eq!(yr, SparseOp::mul_vec(&clean, &x));
        assert_eq!(op.applications(), 2);
    }

    #[test]
    fn faulty_preconditioner_counts_and_injects() {
        let p = FaultyPreconditioner::new(
            IdentityPreconditioner::new(3),
            vec![ApplicationFault {
                application: 0,
                index: 1,
                kind: FaultKind::ScaledNoise(10.0),
            }],
        );
        let mut z = vec![0.0; 3];
        p.apply(&[1.0, 1.0, 1.0], &mut z);
        assert_eq!(z, vec![1.0, 11.0, 1.0]);
        p.apply(&[1.0, 1.0, 1.0], &mut z);
        assert_eq!(z, vec![1.0, 1.0, 1.0]);
        assert_eq!(p.injected(), 1);
        assert_eq!(p.applications(), 2);
    }

    #[test]
    fn policy_resolution_and_audit_schedule() {
        // Explicit states win regardless of environment.
        assert!(RecoveryPolicy::on().audit_enabled(PcgVariant::Classic, 1e-6));
        assert!(!RecoveryPolicy::off().audit_enabled(PcgVariant::Pipelined, 1e-14));
        // Auto (unless the env forces otherwise): drift-prone variants at
        // tight tolerance only.
        if tuning::forced_residual_replacement().is_none() {
            let auto = RecoveryPolicy::default();
            assert!(auto.audit_enabled(PcgVariant::Pipelined, 1e-12));
            assert!(auto.audit_enabled(PcgVariant::SingleReduction, TIGHT_TOL));
            assert!(auto.audit_enabled(PcgVariant::SStep { s: 4 }, 1e-12));
            assert!(!auto.audit_enabled(PcgVariant::Pipelined, 1e-8));
            assert!(!auto.audit_enabled(PcgVariant::Classic, 1e-14));
        }
        // Schedule: first audit strictly after the warm-start point, then
        // every `period` iterations.
        assert!(!audit_due(1, 0, 4));
        assert!(!audit_due(4, 0, 4));
        assert!(audit_due(5, 0, 4));
        assert!(!audit_due(6, 0, 4));
        assert!(audit_due(9, 0, 4));
        // A rung restarted at iteration 8 must not re-audit state 8.
        assert!(!audit_due(9, 8, 4));
        assert!(audit_due(13, 8, 4));
        // Degenerate period never divides by zero.
        assert!(audit_due(3, 1, 0));
    }

    #[test]
    fn seeded_faults_replay() {
        let a = seeded_faults(42, 8, 100, 50);
        let b = seeded_faults(42, 8, 100, 50);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert!(a.iter().all(|f| f.index < 100 && f.application < 50));
        assert_ne!(seeded_faults(43, 8, 100, 50), a);
    }

    #[test]
    fn replacement_bound_scales_with_tolerance_and_rhs() {
        let b = replacement_bound(1e-8, 2.0);
        assert_eq!(b, 2e-7);
        // Floored above machine-epsilon drift for very tight tolerances.
        assert!(replacement_bound(1e-16, 1.0) >= 1e3 * f64::EPSILON);
    }

    #[test]
    fn fault_plan_lookup_is_by_target_and_iteration() {
        let plan = FaultPlan::new(vec![
            IterationFault {
                target: FaultTarget::Spmv,
                iteration: 3,
                index: 5,
                kind: FaultKind::BitFlip(55),
            },
            IterationFault {
                target: FaultTarget::Msolve,
                iteration: 2,
                index: 1,
                kind: FaultKind::NaN,
            },
        ]);
        assert!(plan.find(FaultTarget::Spmv, 3).is_some());
        assert!(plan.find(FaultTarget::Spmv, 2).is_none());
        assert!(plan.find(FaultTarget::Msolve, 2).is_some());
        assert!(plan.find(FaultTarget::Msolve, 3).is_none());
    }
}
