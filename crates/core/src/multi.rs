//! Batched multi-RHS PCG: many load cases against one stiffness matrix.
//!
//! The FEM workloads the paper targets rarely solve one system — a plate
//! is analysed under many load cases, all sharing the stiffness matrix
//! `K` and therefore the multicolor ordering, the SSOR splitting tables
//! and the preconditioner coefficients. [`pcg_solve_multi`] solves a
//! whole batch against one `K` and one shared preconditioner:
//!
//! * **Shared system, per-RHS scratch** — the matrix and preconditioner
//!   are borrowed immutably by every lane; each in-flight solve owns a
//!   [`PcgWorkspace`] (including the preconditioner scratch that replaces
//!   the multicolor SSOR's internal mutex-guarded half-sum cache, so
//!   concurrent applications never serialize on a lock).
//! * **Two parallel regimes** — a *large* matrix (at or above
//!   [`tuning::par_min_nnz`] stored entries) keeps the right-hand sides
//!   sequential and lets every kernel inside the solve fan out across the
//!   worker pool (kernel-level parallelism); a *small* matrix runs whole
//!   right-hand sides on different workers (RHS-level parallelism), whose
//!   nested kernel launches automatically run inline.
//! * **Zero per-solve allocation** — after the workspace is warm, a batch
//!   call performs no heap allocation (`tests/alloc_free_hot_loop.rs`
//!   extends the counting-allocator proof to 32 right-hand sides).
//! * **Determinism** — every right-hand side is solved by the same
//!   chunk-deterministic kernels, so each solution is bitwise identical
//!   to its standalone [`crate::pcg::pcg_solve_into`] run, for any thread count and
//!   either parallel regime.
//!
//! Budget exhaustion on one right-hand side is recorded in that RHS's
//! [`RhsOutcome`] (with the *true* recomputed final residual) instead of
//! aborting the batch — see [`crate::pcg::pcg_try_solve_into`].

use crate::pcg::{pcg_try_solve_into, PcgOptions, PcgReport, PcgStats, PcgWorkspace};
use crate::preconditioner::Preconditioner;
use mspcg_sparse::{par, tuning, SparseError, SparseOp};

/// How one right-hand side of a batch ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// The stopping test fired within the iteration budget, with no
    /// recovery of any kind — a clean solve.
    Converged,
    /// Converged, but only after the recovery ladder stepped down at
    /// least once (`stats.fallbacks > 0`): the result is trustworthy, but
    /// the requested variant did not finish the job on its own.
    Recovered,
    /// Converged after one or more residual replacements or in-place
    /// non-finite recoveries (`stats.replacements > 0`) without any
    /// ladder step — drift or corruption was caught and repaired inside
    /// the requested variant.
    Replaced,
    /// The budget ran out; the report carries the true final residual.
    BudgetExhausted,
    /// Inner-product breakdown (indefinite matrix or preconditioner), or
    /// a non-finite value that exhausted the recovery budget.
    Breakdown,
}

impl SolveStatus {
    /// Whether this status means the returned iterate satisfies the
    /// stopping test (cleanly or rescued).
    pub fn is_converged(self) -> bool {
        matches!(
            self,
            SolveStatus::Converged | SolveStatus::Recovered | SolveStatus::Replaced
        )
    }
}

/// Per-RHS result of a [`pcg_solve_multi`] call.
#[derive(Debug, Clone, Copy)]
pub struct RhsOutcome {
    /// Outcome class.
    pub status: SolveStatus,
    /// Full per-solve report (for [`SolveStatus::Breakdown`] only the
    /// iteration count is meaningful).
    pub report: PcgReport,
}

impl RhsOutcome {
    fn placeholder() -> Self {
        RhsOutcome {
            status: SolveStatus::Breakdown,
            report: PcgReport {
                iterations: 0,
                converged: false,
                final_change: f64::INFINITY,
                final_relative_residual: f64::INFINITY,
                stats: PcgStats::default(),
            },
        }
    }
}

/// Batch-level roll-up returned by [`pcg_solve_multi`]; per-RHS detail
/// stays in [`MultiRhsWorkspace::outcomes`].
#[derive(Debug, Clone, Copy, Default)]
pub struct MultiRhsSummary {
    /// Right-hand sides processed.
    pub solved: usize,
    /// How many converged (cleanly, recovered, or replaced).
    pub converged: usize,
    /// How many of the converged needed a rescue
    /// ([`SolveStatus::Recovered`] or [`SolveStatus::Replaced`]).
    pub rescued: usize,
    /// Iterations summed over the batch.
    pub total_iterations: usize,
    /// Worst final relative residual across the batch.
    pub max_final_relative_residual: f64,
}

/// Reusable storage for batched solves: one [`PcgWorkspace`] per parallel
/// lane plus the per-RHS outcome table. Like `PcgWorkspace`, an undersized
/// instance is grown on entry (that path allocates once); after that,
/// batch calls are allocation free.
#[derive(Debug)]
pub struct MultiRhsWorkspace {
    lanes: Vec<PcgWorkspace>,
    outcomes: Vec<RhsOutcome>,
    n: usize,
}

impl MultiRhsWorkspace {
    /// Workspace for batches of up to `nrhs` right-hand sides of dimension
    /// `n`. Starts with a single lane — the kernel-level regime (large
    /// matrices) never needs more, so eagerly sizing for the pool's full
    /// capacity would hold dead workspaces for the lifetime of the batch.
    /// The first (warm-up) [`pcg_solve_multi`] call grows the lane set to
    /// whatever its regime requires; calls after it are allocation free.
    pub fn new(n: usize, nrhs: usize) -> Self {
        MultiRhsWorkspace {
            lanes: vec![PcgWorkspace::new(n)],
            outcomes: vec![RhsOutcome::placeholder(); nrhs],
            n,
        }
    }

    /// Dimension the lanes are sized for.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Per-RHS outcomes of the most recent [`pcg_solve_multi`] call, in
    /// right-hand-side order.
    pub fn outcomes(&self) -> &[RhsOutcome] {
        &self.outcomes
    }

    fn ensure(&mut self, n: usize, nrhs: usize, lanes: usize) {
        if self.n != n {
            self.n = n;
            for lane in &mut self.lanes {
                lane.resize(n);
            }
        }
        while self.lanes.len() < lanes {
            self.lanes.push(PcgWorkspace::new(n));
        }
        self.outcomes.resize(nrhs, RhsOutcome::placeholder());
    }
}

/// Shared-pointer bundle for the RHS-parallel path: lane `l` exclusively
/// owns `lanes[l]`, the outcome slots and solution columns of its RHS
/// range. Exactly the `SharedVec`/`ParSlice` discipline, generalized to
/// the batch tables.
struct BatchPtrs {
    lanes: *mut PcgWorkspace,
    outcomes: *mut RhsOutcome,
    u: *mut f64,
}

// SAFETY: all access goes through disjoint lane-indexed ranges inside one
// `for_each_chunk` region (each lane index is claimed exactly once), and
// the region's completion barrier separates it from subsequent reads.
unsafe impl Sync for BatchPtrs {}
unsafe impl Send for BatchPtrs {}

impl BatchPtrs {
    /// Exclusive access to lane workspace `l`.
    ///
    /// # Safety
    /// Lane `l` must be claimed by at most one chunk per parallel region.
    unsafe fn lane<'a>(&self, l: usize) -> &'a mut PcgWorkspace {
        unsafe { &mut *self.lanes.add(l) }
    }

    /// Exclusive access to solution column `i`.
    ///
    /// # Safety
    /// Column `i` must belong to the claiming lane's RHS range.
    unsafe fn u_col<'a>(&self, i: usize, n: usize) -> &'a mut [f64] {
        unsafe { std::slice::from_raw_parts_mut(self.u.add(i * n), n) }
    }

    /// Write outcome slot `i`.
    ///
    /// # Safety
    /// Slot `i` must belong to the claiming lane's RHS range.
    unsafe fn set_outcome(&self, i: usize, out: RhsOutcome) {
        unsafe { self.outcomes.add(i).write(out) }
    }
}

/// Solve `K·uᵢ = fᵢ` for a batch of right-hand sides sharing one matrix
/// and one preconditioner.
///
/// `f` and `u` hold the batch column-contiguously: right-hand side `i`
/// occupies `f[i·n..(i+1)·n]`, its initial guess and solution the same
/// range of `u`, with `n = k.rows()`. Returns the batch summary; per-RHS
/// reports are in [`MultiRhsWorkspace::outcomes`].
///
/// Non-convergence of an individual right-hand side is recorded in its
/// outcome, not returned as an error, so a batch always runs to
/// completion once shapes validate.
///
/// ```
/// use mspcg_core::multi::{pcg_solve_multi, MultiRhsWorkspace, SolveStatus};
/// use mspcg_core::pcg::PcgOptions;
/// use mspcg_core::preconditioner::DiagonalPreconditioner;
/// use mspcg_sparse::CooMatrix;
///
/// let mut coo = CooMatrix::new(4, 4);
/// for i in 0..4 {
///     coo.push(i, i, 2.0)?;
///     if i + 1 < 4 { coo.push_sym(i, i + 1, -1.0)?; }
/// }
/// let k = coo.to_csr();
/// let m = DiagonalPreconditioner::from_diag(&k.diag()?)?;
/// let f: Vec<f64> = (0..8).map(|i| 1.0 + (i / 4) as f64).collect(); // 2 RHS
/// let mut u = vec![0.0; 8];
/// let mut ws = MultiRhsWorkspace::new(4, 2);
/// let sum = pcg_solve_multi(&k, &f, &mut u, &m, &PcgOptions::default(), &mut ws)?;
/// assert_eq!(sum.converged, 2);
/// // Recovered/Replaced also satisfy the stopping test — check the
/// // status class, not the exact variant (a forced recurrence schedule
/// // may rescue itself on a tiny system).
/// assert!(ws.outcomes().iter().all(|o| o.status.is_converged()));
/// # Ok::<(), mspcg_sparse::SparseError>(())
/// ```
///
/// # Errors
/// [`SparseError::NotSquare`] for a rectangular matrix,
/// [`SparseError::ShapeMismatch`] when `f.len()` is not a multiple of `n`,
/// `u.len() != f.len()`, or the preconditioner dimension differs.
/// [`SparseError::InvalidTolerance`] for a nonpositive or non-finite
/// tolerance, and [`SparseError::NonFinite`] when any right-hand side or
/// initial guess carries a NaN/Inf entry — both rejected up front, before
/// any lane starts iterating.
pub fn pcg_solve_multi<A: SparseOp>(
    k: &A,
    f: &[f64],
    u: &mut [f64],
    m: &(impl Preconditioner + Sync),
    opts: &PcgOptions,
    ws: &mut MultiRhsWorkspace,
) -> Result<MultiRhsSummary, SparseError> {
    let n = k.rows();
    if k.cols() != n {
        return Err(SparseError::NotSquare {
            rows: k.rows(),
            cols: k.cols(),
        });
    }
    if m.dim() != n || u.len() != f.len() || (n == 0 && !f.is_empty()) {
        return Err(SparseError::ShapeMismatch {
            left: (n, n),
            right: (f.len(), u.len().max(m.dim())),
        });
    }
    if n == 0 {
        ws.ensure(0, 0, 1);
        return Ok(MultiRhsSummary::default());
    }
    if !f.len().is_multiple_of(n) {
        return Err(SparseError::ShapeMismatch {
            left: (n, n),
            right: (f.len(), u.len()),
        });
    }
    let nrhs = f.len() / n;

    // Reject poisoned inputs before any lane starts: a NaN smuggled in
    // through one right-hand side would otherwise burn that lane's whole
    // iteration budget (or a recovery ladder walk) on garbage.
    if !(opts.tol.is_finite() && opts.tol > 0.0) {
        return Err(SparseError::InvalidTolerance { value: opts.tol });
    }
    if f.iter().any(|v| !v.is_finite()) {
        return Err(SparseError::NonFinite {
            phase: "rhs",
            iteration: 0,
        });
    }
    if u.iter().any(|v| !v.is_finite()) {
        return Err(SparseError::NonFinite {
            phase: "initial-guess",
            iteration: 0,
        });
    }

    // Regime selection: a matrix whose kernels would fan out across the
    // pool keeps the batch sequential (kernel-level parallelism); below
    // that threshold a whole solve is far cheaper than a pool launch per
    // kernel, so distinct right-hand sides become the unit of parallel
    // work instead.
    let rhs_threads = if k.nnz() >= tuning::par_min_nnz() {
        1
    } else {
        par::max_threads().min(nrhs)
    };
    let lanes = rhs_threads.max(1);
    ws.ensure(n, nrhs, lanes);

    if lanes <= 1 {
        let lane = &mut ws.lanes[0];
        for i in 0..nrhs {
            ws.outcomes[i] = solve_one(k, f, u, m, opts, lane, n, i);
        }
    } else {
        // Contiguous RHS ranges per lane (balanced to within one).
        let base = nrhs / lanes;
        let extra = nrhs % lanes;
        let lane_range = |l: usize| {
            let start = l * base + l.min(extra);
            let len = base + usize::from(l < extra);
            start..start + len
        };
        let ptrs = BatchPtrs {
            lanes: ws.lanes.as_mut_ptr(),
            outcomes: ws.outcomes.as_mut_ptr(),
            u: u.as_mut_ptr(),
        };
        par::for_each_chunk(lanes, lanes, &|l| {
            // SAFETY: lane index `l` is claimed exactly once per region;
            // `lane_range(l)` ranges are pairwise disjoint, so workspace
            // `l`, the outcome slots and the `u` columns of this range
            // have exactly one writer, and nothing reads them until the
            // region's completion barrier.
            let lane = unsafe { ptrs.lane(l) };
            for i in lane_range(l) {
                let ui = unsafe { ptrs.u_col(i, n) };
                let out = solve_one_into(k, &f[i * n..(i + 1) * n], ui, m, opts, lane);
                unsafe { ptrs.set_outcome(i, out) };
            }
        });
    }

    let mut summary = MultiRhsSummary {
        solved: nrhs,
        ..Default::default()
    };
    for o in &ws.outcomes {
        if o.status.is_converged() {
            summary.converged += 1;
            if o.status != SolveStatus::Converged {
                summary.rescued += 1;
            }
        }
        summary.total_iterations += o.report.iterations;
        let rel = o.report.final_relative_residual;
        if rel.is_finite() && rel > summary.max_final_relative_residual {
            summary.max_final_relative_residual = rel;
        }
    }
    Ok(summary)
}

#[allow(clippy::too_many_arguments)]
fn solve_one<A: SparseOp>(
    k: &A,
    f: &[f64],
    u: &mut [f64],
    m: &impl Preconditioner,
    opts: &PcgOptions,
    lane: &mut PcgWorkspace,
    n: usize,
    i: usize,
) -> RhsOutcome {
    solve_one_into(
        k,
        &f[i * n..(i + 1) * n],
        &mut u[i * n..(i + 1) * n],
        m,
        opts,
        lane,
    )
}

fn solve_one_into<A: SparseOp>(
    k: &A,
    fi: &[f64],
    ui: &mut [f64],
    m: &impl Preconditioner,
    opts: &PcgOptions,
    lane: &mut PcgWorkspace,
) -> RhsOutcome {
    match pcg_try_solve_into(k, fi, ui, m, opts, lane) {
        Ok(report) => RhsOutcome {
            status: if !report.converged {
                SolveStatus::BudgetExhausted
            } else if report.stats.fallbacks > 0 {
                SolveStatus::Recovered
            } else if report.stats.replacements > 0 {
                SolveStatus::Replaced
            } else {
                SolveStatus::Converged
            },
            report,
        },
        Err(e) => {
            let mut out = RhsOutcome::placeholder();
            match e {
                SparseError::NotPositiveDefinite { pivot, .. } => {
                    out.report.iterations = pivot;
                }
                // Budget-exhausted non-finite recovery: like an
                // indefiniteness breakdown, the iteration at which the
                // solve gave up is the only meaningful number.
                SparseError::NonFinite { iteration, .. } => {
                    out.report.iterations = iteration;
                }
                _ => {}
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mstep::MStepSsorPreconditioner;
    use crate::pcg::pcg_solve_into;
    use mspcg_coloring::Coloring;
    use mspcg_sparse::CsrMatrix;
    use mspcg_sparse::{CooMatrix, Partition};

    fn rb_laplacian(n: usize) -> (CsrMatrix, Partition) {
        let mut a = CooMatrix::new(n, n);
        for i in 0..n {
            a.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                a.push_sym(i, i + 1, -1.0).unwrap();
            }
        }
        let a = a.to_csr();
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let ord = Coloring::from_labels(labels, 2).unwrap().ordering();
        (ord.permute_matrix(&a).unwrap(), ord.partition)
    }

    fn batch_rhs(n: usize, nrhs: usize) -> Vec<f64> {
        (0..nrhs * n)
            .map(|i| ((i * 13 + 7) % 29) as f64 * 0.1 - 1.2)
            .collect()
    }

    #[test]
    fn batch_matches_individual_solves_bitwise() {
        let (a, p) = rb_laplacian(96);
        let pre = MStepSsorPreconditioner::unparametrized(&a, &p, 2).unwrap();
        let opts = PcgOptions {
            tol: 1e-10,
            ..Default::default()
        };
        let nrhs = 7;
        let f = batch_rhs(96, nrhs);
        let mut u = vec![0.0; nrhs * 96];
        let mut ws = MultiRhsWorkspace::new(96, nrhs);
        let summary = pcg_solve_multi(&a, &f, &mut u, &pre, &opts, &mut ws).unwrap();
        assert_eq!(summary.solved, nrhs);
        assert_eq!(summary.converged, nrhs);

        let mut single_ws = PcgWorkspace::new(96);
        for i in 0..nrhs {
            let mut ui = vec![0.0; 96];
            let rep = pcg_solve_into(
                &a,
                &f[i * 96..(i + 1) * 96],
                &mut ui,
                &pre,
                &opts,
                &mut single_ws,
            )
            .unwrap();
            assert_eq!(
                u[i * 96..(i + 1) * 96]
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                ui.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "RHS {i} differs from standalone solve"
            );
            assert_eq!(ws.outcomes()[i].report.iterations, rep.iterations);
        }
    }

    #[test]
    fn warm_starts_are_honored_per_rhs() {
        let (a, p) = rb_laplacian(32);
        let pre = MStepSsorPreconditioner::unparametrized(&a, &p, 1).unwrap();
        let x_true: Vec<f64> = (0..32).map(|i| (i as f64 * 0.2).sin()).collect();
        let f0 = a.mul_vec(&x_true);
        let mut f = f0.clone();
        f.extend_from_slice(&f0);
        // RHS 0 starts at the solution, RHS 1 from zero.
        let mut u = x_true.clone();
        u.extend(std::iter::repeat_n(0.0, 32));
        let mut ws = MultiRhsWorkspace::new(32, 2);
        pcg_solve_multi(&a, &f, &mut u, &pre, &PcgOptions::default(), &mut ws).unwrap();
        assert!(ws.outcomes()[0].report.iterations <= 1);
        assert!(ws.outcomes()[1].report.iterations > 1);
    }

    #[test]
    fn budget_exhaustion_is_per_rhs_data_not_batch_error() {
        let (a, p) = rb_laplacian(64);
        let pre = MStepSsorPreconditioner::unparametrized(&a, &p, 1).unwrap();
        let opts = PcgOptions {
            tol: 1e-14,
            max_iterations: 1,
            ..Default::default()
        };
        let f = batch_rhs(64, 3);
        let mut u = vec![0.0; 3 * 64];
        let mut ws = MultiRhsWorkspace::new(64, 3);
        let summary = pcg_solve_multi(&a, &f, &mut u, &pre, &opts, &mut ws).unwrap();
        assert_eq!(summary.converged, 0);
        for o in ws.outcomes() {
            assert_eq!(o.status, SolveStatus::BudgetExhausted);
            assert!(o.report.final_relative_residual.is_finite());
            assert!(o.report.final_relative_residual > 0.0);
        }
    }

    #[test]
    fn empty_batch_and_empty_matrix() {
        let (a, p) = rb_laplacian(16);
        let pre = MStepSsorPreconditioner::unparametrized(&a, &p, 1).unwrap();
        let mut ws = MultiRhsWorkspace::new(16, 0);
        let sum = pcg_solve_multi(&a, &[], &mut [], &pre, &PcgOptions::default(), &mut ws).unwrap();
        assert_eq!(sum.solved, 0);
        assert!(ws.outcomes().is_empty());
    }

    #[test]
    fn shape_violations_are_rejected() {
        let (a, p) = rb_laplacian(16);
        let pre = MStepSsorPreconditioner::unparametrized(&a, &p, 1).unwrap();
        let mut ws = MultiRhsWorkspace::new(16, 2);
        // Not a multiple of n.
        let err = pcg_solve_multi(
            &a,
            &[1.0; 17],
            &mut [0.0; 17],
            &pre,
            &PcgOptions::default(),
            &mut ws,
        );
        assert!(matches!(err, Err(SparseError::ShapeMismatch { .. })));
        // u shorter than f.
        let err = pcg_solve_multi(
            &a,
            &vec![1.0; 32],
            &mut [0.0; 16],
            &pre,
            &PcgOptions::default(),
            &mut ws,
        );
        assert!(matches!(err, Err(SparseError::ShapeMismatch { .. })));
    }

    #[test]
    fn zero_rhs_columns_come_back_zero() {
        let (a, p) = rb_laplacian(16);
        let pre = MStepSsorPreconditioner::unparametrized(&a, &p, 1).unwrap();
        let mut f = batch_rhs(16, 3);
        f[16..32].fill(0.0); // middle RHS is b = 0
        let mut u = vec![0.7; 3 * 16]; // poisoned initial guesses
        let mut ws = MultiRhsWorkspace::new(16, 3);
        let sum = pcg_solve_multi(&a, &f, &mut u, &pre, &PcgOptions::default(), &mut ws).unwrap();
        assert_eq!(sum.converged, 3);
        assert!(u[16..32].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn poisoned_batch_inputs_are_rejected_up_front() {
        let (a, p) = rb_laplacian(16);
        let pre = MStepSsorPreconditioner::unparametrized(&a, &p, 1).unwrap();
        let mut ws = MultiRhsWorkspace::new(16, 2);
        let f = batch_rhs(16, 2);
        let mut u = vec![0.0; 2 * 16];

        let mut bad_f = f.clone();
        bad_f[20] = f64::NAN;
        let err =
            pcg_solve_multi(&a, &bad_f, &mut u, &pre, &PcgOptions::default(), &mut ws).unwrap_err();
        assert!(matches!(
            err,
            SparseError::NonFinite {
                phase: "rhs",
                iteration: 0
            }
        ));

        let mut bad_u = vec![0.0; 2 * 16];
        bad_u[3] = f64::INFINITY;
        let err =
            pcg_solve_multi(&a, &f, &mut bad_u, &pre, &PcgOptions::default(), &mut ws).unwrap_err();
        assert!(matches!(
            err,
            SparseError::NonFinite {
                phase: "initial-guess",
                iteration: 0
            }
        ));

        for tol in [0.0, -1e-8, f64::NAN, f64::INFINITY] {
            let opts = PcgOptions {
                tol,
                ..Default::default()
            };
            let err = pcg_solve_multi(&a, &f, &mut u, &pre, &opts, &mut ws).unwrap_err();
            assert!(matches!(err, SparseError::InvalidTolerance { .. }));
        }
    }

    #[test]
    fn in_place_recovery_surfaces_as_replaced_status() {
        use crate::pcg::{PcgVariant, StoppingCriterion};
        use crate::preconditioner::IdentityPreconditioner;
        use crate::recovery::{ApplicationFault, FaultKind, FaultyPreconditioner};

        let (a, _p) = rb_laplacian(32);
        // One RHS so the shared application counter is deterministic.
        let f = batch_rhs(32, 1);
        let mut u = vec![0.0; 32];
        let pre = FaultyPreconditioner::new(
            IdentityPreconditioner::new(32),
            vec![ApplicationFault {
                application: 2,
                index: 5,
                kind: FaultKind::NaN,
            }],
        );
        let opts = PcgOptions {
            tol: 1e-10,
            criterion: StoppingCriterion::RelativeResidual,
            variant: PcgVariant::Classic,
            ..Default::default()
        };
        let mut ws = MultiRhsWorkspace::new(32, 1);
        let sum = pcg_solve_multi(&a, &f, &mut u, &pre, &opts, &mut ws).unwrap();
        assert_eq!(pre.injected(), 1);
        let out = &ws.outcomes()[0];
        // Classic recovers in place: a replacement, no ladder step.
        assert_eq!(out.status, SolveStatus::Replaced);
        assert!(out.status.is_converged());
        assert_eq!(out.report.stats.replacements, 1);
        assert_eq!(out.report.stats.fallbacks, 0);
        assert_eq!(out.report.stats.faults_detected, 1);
        assert_eq!(sum.converged, 1);
        assert_eq!(sum.rescued, 1);
    }

    #[test]
    fn ladder_step_surfaces_as_recovered_status() {
        use crate::pcg::{PcgVariant, StoppingCriterion};
        use crate::preconditioner::IdentityPreconditioner;
        use crate::recovery::{ApplicationFault, FaultKind, FaultyPreconditioner};

        let (a, _p) = rb_laplacian(32);
        let f = batch_rhs(32, 1);
        let mut u = vec![0.0; 32];
        let pre = FaultyPreconditioner::new(
            IdentityPreconditioner::new(32),
            vec![ApplicationFault {
                application: 2,
                index: 5,
                kind: FaultKind::NaN,
            }],
        );
        // SingleReduction has no same-rung restart for a poisoned scalar:
        // it steps down the ladder to classic, which must finish the job.
        let opts = PcgOptions {
            tol: 1e-10,
            criterion: StoppingCriterion::RelativeResidual,
            variant: PcgVariant::SingleReduction,
            ..Default::default()
        };
        let mut ws = MultiRhsWorkspace::new(32, 1);
        let sum = pcg_solve_multi(&a, &f, &mut u, &pre, &opts, &mut ws).unwrap();
        assert_eq!(pre.injected(), 1);
        let out = &ws.outcomes()[0];
        assert_eq!(out.status, SolveStatus::Recovered);
        assert!(out.status.is_converged());
        assert!(out.report.stats.fallbacks >= 1);
        assert_eq!(out.report.stats.faults_detected, 1);
        assert_eq!(sum.converged, 1);
        assert_eq!(sum.rescued, 1);
    }
}
