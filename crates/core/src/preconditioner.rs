//! The preconditioner abstraction of Algorithm 1.
//!
//! Step (6) of the PCG loop solves `M r̂^{k+1} = r^{k+1}`; a
//! [`Preconditioner`] performs exactly that solve. Implementations must
//! represent a symmetric positive definite `M` — PCG checks the induced
//! inner products at runtime and reports a typed error if they turn
//! nonpositive, which is the observable symptom of an indefinite `M`.

use mspcg_sparse::lanczos::SpectralInterval;
use mspcg_sparse::SparseError;

/// Application of `M⁻¹`: `z ← M⁻¹ r`.
pub trait Preconditioner {
    /// Dimension of the operator.
    fn dim(&self) -> usize;

    /// Solve `M z = r`.
    ///
    /// # Panics
    /// Implementations may panic if `r.len() != dim()` or
    /// `z.len() != dim()`.
    fn apply(&self, r: &[f64], z: &mut [f64]);

    /// Cost of one application in *preconditioner steps* (the `m` of the
    /// paper's Eq. (4.1) cost model `T_m = N_m (A + mB)`). Identity returns
    /// 0, an m-step preconditioner returns `m`.
    fn steps_per_apply(&self) -> usize {
        1
    }

    /// Length of the caller-provided scratch [`Preconditioner::apply_with`]
    /// needs; `0` when the implementation keeps no per-apply state.
    fn scratch_len(&self) -> usize {
        0
    }

    /// Solve `M z = r` with caller-owned scratch of length
    /// [`Preconditioner::scratch_len`]. Numerically identical to
    /// [`Preconditioner::apply`], but implementations with internal locked
    /// buffers (the multicolor SSOR half-sum cache) use the scratch
    /// instead, so concurrent solves sharing one preconditioner — the
    /// batched multi-RHS workload — never serialize on a lock. The default
    /// ignores the scratch.
    fn apply_with(&self, r: &[f64], z: &mut [f64], _scratch: &mut [f64]) {
        self.apply(r, z);
    }

    /// A spectral interval this preconditioner already paid a Lanczos run
    /// for, if it has one. The s-step basis recurrence needs eigenvalue
    /// bounds to parameterize its Chebyshev three-term recurrence; bound
    /// accuracy affects only the *conditioning* of the basis (any
    /// increasing-degree polynomial recurrence spans the same Krylov
    /// space), so an estimate made for a related operator — the
    /// [`crate::poly::PolynomialPreconditioner`]'s Jacobi-scaled spectrum
    /// — is a usable hint. Returning it here lets the solver reuse that
    /// one estimate across the poly-precond ↔ s-step-basis boundary
    /// instead of re-running Lanczos. `None` (the default) means the
    /// solver estimates — and caches — an interval itself.
    fn spectral_hint(&self) -> Option<SpectralInterval> {
        None
    }
}

/// `M = I`: plain conjugate gradients.
#[derive(Debug, Clone)]
pub struct IdentityPreconditioner {
    n: usize,
}

impl IdentityPreconditioner {
    /// Identity of dimension `n`.
    pub fn new(n: usize) -> Self {
        IdentityPreconditioner { n }
    }
}

impl Preconditioner for IdentityPreconditioner {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        assert_eq!(r.len(), self.n, "identity: length mismatch");
        z.copy_from_slice(r);
    }

    fn steps_per_apply(&self) -> usize {
        0
    }
}

/// `M = diag(K)`: one-step Jacobi (diagonal) scaling.
#[derive(Debug, Clone)]
pub struct DiagonalPreconditioner {
    inv_diag: Vec<f64>,
}

impl DiagonalPreconditioner {
    /// Build from the matrix diagonal.
    ///
    /// # Errors
    /// [`SparseError::ZeroDiagonal`] if any entry is zero or not positive
    /// (an SPD matrix has a strictly positive diagonal).
    pub fn from_diag(diag: &[f64]) -> Result<Self, SparseError> {
        let mut inv = Vec::with_capacity(diag.len());
        for (i, &d) in diag.iter().enumerate() {
            if d <= 0.0 || !d.is_finite() {
                return Err(SparseError::ZeroDiagonal { row: i });
            }
            inv.push(1.0 / d);
        }
        Ok(DiagonalPreconditioner { inv_diag: inv })
    }
}

impl Preconditioner for DiagonalPreconditioner {
    fn dim(&self) -> usize {
        self.inv_diag.len()
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        assert_eq!(r.len(), self.inv_diag.len(), "diagonal: length mismatch");
        for i in 0..r.len() {
            z[i] = r[i] * self.inv_diag[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_copies() {
        let p = IdentityPreconditioner::new(3);
        let mut z = vec![0.0; 3];
        p.apply(&[1.0, 2.0, 3.0], &mut z);
        assert_eq!(z, vec![1.0, 2.0, 3.0]);
        assert_eq!(p.steps_per_apply(), 0);
    }

    #[test]
    fn diagonal_inverts() {
        let p = DiagonalPreconditioner::from_diag(&[2.0, 4.0]).unwrap();
        let mut z = vec![0.0; 2];
        p.apply(&[2.0, 2.0], &mut z);
        assert_eq!(z, vec![1.0, 0.5]);
    }

    #[test]
    fn diagonal_rejects_nonpositive() {
        assert!(matches!(
            DiagonalPreconditioner::from_diag(&[1.0, 0.0]),
            Err(SparseError::ZeroDiagonal { row: 1 })
        ));
        assert!(DiagonalPreconditioner::from_diag(&[1.0, -3.0]).is_err());
    }
}
