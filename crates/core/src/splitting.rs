//! Splittings `K = P − Q` and the stationary steps they induce.
//!
//! §2.1 of the paper: a preconditioner arises from any splitting whose
//! stationary iteration `x ← G x + P⁻¹ b` (`G = P⁻¹Q`) converges. The
//! [`Splitting`] trait exposes exactly that step, parametrized by a scale
//! on `b` so the m-step Horner recurrence
//! `w_s = G w_{s−1} + α_{m−s} P⁻¹ r` (§2.2) reuses it directly.
//!
//! Implementations here:
//! * [`JacobiSplitting`] — `P = diag(K)`; unparametrized m-step use
//!   reproduces the truncated Neumann series preconditioner of
//!   Dubois–Greenbaum–Rodrigue (1979),
//! * [`NaturalSsorSplitting`] — SSOR(ω) in the natural (sequential)
//!   ordering; the baseline the multicolor ordering competes with.
//!
//! The multicolor SSOR splitting lives in [`crate::ssor`].

use mspcg_sparse::lanczos::{lanczos_extremes, power_spectral_radius};
use mspcg_sparse::{CsrMatrix, SparseError, SparseOp};
use std::cell::RefCell;

/// A convergent splitting `K = P − Q` with SPD `P`.
pub trait Splitting {
    /// Operator dimension.
    fn dim(&self) -> usize;

    /// One stationary step on `K x = scale·b`:
    /// `x ← G x + P⁻¹ (scale·b)`.
    fn step(&self, scale: f64, b: &[f64], x: &mut [f64]);

    /// Solve `P z = r` (the 1-step preconditioner application).
    fn solve_p(&self, r: &[f64], z: &mut [f64]) {
        z.fill(0.0);
        self.step(1.0, r, z);
    }

    /// m-step Horner solve: `z ← (Σᵢ αᵢ Gⁱ) P⁻¹ r` via
    /// `w_s = G w_{s−1} + α_{m−s} P⁻¹ r`, `w_0 = 0`, `z = w_m`.
    ///
    /// # Panics
    /// Panics when `alphas` is empty.
    fn msolve(&self, alphas: &[f64], r: &[f64], z: &mut [f64]) {
        assert!(!alphas.is_empty(), "msolve needs at least one coefficient");
        z.fill(0.0);
        let m = alphas.len();
        for s in 1..=m {
            self.step(alphas[m - s], r, z);
        }
    }

    /// Length of the caller-provided scratch [`Splitting::msolve_with`]
    /// needs; `0` when the splitting keeps no per-solve state.
    fn msolve_scratch_len(&self) -> usize {
        0
    }

    /// [`Splitting::msolve`] with caller-owned scratch of length
    /// [`Splitting::msolve_scratch_len`], so several solves over one
    /// shared splitting (the batched multi-RHS workload) can run
    /// concurrently without contending on internal locked buffers.
    /// Numerically identical to `msolve`. The default ignores the scratch.
    fn msolve_with(&self, alphas: &[f64], r: &[f64], z: &mut [f64], _scratch: &mut [f64]) {
        self.msolve(alphas, r, z);
    }

    /// Estimated interval `[λ₁, λₙ]` containing the spectrum of `P⁻¹K`.
    ///
    /// Default: power iteration for `ρ(G)` and the generic bracket
    /// `[1 − ρ, 1 + ρ]` (eigenvalues of `P⁻¹K = I − G`). Splittings with
    /// sharper theory (SSOR: `σ(G) ⊆ [0, ρ]` hence `λₙ = 1`) override this.
    ///
    /// # Errors
    /// Propagates eigen-estimation failures.
    fn spectrum_interval(&self, iters: usize) -> Result<(f64, f64), SparseError> {
        let n = self.dim();
        let rho = power_spectral_radius(n, iters, 0x5EED, |x, y| {
            y.copy_from_slice(x);
            self.step(0.0, x, y);
        })?;
        let rho = rho.min(0.999_999);
        Ok(((1.0 - rho).max(1e-12), 1.0 + rho))
    }
}

/// `P = diag(K)` — the Jacobi (point) splitting, over any operator format
/// (the step is one SpMV plus a pointwise diagonal solve, so it needs
/// nothing from the storage beyond [`SparseOp::mul_vec_into`] and the
/// [`SparseOp::diag_into`] hook).
#[derive(Debug)]
pub struct JacobiSplitting<A: SparseOp = CsrMatrix> {
    a: A,
    inv_diag: Vec<f64>,
    scratch: RefCell<Vec<f64>>,
}

impl<A: SparseOp + Clone> JacobiSplitting<A> {
    /// Build from an SPD matrix in any [`SparseOp`] format.
    ///
    /// # Errors
    /// [`SparseError::NotSquare`] or [`SparseError::ZeroDiagonal`].
    pub fn new(a: &A) -> Result<Self, SparseError> {
        let (rows, cols) = a.dims();
        if rows != cols {
            return Err(SparseError::NotSquare { rows, cols });
        }
        let mut diag = vec![0.0; rows];
        a.diag_into(&mut diag);
        let mut inv_diag = Vec::with_capacity(diag.len());
        for (i, &d) in diag.iter().enumerate() {
            if d <= 0.0 || !d.is_finite() {
                return Err(SparseError::ZeroDiagonal { row: i });
            }
            inv_diag.push(1.0 / d);
        }
        Ok(JacobiSplitting {
            a: a.clone(),
            inv_diag,
            scratch: RefCell::new(vec![0.0; diag.len()]),
        })
    }
}

impl<A: SparseOp> JacobiSplitting<A> {
    /// The underlying matrix.
    pub fn matrix(&self) -> &A {
        &self.a
    }
}

impl<A: SparseOp> Splitting for JacobiSplitting<A> {
    fn dim(&self) -> usize {
        self.a.rows()
    }

    fn step(&self, scale: f64, b: &[f64], x: &mut [f64]) {
        assert_eq!(b.len(), self.dim(), "jacobi step: b length mismatch");
        assert_eq!(x.len(), self.dim(), "jacobi step: x length mismatch");
        let mut t = self.scratch.borrow_mut();
        // t = K x; x_i ← x_i + (scale·b_i − t_i)/d_i.
        self.a.mul_vec_into(x, &mut t);
        for i in 0..x.len() {
            x[i] += (scale * b[i] - t[i]) * self.inv_diag[i];
        }
    }

    /// Exact extremes of `σ(D⁻¹K)` via Lanczos on the similar *symmetric*
    /// operator `D^{-1/2} K D^{-1/2}`, applied matrix-free
    /// (`y = D^{-1/2}·(K·(D^{-1/2}x))`) so no format needs a symmetric
    /// rescaling primitive.
    fn spectrum_interval(&self, iters: usize) -> Result<(f64, f64), SparseError> {
        let n = self.dim();
        let dhalf: Vec<f64> = self.inv_diag.iter().map(|d| d.sqrt()).collect();
        let mut tmp = vec![0.0; n];
        let est = lanczos_extremes(n, iters.clamp(8, n), 0x5EED, |x, y| {
            for i in 0..n {
                tmp[i] = dhalf[i] * x[i];
            }
            self.a.mul_vec_into(&tmp, y);
            for i in 0..n {
                y[i] *= dhalf[i];
            }
        })?;
        let est = est.widened(0.02);
        Ok((est.min.max(1e-12), est.max))
    }
}

/// SSOR(ω) in the natural ordering — sequential forward + backward
/// Gauss–Seidel-type sweeps. This is the splitting the literature
/// (Concus–Golub–O'Leary 1976) uses; the multicolor reordering of
/// [`crate::ssor`] makes it parallel.
#[derive(Debug)]
pub struct NaturalSsorSplitting {
    a: CsrMatrix,
    diag: Vec<f64>,
    omega: f64,
}

impl NaturalSsorSplitting {
    /// Build with relaxation parameter `ω ∈ (0, 2)`.
    ///
    /// # Errors
    /// [`SparseError::NotSquare`], [`SparseError::ZeroDiagonal`], or
    /// [`SparseError::InvalidPartition`] for ω outside `(0, 2)`.
    pub fn new(a: &CsrMatrix, omega: f64) -> Result<Self, SparseError> {
        if !(omega > 0.0 && omega < 2.0) {
            return Err(SparseError::InvalidPartition {
                reason: format!("SSOR omega {omega} outside (0, 2)"),
            });
        }
        let diag = a.diag()?;
        if let Some(i) = diag.iter().position(|&d| d == 0.0 || !d.is_finite()) {
            return Err(SparseError::ZeroDiagonal { row: i });
        }
        Ok(NaturalSsorSplitting {
            a: a.clone(),
            diag,
            omega,
        })
    }

    /// The relaxation parameter.
    pub fn omega(&self) -> f64 {
        self.omega
    }

    fn sweep(&self, scale: f64, b: &[f64], x: &mut [f64], reverse: bool) {
        let n = self.dim();
        let run = |i: usize, x: &mut [f64]| {
            let mut s = scale * b[i];
            for (j, v) in self.a.row_entries(i) {
                s -= v * x[j];
            }
            x[i] += self.omega * s / self.diag[i];
        };
        if reverse {
            for i in (0..n).rev() {
                run(i, x);
            }
        } else {
            for i in 0..n {
                run(i, x);
            }
        }
    }
}

impl Splitting for NaturalSsorSplitting {
    fn dim(&self) -> usize {
        self.a.rows()
    }

    fn step(&self, scale: f64, b: &[f64], x: &mut [f64]) {
        assert_eq!(b.len(), self.dim(), "ssor step: b length mismatch");
        assert_eq!(x.len(), self.dim(), "ssor step: x length mismatch");
        self.sweep(scale, b, x, false);
        self.sweep(scale, b, x, true);
    }

    fn spectrum_interval(&self, iters: usize) -> Result<(f64, f64), SparseError> {
        // SSOR of an SPD matrix has σ(G) ⊆ [0, ρ] ⇒ σ(P⁻¹K) ⊆ [1 − ρ, 1].
        let n = self.dim();
        let rho = power_spectral_radius(n, iters, 0x5EED, |x, y| {
            y.copy_from_slice(x);
            self.step(0.0, x, y);
        })?;
        let rho = rho.min(0.999_999);
        Ok(((1.0 - rho).max(1e-12), 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspcg_sparse::CooMatrix;

    fn laplacian(n: usize) -> CsrMatrix {
        let mut a = CooMatrix::new(n, n);
        for i in 0..n {
            a.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                a.push_sym(i, i + 1, -1.0).unwrap();
            }
        }
        a.to_csr()
    }

    fn converge<S: Splitting>(s: &S, b: &[f64], steps: usize) -> Vec<f64> {
        let mut x = vec![0.0; s.dim()];
        for _ in 0..steps {
            s.step(1.0, b, &mut x);
        }
        x
    }

    #[test]
    fn jacobi_iteration_converges_to_solution() {
        let a = laplacian(8);
        let x_true: Vec<f64> = (0..8).map(|i| (i as f64 * 0.7).sin()).collect();
        let b = a.mul_vec(&x_true);
        let s = JacobiSplitting::new(&a).unwrap();
        let x = converge(&s, &b, 2000);
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn ssor_iteration_converges_faster_than_jacobi() {
        let a = laplacian(16);
        let x_true: Vec<f64> = (0..16).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let b = a.mul_vec(&x_true);
        let jac = JacobiSplitting::new(&a).unwrap();
        let ssor = NaturalSsorSplitting::new(&a, 1.0).unwrap();
        let err = |x: &[f64]| -> f64 {
            x.iter()
                .zip(&x_true)
                .map(|(u, v)| (u - v).abs())
                .fold(0.0, f64::max)
        };
        let xj = converge(&jac, &b, 100);
        let xs = converge(&ssor, &b, 100);
        assert!(
            err(&xs) < err(&xj),
            "ssor {} vs jacobi {}",
            err(&xs),
            err(&xj)
        );
    }

    #[test]
    fn solve_p_matches_one_step_from_zero() {
        let a = laplacian(6);
        let s = NaturalSsorSplitting::new(&a, 1.2).unwrap();
        let r: Vec<f64> = (0..6).map(|i| i as f64 - 2.5).collect();
        let mut z1 = vec![0.0; 6];
        s.solve_p(&r, &mut z1);
        let mut z2 = vec![0.0; 6];
        s.step(1.0, &r, &mut z2);
        assert_eq!(z1, z2);
    }

    #[test]
    fn msolve_with_unit_alphas_equals_m_steps() {
        let a = laplacian(6);
        let s = JacobiSplitting::new(&a).unwrap();
        let r: Vec<f64> = (0..6).map(|i| (i as f64).cos()).collect();
        let mut z = vec![0.0; 6];
        s.msolve(&[1.0, 1.0, 1.0], &r, &mut z);
        let manual = converge(&s, &r, 3);
        for (u, v) in z.iter().zip(&manual) {
            assert!((u - v).abs() < 1e-14);
        }
    }

    #[test]
    fn msolve_single_alpha_scales_p_inverse() {
        let a = laplacian(5);
        let s = JacobiSplitting::new(&a).unwrap();
        let r = vec![1.0; 5];
        let mut z = vec![0.0; 5];
        s.msolve(&[2.0], &r, &mut z);
        let mut p = vec![0.0; 5];
        s.solve_p(&r, &mut p);
        for (u, v) in z.iter().zip(&p) {
            assert!((u - 2.0 * v).abs() < 1e-14);
        }
    }

    #[test]
    fn jacobi_spectrum_interval_of_laplacian() {
        // D⁻¹K for tridiag(-1,2,-1): eigenvalues 1 − cos(kπ/(n+1)) ∈ (0, 2).
        let n = 32;
        let a = laplacian(n);
        let s = JacobiSplitting::new(&a).unwrap();
        let (lo, hi) = s.spectrum_interval(32).unwrap();
        let h = std::f64::consts::PI / (n as f64 + 1.0);
        let exact_lo = 1.0 - h.cos();
        let exact_hi = 1.0 + h.cos();
        assert!(lo > 0.0 && lo < exact_lo * 2.0, "lo {lo} vs {exact_lo}");
        assert!(
            hi > exact_hi * 0.98 && hi < exact_hi * 1.1,
            "hi {hi} vs {exact_hi}"
        );
    }

    #[test]
    fn ssor_spectrum_upper_end_is_one() {
        let a = laplacian(12);
        let s = NaturalSsorSplitting::new(&a, 1.0).unwrap();
        let (lo, hi) = s.spectrum_interval(60).unwrap();
        assert_eq!(hi, 1.0);
        assert!(lo > 0.0 && lo < 1.0);
    }

    #[test]
    fn ssor_rejects_bad_omega() {
        let a = laplacian(4);
        assert!(NaturalSsorSplitting::new(&a, 0.0).is_err());
        assert!(NaturalSsorSplitting::new(&a, 2.0).is_err());
        assert!(NaturalSsorSplitting::new(&a, 1.99).is_ok());
    }

    #[test]
    fn jacobi_rejects_zero_diagonal() {
        let mut c = CooMatrix::new(2, 2);
        c.push(0, 0, 1.0).unwrap();
        c.push_sym(0, 1, 1.0).unwrap();
        c.push(1, 1, 0.0).unwrap();
        assert!(JacobiSplitting::new(&c.to_csr()).is_err());
    }
}
