//! # mspcg-core
//!
//! The paper's primary contribution: the **m-step preconditioned conjugate
//! gradient method** of Adams (ICPP 1983).
//!
//! Solves `K u = f` for sparse SPD `K` by conjugate gradients, where the
//! preconditioner takes `m` steps of a stationary iterative method built
//! from a splitting `K = P − Q`:
//!
//! ```text
//! M_m⁻¹ = (α₀ I + α₁ G + … + α_{m−1} G^{m−1}) P⁻¹,    G = P⁻¹ Q.
//! ```
//!
//! * [`pcg`] — Algorithm 1, generic over [`preconditioner::Preconditioner`],
//!   with the paper's `‖u^{k+1} − u^k‖∞ < ε` stopping test, running on the
//!   fused one-pass update kernels of `mspcg_sparse::vecops`,
//! * [`multi`] — batched multi-RHS solves (many load cases on one
//!   stiffness matrix) over shared matrix/preconditioner handles,
//! * [`splitting`] — the [`splitting::Splitting`] abstraction plus Jacobi
//!   and natural-order SSOR splittings,
//! * [`ssor`] — the multicolor block SSOR splitting with the
//!   Conrad–Wallach auxiliary-vector optimization (paper Algorithm 2),
//! * [`mstep`] — the m-step preconditioner (Horner evaluation of the
//!   polynomial in `G`), parametrized or not,
//! * [`poly`] — the barrier-free **polynomial (Newton–Chebyshev)
//!   preconditioner** on the Lanczos-estimated spectrum of the
//!   Jacobi-scaled operator: `k` SpMVs per application, zero color-sweep
//!   synchronization, with the [`poly::AutoPreconditioner`] selector
//!   (`MSPCG_PRECOND`) choosing between it and the m-step SSOR,
//! * [`coeffs`] — least-squares and min-max α coefficients
//!   (Johnson–Micchelli–Paul parametrization, §2.2, Table 1),
//! * [`quadrature`] — Gauss–Legendre rules used by the least-squares fit,
//! * [`analysis`] — Eq. (4.1)/(4.2) cost model, optimal-m prediction and
//!   condition-number studies (the κ(M⁻¹K) vs m experiments),
//! * [`ic`] — the IC(0) incomplete-Cholesky baseline the m-step method
//!   competes with (effective per iteration, but inherently sequential),
//! * [`recovery`] — fault injection ([`recovery::FaultyOp`],
//!   [`recovery::FaultyPreconditioner`]), residual auditing with
//!   replacement, and the [`recovery::RecoveryPolicy`] ladder that steps
//!   Pipelined → SingleReduction → Classic on breakdown or detected
//!   corruption.

// Indexed `for i in 0..n` loops are deliberate throughout the numeric
// kernels: they address several parallel arrays (CSR structure, split
// points, diagonals) by the same row index, where iterator zips would
// obscure the math. Clippy's needless_range_loop lint fires on exactly
// this pattern, so it is allowed crate-wide.
#![allow(clippy::needless_range_loop)]
pub mod analysis;
pub mod coeffs;
pub mod ic;
pub mod mstep;
pub mod multi;
pub mod pcg;
pub mod poly;
pub mod preconditioner;
pub mod quadrature;
pub mod recovery;
pub mod splitting;
pub mod ssor;

pub use coeffs::{least_squares_alphas, minimax_alphas, Weight};
pub use ic::IncompleteCholesky;
pub use mstep::{MStep, MStepJacobiPreconditioner, MStepSsorPreconditioner};
pub use multi::{pcg_solve_multi, MultiRhsSummary, MultiRhsWorkspace, RhsOutcome, SolveStatus};
pub use pcg::{
    cg_solve, pcg_solve, pcg_solve_into, pcg_try_solve_into, PcgOptions, PcgReport, PcgSolution,
    PcgVariant, PcgWorkspace, StoppingCriterion,
};
pub use poly::{auto_preconditioner, AutoPreconditioner, PolySchedule, PolynomialPreconditioner};
pub use preconditioner::{DiagonalPreconditioner, IdentityPreconditioner, Preconditioner};
pub use recovery::{
    ApplicationFault, FaultKind, FaultPlan, FaultTarget, FaultyOp, FaultyPreconditioner,
    IterationFault, RecoveryPolicy, Toggle,
};
pub use splitting::{JacobiSplitting, NaturalSsorSplitting, Splitting};
pub use ssor::MulticolorSsor;
