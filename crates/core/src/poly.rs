//! Polynomial (Newton–Chebyshev) preconditioning — the **barrier-free**
//! alternative to the paper's m-step SSOR.
//!
//! The m-step multicolor SSOR preconditioner costs `m·(2C−1)` color-sweep
//! barriers per application on the SPMD schedule (`C` = colors); those
//! sweeps dominate every variant of the reduction ladder. A polynomial
//! preconditioner `M⁻¹ = p(G)·D⁻¹` in the Jacobi-scaled operator
//! `G = D⁻¹K` is built from **SpMVs only**: a degree-`k` application is
//! exactly `k` products `K·z` interleaved with fused BLAS-1 sweeps
//! ([`mspcg_sparse::vecops::fused_poly_seed`] /
//! [`mspcg_sparse::vecops::fused_poly_step`]) — zero color-sweep
//! synchronization, `k` full barriers per application in SPMD
//! (Bergamaschi–Martinez 2020; D'Ambra et al. 2025 for the Chebyshev-basis
//! recipe).
//!
//! `M⁻¹` is symmetric positive definite in the PCG sense:
//! `p(D⁻¹K)·D⁻¹ = D^{-1/2}·p(D^{-1/2}K D^{-1/2})·D^{-1/2}` is congruent to
//! a polynomial in a symmetric matrix, and both recurrences here keep
//! `p > 0` on the estimated spectral interval (the Chebyshev residual
//! polynomial satisfies `|1 − t·p(t)| < 1` inside it).
//!
//! Both recurrences are expressed by one difference scheme so the serial
//! and SPMD paths share bitwise-identical scalars ([`PolySchedule`]):
//!
//! ```text
//! z₀ = scale₀·D⁻¹r,        d₀ = z₀,
//! step j:   resid = D⁻¹(r − K·z),   d ← aⱼ·d + bⱼ·resid,   z ← z + d.
//! ```
//!
//! * **Newton** (scaled Richardson / truncated Neumann): with the optimal
//!   damping `ω = 2/(λ₁+λₙ)`: `scale₀ = ω`, `(aⱼ, bⱼ) = (0, ω)`;
//! * **Chebyshev** (Saad, *Iterative Methods*, Alg. 12.1): with
//!   `θ = (λₙ+λ₁)/2`, `δ = (λₙ−λ₁)/2`, `σ = θ/δ`: `scale₀ = 1/θ`,
//!   `ρ₀ = 1/σ`, and step `j` uses `ρⱼ = 1/(2σ − ρⱼ₋₁)`,
//!   `(aⱼ, bⱼ) = (ρⱼρⱼ₋₁, 2ρⱼ/δ)`.
//!
//! The spectral interval comes from [`mspcg_sparse::lanczos`] on the
//! symmetric similar operator `D^{-1/2}K D^{-1/2}` — the matrix-free
//! recipe of [`crate::splitting::JacobiSplitting::spectrum_interval`],
//! but safeguarded *relatively* on both ends ([`jacobi_spectrum`]) so a
//! small `λ₁` keeps its order of magnitude — and is **cached** in the
//! preconditioner: repeated applications (every PCG iteration) and
//! rebuilt preconditioners over the same matrix
//! ([`PolynomialPreconditioner::with_interval`]) never re-run Lanczos.

use crate::mstep::MStepSsorPreconditioner;
use crate::preconditioner::Preconditioner;
use mspcg_sparse::lanczos::{lanczos_extremes, SpectralInterval};
use mspcg_sparse::tuning::{forced_precond, PolyKind, PrecondKind};
use mspcg_sparse::{vecops, CsrMatrix, Partition, SparseError, SparseOp};
use std::sync::Mutex;

/// Lanczos step budget when a constructor must estimate the spectral
/// interval itself (matches the m-step constructors' power-iteration
/// budget; `lanczos_extremes` clamps it to the operator dimension).
pub const SPECTRUM_STEPS: usize = 60;

/// Relative safeguard on the **upper** interval end (Ritz values
/// under-estimate `λₙ` from the inside).
pub const UPPER_MARGIN: f64 = 0.02;

/// Relative safeguard on the **lower** interval end: the lower Ritz value
/// is pushed *down* by this factor. The margin is multiplicative — an
/// additive span-proportional widening (as
/// [`SpectralInterval::widened`] applies) would annihilate a small `λ₁`
/// entirely (`λ₁ − margin·(λₙ−λ₁) < 0` whenever `κ > 1/margin`), turning
/// the Chebyshev interval into `[ε, λₙ]` on which the recurrence gains
/// nothing — and it is deliberately *small*: the asymptotic Chebyshev
/// damping factor degrades like `√(λ₁/λₙ)`, so every factor of two lost
/// at the lower end costs `√2` in the exponent. Under-bracketing below is
/// safe for SPD: Ritz values never under-estimate `λ₁` (they lie inside
/// the true spectrum), and even for an eigenvalue `t` that does fall
/// below the interval the residual polynomial satisfies `R(t) ∈ (0, 1)`
/// on `(0, λmin)` (the shifted Chebyshev argument is in `(1, σ)` where
/// `C_{k+1}` increases monotonically from the equioscillation bound up to
/// `R(0) = 1`), hence `p(t)·t = 1 − R(t) > 0`. Only the *upper* end can
/// break positivity, which is why [`UPPER_MARGIN`] brackets outward.
pub const LOWER_MARGIN: f64 = 0.1;

/// Estimate the spectral interval of the Jacobi-scaled operator `D⁻¹K`
/// via Lanczos on the similar symmetric operator `D^{-1/2}K D^{-1/2}`,
/// safeguarded relatively on both ends ([`LOWER_MARGIN`] /
/// [`UPPER_MARGIN`]) with the lower end clamped positive.
///
/// # Errors
/// Propagates [`lanczos_extremes`] failures.
///
/// # Panics
/// Panics if `inv_diag.len() != a.rows()`.
pub fn jacobi_spectrum<A: SparseOp>(
    a: &A,
    inv_diag: &[f64],
) -> Result<SpectralInterval, SparseError> {
    Ok(safeguard_jacobi_interval(raw_jacobi_spectrum(a, inv_diag)?))
}

/// The **unsafeguarded** Ritz-value interval behind [`jacobi_spectrum`]:
/// exactly what Lanczos estimated, before the relative margins bracket it.
/// The safeguarding deliberately widens a degenerate point spectrum into a
/// usable (non-degenerate) interval, so consumers that need to *detect*
/// degeneracy — the `Auto` preconditioner heuristic must not commit to a
/// polynomial on `λmin ≈ λmax` — check
/// [`SpectralInterval::is_degenerate`] on this raw estimate and then apply
/// [`safeguard_jacobi_interval`] themselves, reusing the single Lanczos
/// run for both decisions.
///
/// # Errors
/// Propagates [`lanczos_extremes`] failures.
///
/// # Panics
/// Panics if `inv_diag.len() != a.rows()`.
pub fn raw_jacobi_spectrum<A: SparseOp>(
    a: &A,
    inv_diag: &[f64],
) -> Result<SpectralInterval, SparseError> {
    let n = a.rows();
    assert_eq!(inv_diag.len(), n, "jacobi_spectrum: diag length mismatch");
    let dhalf: Vec<f64> = inv_diag.iter().map(|d| d.sqrt()).collect();
    let mut tmp = vec![0.0; n];
    lanczos_extremes(n, SPECTRUM_STEPS, 0x5EED, |x, y| {
        for i in 0..n {
            tmp[i] = dhalf[i] * x[i];
        }
        a.mul_vec_into(&tmp, y);
        for i in 0..n {
            y[i] *= dhalf[i];
        }
    })
}

/// Apply the [`LOWER_MARGIN`] / [`UPPER_MARGIN`] relative safeguards to a
/// raw Ritz-value estimate (lower end clamped positive) — the widening
/// step of [`jacobi_spectrum`], exposed so callers of
/// [`raw_jacobi_spectrum`] produce bitwise the same interval.
pub fn safeguard_jacobi_interval(est: SpectralInterval) -> SpectralInterval {
    SpectralInterval {
        min: (est.min * (1.0 - LOWER_MARGIN)).max(1e-12),
        max: est.max * (1.0 + UPPER_MARGIN),
        steps: est.steps,
    }
}

/// The coefficient schedule of one polynomial preconditioner application:
/// the seed scale and the per-step `(aⱼ, bⱼ)` pairs of the unified
/// difference recurrence (module docs). Computed **once** at construction
/// and shared verbatim by the serial and SPMD evaluators, so both run
/// bitwise-identical arithmetic.
#[derive(Debug, Clone, PartialEq)]
pub struct PolySchedule {
    scale0: f64,
    steps: Vec<(f64, f64)>,
}

impl PolySchedule {
    /// Build the schedule for `kind` at `degree` on the (already widened)
    /// interval `[min, max]`.
    ///
    /// A degenerate interval (`max − min` negligible against `θ` — a
    /// scaled identity, or a 1×1 system) makes the Chebyshev three-term
    /// recurrence ill-defined (`δ → 0`), so both kinds then fall back to
    /// the single-point Richardson schedule `(0, 1/θ)`, which is exact in
    /// one step for the operator the interval describes.
    ///
    /// # Errors
    /// [`SparseError::InvalidPartition`] for `degree == 0`;
    /// [`SparseError::NotPositiveDefinite`] when `min ≤ 0` or the ends are
    /// not finite and ordered (the preconditioner would not be SPD).
    pub fn new(kind: PolyKind, min: f64, max: f64, degree: usize) -> Result<Self, SparseError> {
        if degree == 0 {
            return Err(SparseError::InvalidPartition {
                reason: "polynomial degree must be at least 1".into(),
            });
        }
        if !(min > 0.0 && max >= min && max.is_finite()) {
            return Err(SparseError::NotPositiveDefinite {
                pivot: 0,
                value: min,
            });
        }
        let theta = 0.5 * (max + min);
        let delta = 0.5 * (max - min);
        let degenerate = delta <= theta * 1e-12;
        let schedule = match kind {
            _ if degenerate => PolySchedule {
                scale0: 1.0 / theta,
                steps: vec![(0.0, 1.0 / theta); degree],
            },
            PolyKind::Newton => {
                let omega = 2.0 / (max + min);
                PolySchedule {
                    scale0: omega,
                    steps: vec![(0.0, omega); degree],
                }
            }
            PolyKind::Chebyshev => {
                let sigma = theta / delta;
                let mut rho = 1.0 / sigma;
                let mut steps = Vec::with_capacity(degree);
                for _ in 0..degree {
                    let rho_next = 1.0 / (2.0 * sigma - rho);
                    steps.push((rho_next * rho, 2.0 * rho_next / delta));
                    rho = rho_next;
                }
                PolySchedule {
                    scale0: 1.0 / theta,
                    steps,
                }
            }
        };
        Ok(schedule)
    }

    /// The seed scale `scale₀` (`z₀ = scale₀·D⁻¹r`).
    pub fn scale0(&self) -> f64 {
        self.scale0
    }

    /// The `(aⱼ, bⱼ)` pairs, one per degree (= one per SpMV).
    pub fn steps(&self) -> &[(f64, f64)] {
        &self.steps
    }

    /// Polynomial degree = SpMVs per application.
    pub fn degree(&self) -> usize {
        self.steps.len()
    }
}

/// The degree-`k` polynomial preconditioner `M⁻¹ = p(D⁻¹K)·D⁻¹`, generic
/// over the operator storage ([`SparseOp`]): CSR, SELL-C-σ and `AutoOp`
/// all evaluate through the same fused kernels and produce bitwise
/// identical applications (the SpMV determinism contract). Allocation-free
/// after setup via [`Preconditioner::scratch_len`] /
/// [`Preconditioner::apply_with`]; plain [`Preconditioner::apply`] uses an
/// internal locked scratch.
pub struct PolynomialPreconditioner<A: SparseOp = CsrMatrix> {
    a: A,
    inv_diag: Vec<f64>,
    kind: PolyKind,
    interval: SpectralInterval,
    schedule: PolySchedule,
    scratch: Mutex<Vec<f64>>,
}

impl<A: SparseOp> PolynomialPreconditioner<A> {
    /// Build for `kind` at `degree`, estimating the spectral interval of
    /// `D⁻¹K` with Lanczos ([`jacobi_spectrum`]). The estimate is cached
    /// in the preconditioner — reuse it across rebuilds with
    /// [`PolynomialPreconditioner::with_interval`].
    ///
    /// # Errors
    /// [`SparseError::NotSquare`] / [`SparseError::ZeroDiagonal`] for a
    /// defective matrix, estimation failures, and the
    /// [`PolySchedule::new`] validation errors.
    pub fn new(a: A, kind: PolyKind, degree: usize) -> Result<Self, SparseError> {
        let inv_diag = checked_inv_diag(&a)?;
        let interval = jacobi_spectrum(&a, &inv_diag)?;
        Self::assemble(a, inv_diag, kind, degree, interval)
    }

    /// Chebyshev recurrence at `degree` (the default kind — min-max
    /// optimal on the estimated interval).
    ///
    /// # Errors
    /// Same classes as [`PolynomialPreconditioner::new`].
    pub fn chebyshev(a: A, degree: usize) -> Result<Self, SparseError> {
        Self::new(a, PolyKind::Chebyshev, degree)
    }

    /// Newton (scaled Richardson) recurrence at `degree`.
    ///
    /// # Errors
    /// Same classes as [`PolynomialPreconditioner::new`].
    pub fn newton(a: A, degree: usize) -> Result<Self, SparseError> {
        Self::new(a, PolyKind::Newton, degree)
    }

    /// Build from an **already estimated** interval — the Lanczos-caching
    /// entry point: a second preconditioner over the same matrix (another
    /// degree, the other kind, a rebuilt solver) reuses the cached
    /// [`PolynomialPreconditioner::interval`] instead of re-running the
    /// eigenvalue estimation.
    ///
    /// # Errors
    /// Matrix validation and [`PolySchedule::new`] errors.
    pub fn with_interval(
        a: A,
        kind: PolyKind,
        degree: usize,
        interval: SpectralInterval,
    ) -> Result<Self, SparseError> {
        let inv_diag = checked_inv_diag(&a)?;
        Self::assemble(a, inv_diag, kind, degree, interval)
    }

    fn assemble(
        a: A,
        inv_diag: Vec<f64>,
        kind: PolyKind,
        degree: usize,
        interval: SpectralInterval,
    ) -> Result<Self, SparseError> {
        let schedule = PolySchedule::new(kind, interval.min, interval.max, degree)?;
        let n = inv_diag.len();
        Ok(PolynomialPreconditioner {
            a,
            inv_diag,
            kind,
            interval,
            schedule,
            scratch: Mutex::new(vec![0.0; 2 * n]),
        })
    }

    /// The recurrence family.
    pub fn kind(&self) -> PolyKind {
        self.kind
    }

    /// Polynomial degree (= SpMVs per application).
    pub fn degree(&self) -> usize {
        self.schedule.degree()
    }

    /// The cached spectral-interval estimate of `D⁻¹K` this preconditioner
    /// was built on — feed it to
    /// [`PolynomialPreconditioner::with_interval`] to skip Lanczos on a
    /// rebuild.
    pub fn interval(&self) -> SpectralInterval {
        self.interval
    }

    /// The coefficient schedule (shared with the SPMD evaluator).
    pub fn schedule(&self) -> &PolySchedule {
        &self.schedule
    }

    /// Reciprocal diagonal of `K`.
    pub fn inv_diag(&self) -> &[f64] {
        &self.inv_diag
    }

    /// Borrow the underlying operator.
    pub fn matrix(&self) -> &A {
        &self.a
    }

    /// Rebuild at another `degree` (same matrix, same kind), reusing the
    /// cached interval **and** the checked reciprocal diagonal — the
    /// degree-sweep entry point: a sweep over degrees on one matrix runs
    /// Lanczos exactly once, for the first preconditioner.
    ///
    /// # Errors
    /// [`PolySchedule::new`] validation errors.
    pub fn with_degree(&self, degree: usize) -> Result<Self, SparseError>
    where
        A: Clone,
    {
        Self::assemble(
            self.a.clone(),
            self.inv_diag.clone(),
            self.kind,
            degree,
            self.interval,
        )
    }
}

pub(crate) fn checked_inv_diag<A: SparseOp>(a: &A) -> Result<Vec<f64>, SparseError> {
    let (rows, cols) = a.dims();
    if rows != cols {
        return Err(SparseError::NotSquare { rows, cols });
    }
    let mut diag = vec![0.0; rows];
    a.diag_into(&mut diag);
    let mut inv = Vec::with_capacity(rows);
    for (i, &d) in diag.iter().enumerate() {
        if d <= 0.0 || !d.is_finite() {
            return Err(SparseError::ZeroDiagonal { row: i });
        }
        inv.push(1.0 / d);
    }
    Ok(inv)
}

impl<A: SparseOp> Preconditioner for PolynomialPreconditioner<A> {
    fn dim(&self) -> usize {
        self.inv_diag.len()
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let mut guard = self.scratch.lock().expect("poly scratch poisoned");
        let scratch = &mut *guard;
        self.apply_with(r, z, scratch);
    }

    /// One SpMV per degree — the `k` of the Eq. (4.1)-style cost model,
    /// directly comparable to the `m` of the m-step preconditioner at
    /// matched sweep cost (`k ≈ 2m` streams the matrix equally often).
    fn steps_per_apply(&self) -> usize {
        self.schedule.degree()
    }

    fn scratch_len(&self) -> usize {
        2 * self.inv_diag.len()
    }

    fn apply_with(&self, r: &[f64], z: &mut [f64], scratch: &mut [f64]) {
        let n = self.inv_diag.len();
        assert_eq!(r.len(), n, "poly apply: r length mismatch");
        assert_eq!(z.len(), n, "poly apply: z length mismatch");
        assert!(scratch.len() >= 2 * n, "poly apply: scratch too short");
        let (kz, d) = scratch.split_at_mut(n);
        let kz = &mut kz[..n];
        let d = &mut d[..n];
        vecops::fused_poly_seed(self.schedule.scale0, &self.inv_diag, r, z, d);
        for &(aj, bj) in self.schedule.steps() {
            self.a.mul_vec_into(z, kz);
            vecops::fused_poly_step(aj, bj, &self.inv_diag, r, kz, d, z);
        }
    }

    /// The cached Jacobi-spectrum estimate: lets the s-step basis reuse
    /// this preconditioner's Lanczos run instead of performing its own
    /// (the poly-precond ↔ s-step-basis boundary of the caching story).
    fn spectral_hint(&self) -> Option<SpectralInterval> {
        Some(self.interval)
    }
}

/// The Auto-resolved serial preconditioner: either the paper's m-step
/// multicolor SSOR or the barrier-free polynomial, behind one type so
/// callers can let [`PrecondKind::resolve`] (and its validated
/// `MSPCG_PRECOND` override) choose per matrix.
pub enum AutoPreconditioner<A: SparseOp = CsrMatrix> {
    /// The paper's m-step multicolor SSOR.
    MStepSsor(MStepSsorPreconditioner),
    /// The degree-k polynomial alternative.
    Poly(PolynomialPreconditioner<A>),
}

impl<A: SparseOp> AutoPreconditioner<A> {
    /// Which selection was made.
    pub fn selected(&self) -> PrecondKind {
        match self {
            AutoPreconditioner::MStepSsor(p) => PrecondKind::MStepSsor {
                m: p.steps_per_apply(),
            },
            AutoPreconditioner::Poly(p) => PrecondKind::Poly {
                kind: p.kind(),
                degree: p.degree(),
            },
        }
    }
}

impl<A: SparseOp> Preconditioner for AutoPreconditioner<A> {
    fn dim(&self) -> usize {
        match self {
            AutoPreconditioner::MStepSsor(p) => p.dim(),
            AutoPreconditioner::Poly(p) => p.dim(),
        }
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        match self {
            AutoPreconditioner::MStepSsor(p) => p.apply(r, z),
            AutoPreconditioner::Poly(p) => p.apply(r, z),
        }
    }

    fn steps_per_apply(&self) -> usize {
        match self {
            AutoPreconditioner::MStepSsor(p) => p.steps_per_apply(),
            AutoPreconditioner::Poly(p) => p.steps_per_apply(),
        }
    }

    fn scratch_len(&self) -> usize {
        match self {
            AutoPreconditioner::MStepSsor(p) => p.scratch_len(),
            AutoPreconditioner::Poly(p) => p.scratch_len(),
        }
    }

    fn apply_with(&self, r: &[f64], z: &mut [f64], scratch: &mut [f64]) {
        match self {
            AutoPreconditioner::MStepSsor(p) => p.apply_with(r, z, scratch),
            AutoPreconditioner::Poly(p) => p.apply_with(r, z, scratch),
        }
    }

    fn spectral_hint(&self) -> Option<SpectralInterval> {
        match self {
            AutoPreconditioner::MStepSsor(p) => p.spectral_hint(),
            AutoPreconditioner::Poly(p) => p.spectral_hint(),
        }
    }
}

/// Resolve `selection` against the `MSPCG_PRECOND` override and the
/// barrier-cost heuristic ([`PrecondKind::resolve`] with
/// `colors.num_blocks()` and `m_default`) and build the chosen serial
/// preconditioner over `a`.
///
/// # Errors
/// Propagates the chosen constructor's errors.
pub fn auto_preconditioner<A: SparseOp + Clone>(
    a: &A,
    colors: &Partition,
    m_default: usize,
    selection: PrecondKind,
) -> Result<AutoPreconditioner<A>, SparseError> {
    // The barrier-cost heuristic (as opposed to a caller or `MSPCG_PRECOND`
    // pin) assumes the Lanczos estimate will produce a usable interval; on
    // a degenerate spectrum that assumption fails and the heuristic choice
    // must be revisited below.
    let heuristic = selection == PrecondKind::Auto && forced_precond().is_none();
    match selection.resolve(colors.num_blocks(), m_default) {
        PrecondKind::Auto => unreachable!("resolve never returns Auto"),
        PrecondKind::MStepSsor { m } => Ok(AutoPreconditioner::MStepSsor(
            MStepSsorPreconditioner::unparametrized_op(a, colors, m)?,
        )),
        PrecondKind::Poly { kind, degree } => {
            // Estimate the interval ONCE, before committing: on a
            // degenerate RAW spectrum (λmin ≈ λmax — a scaled identity, a
            // tiny system, an early invariant-subspace break) every
            // polynomial schedule collapses to (near-)Richardson on the
            // artificially widened safeguard interval, which buys nothing
            // over the sweeps the heuristic rejected on barrier cost — so
            // a *heuristic* polynomial pick falls back to m-step SSOR. A
            // pinned polynomial stays pinned (its schedule handles the
            // degenerate interval explicitly).
            let inv_diag = checked_inv_diag(a)?;
            let raw = raw_jacobi_spectrum(a, &inv_diag)?;
            if heuristic && raw.is_degenerate() {
                return Ok(AutoPreconditioner::MStepSsor(
                    MStepSsorPreconditioner::unparametrized_op(a, colors, m_default.max(1))?,
                ));
            }
            Ok(AutoPreconditioner::Poly(
                PolynomialPreconditioner::with_interval(
                    a.clone(),
                    kind,
                    degree,
                    safeguard_jacobi_interval(raw),
                )?,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcg::{pcg_solve, PcgOptions};
    use crate::preconditioner::DiagonalPreconditioner;
    use mspcg_sparse::{CooMatrix, SellCsMatrix};

    fn laplacian(n: usize) -> CsrMatrix {
        let mut a = CooMatrix::new(n, n);
        for i in 0..n {
            a.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                a.push_sym(i, i + 1, -1.0).unwrap();
            }
        }
        a.to_csr()
    }

    /// 5-point Poisson operator on a `g × g` grid. The 2D problem is the
    /// right stage for iteration-count comparisons: diagonal-scaled CG
    /// needs `O(g)` iterations on `n = g²` unknowns, so the κ-bound (not
    /// Krylov finite termination, which caps any 1D tridiagonal test at
    /// `n` steps regardless of preconditioner) governs convergence.
    fn poisson2d(g: usize) -> CsrMatrix {
        let n = g * g;
        let mut a = CooMatrix::new(n, n);
        for r in 0..g {
            for c in 0..g {
                let i = r * g + c;
                a.push(i, i, 4.0).unwrap();
                if c + 1 < g {
                    a.push_sym(i, i + 1, -1.0).unwrap();
                }
                if r + 1 < g {
                    a.push_sym(i, i + g, -1.0).unwrap();
                }
            }
        }
        a.to_csr()
    }

    #[test]
    fn schedule_shapes_and_validation() {
        let s = PolySchedule::new(PolyKind::Chebyshev, 0.5, 2.0, 4).unwrap();
        assert_eq!(s.degree(), 4);
        assert_eq!(s.scale0(), 1.0 / 1.25);
        let n = PolySchedule::new(PolyKind::Newton, 0.5, 2.0, 3).unwrap();
        assert_eq!(n.steps(), &[(0.0, 0.8); 3]);
        assert_eq!(n.scale0(), 0.8);
        assert!(PolySchedule::new(PolyKind::Chebyshev, 0.5, 2.0, 0).is_err());
        assert!(PolySchedule::new(PolyKind::Chebyshev, 0.0, 2.0, 2).is_err());
        assert!(PolySchedule::new(PolyKind::Newton, -1.0, 2.0, 2).is_err());
        assert!(PolySchedule::new(PolyKind::Newton, 1.0, f64::INFINITY, 2).is_err());
        // Degenerate interval: both kinds collapse to Richardson at 1/θ.
        let dg = PolySchedule::new(PolyKind::Chebyshev, 2.0, 2.0, 3).unwrap();
        assert_eq!(dg.steps(), &[(0.0, 0.5); 3]);
        assert_eq!(
            dg,
            PolySchedule::new(PolyKind::Newton, 2.0, 2.0, 3).unwrap()
        );
    }

    #[test]
    fn newton_apply_matches_manual_richardson() {
        let a = laplacian(24);
        let pre = PolynomialPreconditioner::newton(a.clone(), 3).unwrap();
        let omega = pre.schedule().scale0();
        let inv_diag: Vec<f64> = a.diag().unwrap().iter().map(|d| 1.0 / d).collect();
        let r: Vec<f64> = (0..24).map(|i| (i as f64 * 0.4).sin()).collect();
        let mut z = vec![0.0; 24];
        pre.apply(&r, &mut z);
        // Manual damped-Jacobi (Richardson on D⁻¹K): x ← x + ω·D⁻¹(r − Kx),
        // started from x = ω·D⁻¹r — 3 steps = 3 SpMVs = degree 3.
        let mut x: Vec<f64> = (0..24).map(|i| omega * inv_diag[i] * r[i]).collect();
        for _ in 0..3 {
            let kx = a.mul_vec(&x);
            for i in 0..24 {
                x[i] += omega * inv_diag[i] * (r[i] - kx[i]);
            }
        }
        for (u, v) in z.iter().zip(&x) {
            assert!((u - v).abs() < 1e-13, "{u} vs {v}");
        }
    }

    #[test]
    fn apply_and_apply_with_are_bitwise_identical() {
        let a = laplacian(40);
        let pre = PolynomialPreconditioner::chebyshev(a, 4).unwrap();
        let r: Vec<f64> = (0..40).map(|i| (i as f64).cos()).collect();
        let mut z1 = vec![0.0; 40];
        let mut z2 = vec![0.0; 40];
        pre.apply(&r, &mut z1);
        let mut scratch = vec![0.0; pre.scratch_len()];
        pre.apply_with(&r, &mut z2, &mut scratch);
        assert_eq!(
            z1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            z2.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn cached_interval_rebuild_replays_bitwise_without_lanczos() {
        let a = laplacian(32);
        let first = PolynomialPreconditioner::chebyshev(a.clone(), 4).unwrap();
        // Satellite contract: rebuilding over the same matrix reuses the
        // cached interval instead of re-running the Lanczos estimation,
        // and the rebuilt preconditioner is the same operator bitwise.
        let rebuilt =
            PolynomialPreconditioner::with_interval(a, PolyKind::Chebyshev, 4, first.interval())
                .unwrap();
        assert_eq!(first.schedule(), rebuilt.schedule());
        let r: Vec<f64> = (0..32).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let mut z1 = vec![0.0; 32];
        let mut z2 = vec![0.0; 32];
        first.apply(&r, &mut z1);
        rebuilt.apply(&r, &mut z2);
        assert_eq!(
            z1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            z2.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn sellcs_operator_applies_bitwise_identical_to_csr() {
        let a = laplacian(48);
        let sell = SellCsMatrix::from_csr_autotuned(&a);
        let csr_pre = PolynomialPreconditioner::chebyshev(a, 3).unwrap();
        let sell_pre = PolynomialPreconditioner::with_interval(
            sell,
            PolyKind::Chebyshev,
            3,
            csr_pre.interval(),
        )
        .unwrap();
        let r: Vec<f64> = (0..48)
            .map(|i| ((i * 5) % 11) as f64 * 0.25 - 1.0)
            .collect();
        let mut z1 = vec![0.0; 48];
        let mut z2 = vec![0.0; 48];
        csr_pre.apply(&r, &mut z1);
        sell_pre.apply(&r, &mut z2);
        assert_eq!(
            z1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            z2.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn preconditioner_is_symmetric_in_the_pcg_sense() {
        let a = laplacian(20);
        let pre = PolynomialPreconditioner::chebyshev(a, 4).unwrap();
        let r1: Vec<f64> = (0..20).map(|i| (i as f64 * 0.9).sin()).collect();
        let r2: Vec<f64> = (0..20).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut z1 = vec![0.0; 20];
        let mut z2 = vec![0.0; 20];
        pre.apply(&r1, &mut z1);
        pre.apply(&r2, &mut z2);
        let lhs = vecops::dot(&z1, &r2);
        let rhs = vecops::dot(&r1, &z2);
        assert!(
            (lhs - rhs).abs() < 1e-12 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn scaled_identity_is_inverted_to_margin() {
        // K = 4I: Lanczos finds the degenerate point spectrum {1} of
        // D⁻¹K; the safeguarded interval brackets it and the degree-2
        // Chebyshev application lands close to the exact inverse
        // K⁻¹r = r/4 (within the residual-polynomial bound on the
        // safeguarded interval).
        let n = 10;
        let mut c = CooMatrix::new(n, n);
        for i in 0..n {
            c.push(i, i, 4.0).unwrap();
        }
        let pre = PolynomialPreconditioner::chebyshev(c.to_csr(), 2).unwrap();
        let r: Vec<f64> = (0..n).map(|i| i as f64 - 4.0).collect();
        let mut z = vec![0.0; n];
        pre.apply(&r, &mut z);
        for i in 0..n {
            let want = r[i] / 4.0;
            assert!(
                (z[i] - want).abs() <= 0.05 * want.abs().max(1e-6),
                "{} vs {}",
                z[i],
                want
            );
        }
    }

    #[test]
    fn chebyshev_beats_diagonal_scaling_in_pcg_iterations() {
        let n = 24 * 24;
        let a = poisson2d(24);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).sin()).collect();
        let f = a.mul_vec(&x_true);
        let opts = PcgOptions {
            tol: 1e-10,
            max_iterations: 4 * n,
            ..PcgOptions::default()
        };
        let diag = DiagonalPreconditioner::from_diag(&a.diag().unwrap()).unwrap();
        let base = pcg_solve(&a, &f, &diag, &opts).unwrap();
        let poly = PolynomialPreconditioner::chebyshev(a.clone(), 6).unwrap();
        let fast = pcg_solve(&a, &f, &poly, &opts).unwrap();
        assert!(
            fast.iterations * 2 < base.iterations,
            "poly {} vs diagonal {}",
            fast.iterations,
            base.iterations
        );
        for (u, v) in fast.x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn auto_selection_obeys_heuristic_and_pins() {
        let a = laplacian(12);
        let labels: Vec<usize> = (0..12).map(|i| i % 2).collect();
        let ord = mspcg_coloring::Coloring::from_labels(labels, 2)
            .unwrap()
            .ordering();
        let (pa, colors) = (ord.permute_matrix(&a).unwrap(), ord.partition);
        // A pinned selection bypasses the env override entirely.
        let pinned = auto_preconditioner(
            &pa,
            &colors,
            2,
            PrecondKind::Poly {
                kind: PolyKind::Newton,
                degree: 3,
            },
        )
        .unwrap();
        assert_eq!(
            pinned.selected(),
            PrecondKind::Poly {
                kind: PolyKind::Newton,
                degree: 3
            }
        );
        assert_eq!(pinned.steps_per_apply(), 3);
        // Auto: whatever resolve() picks must be what gets built.
        let auto = auto_preconditioner(&pa, &colors, 2, PrecondKind::Auto).unwrap();
        assert_eq!(
            auto.selected(),
            PrecondKind::Auto.resolve(colors.num_blocks(), 2)
        );
    }

    #[test]
    fn auto_heuristic_falls_back_to_ssor_on_degenerate_spectrum() {
        // K = 3I in a 2-color blocking: the barrier-cost heuristic alone
        // would pick the polynomial (2C−1 = 3 > 2), but the Jacobi
        // spectrum of a scaled identity is the single point {1} — Lanczos
        // breaks on an invariant subspace after one step and the RAW
        // interval is degenerate. Auto must fall back to the m-step
        // sweeps instead of constructing a meaningless schedule.
        let n = 12;
        let mut c = CooMatrix::new(n, n);
        for i in 0..n {
            c.push(i, i, 3.0).unwrap();
        }
        let a = c.to_csr();
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let ord = mspcg_coloring::Coloring::from_labels(labels, 2)
            .unwrap()
            .ordering();
        let (pa, colors) = (ord.permute_matrix(&a).unwrap(), ord.partition);
        if forced_precond().is_none() {
            // Sanity: the heuristic alone WOULD pick the polynomial here.
            assert_eq!(
                PrecondKind::Auto.resolve(colors.num_blocks(), 2),
                PrecondKind::Poly {
                    kind: PolyKind::Chebyshev,
                    degree: 4
                }
            );
            let auto = auto_preconditioner(&pa, &colors, 2, PrecondKind::Auto).unwrap();
            assert_eq!(auto.selected(), PrecondKind::MStepSsor { m: 2 });
        }
        // A *pinned* polynomial stays pinned on the same spectrum: the
        // schedule handles the degenerate interval (Richardson fallback),
        // so the pin is honored rather than second-guessed.
        let pinned = auto_preconditioner(
            &pa,
            &colors,
            2,
            PrecondKind::Poly {
                kind: PolyKind::Chebyshev,
                degree: 2,
            },
        )
        .unwrap();
        assert!(matches!(pinned.selected(), PrecondKind::Poly { .. }));
    }

    /// SpMV-counting wrapper: proves which construction paths run Lanczos.
    #[derive(Clone)]
    struct CountingOp {
        inner: CsrMatrix,
        spmvs: std::sync::Arc<std::sync::atomic::AtomicUsize>,
    }

    impl SparseOp for CountingOp {
        fn rows(&self) -> usize {
            self.inner.rows()
        }
        fn cols(&self) -> usize {
            self.inner.cols()
        }
        fn nnz(&self) -> usize {
            SparseOp::nnz(&self.inner)
        }
        fn mul_vec_range_into(&self, x: &[f64], y: &mut [f64], rows: std::ops::Range<usize>) {
            self.inner.mul_vec_range_into(x, y, rows);
        }
        fn mul_vec_axpy_range(
            &self,
            a: f64,
            x: &[f64],
            y: &mut [f64],
            rows: std::ops::Range<usize>,
        ) {
            self.inner.mul_vec_axpy_range(a, x, y, rows);
        }
        fn visit_row(&self, i: usize, visit: &mut dyn FnMut(usize, f64)) {
            self.inner.visit_row(i, visit);
        }
        fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
            self.spmvs
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.inner.mul_vec_into(x, y);
        }
        fn mul_vec_axpy(&self, a: f64, x: &[f64], y: &mut [f64]) {
            self.spmvs
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.inner.mul_vec_axpy(a, x, y);
        }
    }

    #[test]
    fn degree_sweep_runs_lanczos_exactly_once() {
        let op = CountingOp {
            inner: laplacian(32),
            spmvs: Default::default(),
        };
        let count = || op.spmvs.load(std::sync::atomic::Ordering::Relaxed);
        let first = PolynomialPreconditioner::new(op.clone(), PolyKind::Chebyshev, 2).unwrap();
        let after_estimate = count();
        assert!(after_estimate > 0, "construction must have run Lanczos");
        // The caching contract of the satellite: sweeping degrees over one
        // operator re-estimates NOTHING — with_degree reuses the cached
        // interval and diagonal, with_interval the cached interval.
        let mut sweep = Vec::new();
        for degree in [3usize, 4, 6, 8] {
            sweep.push(first.with_degree(degree).unwrap());
        }
        let rebuilt = PolynomialPreconditioner::with_interval(
            op.clone(),
            PolyKind::Newton,
            5,
            first.interval(),
        )
        .unwrap();
        assert_eq!(
            count(),
            after_estimate,
            "a degree sweep must not re-run the Lanczos estimation"
        );
        assert_eq!(sweep.last().unwrap().degree(), 8);
        assert_eq!(rebuilt.interval(), first.interval());
        // The swept preconditioners are real operators, not stubs.
        let r: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut z = vec![0.0; 32];
        sweep[0].apply(&r, &mut z);
        assert!(z.iter().all(|v| v.is_finite()));
    }
}
