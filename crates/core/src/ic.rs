//! Incomplete Cholesky IC(0) — the baseline the m-step method argues with.
//!
//! In 1983 the standard PCG preconditioner was incomplete Cholesky
//! (Meijerink–van der Vorst; used throughout Concus–Golub–O'Leary 1976).
//! It is very effective per iteration, but its triangular solves are
//! recurrences along the elimination order — they neither vectorize on a
//! pipeline machine nor parallelize on an array, which is precisely the
//! gap the multicolor m-step SSOR preconditioner fills. This module
//! provides IC(0) so the trade-off can be *measured* (see the `criteria`
//! binary and `ic_vs_mstep` tests) instead of asserted.
//!
//! IC(0) computes `K ≈ L Lᵀ` where `L` has the sparsity of the lower
//! triangle of `K`; fill-in is discarded. For M-matrices the factorization
//! exists; general SPD matrices can break down (nonpositive pivot), which
//! is reported as a typed error — callers may retry with a diagonal shift.

use crate::preconditioner::Preconditioner;
use mspcg_sparse::{CsrMatrix, SparseError};

/// IC(0) preconditioner `M = L Lᵀ` with `L` on the lower pattern of `K`.
#[derive(Debug, Clone)]
pub struct IncompleteCholesky {
    /// Lower factor in CSR (diagonal stored last in each row).
    l: CsrMatrix,
    /// Transpose of `l` (CSR of `Lᵀ`) for the backward solve.
    lt: CsrMatrix,
}

impl IncompleteCholesky {
    /// Factor `K` with zero fill.
    ///
    /// # Errors
    /// * [`SparseError::NotSquare`] for rectangular input,
    /// * [`SparseError::NotPositiveDefinite`] naming the pivot where the
    ///   factorization broke down (`shifted` can be used to retry).
    pub fn new(k: &CsrMatrix) -> Result<Self, SparseError> {
        Self::with_shift(k, 0.0)
    }

    /// Factor `K + shift·diag(K)` — the standard remedy for breakdown on
    /// non-M-matrices (Manteuffel shift).
    ///
    /// # Errors
    /// As [`IncompleteCholesky::new`].
    pub fn with_shift(k: &CsrMatrix, shift: f64) -> Result<Self, SparseError> {
        if k.rows() != k.cols() {
            return Err(SparseError::NotSquare {
                rows: k.rows(),
                cols: k.cols(),
            });
        }
        let n = k.rows();
        // Lower-triangular pattern of K (including diagonal), row by row.
        let mut row_ptr = vec![0usize; n + 1];
        let mut col_idx: Vec<u32> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        for i in 0..n {
            let mut has_diag = false;
            for (j, v) in k.row_entries(i) {
                if j < i {
                    col_idx.push(j as u32);
                    values.push(v);
                } else if j == i {
                    has_diag = true;
                    col_idx.push(j as u32);
                    values.push(v * (1.0 + shift));
                }
            }
            if !has_diag {
                return Err(SparseError::ZeroDiagonal { row: i });
            }
            row_ptr[i + 1] = col_idx.len();
        }

        // Up-looking IC(0): process rows in order; for each entry (i, j)
        // with j < i subtract the sparse dot of rows i and j of L (columns
        // < j), then divide by l_jj; the diagonal accumulates the squares.
        for i in 0..n {
            let (ri_lo, ri_hi) = (row_ptr[i], row_ptr[i + 1]);
            for idx in ri_lo..ri_hi {
                let j = col_idx[idx] as usize;
                if j == i {
                    // Diagonal: d = a_ii − Σ_{k<i} l_ik².
                    let mut d = values[idx];
                    for kk in ri_lo..idx {
                        d -= values[kk] * values[kk];
                    }
                    if d <= 0.0 {
                        return Err(SparseError::NotPositiveDefinite { pivot: i, value: d });
                    }
                    values[idx] = d.sqrt();
                    continue;
                }
                // Off-diagonal: s = a_ij − Σ l_ik l_jk over shared k < j.
                let mut s = values[idx];
                let (rj_lo, rj_hi) = (row_ptr[j], row_ptr[j + 1]);
                let (mut pi, mut pj) = (ri_lo, rj_lo);
                while pi < idx && pj < rj_hi {
                    let ci = col_idx[pi] as usize;
                    let cj = col_idx[pj] as usize;
                    if cj >= j {
                        break;
                    }
                    match ci.cmp(&cj) {
                        std::cmp::Ordering::Less => pi += 1,
                        std::cmp::Ordering::Greater => pj += 1,
                        std::cmp::Ordering::Equal => {
                            s -= values[pi] * values[pj];
                            pi += 1;
                            pj += 1;
                        }
                    }
                }
                // l_jj is the last entry of row j (diagonal stored last).
                let ljj = values[rj_hi - 1];
                values[idx] = s / ljj;
            }
        }
        let l = CsrMatrix::from_raw_parts(n, n, row_ptr, col_idx, values)?;
        let lt = l.transpose();
        Ok(IncompleteCholesky { l, lt })
    }

    /// The lower factor.
    pub fn factor(&self) -> &CsrMatrix {
        &self.l
    }

    /// Number of stored entries in `L` (the memory cost).
    pub fn nnz(&self) -> usize {
        self.l.nnz()
    }
}

impl Preconditioner for IncompleteCholesky {
    fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solve `L Lᵀ z = r`: a forward then a backward substitution — the
    /// inherently *sequential* recurrences the paper's multicolor design
    /// avoids.
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let n = self.dim();
        assert_eq!(r.len(), n, "ic apply: r length mismatch");
        assert_eq!(z.len(), n, "ic apply: z length mismatch");
        // Forward: L y = r (diagonal last in each row of L).
        for i in 0..n {
            let lo = self.l.row_ptr()[i];
            let hi = self.l.row_ptr()[i + 1];
            let mut s = r[i];
            for k in lo..hi - 1 {
                s -= self.l.values()[k] * z[self.l.col_idx()[k] as usize];
            }
            z[i] = s / self.l.values()[hi - 1];
        }
        // Backward: Lᵀ z = y (diagonal first in each row of Lᵀ).
        for i in (0..n).rev() {
            let lo = self.lt.row_ptr()[i];
            let hi = self.lt.row_ptr()[i + 1];
            let mut s = z[i];
            for k in lo + 1..hi {
                s -= self.lt.values()[k] * z[self.lt.col_idx()[k] as usize];
            }
            z[i] = s / self.lt.values()[lo];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcg::{cg_solve, pcg_solve, PcgOptions, StoppingCriterion};
    use mspcg_sparse::CooMatrix;

    fn laplacian_2d(n: usize) -> CsrMatrix {
        let idx = |i: usize, j: usize| i * n + j;
        let mut c = CooMatrix::new(n * n, n * n);
        for i in 0..n {
            for j in 0..n {
                c.push(idx(i, j), idx(i, j), 4.0).unwrap();
                if i + 1 < n {
                    c.push_sym(idx(i, j), idx(i + 1, j), -1.0).unwrap();
                }
                if j + 1 < n {
                    c.push_sym(idx(i, j), idx(i, j + 1), -1.0).unwrap();
                }
            }
        }
        c.to_csr()
    }

    #[test]
    fn exact_on_tridiagonal() {
        // Tridiagonal SPD: the lower pattern suffers no fill, so IC(0) is
        // the exact Cholesky factorization and PCG converges in one step.
        let mut c = CooMatrix::new(6, 6);
        for i in 0..6 {
            c.push(i, i, 2.0).unwrap();
            if i + 1 < 6 {
                c.push_sym(i, i + 1, -1.0).unwrap();
            }
        }
        let a = c.to_csr();
        let ic = IncompleteCholesky::new(&a).unwrap();
        let b: Vec<f64> = (0..6).map(|i| (i as f64).sin()).collect();
        let sol = pcg_solve(
            &a,
            &b,
            &ic,
            &PcgOptions {
                tol: 1e-12,
                criterion: StoppingCriterion::RelativeResidual,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(sol.iterations <= 2, "{} iterations", sol.iterations);
    }

    #[test]
    fn factor_reproduces_matrix_on_its_pattern() {
        let a = laplacian_2d(5);
        let ic = IncompleteCholesky::new(&a).unwrap();
        let l = ic.factor().to_dense();
        let llt = l.mul_mat(&l.transpose());
        // On stored positions of A, L·Lᵀ must match A exactly (IC(0)
        // property); off-pattern entries are the discarded fill.
        for i in 0..a.rows() {
            for (j, v) in a.row_entries(i) {
                assert!((llt[(i, j)] - v).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn ic_beats_plain_cg_markedly() {
        let a = laplacian_2d(12);
        // Rough right-hand side (all spatial frequencies active) so the
        // iteration counts reflect the full spectrum.
        let b: Vec<f64> = (0..a.rows())
            .map(|i| if i % 3 == 0 { 1.0 } else { -0.7 } * ((i % 11) as f64 - 5.0))
            .collect();
        let opts = PcgOptions {
            tol: 1e-10,
            criterion: StoppingCriterion::RelativeResidual,
            ..Default::default()
        };
        let cg = cg_solve(&a, &b, &opts).unwrap();
        let ic = IncompleteCholesky::new(&a).unwrap();
        let pic = pcg_solve(&a, &b, &ic, &opts).unwrap();
        assert!(
            pic.iterations * 2 <= cg.iterations,
            "ic {} vs cg {}",
            pic.iterations,
            cg.iterations
        );
    }

    #[test]
    fn breakdown_is_reported_and_shift_recovers() {
        // An SPD matrix that is not an M-matrix can break IC(0); build one
        // with large positive off-diagonals.
        let mut c = CooMatrix::new(3, 3);
        c.push(0, 0, 1.0).unwrap();
        c.push(1, 1, 1.0).unwrap();
        c.push(2, 2, 1.0).unwrap();
        c.push_sym(0, 1, 0.9).unwrap();
        c.push_sym(1, 2, 0.9).unwrap();
        c.push_sym(0, 2, -0.5).unwrap();
        let a = c.to_csr();
        // (This particular matrix may or may not break; the API contract is
        // what we test: either a factor or a typed error, and shifting
        // enough always succeeds for diagonally-dominant-after-shift.)
        match IncompleteCholesky::new(&a) {
            Ok(_) => {}
            Err(SparseError::NotPositiveDefinite { .. }) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
        assert!(IncompleteCholesky::with_shift(&a, 2.0).is_ok());
    }

    #[test]
    fn missing_diagonal_rejected() {
        let mut c = CooMatrix::new(2, 2);
        c.push(0, 0, 1.0).unwrap();
        c.push_sym(0, 1, 0.5).unwrap();
        let a = c.to_csr();
        assert!(matches!(
            IncompleteCholesky::new(&a),
            Err(SparseError::ZeroDiagonal { row: 1 })
        ));
    }

    #[test]
    fn preconditioner_is_symmetric_operator() {
        let a = laplacian_2d(4);
        let ic = IncompleteCholesky::new(&a).unwrap();
        let n = a.rows();
        let apply = |j: usize| {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            let mut z = vec![0.0; n];
            ic.apply(&e, &mut z);
            z
        };
        let z0 = apply(0);
        let zl = apply(n - 1);
        assert!((z0[n - 1] - zl[0]).abs() < 1e-13);
    }
}
