//! SELL-C-σ: sliced ELLPACK with sorting — the wide-row SpMV layout.
//!
//! CSR streams one row at a time; on irregular matrices (a few dense rows
//! in a sea of short ones — the "arrow" shapes FEM condensation and
//! multipoint constraints produce) the per-row loop bound defeats
//! vectorization and row-count chunking unbalances the pool. SELL-C-σ
//! (Kreutzer–Hager–Wellein–Fehske–Bishop 2014; the layout the
//! GPU-cluster CG variants of the related-work survey assume) fixes both:
//!
//! * rows are grouped into **slices of height C**; each slice is stored
//!   **column-major** (lane-contiguous), padded to its own widest row —
//!   C rows advance in lockstep, which is exactly the shape SIMD wants;
//! * within a **sort window of σ rows**, rows are ordered by descending
//!   stored length, so rows sharing a slice have similar lengths and the
//!   padding stays small; σ bounds how far a row may move from its
//!   original position (σ = C degenerates to plain sliced ELL).
//!
//! ## Determinism contract
//!
//! The kernels accumulate every row into a single scalar in ascending
//! column order — the same order as the CSR row loop — and padding lanes
//! are *skipped*, never multiplied. Products are therefore **bitwise
//! identical** to [`CsrMatrix`]'s, serially and for any thread count; the
//! parallel schedule feeds the per-slice stored-entry prefix sum through
//! the same nnz-weighted chunk machinery ([`par::spmv_layout`] /
//! [`par::spmv_chunk_rows`]) the CSR kernel uses, so slices are
//! distributed by the work they actually carry.
//!
//! ## Storage cost
//!
//! For row lengths `ℓ_i`, slice `s` stores `C · max_{i ∈ s} ℓ_i` scalars;
//! the padding overhead is `Σ_s C·w_s / Σ_i ℓ_i − 1`
//! ([`SellCsMatrix::padding_ratio`]). Sorting with window σ ≥ C drives
//! `w_s` toward the slice's mean length; the worst case (σ too small for
//! the row-length spread) is bounded by the widest row per slice.
//! [`crate::op::AutoOp`] converts only when the measured overhead stays
//! within [`crate::op::AUTO_MAX_PADDING`].

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::op::SparseOp;
use crate::par::{self, ParSlice};
use crate::tuning;
use std::ops::Range;

/// Upper bound on the slice height C: keeps the kernel's per-slice
/// accumulator bank on the stack.
pub const MAX_SLICE_HEIGHT: usize = 64;

/// Default slice height (8 f64 lanes = one AVX-512 register, two NEON/SSE
/// pairs): wide enough to amortize the slice loop, narrow enough to keep
/// padding low on moderately irregular matrices.
pub const DEFAULT_CHUNK: usize = 8;

/// Default sort window (8 slices): local enough that gather locality
/// survives, wide enough to homogenize FEM-style row-length spreads.
pub const DEFAULT_SIGMA: usize = 64;

/// Sparse matrix in SELL-C-σ format. Construct via
/// [`SellCsMatrix::from_csr`]; the conversion is lossless
/// ([`SellCsMatrix::to_csr`] reproduces the input exactly, including
/// explicitly stored zeros).
#[derive(Debug, Clone, PartialEq)]
pub struct SellCsMatrix {
    rows: usize,
    cols: usize,
    /// Real stored entries (excluding padding).
    nnz: usize,
    /// Slice height C.
    chunk: usize,
    /// Sort window σ (a multiple of C).
    sigma: usize,
    /// Storage position `p` → original row index (length `rows`); position
    /// `p` lives in slice `p / C`, lane `p % C`.
    perm: Vec<u32>,
    /// Original row index → storage position (inverse of `perm`).
    rank: Vec<u32>,
    /// Per storage position: real entries in that lane (≤ slice width).
    len: Vec<u32>,
    /// Per slice: offset of its (column-major) block in `values`/`col_idx`.
    slice_ptr: Vec<usize>,
    /// Per slice: prefix sum of *real* stored entries — the schedule the
    /// nnz-weighted chunking consumes.
    slice_nnz_ptr: Vec<usize>,
    /// Column indices, column-major per slice, padding slots zeroed.
    col_idx: Vec<u32>,
    /// Values, column-major per slice, padding slots zeroed.
    values: Vec<f64>,
}

impl SellCsMatrix {
    /// Convert from CSR with slice height `chunk` (C) and sort window
    /// `sigma` (σ). σ must be a multiple of C: sort windows then align
    /// with slice boundaries, which keeps row lengths non-increasing
    /// within every slice (the kernel's active-lane schedule relies on
    /// this).
    ///
    /// # Errors
    /// [`SparseError::InvalidPartition`] when `chunk` is zero or exceeds
    /// [`MAX_SLICE_HEIGHT`], or when `sigma` is not a positive multiple of
    /// `chunk`.
    pub fn from_csr(a: &CsrMatrix, chunk: usize, sigma: usize) -> Result<Self, SparseError> {
        if chunk == 0 || chunk > MAX_SLICE_HEIGHT {
            return Err(SparseError::InvalidPartition {
                reason: format!("SELL-C-σ slice height {chunk} outside 1..={MAX_SLICE_HEIGHT}"),
            });
        }
        if sigma == 0 || !sigma.is_multiple_of(chunk) {
            return Err(SparseError::InvalidPartition {
                reason: format!(
                    "SELL-C-σ sort window {sigma} is not a positive multiple of C = {chunk}"
                ),
            });
        }
        let rows = a.rows();
        // Sort each σ-window by descending row length; ties keep the
        // original order (stable), so the permutation is deterministic.
        let mut perm: Vec<u32> = (0..rows as u32).collect();
        for window in perm.chunks_mut(sigma) {
            window.sort_by_key(|&i| (std::cmp::Reverse(a.row_nnz(i as usize)), i));
        }
        let mut rank = vec![0u32; rows];
        for (p, &i) in perm.iter().enumerate() {
            rank[i as usize] = p as u32;
        }
        let nslices = rows.div_ceil(chunk);
        let mut len = vec![0u32; rows];
        let mut slice_ptr = vec![0usize; nslices + 1];
        let mut slice_nnz_ptr = vec![0usize; nslices + 1];
        for s in 0..nslices {
            let p0 = s * chunk;
            let lanes = chunk.min(rows - p0);
            let mut width = 0usize;
            let mut real = 0usize;
            for r in 0..lanes {
                let l = a.row_nnz(perm[p0 + r] as usize);
                len[p0 + r] = l as u32;
                width = width.max(l);
                real += l;
            }
            slice_ptr[s + 1] = slice_ptr[s] + width * lanes;
            slice_nnz_ptr[s + 1] = slice_nnz_ptr[s] + real;
        }
        let padded = slice_ptr[nslices];
        let mut col_idx = vec![0u32; padded];
        let mut values = vec![0.0f64; padded];
        for s in 0..nslices {
            let p0 = s * chunk;
            let lanes = chunk.min(rows - p0);
            let base = slice_ptr[s];
            for r in 0..lanes {
                let i = perm[p0 + r] as usize;
                let lo = a.row_ptr()[i];
                for j in 0..len[p0 + r] as usize {
                    col_idx[base + j * lanes + r] = a.col_idx()[lo + j];
                    values[base + j * lanes + r] = a.values()[lo + j];
                }
            }
        }
        Ok(SellCsMatrix {
            rows,
            cols: a.cols(),
            nnz: a.nnz(),
            chunk,
            sigma,
            perm,
            rank,
            len,
            slice_ptr,
            slice_nnz_ptr,
            col_idx,
            values,
        })
    }

    /// Convert with the default `C = `[`DEFAULT_CHUNK`],
    /// `σ = `[`DEFAULT_SIGMA`] layout.
    pub fn from_csr_default(a: &CsrMatrix) -> Self {
        Self::from_csr(a, DEFAULT_CHUNK, DEFAULT_SIGMA)
            .expect("default SELL-C-σ parameters are valid")
    }

    /// Convert with `(C, σ)` chosen by [`autotune_params`] from the
    /// row-length histogram — the entry point [`crate::op::AutoOp`] uses.
    pub fn from_csr_autotuned(a: &CsrMatrix) -> Self {
        let (chunk, sigma) = autotune_params(a);
        Self::from_csr(a, chunk, sigma).expect("autotuned SELL-C-σ parameters are valid")
    }

    /// Lossless round trip back to CSR: reproduces the original matrix
    /// exactly (structure, values, explicit zeros — padding is skipped by
    /// the per-lane lengths, never re-materialized).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut row_ptr = vec![0usize; self.rows + 1];
        for i in 0..self.rows {
            row_ptr[i + 1] = row_ptr[i] + self.len[self.rank[i] as usize] as usize;
        }
        let mut col_idx = vec![0u32; self.nnz];
        let mut values = vec![0.0f64; self.nnz];
        for i in 0..self.rows {
            let p = self.rank[i] as usize;
            let s = p / self.chunk;
            let lanes = self.lanes(s);
            let r = p - s * self.chunk;
            let base = self.slice_ptr[s];
            let dst = row_ptr[i];
            for j in 0..self.len[p] as usize {
                col_idx[dst + j] = self.col_idx[base + j * lanes + r];
                values[dst + j] = self.values[base + j * lanes + r];
            }
        }
        CsrMatrix::from_raw_parts(self.rows, self.cols, row_ptr, col_idx, values)
            .expect("SELL-C-σ storage holds a valid CSR structure")
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Real stored entries (excluding padding).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Slice height C.
    #[inline]
    pub fn chunk_height(&self) -> usize {
        self.chunk
    }

    /// Sort window σ.
    #[inline]
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// Number of slices.
    #[inline]
    pub fn num_slices(&self) -> usize {
        self.slice_ptr.len() - 1
    }

    /// Lanes (rows) in slice `s` — `C` except possibly the last slice.
    #[inline]
    fn lanes(&self, s: usize) -> usize {
        self.chunk.min(self.rows - s * self.chunk)
    }

    /// Width of slice `s`: the stored length of its longest row.
    pub fn slice_width(&self, s: usize) -> usize {
        (self.slice_ptr[s + 1] - self.slice_ptr[s])
            .checked_div(self.lanes(s))
            .unwrap_or(0)
    }

    /// Real stored entries in slice `s` (the weight its chunk carries in
    /// the parallel schedule).
    pub fn slice_nnz(&self, s: usize) -> usize {
        self.slice_nnz_ptr[s + 1] - self.slice_nnz_ptr[s]
    }

    /// Total stored scalars including padding.
    #[inline]
    pub fn padded_len(&self) -> usize {
        self.values.len()
    }

    /// Padding overhead `padded / nnz − 1` (0 for an empty matrix): the
    /// fraction of wasted storage the σ-sort failed to remove.
    pub fn padding_ratio(&self) -> f64 {
        if self.nnz == 0 {
            0.0
        } else {
            (self.padded_len() - self.nnz) as f64 / self.nnz as f64
        }
    }

    /// Serial SpMV over a slice range, accumulating each lane's row in
    /// ascending column order (bitwise the CSR row loop). `emit` receives
    /// `(original_row, product)` once per lane.
    ///
    /// Dispatches to a **width-specialized** kernel for the common slice
    /// heights: with `C` a compile-time constant the per-slice accumulator
    /// bank lives in registers and the lane loop fully unrolls — the whole
    /// point of the lane-contiguous layout. Other heights (and the ragged
    /// final slice) run the dynamic fallback, which performs the same
    /// arithmetic in the same order.
    #[inline]
    fn slices_product(&self, x: &[f64], slices: Range<usize>, emit: &mut impl FnMut(usize, f64)) {
        match self.chunk {
            2 => self.slices_product_c::<2>(x, slices, emit),
            4 => self.slices_product_c::<4>(x, slices, emit),
            8 => self.slices_product_c::<8>(x, slices, emit),
            16 => self.slices_product_c::<16>(x, slices, emit),
            32 => self.slices_product_c::<32>(x, slices, emit),
            _ => self.slices_product_dyn(x, slices, emit),
        }
    }

    /// Width-specialized slice kernel (`C == self.chunk`). Row lengths are
    /// non-increasing across the lanes of one slice (σ-window sorting is
    /// slice-aligned), so columns `0..lens[C−1]` are **uniform** — every
    /// lane is live, no per-lane guard — and the ragged remainder walks a
    /// shrinking live-lane prefix. Padding slots are never read.
    fn slices_product_c<const C: usize>(
        &self,
        x: &[f64],
        slices: Range<usize>,
        emit: &mut impl FnMut(usize, f64),
    ) {
        debug_assert_eq!(C, self.chunk);
        for s in slices {
            let p0 = s * C;
            if self.lanes(s) < C {
                // Ragged final slice: same arithmetic, dynamic lane count.
                self.slices_product_dyn(x, s..s + 1, emit);
                continue;
            }
            let base = self.slice_ptr[s];
            let width = (self.slice_ptr[s + 1] - base) / C;
            let lens = &self.len[p0..p0 + C];
            let uniform = lens[C - 1] as usize;
            let mut acc = [0.0f64; C];
            for j in 0..uniform {
                let off = base + j * C;
                let vals = &self.values[off..off + C];
                let cols = &self.col_idx[off..off + C];
                for r in 0..C {
                    // SAFETY: construction copies every column index from
                    // a validated CSR (`col < cols`), and the callers of
                    // `slices_product` assert `x.len() == self.cols`.
                    acc[r] += vals[r] * unsafe { *x.get_unchecked(cols[r] as usize) };
                }
            }
            let mut active = C;
            for j in uniform..width {
                while active > 0 && (lens[active - 1] as usize) <= j {
                    active -= 1;
                }
                let off = base + j * C;
                let vals = &self.values[off..off + active];
                let cols = &self.col_idx[off..off + active];
                for ((a, &v), &c) in acc[..active].iter_mut().zip(vals).zip(cols) {
                    // SAFETY: as above.
                    *a += v * unsafe { *x.get_unchecked(c as usize) };
                }
            }
            for (r, &a) in acc.iter().enumerate() {
                emit(self.perm[p0 + r] as usize, a);
            }
        }
    }

    /// Dynamic-height slice kernel: the fallback for uncommon `C` and for
    /// the ragged final slice. Identical arithmetic and ordering to the
    /// specialized kernel.
    fn slices_product_dyn(
        &self,
        x: &[f64],
        slices: Range<usize>,
        emit: &mut impl FnMut(usize, f64),
    ) {
        let mut acc = [0.0f64; MAX_SLICE_HEIGHT];
        for s in slices {
            let p0 = s * self.chunk;
            let lanes = self.lanes(s);
            let base = self.slice_ptr[s];
            let width = self.slice_width(s);
            let lens = &self.len[p0..p0 + lanes];
            acc[..lanes].fill(0.0);
            let mut active = lanes;
            for j in 0..width {
                while active > 0 && (lens[active - 1] as usize) <= j {
                    active -= 1;
                }
                // Lockstep iterators drop every per-element bounds check
                // in the lane loop; padding slots sit past `active` and
                // are never read.
                let off = base + j * lanes;
                let vals = &self.values[off..off + active];
                let cols = &self.col_idx[off..off + active];
                for ((a, &v), &c) in acc[..active].iter_mut().zip(vals).zip(cols) {
                    // SAFETY: construction copies every column index from
                    // a validated CSR (`col < cols`), and the callers of
                    // `slices_product` assert `x.len() == self.cols`.
                    *a += v * unsafe { *x.get_unchecked(c as usize) };
                }
            }
            for r in 0..lanes {
                emit(self.perm[p0 + r] as usize, acc[r]);
            }
        }
    }
}

impl SparseOp for SellCsMatrix {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn nnz(&self) -> usize {
        self.nnz
    }

    /// Per-row gather in storage order (ascending columns): the strip
    /// kernel the SPMD solver uses. Lane access is strided (stride =
    /// slice lanes); full-matrix products should go through
    /// [`SparseOp::mul_vec_into`], which streams whole slices instead.
    fn mul_vec_range_into(&self, x: &[f64], y: &mut [f64], rows: Range<usize>) {
        assert_eq!(x.len(), self.cols, "sellcs range mul: x length mismatch");
        assert!(
            rows.end <= self.rows,
            "sellcs range mul: rows out of bounds"
        );
        assert_eq!(y.len(), rows.len(), "sellcs range mul: y length mismatch");
        for (k, i) in rows.enumerate() {
            let p = self.rank[i] as usize;
            let s = p / self.chunk;
            let lanes = self.lanes(s);
            let r = p - s * self.chunk;
            let base = self.slice_ptr[s];
            let mut acc = 0.0;
            for j in 0..self.len[p] as usize {
                let k2 = base + j * lanes + r;
                acc += self.values[k2] * x[self.col_idx[k2] as usize];
            }
            y[k] = acc;
        }
    }

    fn mul_vec_axpy_range(&self, a: f64, x: &[f64], y: &mut [f64], rows: Range<usize>) {
        assert_eq!(x.len(), self.cols, "sellcs range axpy: x length mismatch");
        assert!(
            rows.end <= self.rows,
            "sellcs range axpy: rows out of bounds"
        );
        assert_eq!(y.len(), rows.len(), "sellcs range axpy: y length mismatch");
        for (k, i) in rows.enumerate() {
            let p = self.rank[i] as usize;
            let s = p / self.chunk;
            let lanes = self.lanes(s);
            let r = p - s * self.chunk;
            let base = self.slice_ptr[s];
            let mut acc = 0.0;
            for j in 0..self.len[p] as usize {
                let k2 = base + j * lanes + r;
                acc += self.values[k2] * x[self.col_idx[k2] as usize];
            }
            y[k] += a * acc;
        }
    }

    fn visit_row(&self, i: usize, visit: &mut dyn FnMut(usize, f64)) {
        let p = self.rank[i] as usize;
        let s = p / self.chunk;
        let lanes = self.lanes(s);
        let r = p - s * self.chunk;
        let base = self.slice_ptr[s];
        for j in 0..self.len[p] as usize {
            let k = base + j * lanes + r;
            visit(self.col_idx[k] as usize, self.values[k]);
        }
    }

    /// Slice-streaming SpMV: slices are scheduled by their *real* stored
    /// entries through the same nnz-weighted chunk machinery as CSR
    /// ([`par::spmv_layout`] over the per-slice prefix sum), and each
    /// chunk writes the disjoint set of original rows its slices own.
    fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "sellcs mul: x length mismatch");
        assert_eq!(y.len(), self.rows, "sellcs mul: y length mismatch");
        let threads = par::threads_for(self.nnz, tuning::par_min_nnz());
        if threads <= 1 {
            self.slices_product(x, 0..self.num_slices(), &mut |i, v| y[i] = v);
            return;
        }
        let (chunk_nnz, nchunks) = par::spmv_layout(self.nnz);
        let ys = ParSlice::new(y);
        par::for_each_chunk(nchunks, threads, &|c| {
            let slices = par::spmv_chunk_rows(&self.slice_nnz_ptr, chunk_nnz, c);
            self.slices_product(x, slices, &mut |i, v| {
                // SAFETY: slice chunks are disjoint and a slice's lanes map
                // to distinct original rows, so row `i` has exactly one
                // writer in this region.
                unsafe { ys.set(i, v) };
            });
        });
    }

    fn mul_vec_axpy(&self, a: f64, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "sellcs axpy: x length mismatch");
        assert_eq!(y.len(), self.rows, "sellcs axpy: y length mismatch");
        let threads = par::threads_for(self.nnz, tuning::par_min_nnz());
        if threads <= 1 {
            self.slices_product(x, 0..self.num_slices(), &mut |i, v| y[i] += a * v);
            return;
        }
        let (chunk_nnz, nchunks) = par::spmv_layout(self.nnz);
        let ys = ParSlice::new(y);
        par::for_each_chunk(nchunks, threads, &|c| {
            let slices = par::spmv_chunk_rows(&self.slice_nnz_ptr, chunk_nnz, c);
            self.slices_product(x, slices, &mut |i, v| {
                // SAFETY: as in mul_vec_into; the read-modify-write of row
                // `i` stays within its single writer.
                unsafe { ys.set(i, ys.get(i) + a * v) };
            });
        });
    }
}

/// Slice heights [`autotune_params`] considers: exactly the heights with
/// width-specialized kernels (plus small ones that keep padding tight on
/// very irregular shapes).
pub const AUTOTUNE_CHUNKS: &[usize] = &[4, 8, 16, 32];

/// Sort-window multiples (σ = factor·C) the autotuner considers: no
/// sorting, the default's window, and a wide window for heavy-tailed
/// row-length histograms.
pub const AUTOTUNE_SIGMA_FACTORS: &[usize] = &[1, 8, 32];

/// Padded storage a `(C, σ)` conversion *would* produce, computed from the
/// row-length histogram alone (no matrix is materialized): sort each
/// σ-window of lengths descending — the conversion's exact permutation
/// rule — then charge every slice `C × (its widest row)`.
fn padded_len_for(lens: &mut [usize], chunk: usize, sigma: usize) -> usize {
    for window in lens.chunks_mut(sigma) {
        window.sort_unstable_by(|a, b| b.cmp(a));
    }
    let mut padded = 0usize;
    for slice in lens.chunks(chunk) {
        // Descending within the window and windows are slice-aligned, so
        // the slice's first length is its width.
        padded += slice[0] * slice.len();
    }
    padded
}

/// Pick `(C, σ)` for a SELL-C-σ conversion of `a` from its **row-length
/// histogram**: among [`AUTOTUNE_CHUNKS`] × [`AUTOTUNE_SIGMA_FACTORS`],
/// choose the layout with the least padded storage, breaking ties toward
/// the **larger C** (longer SIMD lanes for the same memory) and then the
/// **smaller σ** (less reordering, better gather locality). Uniform
/// row-length matrices therefore get `C = 32, σ = C` — maximum lane width,
/// no permutation — while heavy-tailed shapes get small slices and wide
/// sort windows, whichever measures smallest.
///
/// Deterministic in the matrix structure (the choice must not vary between
/// two conversions of one matrix, or cross-run replay would break), and
/// `O(rows · log σ)`: cheap next to the conversion itself.
pub fn autotune_params(a: &CsrMatrix) -> (usize, usize) {
    let rows = a.rows();
    if rows == 0 || a.nnz() == 0 {
        return (DEFAULT_CHUNK, DEFAULT_SIGMA);
    }
    let lens: Vec<usize> = (0..rows).map(|i| a.row_nnz(i)).collect();
    let mut scratch = vec![0usize; rows];
    let mut best = (DEFAULT_CHUNK, DEFAULT_SIGMA);
    let mut best_padded = usize::MAX;
    for &chunk in AUTOTUNE_CHUNKS {
        for &factor in AUTOTUNE_SIGMA_FACTORS {
            let sigma = chunk * factor;
            scratch.copy_from_slice(&lens);
            let padded = padded_len_for(&mut scratch, chunk, sigma);
            let better = padded < best_padded
                || (padded == best_padded
                    && (chunk > best.0 || (chunk == best.0 && sigma < best.1)));
            if better {
                best = (chunk, sigma);
                best_padded = padded;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    fn tridiag(n: usize) -> CsrMatrix {
        let mut a = CooMatrix::new(n, n);
        for i in 0..n {
            a.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                a.push_sym(i, i + 1, -1.0).unwrap();
            }
        }
        a.to_csr()
    }

    /// Arrow matrix: `head` dense rows/columns over a sparse body — the
    /// wide-row family SELL-C-σ exists for.
    fn arrow(n: usize, head: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 8.0).unwrap();
        }
        for d in 0..head {
            for j in head..n {
                coo.push_sym(d, j, -1e-3 * (d + 1) as f64).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn rejects_bad_parameters() {
        let a = tridiag(8);
        assert!(SellCsMatrix::from_csr(&a, 0, 8).is_err());
        assert!(SellCsMatrix::from_csr(&a, MAX_SLICE_HEIGHT + 1, 128).is_err());
        assert!(SellCsMatrix::from_csr(&a, 4, 0).is_err());
        assert!(SellCsMatrix::from_csr(&a, 4, 6).is_err()); // σ not a multiple of C
        assert!(SellCsMatrix::from_csr(&a, 4, 4).is_ok());
    }

    #[test]
    fn round_trip_is_lossless() {
        for (a, c, sigma) in [
            (tridiag(17), 4, 8),
            (tridiag(16), 8, 16),
            (arrow(40, 3), 4, 16),
            (arrow(33, 5), 8, 8),
        ] {
            let sell = SellCsMatrix::from_csr(&a, c, sigma).unwrap();
            assert_eq!(sell.to_csr(), a, "C = {c}, σ = {sigma}");
            assert_eq!(sell.nnz(), a.nnz());
        }
    }

    #[test]
    fn round_trip_keeps_explicit_zeros() {
        // A stored zero must survive the conversion (losslessness is
        // structural, not value-based).
        let a = CsrMatrix::from_raw_parts(2, 2, vec![0, 2, 3], vec![0, 1, 1], vec![1.0, 0.0, 3.0])
            .unwrap();
        let sell = SellCsMatrix::from_csr(&a, 2, 2).unwrap();
        assert_eq!(sell.to_csr(), a);
    }

    #[test]
    fn empty_and_tiny_matrices() {
        let empty = CsrMatrix::from_raw_parts(0, 0, vec![0], vec![], vec![]).unwrap();
        let sell = SellCsMatrix::from_csr_default(&empty);
        assert_eq!(sell.num_slices(), 0);
        assert_eq!(SparseOp::mul_vec(&sell, &[]), Vec::<f64>::new());
        assert_eq!(sell.to_csr(), empty);

        let one = CsrMatrix::from_diag(&[3.0]);
        let sell = SellCsMatrix::from_csr_default(&one);
        assert_eq!(SparseOp::mul_vec(&sell, &[2.0]), vec![6.0]);
    }

    #[test]
    fn empty_rows_are_preserved() {
        // Rows with no entries sort to the back of their window and store
        // nothing; the round trip must keep them empty.
        let a = CsrMatrix::from_raw_parts(
            5,
            5,
            vec![0, 2, 2, 3, 3, 4],
            vec![0, 4, 2, 4],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap();
        let sell = SellCsMatrix::from_csr(&a, 2, 4).unwrap();
        assert_eq!(sell.to_csr(), a);
        let x = [1.0, 1.0, 1.0, 1.0, 1.0];
        assert_eq!(SparseOp::mul_vec(&sell, &x), CsrMatrix::mul_vec(&a, &x));
    }

    #[test]
    fn sigma_sorting_reduces_padding() {
        let a = arrow(256, 4);
        // σ = C: dense rows share slices with short rows → heavy padding.
        let unsorted = SellCsMatrix::from_csr(&a, 8, 8).unwrap();
        // Wide σ groups the dense rows together.
        let sorted = SellCsMatrix::from_csr(&a, 8, 64).unwrap();
        assert!(
            sorted.padded_len() <= unsorted.padded_len(),
            "sorted {} > unsorted {}",
            sorted.padded_len(),
            unsorted.padded_len()
        );
        // Padding accounting is consistent.
        let total: usize = (0..sorted.num_slices())
            .map(|s| sorted.slice_width(s) * 8.min(256 - s * 8))
            .sum();
        assert_eq!(total, sorted.padded_len());
        let real: usize = (0..sorted.num_slices()).map(|s| sorted.slice_nnz(s)).sum();
        assert_eq!(real, sorted.nnz());
        assert!(sorted.padding_ratio() >= 0.0);
    }

    #[test]
    fn spmv_is_bitwise_identical_to_csr() {
        for (a, c, sigma) in [
            (tridiag(101), 8, 64),
            (arrow(400, 5), 8, 64),
            (arrow(97, 2), 4, 12),
        ] {
            let sell = SellCsMatrix::from_csr(&a, c, sigma).unwrap();
            let n = a.rows();
            let x: Vec<f64> = (0..n)
                .map(|i| ((i * 13 + 5) % 97) as f64 * 0.03 - 1.0)
                .collect();
            let want = CsrMatrix::mul_vec(&a, &x);
            assert_eq!(bits(&want), bits(&SparseOp::mul_vec(&sell, &x)));
            // Range kernel and accumulate variant agree bitwise too.
            let mut part = vec![0.0; n - 1];
            SparseOp::mul_vec_range_into(&sell, &x, &mut part, 1..n);
            assert_eq!(bits(&part), bits(&want[1..n]));
            let mut acc_csr = vec![0.5; n];
            let mut acc_sell = vec![0.5; n];
            CsrMatrix::mul_vec_axpy(&a, -2.0, &x, &mut acc_csr);
            SparseOp::mul_vec_axpy(&sell, -2.0, &x, &mut acc_sell);
            assert_eq!(bits(&acc_csr), bits(&acc_sell));
        }
    }

    #[test]
    fn wide_row_spmv_is_thread_count_insensitive_and_matches_csr() {
        let _guard = crate::par::thread_sweep_lock();
        let a = arrow(8_000, 4);
        assert!(a.nnz() >= tuning::par_min_nnz());
        let sell = SellCsMatrix::from_csr_default(&a);
        let n = a.rows();
        let x: Vec<f64> = (0..n).map(|i| ((i * 7 + 1) % 31) as f64 * 0.1).collect();
        let before = crate::par::max_threads();
        crate::par::set_max_threads(1);
        let want = CsrMatrix::mul_vec(&a, &x);
        assert_eq!(bits(&want), bits(&SparseOp::mul_vec(&sell, &x)));
        for t in [2usize, 4, 8] {
            crate::par::set_max_threads(t);
            assert_eq!(
                bits(&want),
                bits(&SparseOp::mul_vec(&sell, &x)),
                "sellcs spmv differs at t = {t}"
            );
            let mut acc = vec![0.5; n];
            SparseOp::mul_vec_axpy(&sell, -2.0, &x, &mut acc);
            let mut acc_ref = vec![0.5; n];
            CsrMatrix::mul_vec_axpy(&a, -2.0, &x, &mut acc_ref);
            assert_eq!(bits(&acc_ref), bits(&acc), "sellcs axpy differs at t = {t}");
        }
        crate::par::set_max_threads(before);
    }

    #[test]
    fn autotune_prefers_wide_unsorted_slices_on_uniform_rows() {
        // Every interior row of a tridiagonal matrix stores 3 entries:
        // any C pads (almost) nothing, so the tie-breaks must pick the
        // widest slice height with no sorting window.
        let a = tridiag(512);
        let (c, sigma) = autotune_params(&a);
        assert_eq!(c, 32);
        assert_eq!(sigma, c, "uniform rows need no sort window");
        let sell = SellCsMatrix::from_csr(&a, c, sigma).unwrap();
        assert!(sell.padding_ratio() < 0.01, "{}", sell.padding_ratio());
    }

    #[test]
    fn autotune_beats_or_matches_default_padding() {
        for a in [
            tridiag(301),
            arrow(512, 4),
            arrow(777, 13),
            CsrMatrix::from_diag(&vec![1.0; 97]),
        ] {
            let tuned = SellCsMatrix::from_csr_autotuned(&a);
            let default = SellCsMatrix::from_csr_default(&a);
            assert!(
                tuned.padded_len() <= default.padded_len(),
                "autotuned {} > default {} on {}×{}",
                tuned.padded_len(),
                default.padded_len(),
                a.rows(),
                a.cols()
            );
            // Whatever the parameters, the conversion stays lossless.
            assert_eq!(tuned.to_csr(), a);
        }
    }

    #[test]
    fn autotune_parameters_are_valid_and_deterministic() {
        for a in [tridiag(64), arrow(200, 3), arrow(33, 5)] {
            let (c, sigma) = autotune_params(&a);
            assert!(AUTOTUNE_CHUNKS.contains(&c));
            assert!(sigma >= c && sigma.is_multiple_of(c));
            assert_eq!((c, sigma), autotune_params(&a), "unstable choice");
        }
        // Degenerate inputs fall back to the defaults.
        let empty = CsrMatrix::from_raw_parts(0, 0, vec![0], vec![], vec![]).unwrap();
        assert_eq!(autotune_params(&empty), (DEFAULT_CHUNK, DEFAULT_SIGMA));
    }

    #[test]
    fn autotuned_spmv_is_bitwise_identical_to_csr() {
        let a = arrow(600, 6);
        let sell = SellCsMatrix::from_csr_autotuned(&a);
        let x: Vec<f64> = (0..600)
            .map(|i| ((i * 11 + 7) % 61) as f64 * 0.05)
            .collect();
        assert_eq!(
            bits(&CsrMatrix::mul_vec(&a, &x)),
            bits(&SparseOp::mul_vec(&sell, &x))
        );
    }

    #[test]
    fn csr_copy_through_the_trait_reproduces_the_input() {
        let a = arrow(60, 3);
        let sell = SellCsMatrix::from_csr(&a, 8, 16).unwrap();
        assert_eq!(SparseOp::csr_copy(&sell), a);
        let mut d = vec![0.0; 60];
        SparseOp::diag_into(&sell, &mut d);
        assert_eq!(d, vec![8.0; 60]);
    }
}
