//! Central tuning knobs of the kernel layer.
//!
//! Every adaptive decision the kernels make — "is this loop big enough to
//! wake the pool?", "how many stored entries should one SpMV chunk carry?",
//! "which storage format should the operator use?" — reads its threshold
//! from this module. The defaults are the constants the benches were tuned
//! with; each can be overridden per process through an `MSPCG_*`
//! environment variable, validated exactly like `MSPCG_THREADS` (a positive
//! integer; empty counts as unset; `0` or garbage trips a debug assertion
//! and falls back to the built-in default rather than silently
//! misconfiguring the kernels).
//!
//! | Variable | Default | Meaning |
//! |---|---|---|
//! | `MSPCG_PAR_MIN_ELEMS` | [`DEFAULT_PAR_MIN_ELEMS`] | BLAS-1 kernels shorter than this run serially |
//! | `MSPCG_PAR_MIN_NNZ` | [`DEFAULT_PAR_MIN_NNZ`] | sparse kernels (SpMV, SSOR sweeps) with fewer stored entries run serially |
//! | `MSPCG_MIN_SPMV_CHUNK_NNZ` | [`DEFAULT_MIN_SPMV_CHUNK_NNZ`] | minimum stored entries per nnz-weighted SpMV chunk |
//! | `MSPCG_FORCE_FORMAT` | *(unset)* | pin [`crate::op::AutoOp`] to one storage format (`csr` or `sellcs`) |
//! | `MSPCG_PCG_VARIANT` | *(unset)* | pin the PCG iteration variant (`classic`, `single_reduction`, `pipelined` or `sstep:S` with `2 ≤ S ≤ 16`) for every solver whose options leave the variant on automatic |
//! | `MSPCG_PRECOND` | *(unset)* | pin the preconditioner for every solver whose selection is on automatic: `mstep:M` / `ssor:M` for the m-step multicolor SSOR, `chebyshev:K` / `newton:K` for the degree-`K` polynomial |
//! | `MSPCG_AUDIT_PERIOD` | [`DEFAULT_AUDIT_PERIOD`] | iterations between true-residual audits when residual replacement is active |
//! | `MSPCG_RESIDUAL_REPLACEMENT` | *(unset)* | force residual auditing + replacement on (`1`/`true`/`on`) or off (`0`/`false`/`off`) for every solver whose recovery policy is on automatic |
//!
//! Values are read **once**, at first use, and cached for the lifetime of
//! the process: chunk layouts derived from them must stay fixed so the
//! determinism contract (bitwise thread-count insensitivity) keeps holding
//! within a run.
//!
//! `MSPCG_THREADS` itself stays in [`crate::par`] (it configures the pool,
//! not a kernel threshold) but shares the [`parse_positive`] validation.

use std::sync::OnceLock;

/// Default for [`par_min_elems`]: BLAS-1 kernels shorter than this always
/// run serially (the launch cost of waking the pool exceeds the loop cost).
pub const DEFAULT_PAR_MIN_ELEMS: usize = 1 << 15;

/// Default for [`par_min_nnz`]: sparse kernels (SpMV, SSOR color sweeps)
/// with fewer stored entries than this run serially.
pub const DEFAULT_PAR_MIN_NNZ: usize = 1 << 14;

/// Default for [`min_spmv_chunk_nnz`]: below this many stored entries per
/// chunk, the chunk-claim overhead dominates the row loop.
pub const DEFAULT_MIN_SPMV_CHUNK_NNZ: usize = 1 << 9;

/// Default for [`audit_period`]: iterations between true-residual audits
/// when residual replacement is active. One audit costs one extra SpMV (and
/// one extra barrier on the SPMD schedule), so the default trades a few
/// percent of overhead for bounded recurrence drift.
pub const DEFAULT_AUDIT_PERIOD: usize = 32;

/// Parse an `MSPCG_*` tuning value: `Some(n)` for a positive integer,
/// `None` for anything else (`0`, empty, non-numeric, overflow). Zero is
/// invalid everywhere it could appear — a zero thread budget describes an
/// empty pool, a zero threshold a meaningless "never/always" knob — so it
/// is rejected rather than silently clamped.
pub fn parse_positive(raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

/// Read `var` once: a valid positive integer overrides `default`; an empty
/// value counts as unset; anything else trips a debug assertion and keeps
/// the default (release builds must not limp along with a zeroed
/// threshold).
fn env_threshold(var: &'static str, default: usize) -> usize {
    match std::env::var(var) {
        Ok(v) if !v.trim().is_empty() => match parse_positive(&v) {
            Some(n) => n,
            None => {
                debug_assert!(false, "{var} must be a positive integer, got {v:?}");
                default
            }
        },
        _ => default,
    }
}

/// BLAS-1 parallelism threshold (elements). `MSPCG_PAR_MIN_ELEMS`.
pub fn par_min_elems() -> usize {
    static CELL: OnceLock<usize> = OnceLock::new();
    *CELL.get_or_init(|| env_threshold("MSPCG_PAR_MIN_ELEMS", DEFAULT_PAR_MIN_ELEMS))
}

/// Sparse-kernel parallelism threshold (stored entries). `MSPCG_PAR_MIN_NNZ`.
pub fn par_min_nnz() -> usize {
    static CELL: OnceLock<usize> = OnceLock::new();
    *CELL.get_or_init(|| env_threshold("MSPCG_PAR_MIN_NNZ", DEFAULT_PAR_MIN_NNZ))
}

/// Minimum stored entries per nnz-weighted SpMV chunk.
/// `MSPCG_MIN_SPMV_CHUNK_NNZ`.
pub fn min_spmv_chunk_nnz() -> usize {
    static CELL: OnceLock<usize> = OnceLock::new();
    *CELL.get_or_init(|| env_threshold("MSPCG_MIN_SPMV_CHUNK_NNZ", DEFAULT_MIN_SPMV_CHUNK_NNZ))
}

/// Iterations between true-residual audits when residual replacement is
/// active. `MSPCG_AUDIT_PERIOD` (a positive integer; `1` audits every
/// iteration).
pub fn audit_period() -> usize {
    static CELL: OnceLock<usize> = OnceLock::new();
    *CELL.get_or_init(|| env_threshold("MSPCG_AUDIT_PERIOD", DEFAULT_AUDIT_PERIOD))
}

/// Parse an `MSPCG_RESIDUAL_REPLACEMENT` value: `Some(true)` / `Some(false)`
/// for a known switch name (case-insensitive), `None` for anything else —
/// the same pure-function validation shape as [`parse_positive`].
pub fn parse_switch(raw: &str) -> Option<bool> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Some(true),
        "0" | "false" | "off" | "no" => Some(false),
        _ => None,
    }
}

/// The `MSPCG_RESIDUAL_REPLACEMENT` override: `Some(enabled)` when the
/// environment pins residual auditing + replacement for solves whose
/// recovery policy is on automatic, `None` when unset or empty (the
/// tight-tolerance heuristic decides). Validated exactly like
/// `MSPCG_THREADS`: an unknown value trips a debug assertion and behaves as
/// unset. Read once and cached — the audit schedule must not flip between
/// two solves of one process, or replay determinism would break.
pub fn forced_residual_replacement() -> Option<bool> {
    static CELL: OnceLock<Option<bool>> = OnceLock::new();
    *CELL.get_or_init(|| match std::env::var("MSPCG_RESIDUAL_REPLACEMENT") {
        Ok(v) if !v.trim().is_empty() => {
            let parsed = parse_switch(&v);
            debug_assert!(
                parsed.is_some(),
                "MSPCG_RESIDUAL_REPLACEMENT must be a boolean switch (1/0/true/false/on/off), got {v:?}"
            );
            parsed
        }
        _ => None,
    })
}

/// Storage formats [`crate::op::AutoOp`] can select between.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixFormat {
    /// Compressed sparse row ([`crate::csr::CsrMatrix`]).
    Csr,
    /// Sliced ELL with sorting, SELL-C-σ ([`crate::sellcs::SellCsMatrix`]).
    SellCs,
}

/// Parse an `MSPCG_FORCE_FORMAT` value: `Some(format)` for a known name
/// (`csr` / `sellcs`, case-insensitive, with the `sell-c-sigma` / `sell`
/// aliases), `None` for anything else — the same pure-function validation
/// shape as [`parse_positive`], so unknown values can be rejected loudly
/// instead of silently accepted.
pub fn parse_format(raw: &str) -> Option<MatrixFormat> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "csr" => Some(MatrixFormat::Csr),
        "sellcs" | "sell-c-sigma" | "sell" => Some(MatrixFormat::SellCs),
        _ => None,
    }
}

/// The `MSPCG_FORCE_FORMAT` override: `Some(format)` when the environment
/// pins the operator format, `None` when unset or empty so the row-shape
/// heuristic decides. Validated exactly like `MSPCG_THREADS`: an unknown
/// value trips a debug assertion and behaves as unset rather than being
/// silently accepted. Read once and cached, like the numeric thresholds.
pub fn forced_format() -> Option<MatrixFormat> {
    static CELL: OnceLock<Option<MatrixFormat>> = OnceLock::new();
    *CELL.get_or_init(|| match std::env::var("MSPCG_FORCE_FORMAT") {
        Ok(v) if !v.trim().is_empty() => {
            let parsed = parse_format(&v);
            debug_assert!(
                parsed.is_some(),
                "MSPCG_FORCE_FORMAT must be `csr` or `sellcs`, got {v:?}"
            );
            parsed
        }
        _ => None,
    })
}

/// PCG iteration variants the solver stack implements. Lives here (rather
/// than in `mspcg-core`) so the serial solvers, the batched multi-RHS
/// driver and the SPMD `ParallelMStepPcg` all share one selection type and
/// one validated `MSPCG_PCG_VARIANT` override.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PcgVariant {
    /// Resolve at solve time: the `MSPCG_PCG_VARIANT` override if set,
    /// otherwise [`PcgVariant::Classic`].
    #[default]
    Auto,
    /// Algorithm 1 as transcribed from the paper: two serialized inner
    /// products per iteration (`(p, Kp)`, then `(r̂, r)` after the
    /// preconditioner).
    Classic,
    /// Chronopoulos–Gear two-term recurrence: carry `s = Kp` and `w = Kz`
    /// so `α` and `β` both come out of **one** fused reduction phase per
    /// iteration — the communication-avoiding form.
    SingleReduction,
    /// Ghysels–Vanroose pipelined recurrence: additionally carry
    /// `mv = M⁻¹w` and `nv = K·mv` (with the direction carries `q` and
    /// `z`), so the one reduction of the single-reduction form is
    /// **initiated before** the preconditioner + SpMV of the next
    /// iteration and **consumed after** them — the reduction latency
    /// hides behind the heaviest phase instead of merely being fused.
    Pipelined,
    /// s-step (communication-avoiding) CG: per outer step build an
    /// `s`-dimensional Krylov block with a Chebyshev-basis three-term
    /// recurrence on the cached Lanczos interval, amortize **all** inner
    /// products into **one** fused Gram-matrix reduction phase per `s`
    /// iterations, and advance the iterate through `s` local update
    /// sub-steps from a replicated small dense Cholesky solve.
    SStep {
        /// Iterations per outer step (block width); `2 ..= MAX_SSTEP_S`.
        s: usize,
    },
}

/// Largest block width the `sstep:S` syntax accepts. The Chebyshev basis
/// keeps an s-dimensional block well conditioned for moderate `s`, but the
/// Gram system is solved in replicated O(s³) scalar work per outer step
/// and basis conditioning still degrades with `s` — an absurd width is a
/// misconfiguration, not a tuning choice, and is rejected like `0`.
pub const MAX_SSTEP_S: usize = 16;

/// Largest `M`/`K` the `mstep:M` / `chebyshev:K` / `newton:K` syntax
/// accepts. Preconditioner work grows linearly in the parameter while the
/// iteration-count payoff saturates long before this; values past the cap
/// are misconfigurations and are rejected like `0`.
pub const MAX_PRECOND_PARAM: usize = 64;

impl PcgVariant {
    /// Resolve [`PcgVariant::Auto`] against the environment override;
    /// pinned variants pass through unchanged. The result is never `Auto`.
    pub fn resolve(self) -> PcgVariant {
        match self {
            PcgVariant::Auto => forced_pcg_variant().unwrap_or(PcgVariant::Classic),
            pinned => pinned,
        }
    }
}

/// Parse an `MSPCG_PCG_VARIANT` value: `Some(variant)` for a known name
/// (`classic` / `single_reduction` / `pipelined` / `sstep:S`,
/// case-insensitive, with the `single-reduction` / `sr` and `gv` aliases),
/// `None` for anything else. The `sstep:S` block width is validated here,
/// not at use: `s = 0` and `s = 1` are degenerate (a one-wide "block" is
/// the single-reduction iteration with extra overhead) and `S` past
/// [`MAX_SSTEP_S`] is a misconfiguration, so all three are rejected and
/// [`forced_pcg_variant`] falls back to the default exactly like
/// `MSPCG_THREADS` does on a zero thread budget.
pub fn parse_variant(raw: &str) -> Option<PcgVariant> {
    let lower = raw.trim().to_ascii_lowercase();
    if let Some((name, width)) = lower.split_once(':') {
        if name.trim() != "sstep" {
            return None;
        }
        let s = parse_positive(width)?;
        if (2..=MAX_SSTEP_S).contains(&s) {
            return Some(PcgVariant::SStep { s });
        }
        return None;
    }
    match lower.as_str() {
        "classic" => Some(PcgVariant::Classic),
        "single_reduction" | "single-reduction" | "sr" => Some(PcgVariant::SingleReduction),
        "pipelined" | "gv" => Some(PcgVariant::Pipelined),
        _ => None,
    }
}

/// The `MSPCG_PCG_VARIANT` override: `Some(variant)` when the environment
/// pins the PCG iteration variant for [`PcgVariant::Auto`] solves, `None`
/// when unset or empty (classic wins). Validated exactly like
/// `MSPCG_THREADS`: an unknown value trips a debug assertion and behaves
/// as unset. Read once and cached — the variant must not flip between two
/// solves of one process, or replay determinism would break.
pub fn forced_pcg_variant() -> Option<PcgVariant> {
    static CELL: OnceLock<Option<PcgVariant>> = OnceLock::new();
    *CELL.get_or_init(|| match std::env::var("MSPCG_PCG_VARIANT") {
        Ok(v) if !v.trim().is_empty() => {
            let parsed = parse_variant(&v);
            debug_assert!(
                parsed.is_some(),
                "MSPCG_PCG_VARIANT must be `classic`, `single_reduction`, `pipelined` or \
                 `sstep:S` (2 ≤ S ≤ {MAX_SSTEP_S}), got {v:?}"
            );
            parsed
        }
        _ => None,
    })
}

/// Polynomial recurrences the barrier-free preconditioner implements.
/// Lives here (next to [`PcgVariant`]) so the serial and SPMD stacks share
/// one selection type and one validated `MSPCG_PRECOND` override.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolyKind {
    /// Scaled first-kind Newton (Richardson/truncated-Neumann) recurrence:
    /// every step applies the same optimal damping `ω = 2/(λ₁ + λₙ)`.
    Newton,
    /// Chebyshev recurrence on the estimated interval `[λ₁, λₙ]` — the
    /// min-max polynomial of the same degree, fewer PCG iterations per
    /// SpMV than Newton on ill-conditioned intervals.
    Chebyshev,
}

/// Preconditioner selection for the solver stack: the paper's m-step
/// multicolor SSOR, or the barrier-free polynomial alternative built from
/// SpMVs only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrecondKind {
    /// Resolve at construction time: the `MSPCG_PRECOND` override if set,
    /// otherwise the barrier-cost heuristic of [`PrecondKind::resolve`].
    #[default]
    Auto,
    /// The paper's m-step multicolor SSOR preconditioner
    /// (`m·(2C−1)` color-sweep barriers per application on the SPMD
    /// schedule, `C` = number of colors).
    MStepSsor {
        /// Number of preconditioner steps.
        m: usize,
    },
    /// Degree-`degree` polynomial in the Jacobi-scaled operator
    /// (`degree` SpMV-phase barriers per application, zero color sweeps).
    Poly {
        /// Recurrence family.
        kind: PolyKind,
        /// Polynomial degree (= SpMVs per application); at least 1.
        degree: usize,
    },
}

impl PrecondKind {
    /// Resolve [`PrecondKind::Auto`] against the environment override and
    /// the barrier-cost heuristic; pinned selections pass through
    /// unchanged. The result is never `Auto`.
    ///
    /// The heuristic compares estimated synchronization cost per
    /// application at matched flops (a degree-`2m` polynomial streams the
    /// matrix as often as `m` forward+backward sweeps): m-step SSOR costs
    /// `m·(2·colors − 1)` sweep barriers where the flop-equivalent
    /// polynomial costs `2m` SpMV barriers, so the polynomial wins
    /// whenever `2·colors − 1 > 2`, i.e. for every genuinely multicolor
    /// matrix (`colors ≥ 2`); a single-color (pure-diagonal) system keeps
    /// the cheaper SSOR sweeps.
    pub fn resolve(self, colors: usize, m_default: usize) -> PrecondKind {
        let auto = || {
            let m = m_default.max(1);
            if 2 * colors > 3 {
                PrecondKind::Poly {
                    kind: PolyKind::Chebyshev,
                    degree: 2 * m,
                }
            } else {
                PrecondKind::MStepSsor { m }
            }
        };
        match self {
            PrecondKind::Auto => forced_precond().unwrap_or_else(auto),
            pinned => pinned,
        }
    }
}

/// Parse an `MSPCG_PRECOND` value: `Some(kind)` for a known
/// `name:positive-integer` pair (`mstep:M` / `ssor:M` for
/// [`PrecondKind::MStepSsor`], `chebyshev:K` / `cheby:K` / `newton:K` for
/// [`PrecondKind::Poly`], case-insensitive), `None` for anything else —
/// the same pure-function validation shape as [`parse_variant`],
/// including the upper bound: parameters past [`MAX_PRECOND_PARAM`] are
/// rejected like `0`, so `forced_precond` debug-asserts and falls back to
/// the heuristic instead of constructing an absurd sweep count or degree.
pub fn parse_precond(raw: &str) -> Option<PrecondKind> {
    let lower = raw.trim().to_ascii_lowercase();
    let (name, count) = lower.split_once(':')?;
    let n = parse_positive(count).filter(|&n| n <= MAX_PRECOND_PARAM)?;
    match name.trim() {
        "mstep" | "ssor" => Some(PrecondKind::MStepSsor { m: n }),
        "chebyshev" | "cheby" => Some(PrecondKind::Poly {
            kind: PolyKind::Chebyshev,
            degree: n,
        }),
        "newton" => Some(PrecondKind::Poly {
            kind: PolyKind::Newton,
            degree: n,
        }),
        _ => None,
    }
}

/// The `MSPCG_PRECOND` override: `Some(kind)` when the environment pins the
/// preconditioner for [`PrecondKind::Auto`] selections, `None` when unset
/// or empty (the barrier-cost heuristic decides). Validated exactly like
/// `MSPCG_THREADS`: an unknown value trips a debug assertion and behaves as
/// unset. Read once and cached — the preconditioner must not flip between
/// two solves of one process, or replay determinism would break.
pub fn forced_precond() -> Option<PrecondKind> {
    static CELL: OnceLock<Option<PrecondKind>> = OnceLock::new();
    *CELL.get_or_init(|| match std::env::var("MSPCG_PRECOND") {
        Ok(v) if !v.trim().is_empty() => {
            let parsed = parse_precond(&v);
            debug_assert!(
                parsed.is_some(),
                "MSPCG_PRECOND must be `mstep:M`, `ssor:M`, `chebyshev:K` or `newton:K`, got {v:?}"
            );
            parsed
        }
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_positive_mirrors_thread_budget_rules() {
        assert_eq!(parse_positive("4"), Some(4));
        assert_eq!(parse_positive(" 512 "), Some(512));
        assert_eq!(parse_positive("0"), None);
        assert_eq!(parse_positive(""), None);
        assert_eq!(parse_positive("abc"), None);
        assert_eq!(parse_positive("-3"), None);
        assert_eq!(parse_positive("2.5"), None);
    }

    #[test]
    fn thresholds_default_when_unset() {
        // The test environment does not set the override variables, so the
        // cached values must be the documented defaults (this also pins the
        // read-once semantics: later env changes cannot shift layouts).
        if std::env::var("MSPCG_PAR_MIN_ELEMS").is_err() {
            assert_eq!(par_min_elems(), DEFAULT_PAR_MIN_ELEMS);
        }
        if std::env::var("MSPCG_PAR_MIN_NNZ").is_err() {
            assert_eq!(par_min_nnz(), DEFAULT_PAR_MIN_NNZ);
        }
        if std::env::var("MSPCG_MIN_SPMV_CHUNK_NNZ").is_err() {
            assert_eq!(min_spmv_chunk_nnz(), DEFAULT_MIN_SPMV_CHUNK_NNZ);
        }
        if std::env::var("MSPCG_AUDIT_PERIOD").is_err() {
            assert_eq!(audit_period(), DEFAULT_AUDIT_PERIOD);
        }
    }

    #[test]
    fn parse_switch_accepts_known_names_and_rejects_garbage() {
        assert_eq!(parse_switch("1"), Some(true));
        assert_eq!(parse_switch(" TRUE "), Some(true));
        assert_eq!(parse_switch("on"), Some(true));
        assert_eq!(parse_switch("yes"), Some(true));
        assert_eq!(parse_switch("0"), Some(false));
        assert_eq!(parse_switch("False"), Some(false));
        assert_eq!(parse_switch("OFF"), Some(false));
        assert_eq!(parse_switch("no"), Some(false));
        assert_eq!(parse_switch("2"), None);
        assert_eq!(parse_switch(""), None);
        assert_eq!(parse_switch("enabled"), None);
    }

    #[test]
    fn parse_format_accepts_known_names_and_rejects_garbage() {
        assert_eq!(parse_format("csr"), Some(MatrixFormat::Csr));
        assert_eq!(parse_format(" CSR "), Some(MatrixFormat::Csr));
        assert_eq!(parse_format("SELLCS"), Some(MatrixFormat::SellCs));
        assert_eq!(parse_format("sell-c-sigma"), Some(MatrixFormat::SellCs));
        assert_eq!(parse_format("sell"), Some(MatrixFormat::SellCs));
        // Unknown names must be rejected (forced_format then debug-asserts
        // and falls back to the heuristic instead of silently accepting).
        assert_eq!(parse_format("ellpack"), None);
        assert_eq!(parse_format(""), None);
        assert_eq!(parse_format("csr,sellcs"), None);
    }

    #[test]
    fn parse_variant_accepts_known_names_and_rejects_garbage() {
        assert_eq!(parse_variant("classic"), Some(PcgVariant::Classic));
        assert_eq!(parse_variant(" Classic "), Some(PcgVariant::Classic));
        assert_eq!(
            parse_variant("single_reduction"),
            Some(PcgVariant::SingleReduction)
        );
        assert_eq!(
            parse_variant("SINGLE-REDUCTION"),
            Some(PcgVariant::SingleReduction)
        );
        assert_eq!(parse_variant("sr"), Some(PcgVariant::SingleReduction));
        assert_eq!(parse_variant("pipelined"), Some(PcgVariant::Pipelined));
        assert_eq!(parse_variant(" Pipelined "), Some(PcgVariant::Pipelined));
        assert_eq!(parse_variant("gv"), Some(PcgVariant::Pipelined));
        assert_eq!(parse_variant("ghysels"), None);
        assert_eq!(parse_variant(""), None);
        assert_eq!(parse_variant("auto"), None); // Auto is the absence of a pin
    }

    #[test]
    fn parse_variant_validates_sstep_width() {
        assert_eq!(parse_variant("sstep:2"), Some(PcgVariant::SStep { s: 2 }));
        assert_eq!(parse_variant(" SStep:4 "), Some(PcgVariant::SStep { s: 4 }));
        assert_eq!(
            parse_variant("sstep:16"),
            Some(PcgVariant::SStep { s: MAX_SSTEP_S })
        );
        // Pathological widths fall back to the default (via the
        // forced_pcg_variant debug assertion), exactly like MSPCG_THREADS:
        // s = 0 is empty, s = 1 is the single-reduction iteration with
        // extra overhead, and an absurd s is a misconfiguration.
        assert_eq!(parse_variant("sstep:0"), None);
        assert_eq!(parse_variant("sstep:1"), None);
        assert_eq!(parse_variant("sstep:17"), None);
        assert_eq!(parse_variant("sstep:1000000"), None);
        assert_eq!(parse_variant("sstep:-4"), None);
        assert_eq!(parse_variant("sstep:two"), None);
        assert_eq!(parse_variant("sstep:"), None);
        assert_eq!(parse_variant("sstep"), None);
        // Only sstep takes a parameter; parameterizing the others is
        // garbage, not a partial match.
        assert_eq!(parse_variant("pipelined:2"), None);
        assert_eq!(parse_variant("classic:1"), None);
    }

    #[test]
    fn parse_precond_accepts_known_pairs_and_rejects_garbage() {
        assert_eq!(
            parse_precond("mstep:3"),
            Some(PrecondKind::MStepSsor { m: 3 })
        );
        assert_eq!(
            parse_precond(" SSOR:2 "),
            Some(PrecondKind::MStepSsor { m: 2 })
        );
        assert_eq!(
            parse_precond("chebyshev:4"),
            Some(PrecondKind::Poly {
                kind: PolyKind::Chebyshev,
                degree: 4
            })
        );
        assert_eq!(parse_precond("Cheby:1"), parse_precond("chebyshev:1"));
        assert_eq!(
            parse_precond("newton:6"),
            Some(PrecondKind::Poly {
                kind: PolyKind::Newton,
                degree: 6
            })
        );
        // Garbage: unknown names, missing/zero/negative degrees, bare
        // names without a count (forced_precond then debug-asserts and
        // falls back to Auto instead of silently accepting).
        assert_eq!(parse_precond("jacobi:2"), None);
        assert_eq!(parse_precond("chebyshev"), None);
        assert_eq!(parse_precond("chebyshev:0"), None);
        assert_eq!(parse_precond("newton:-1"), None);
        assert_eq!(parse_precond("mstep:two"), None);
        assert_eq!(parse_precond(""), None);
        assert_eq!(parse_precond("auto"), None); // Auto is the absence of a pin
                                                 // Absurd parameters are rejected like 0 — the same validation the
                                                 // sstep:S width gets (satellite of the s-step PR).
        assert_eq!(
            parse_precond("chebyshev:64"),
            Some(PrecondKind::Poly {
                kind: PolyKind::Chebyshev,
                degree: MAX_PRECOND_PARAM
            })
        );
        assert_eq!(parse_precond("chebyshev:65"), None);
        assert_eq!(parse_precond("mstep:1000000"), None);
    }

    #[test]
    fn precond_resolution_never_returns_auto() {
        // Pinned selections pass through untouched.
        assert_eq!(
            PrecondKind::MStepSsor { m: 2 }.resolve(4, 3),
            PrecondKind::MStepSsor { m: 2 }
        );
        let poly = PrecondKind::Poly {
            kind: PolyKind::Newton,
            degree: 5,
        };
        assert_eq!(poly.resolve(1, 1), poly);
        // Auto honors the cached environment pin; with no pin the
        // barrier-cost heuristic picks the flop-equivalent Chebyshev
        // polynomial for multicolor matrices and m-step SSOR for
        // single-color ones.
        let resolved = PrecondKind::Auto.resolve(4, 3);
        assert_ne!(resolved, PrecondKind::Auto);
        if forced_precond().is_none() {
            assert_eq!(
                resolved,
                PrecondKind::Poly {
                    kind: PolyKind::Chebyshev,
                    degree: 6
                }
            );
            assert_eq!(
                PrecondKind::Auto.resolve(1, 2),
                PrecondKind::MStepSsor { m: 2 }
            );
        }
    }

    #[test]
    fn variant_resolution_never_returns_auto() {
        for v in [
            PcgVariant::Auto,
            PcgVariant::Classic,
            PcgVariant::SingleReduction,
            PcgVariant::Pipelined,
            PcgVariant::SStep { s: 4 },
        ] {
            assert_ne!(v.resolve(), PcgVariant::Auto);
        }
        assert_eq!(PcgVariant::Classic.resolve(), PcgVariant::Classic);
        assert_eq!(
            PcgVariant::SingleReduction.resolve(),
            PcgVariant::SingleReduction
        );
        assert_eq!(PcgVariant::Pipelined.resolve(), PcgVariant::Pipelined);
        assert_eq!(
            PcgVariant::SStep { s: 2 }.resolve(),
            PcgVariant::SStep { s: 2 }
        );
        // Auto honors the cached environment pin (classic when unset).
        assert_eq!(
            PcgVariant::Auto.resolve(),
            forced_pcg_variant().unwrap_or(PcgVariant::Classic)
        );
    }
}
