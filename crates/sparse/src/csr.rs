//! Compressed Sparse Row storage.
//!
//! CSR is the workhorse format of the workspace: the FEM assembler produces
//! it (via [`crate::coo::CooMatrix`]), the multicolor SSOR preconditioner
//! sweeps over its rows in color order, and every machine simulator derives
//! its own layout from it.
//!
//! Invariants maintained by construction and checked by
//! [`CsrMatrix::from_raw_parts`]:
//!
//! * `row_ptr` is nondecreasing with `row_ptr[0] == 0` and
//!   `row_ptr[rows] == nnz`,
//! * within each row, column indices are strictly increasing (sorted, no
//!   duplicates) and in bounds.

use crate::error::SparseError;
use crate::par;
use crate::permute::Permutation;
use crate::tuning;

/// Sparse matrix in CSR format with sorted, deduplicated columns.
///
/// ```
/// use mspcg_sparse::CooMatrix;
///
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 4.0)?;
/// coo.push_sym(0, 1, -1.0)?;
/// coo.push(1, 1, 4.0)?;
/// let a = coo.to_csr();
/// assert_eq!(a.mul_vec(&[1.0, 2.0]), vec![2.0, 7.0]);
/// assert!(a.is_symmetric(0.0));
/// # Ok::<(), mspcg_sparse::SparseError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Build from raw CSR arrays, validating every invariant.
    ///
    /// # Errors
    /// * [`SparseError::InvalidPartition`] if `row_ptr` is malformed,
    /// * [`SparseError::IndexOutOfBounds`] for any out-of-range column,
    /// * [`SparseError::InvalidPartition`] if columns are unsorted or
    ///   duplicated within a row.
    pub fn from_raw_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self, SparseError> {
        if row_ptr.len() != rows + 1 || row_ptr[0] != 0 || *row_ptr.last().unwrap() != col_idx.len()
        {
            return Err(SparseError::InvalidPartition {
                reason: format!(
                    "row_ptr length {} (expected {}), first {}, last {} (expected nnz {})",
                    row_ptr.len(),
                    rows + 1,
                    row_ptr.first().copied().unwrap_or(usize::MAX),
                    row_ptr.last().copied().unwrap_or(usize::MAX),
                    col_idx.len()
                ),
            });
        }
        if col_idx.len() != values.len() {
            return Err(SparseError::ShapeMismatch {
                left: (col_idx.len(), 1),
                right: (values.len(), 1),
            });
        }
        for r in 0..rows {
            if row_ptr[r] > row_ptr[r + 1] {
                return Err(SparseError::InvalidPartition {
                    reason: format!("row_ptr decreases at row {r}"),
                });
            }
            let mut prev: Option<u32> = None;
            for &c in &col_idx[row_ptr[r]..row_ptr[r + 1]] {
                if c as usize >= cols {
                    return Err(SparseError::IndexOutOfBounds {
                        index: c as usize,
                        bound: cols,
                        axis: "col",
                    });
                }
                if let Some(p) = prev {
                    if c <= p {
                        return Err(SparseError::InvalidPartition {
                            reason: format!("unsorted/duplicate column {c} in row {r}"),
                        });
                    }
                }
                prev = Some(c);
            }
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// Diagonal matrix from a slice.
    pub fn from_diag(d: &[f64]) -> Self {
        let n = d.len();
        CsrMatrix {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n as u32).collect(),
            values: d.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Raw row pointer array (length `rows + 1`).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Raw column index array.
    #[inline]
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// Raw value array.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the values (structure is immutable).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Value at `(i, j)`, or `0.0` when the entry is not stored.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "get out of bounds");
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        match self.col_idx[lo..hi].binary_search(&(j as u32)) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Iterator over `(col, value)` pairs of row `i`.
    #[inline]
    pub fn row_entries(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Number of stored entries in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Maximum number of stored entries in any row (the paper's plate
    /// problem guarantees ≤ 14, matching the Fig. 2 stencil).
    pub fn max_row_nnz(&self) -> usize {
        (0..self.rows).map(|i| self.row_nnz(i)).max().unwrap_or(0)
    }

    /// `y ← A·x` allocating the result.
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// `y ← A·x` into a caller-provided buffer (no allocation; this is the
    /// hot kernel of every CG iteration).
    ///
    /// Large matrices run row-parallel on the `mspcg-sparse` worker pool
    /// (`par` feature) over **nnz-weighted** chunks (see
    /// [`par::spmv_layout`]): chunk boundaries follow the `row_ptr` prefix
    /// sum, so a run of dense-ish rows is split across chunks instead of
    /// serializing the pool. Rows are independent and chunk boundaries
    /// depend only on the matrix structure, so the result is bitwise
    /// identical to the serial path for any thread count.
    ///
    /// # Panics
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "mul_vec: x length mismatch");
        assert_eq!(y.len(), self.rows, "mul_vec: y length mismatch");
        let threads = par::threads_for(self.nnz(), tuning::par_min_nnz());
        if threads <= 1 {
            self.mul_vec_range_into(x, y, 0..self.rows);
            return;
        }
        let (chunk_nnz, nchunks) = par::spmv_layout(self.nnz());
        let ys = par::ParSlice::new(y);
        par::for_each_chunk(nchunks, threads, &|c| {
            let rows = par::spmv_chunk_rows(&self.row_ptr, chunk_nnz, c);
            // SAFETY: row chunks are disjoint and each claimed once.
            let out = unsafe { ys.slice_mut(rows.clone()) };
            self.mul_vec_range_into(x, out, rows);
        });
    }

    /// Serial SpMV over a row range: `y[k] ← (A·x)[rows.start + k]`. The
    /// building block shared by the row-parallel [`CsrMatrix::mul_vec_into`]
    /// and by `mspcg-parallel`'s SPMD strips.
    ///
    /// # Panics
    /// Panics if `y.len() != rows.len()` or the range is out of bounds.
    #[inline]
    pub fn mul_vec_range_into(&self, x: &[f64], y: &mut [f64], rows: std::ops::Range<usize>) {
        assert!(rows.end <= self.rows, "mul_vec_range: rows out of bounds");
        assert_eq!(y.len(), rows.len(), "mul_vec_range: y length mismatch");
        for (k, i) in rows.enumerate() {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            let mut acc = 0.0;
            for j in lo..hi {
                acc += self.values[j] * x[self.col_idx[j] as usize];
            }
            y[k] = acc;
        }
    }

    /// `y ← y + a·(A·x)` fused kernel (used by residual updates); row
    /// parallel over nnz-weighted chunks like [`CsrMatrix::mul_vec_into`].
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn mul_vec_axpy(&self, a: f64, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "mul_vec_axpy: x length mismatch");
        assert_eq!(y.len(), self.rows, "mul_vec_axpy: y length mismatch");
        let threads = par::threads_for(self.nnz(), tuning::par_min_nnz());
        if threads <= 1 {
            self.mul_vec_axpy_range(a, x, y, 0..self.rows);
            return;
        }
        let (chunk_nnz, nchunks) = par::spmv_layout(self.nnz());
        let ys = par::ParSlice::new(y);
        par::for_each_chunk(nchunks, threads, &|c| {
            let rows = par::spmv_chunk_rows(&self.row_ptr, chunk_nnz, c);
            // SAFETY: row chunks are disjoint and each claimed once.
            let out = unsafe { ys.slice_mut(rows.clone()) };
            self.mul_vec_axpy_range(a, x, out, rows);
        });
    }

    /// Serial fused SpMV-accumulate over a row range:
    /// `y[k] += a·(A·x)[rows.start + k]`.
    ///
    /// # Panics
    /// Panics if `y.len() != rows.len()` or the range is out of bounds.
    #[inline]
    pub fn mul_vec_axpy_range(
        &self,
        a: f64,
        x: &[f64],
        y: &mut [f64],
        rows: std::ops::Range<usize>,
    ) {
        assert!(
            rows.end <= self.rows,
            "mul_vec_axpy_range: rows out of bounds"
        );
        assert_eq!(y.len(), rows.len(), "mul_vec_axpy_range: y length mismatch");
        for (k, i) in rows.enumerate() {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            let mut acc = 0.0;
            for j in lo..hi {
                acc += self.values[j] * x[self.col_idx[j] as usize];
            }
            y[k] += a * acc;
        }
    }

    /// Transpose (always produces sorted CSR).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let mut row_ptr = counts.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k] as usize;
                let dst = row_ptr[c];
                col_idx[dst] = r as u32;
                values[dst] = self.values[k];
                row_ptr[c] += 1;
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptr: counts,
            col_idx,
            values,
        }
    }

    /// Check symmetry to within absolute tolerance `tol`.
    ///
    /// # Errors
    /// [`SparseError::NotSquare`] for rectangular input,
    /// [`SparseError::NotSymmetric`] naming the first failing pair.
    pub fn check_symmetric(&self, tol: f64) -> Result<(), SparseError> {
        if self.rows != self.cols {
            return Err(SparseError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let t = self.transpose();
        for i in 0..self.rows {
            let mut a = self.row_entries(i);
            let mut b = t.row_entries(i);
            loop {
                match (a.next(), b.next()) {
                    (None, None) => break,
                    (Some((ca, va)), Some((cb, vb))) => {
                        if ca != cb || (va - vb).abs() > tol {
                            return Err(SparseError::NotSymmetric {
                                row: i,
                                col: ca.min(cb),
                            });
                        }
                    }
                    (Some((c, _)), None) | (None, Some((c, _))) => {
                        return Err(SparseError::NotSymmetric { row: i, col: c });
                    }
                }
            }
        }
        Ok(())
    }

    /// Convenience wrapper for `check_symmetric(tol).is_ok()`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        self.check_symmetric(tol).is_ok()
    }

    /// Extract the diagonal as a dense vector (zeros where unstored).
    ///
    /// # Errors
    /// [`SparseError::NotSquare`] for rectangular input.
    pub fn diag(&self) -> Result<Vec<f64>, SparseError> {
        if self.rows != self.cols {
            return Err(SparseError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        Ok((0..self.rows).map(|i| self.get(i, i)).collect())
    }

    /// Symmetric two-sided diagonal scaling `D A D` with `D = diag(d)` —
    /// the *eager* counterpart of the matrix-free `D·(A·(D·x))` scaling the
    /// format-generic spectrum estimators apply; kept for callers that
    /// want the scaled matrix itself (the unit-diagonal scaling of
    /// Johnson–Micchelli–Paul §2.2).
    ///
    /// # Panics
    /// Panics if `d.len() != rows`.
    pub fn scale_sym(&self, d: &[f64]) -> CsrMatrix {
        assert_eq!(d.len(), self.rows, "scale_sym: length mismatch");
        assert_eq!(self.rows, self.cols, "scale_sym: matrix must be square");
        let mut out = self.clone();
        for i in 0..self.rows {
            for k in out.row_ptr[i]..out.row_ptr[i + 1] {
                let j = out.col_idx[k] as usize;
                out.values[k] *= d[i] * d[j];
            }
        }
        out
    }

    /// Symmetric permutation `B = A(p, p)`: `B[i][j] = A[p(i)][p(j)]`, where
    /// `p` maps *new* indices to *old* indices. This is how the multicolor
    /// ordering reorders the stiffness matrix into the 6-block form (3.1).
    ///
    /// # Errors
    /// [`SparseError::NotSquare`] if the matrix is rectangular,
    /// [`SparseError::ShapeMismatch`] if the permutation length differs.
    pub fn permute_sym(&self, p: &Permutation) -> Result<CsrMatrix, SparseError> {
        if self.rows != self.cols {
            return Err(SparseError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        if p.len() != self.rows {
            return Err(SparseError::ShapeMismatch {
                left: (self.rows, self.cols),
                right: (p.len(), p.len()),
            });
        }
        let inv = p.inverse();
        let mut row_ptr = vec![0usize; self.rows + 1];
        for new_i in 0..self.rows {
            row_ptr[new_i + 1] = row_ptr[new_i] + self.row_nnz(p.new_to_old(new_i));
        }
        let nnz = self.nnz();
        let mut col_idx = vec![0u32; nnz];
        let mut values = vec![0.0; nnz];
        let mut scratch: Vec<(u32, f64)> = Vec::with_capacity(self.max_row_nnz());
        for new_i in 0..self.rows {
            let old_i = p.new_to_old(new_i);
            scratch.clear();
            for (old_j, v) in self.row_entries(old_i) {
                scratch.push((inv.old_to_new(old_j) as u32, v));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let base = row_ptr[new_i];
            for (k, &(c, v)) in scratch.iter().enumerate() {
                col_idx[base + k] = c;
                values[base + k] = v;
            }
        }
        Ok(CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Gershgorin bounds `[min_i(a_ii − R_i), max_i(a_ii + R_i)]` where
    /// `R_i` is the off-diagonal absolute row sum. For SPD matrices the lower
    /// bound is clamped at a small positive value when it would be ≤ 0.
    pub fn gershgorin_interval(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..self.rows {
            let mut d = 0.0;
            let mut radius = 0.0;
            for (j, v) in self.row_entries(i) {
                if j == i {
                    d = v;
                } else {
                    radius += v.abs();
                }
            }
            lo = lo.min(d - radius);
            hi = hi.max(d + radius);
        }
        if self.rows == 0 {
            (0.0, 0.0)
        } else {
            (lo, hi)
        }
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Dense copy (row-major) — for tests and small-problem eigenanalysis.
    pub fn to_dense(&self) -> crate::dense::DenseMatrix {
        let mut d = crate::dense::DenseMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (j, v) in self.row_entries(i) {
                d[(i, j)] = v;
            }
        }
        d
    }

    /// The set of occupied diagonal offsets `j − i`, sorted ascending — the
    /// structure the CYBER "multiplication by diagonals" scheme stores
    /// (Madsen–Rodrigue–Karush 1976).
    pub fn diagonal_offsets(&self) -> Vec<isize> {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..self.rows {
            for (j, _) in self.row_entries(i) {
                seen.insert(j as isize - i as isize);
            }
        }
        seen.into_iter().collect()
    }

    /// Remove stored entries with `|value| <= threshold` (structure pruning;
    /// never drops diagonal entries).
    pub fn prune(&self, threshold: f64) -> CsrMatrix {
        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        for i in 0..self.rows {
            for (j, v) in self.row_entries(i) {
                if v.abs() > threshold || i == j {
                    col_idx.push(j as u32);
                    values.push(v);
                }
            }
            row_ptr[i + 1] = col_idx.len();
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn sample() -> CsrMatrix {
        // [ 4 -1  0 ]
        // [-1  4 -1 ]
        // [ 0 -1  4 ]
        let mut a = CooMatrix::new(3, 3);
        for i in 0..3 {
            a.push(i, i, 4.0).unwrap();
        }
        a.push_sym(0, 1, -1.0).unwrap();
        a.push_sym(1, 2, -1.0).unwrap();
        a.to_csr()
    }

    #[test]
    fn from_raw_parts_validates_row_ptr() {
        let err = CsrMatrix::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1.0]);
        assert!(err.is_err());
    }

    #[test]
    fn from_raw_parts_rejects_unsorted_columns() {
        let err = CsrMatrix::from_raw_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]);
        assert!(matches!(err, Err(SparseError::InvalidPartition { .. })));
    }

    #[test]
    fn from_raw_parts_rejects_out_of_bounds_column() {
        let err = CsrMatrix::from_raw_parts(1, 2, vec![0, 1], vec![5], vec![1.0]);
        assert!(matches!(err, Err(SparseError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn spmv_matches_dense() {
        let a = sample();
        let x = [1.0, 2.0, 3.0];
        let y = a.mul_vec(&x);
        assert_eq!(y, vec![2.0, 4.0, 10.0]);
    }

    #[test]
    fn mul_vec_axpy_accumulates() {
        let a = sample();
        let x = [1.0, 2.0, 3.0];
        let mut y = vec![1.0, 1.0, 1.0];
        a.mul_vec_axpy(-1.0, &x, &mut y);
        assert_eq!(y, vec![-1.0, -3.0, -9.0]);
    }

    #[test]
    fn transpose_of_symmetric_is_equal() {
        let a = sample();
        assert_eq!(a.transpose(), a);
    }

    #[test]
    fn transpose_rectangular() {
        let mut c = CooMatrix::new(2, 3);
        c.push(0, 2, 5.0).unwrap();
        c.push(1, 0, -2.0).unwrap();
        let a = c.to_csr();
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 0), 5.0);
        assert_eq!(t.get(0, 1), -2.0);
    }

    #[test]
    fn symmetry_check_detects_asymmetry() {
        let mut c = CooMatrix::new(2, 2);
        c.push(0, 1, 1.0).unwrap();
        c.push(1, 0, 2.0).unwrap();
        c.push(0, 0, 1.0).unwrap();
        c.push(1, 1, 1.0).unwrap();
        let a = c.to_csr();
        assert!(!a.is_symmetric(1e-12));
        assert!(a.is_symmetric(1.5));
    }

    #[test]
    fn diag_and_gershgorin() {
        let a = sample();
        assert_eq!(a.diag().unwrap(), vec![4.0, 4.0, 4.0]);
        let (lo, hi) = a.gershgorin_interval();
        assert_eq!(lo, 2.0);
        assert_eq!(hi, 6.0);
    }

    #[test]
    fn permute_sym_reverse_round_trip() {
        let a = sample();
        let p = Permutation::from_new_to_old(vec![2, 1, 0]).unwrap();
        let b = a.permute_sym(&p).unwrap();
        assert_eq!(b.get(0, 0), a.get(2, 2));
        assert_eq!(b.get(0, 1), a.get(2, 1));
        let back = b.permute_sym(&p).unwrap(); // reversal is an involution
        assert_eq!(back, a);
    }

    #[test]
    fn permute_preserves_spectrum_witness() {
        // x'Ax is invariant under symmetric permutation of both A and x.
        let a = sample();
        let p = Permutation::from_new_to_old(vec![1, 2, 0]).unwrap();
        let b = a.permute_sym(&p).unwrap();
        let x = [0.3, -1.2, 2.0];
        let px: Vec<f64> = (0..3).map(|i| x[p.new_to_old(i)]).collect();
        let ax = a.mul_vec(&x);
        let bpx = b.mul_vec(&px);
        let qa: f64 = x.iter().zip(&ax).map(|(u, v)| u * v).sum();
        let qb: f64 = px.iter().zip(&bpx).map(|(u, v)| u * v).sum();
        assert!((qa - qb).abs() < 1e-12);
    }

    #[test]
    fn identity_and_from_diag() {
        let i3 = CsrMatrix::identity(3);
        assert_eq!(i3.mul_vec(&[5.0, 6.0, 7.0]), vec![5.0, 6.0, 7.0]);
        let d = CsrMatrix::from_diag(&[2.0, 3.0]);
        assert_eq!(d.mul_vec(&[1.0, 1.0]), vec![2.0, 3.0]);
    }

    #[test]
    fn diagonal_offsets_of_tridiagonal() {
        let a = sample();
        assert_eq!(a.diagonal_offsets(), vec![-1, 0, 1]);
    }

    #[test]
    fn scale_sym_scales_quadratically() {
        let a = sample();
        let s = a.scale_sym(&[0.5, 0.5, 0.5]);
        assert_eq!(s.get(0, 0), 1.0);
        assert_eq!(s.get(0, 1), -0.25);
    }

    #[test]
    fn prune_drops_small_but_keeps_diagonal() {
        let mut c = CooMatrix::new(2, 2);
        c.push(0, 0, 0.0).unwrap();
        c.push(0, 1, 1e-20).unwrap();
        c.push(1, 1, 3.0).unwrap();
        let a = c.to_csr().prune(1e-12);
        assert_eq!(a.nnz(), 2); // both diagonals kept, tiny off-diagonal gone
        assert_eq!(a.get(0, 1), 0.0);
    }

    #[test]
    fn range_kernels_match_full_spmv() {
        let a = sample();
        let x = [1.0, 2.0, 3.0];
        let full = a.mul_vec(&x);
        let mut part = vec![0.0; 2];
        a.mul_vec_range_into(&x, &mut part, 1..3);
        assert_eq!(part, &full[1..3]);
        let mut acc = vec![1.0; 2];
        a.mul_vec_axpy_range(-2.0, &x, &mut acc, 0..2);
        assert_eq!(acc[0], 1.0 - 2.0 * full[0]);
        assert_eq!(acc[1], 1.0 - 2.0 * full[1]);
    }

    #[test]
    fn spmv_is_thread_count_insensitive() {
        let _guard = crate::par::thread_sweep_lock();
        // Big enough to cross the parallel threshold.
        let n = 40_000usize;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0).unwrap();
            if i + 1 < n {
                coo.push_sym(i, i + 1, -1.0).unwrap();
            }
        }
        let a = coo.to_csr();
        let x: Vec<f64> = (0..n)
            .map(|i| ((i * 13 + 5) % 97) as f64 * 0.03 - 1.0)
            .collect();
        let before = crate::par::max_threads();
        crate::par::set_max_threads(1);
        let y1 = a.mul_vec(&x);
        for t in [2usize, 4, 8] {
            crate::par::set_max_threads(t);
            let yt = a.mul_vec(&x);
            assert!(
                y1.iter().zip(&yt).all(|(u, v)| u.to_bits() == v.to_bits()),
                "spmv differs at t = {t}"
            );
        }
        crate::par::set_max_threads(before);
    }

    #[test]
    fn irregular_spmv_is_thread_count_insensitive() {
        let _guard = crate::par::thread_sweep_lock();
        // Arrow matrix: a handful of dense rows dominate the nnz; the
        // nnz-weighted chunks must still cover every row exactly once and
        // match the serial result bitwise.
        let n = 8_000usize;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 8.0).unwrap();
        }
        for d in 0..4usize {
            // Dense rows at the top, symmetric fill to stay sorted.
            for j in 4..n {
                coo.push_sym(d, j, -1e-3).unwrap();
            }
        }
        let a = coo.to_csr();
        assert!(a.nnz() >= crate::tuning::par_min_nnz());
        let x: Vec<f64> = (0..n).map(|i| ((i * 7 + 1) % 31) as f64 * 0.1).collect();
        let before = crate::par::max_threads();
        crate::par::set_max_threads(1);
        let y1 = a.mul_vec(&x);
        let mut acc1 = vec![0.5; n];
        a.mul_vec_axpy(-2.0, &x, &mut acc1);
        for t in [2usize, 4, 8] {
            crate::par::set_max_threads(t);
            let yt = a.mul_vec(&x);
            assert!(
                y1.iter().zip(&yt).all(|(u, v)| u.to_bits() == v.to_bits()),
                "irregular spmv differs at t = {t}"
            );
            let mut acct = vec![0.5; n];
            a.mul_vec_axpy(-2.0, &x, &mut acct);
            assert!(
                acc1.iter()
                    .zip(&acct)
                    .all(|(u, v)| u.to_bits() == v.to_bits()),
                "irregular mul_vec_axpy differs at t = {t}"
            );
        }
        crate::par::set_max_threads(before);
    }

    #[test]
    fn max_row_nnz_counts() {
        let a = sample();
        assert_eq!(a.max_row_nnz(), 3);
        assert_eq!(a.row_nnz(0), 2);
    }
}
