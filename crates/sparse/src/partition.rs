//! Contiguous index partitions.
//!
//! After the multicolor permutation, the unknowns `0..n` split into
//! contiguous color blocks (Red-u, Red-v, Black-u, Black-v, Green-u,
//! Green-v in the paper's plate problem). A [`Partition`] records the block
//! boundaries; the multicolor SSOR sweep, the CYBER vector layout and the
//! array-machine assignment all consume it.

use crate::error::SparseError;

/// A division of `0..n` into consecutive half-open ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Block boundaries: block `b` spans `offsets[b]..offsets[b+1]`.
    offsets: Vec<usize>,
}

impl Partition {
    /// Build from block sizes.
    ///
    /// # Errors
    /// [`SparseError::InvalidPartition`] if any block is empty — the
    /// multicolor SSOR sweep requires every color class to be nonempty.
    pub fn from_sizes(sizes: &[usize]) -> Result<Self, SparseError> {
        if sizes.contains(&0) {
            return Err(SparseError::InvalidPartition {
                reason: "empty block".into(),
            });
        }
        let mut offsets = Vec::with_capacity(sizes.len() + 1);
        offsets.push(0);
        let mut acc = 0usize;
        for &s in sizes {
            acc += s;
            offsets.push(acc);
        }
        Ok(Partition { offsets })
    }

    /// Build from explicit boundaries `0 = o₀ ≤ o₁ ≤ … ≤ o_b = n`.
    ///
    /// # Errors
    /// [`SparseError::InvalidPartition`] if boundaries are not strictly
    /// increasing or do not start at zero.
    pub fn from_offsets(offsets: Vec<usize>) -> Result<Self, SparseError> {
        if offsets.is_empty() || offsets[0] != 0 {
            return Err(SparseError::InvalidPartition {
                reason: "offsets must start at 0".into(),
            });
        }
        for w in offsets.windows(2) {
            if w[1] <= w[0] {
                return Err(SparseError::InvalidPartition {
                    reason: format!("non-increasing boundary {} after {}", w[1], w[0]),
                });
            }
        }
        Ok(Partition { offsets })
    }

    /// Single block covering `0..n`.
    pub fn single(n: usize) -> Self {
        Partition {
            offsets: vec![0, n.max(1)],
        }
    }

    /// Number of blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of indices covered.
    #[inline]
    pub fn total_len(&self) -> usize {
        *self.offsets.last().unwrap()
    }

    /// Half-open range of block `b`.
    #[inline]
    pub fn range(&self, b: usize) -> std::ops::Range<usize> {
        self.offsets[b]..self.offsets[b + 1]
    }

    /// Size of block `b`.
    #[inline]
    pub fn block_len(&self, b: usize) -> usize {
        self.offsets[b + 1] - self.offsets[b]
    }

    /// Block containing index `i` (binary search).
    pub fn block_of(&self, i: usize) -> usize {
        debug_assert!(i < self.total_len(), "index outside partition");
        match self.offsets.binary_search(&i) {
            Ok(b) => b.min(self.num_blocks() - 1),
            Err(ins) => ins - 1,
        }
    }

    /// Raw boundary array.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Iterator over block ranges.
    pub fn iter(&self) -> impl Iterator<Item = std::ops::Range<usize>> + '_ {
        (0..self.num_blocks()).map(move |b| self.range(b))
    }

    /// Largest block size — the max vector length the CYBER layout achieves.
    pub fn max_block_len(&self) -> usize {
        (0..self.num_blocks())
            .map(|b| self.block_len(b))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_sizes_builds_offsets() {
        let p = Partition::from_sizes(&[3, 2, 4]).unwrap();
        assert_eq!(p.num_blocks(), 3);
        assert_eq!(p.total_len(), 9);
        assert_eq!(p.range(1), 3..5);
        assert_eq!(p.block_len(2), 4);
    }

    #[test]
    fn rejects_empty_block() {
        assert!(Partition::from_sizes(&[2, 0, 1]).is_err());
    }

    #[test]
    fn from_offsets_validates_monotonicity() {
        assert!(Partition::from_offsets(vec![0, 2, 2]).is_err());
        assert!(Partition::from_offsets(vec![1, 2]).is_err());
        assert!(Partition::from_offsets(vec![0, 2, 5]).is_ok());
    }

    #[test]
    fn block_of_finds_correct_block() {
        let p = Partition::from_sizes(&[3, 2, 4]).unwrap();
        assert_eq!(p.block_of(0), 0);
        assert_eq!(p.block_of(2), 0);
        assert_eq!(p.block_of(3), 1);
        assert_eq!(p.block_of(4), 1);
        assert_eq!(p.block_of(5), 2);
        assert_eq!(p.block_of(8), 2);
    }

    #[test]
    fn iter_covers_everything() {
        let p = Partition::from_sizes(&[1, 1, 1]).unwrap();
        let all: Vec<usize> = p.iter().flatten().collect();
        assert_eq!(all, vec![0, 1, 2]);
    }

    #[test]
    fn max_block_len() {
        let p = Partition::from_sizes(&[3, 7, 2]).unwrap();
        assert_eq!(p.max_block_len(), 7);
    }
}
