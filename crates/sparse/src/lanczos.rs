//! Extreme-eigenvalue estimation for symmetric operators.
//!
//! The parametrized preconditioner of §2.2 needs the interval `[λ₁, λₙ]`
//! containing the spectrum of `P⁻¹K`. For small problems the dense Jacobi
//! eigensolver suffices; for realistic plates we estimate the extremes with
//! a Lanczos process with full reorthogonalization (cheap because we only
//! run a few dozen steps) plus a safeguard expansion factor.
//!
//! The operator is supplied as a closure `apply(x, y)` computing `y = A x`,
//! so both explicit matrices and matrix-free preconditioned operators (e.g.
//! `G = I − P⁻¹K`) can be analyzed.

use crate::dense::DenseMatrix;
use crate::error::SparseError;
use crate::vecops;

/// Result of a Lanczos spectral estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralInterval {
    /// Estimated smallest eigenvalue.
    pub min: f64,
    /// Estimated largest eigenvalue.
    pub max: f64,
    /// Lanczos steps actually performed.
    pub steps: usize,
}

impl SpectralInterval {
    /// Widen the interval by relative `margin` on both sides (safeguard for
    /// the Ritz-value under-estimation of the extreme eigenvalues).
    ///
    /// The widening span never collapses: a degenerate interval
    /// (`λmin ≈ λmax`, e.g. a scaled identity, a 1×1 operator, or an early
    /// invariant-subspace break) falls back to a relative floor of `1e-3`
    /// of the largest eigenvalue magnitude, and an all-zero interval to an
    /// absolute floor — so for any `margin > 0` the result strictly
    /// brackets the input (`min < max`), which downstream consumers
    /// (Chebyshev-interval construction divides by `λmax − λmin`) rely on.
    pub fn widened(self, margin: f64) -> SpectralInterval {
        let scale = self.min.abs().max(self.max.abs());
        let span = (self.max - self.min).abs().max(scale * 1e-3).max(1e-12);
        SpectralInterval {
            min: self.min - margin * span,
            max: self.max + margin * span,
            steps: self.steps,
        }
    }

    /// Condition-number style ratio `max/min` (∞ when `min ≤ 0`).
    pub fn ratio(self) -> f64 {
        if self.min <= 0.0 {
            f64::INFINITY
        } else {
            self.max / self.min
        }
    }

    /// Whether the interval is numerically a single point: the half-span
    /// `δ = (max − min)/2` is negligible against the midpoint
    /// `θ = (max + min)/2`. This happens on a scaled identity, a 1×1
    /// operator, or an early invariant-subspace break — spectra on which
    /// a Chebyshev three-term recurrence is ill-defined (`δ → 0`), so
    /// interval consumers (polynomial schedules, the s-step basis, the
    /// Auto preconditioner heuristic) must take their degenerate path.
    /// Same test as the `PolySchedule` Richardson fallback.
    pub fn is_degenerate(self) -> bool {
        let theta = 0.5 * (self.max + self.min);
        let delta = 0.5 * (self.max - self.min);
        delta <= theta * 1e-12
    }
}

/// Deterministic pseudo-random unit starting vector (xorshift; avoids an
/// external RNG dependency in this substrate crate and keeps runs
/// reproducible).
fn seeded_unit_vector(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        // Map to (-1, 1).
        v.push((state as f64 / u64::MAX as f64) * 2.0 - 1.0);
    }
    let nrm = vecops::norm2(&v);
    if nrm > 0.0 {
        vecops::scale(1.0 / nrm, &mut v);
    }
    v
}

/// Estimate the extreme eigenvalues of a symmetric operator of dimension
/// `n` using at most `max_steps` Lanczos iterations with full
/// reorthogonalization.
///
/// # Errors
/// [`SparseError::DidNotConverge`] only when the Krylov space collapses at
/// step 0 (zero operator on a zero start vector — practically impossible
/// with the seeded start).
pub fn lanczos_extremes<F>(
    n: usize,
    max_steps: usize,
    seed: u64,
    mut apply: F,
) -> Result<SpectralInterval, SparseError>
where
    F: FnMut(&[f64], &mut [f64]),
{
    assert!(n > 0, "lanczos: empty operator");
    let m = max_steps.min(n).max(1);
    let mut alphas: Vec<f64> = Vec::with_capacity(m);
    let mut betas: Vec<f64> = Vec::with_capacity(m);
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
    basis.push(seeded_unit_vector(n, seed));
    let mut w = vec![0.0; n];

    for j in 0..m {
        apply(&basis[j], &mut w);
        if j > 0 {
            let beta_prev = betas[j - 1];
            vecops::axpy(-beta_prev, &basis[j - 1], &mut w);
        }
        let alpha = vecops::dot(&basis[j], &w);
        vecops::axpy(-alpha, &basis[j], &mut w);
        // Full reorthogonalization (two passes of classical Gram-Schmidt).
        for _ in 0..2 {
            for q in &basis {
                let c = vecops::dot(q, &w);
                if c != 0.0 {
                    vecops::axpy(-c, q, &mut w);
                }
            }
        }
        alphas.push(alpha);
        let beta = vecops::norm2(&w);
        if beta <= 1e-13 * alpha.abs().max(1.0) {
            // Invariant subspace found: Ritz values are exact.
            break;
        }
        betas.push(beta);
        let mut next = w.clone();
        vecops::scale(1.0 / beta, &mut next);
        basis.push(next);
    }

    let k = alphas.len();
    if k == 0 {
        return Err(SparseError::DidNotConverge {
            iterations: 0,
            residual: f64::NAN,
        });
    }
    // Eigenvalues of the k×k tridiagonal Ritz matrix via the dense solver.
    let mut t = DenseMatrix::zeros(k, k);
    for i in 0..k {
        t[(i, i)] = alphas[i];
        if i + 1 < k {
            t[(i, i + 1)] = betas[i];
            t[(i + 1, i)] = betas[i];
        }
    }
    let eig = t.sym_eigenvalues()?;
    Ok(SpectralInterval {
        min: eig[0],
        max: eig[k - 1],
        steps: k,
    })
}

/// Spectral-radius estimate by power iteration (used for `ρ(G)` of the
/// splitting iteration matrix, §2.1). Returns the dominant `|λ|`.
///
/// # Errors
/// [`SparseError::DidNotConverge`] if the iterate collapses to zero.
pub fn power_spectral_radius<F>(
    n: usize,
    iterations: usize,
    seed: u64,
    mut apply: F,
) -> Result<f64, SparseError>
where
    F: FnMut(&[f64], &mut [f64]),
{
    assert!(n > 0, "power iteration: empty operator");
    let mut x = seeded_unit_vector(n, seed);
    let mut y = vec![0.0; n];
    let mut rho = 0.0;
    for it in 0..iterations {
        apply(&x, &mut y);
        let nrm = vecops::norm2(&y);
        if nrm == 0.0 {
            if it == 0 {
                return Err(SparseError::DidNotConverge {
                    iterations: it,
                    residual: 0.0,
                });
            }
            return Ok(0.0);
        }
        rho = nrm;
        for (xi, yi) in x.iter_mut().zip(&y) {
            *xi = yi / nrm;
        }
    }
    Ok(rho)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::csr::CsrMatrix;

    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut a = CooMatrix::new(n, n);
        for i in 0..n {
            a.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                a.push_sym(i, i + 1, -1.0).unwrap();
            }
        }
        a.to_csr()
    }

    #[test]
    fn lanczos_recovers_1d_laplacian_extremes() {
        let n = 64;
        let a = laplacian_1d(n);
        let est = lanczos_extremes(n, 48, 7, |x, y| a.mul_vec_into(x, y)).unwrap();
        let h = std::f64::consts::PI / (n as f64 + 1.0);
        let exact_min = 2.0 - 2.0 * h.cos();
        let exact_max = 2.0 + 2.0 * (n as f64 * h).cos().abs();
        assert!((est.max - exact_max).abs() / exact_max < 1e-3, "{est:?}");
        // λmin is harder; allow 10% and the interval must bracket from inside.
        assert!(
            est.min >= exact_min * 0.5 && est.min <= exact_min * 1.5,
            "{est:?}"
        );
    }

    #[test]
    fn lanczos_exact_on_small_matrix() {
        // n = 3 runs to completion -> exact eigenvalues.
        let a = laplacian_1d(3);
        let est = lanczos_extremes(3, 3, 1, |x, y| a.mul_vec_into(x, y)).unwrap();
        assert!((est.min - (2.0 - 2f64.sqrt())).abs() < 1e-10);
        assert!((est.max - (2.0 + 2f64.sqrt())).abs() < 1e-10);
    }

    #[test]
    fn lanczos_diagonal_operator() {
        let d = [1.0, 5.0, 9.0, 13.0];
        let est = lanczos_extremes(4, 4, 3, |x, y| {
            for i in 0..4 {
                y[i] = d[i] * x[i];
            }
        })
        .unwrap();
        assert!((est.min - 1.0).abs() < 1e-9);
        assert!((est.max - 13.0).abs() < 1e-9);
    }

    #[test]
    fn power_iteration_dominant_eigenvalue() {
        let d = [0.3, -0.9, 0.5];
        let rho = power_spectral_radius(3, 200, 11, |x, y| {
            for i in 0..3 {
                y[i] = d[i] * x[i];
            }
        })
        .unwrap();
        assert!((rho - 0.9).abs() < 1e-6);
    }

    #[test]
    fn power_iteration_zero_operator() {
        let r = power_spectral_radius(3, 10, 5, |_x, y| y.fill(0.0));
        assert!(r.is_err() || r.unwrap() == 0.0);
    }

    #[test]
    fn widened_interval_brackets() {
        let s = SpectralInterval {
            min: 1.0,
            max: 2.0,
            steps: 5,
        };
        let w = s.widened(0.1);
        assert!(w.min < 1.0 && w.max > 2.0);
        assert!(w.ratio() > s.ratio() * 0.9);
    }

    #[test]
    fn lanczos_one_by_one_operator_is_exact() {
        // n = 1: the Krylov space is the whole space; both extremes equal
        // the single entry regardless of the requested step budget.
        let est = lanczos_extremes(1, 16, 9, |x, y| y[0] = 3.5 * x[0]).unwrap();
        assert_eq!(est.min, 3.5);
        assert_eq!(est.max, 3.5);
        assert_eq!(est.steps, 1);
    }

    #[test]
    fn lanczos_scaled_identity_breaks_early_with_degenerate_interval() {
        // A pure-diagonal operator with equal entries: the first Lanczos
        // step finds an invariant subspace, so the estimate is exact and
        // degenerate (λmin = λmax) after one step.
        let est = lanczos_extremes(8, 8, 2, |x, y| {
            for i in 0..8 {
                y[i] = 2.0 * x[i];
            }
        })
        .unwrap();
        assert!((est.min - 2.0).abs() < 1e-12, "{est:?}");
        assert!((est.max - 2.0).abs() < 1e-12, "{est:?}");
        assert_eq!(est.steps, 1);
    }

    #[test]
    fn widened_degenerate_interval_strictly_brackets() {
        // λmin == λmax: the relative floor keeps the widening span
        // nonzero, so the widened interval is a genuine interval.
        let s = SpectralInterval {
            min: 2.0,
            max: 2.0,
            steps: 1,
        };
        let w = s.widened(0.02);
        assert!(w.min < 2.0 && w.max > 2.0, "{w:?}");
        assert!(w.max - w.min >= 2.0 * 0.02 * 1e-3 * 2.0 * 0.999, "{w:?}");
        // Even the all-zero interval widens through the absolute floor.
        let z = SpectralInterval {
            min: 0.0,
            max: 0.0,
            steps: 1,
        }
        .widened(0.02);
        assert!(z.min < 0.0 && z.max > 0.0, "{z:?}");
    }

    #[test]
    fn ratio_of_nonpositive_interval_is_infinite() {
        let s = SpectralInterval {
            min: 0.0,
            max: 2.0,
            steps: 1,
        };
        assert!(s.ratio().is_infinite());
    }
}
