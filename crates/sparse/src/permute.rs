//! Permutation vectors.
//!
//! Reorderings are the heart of the paper: the multicolor ordering permutes
//! the stiffness matrix into the 6-block form (3.1) and the CYBER
//! implementation renumbers equations color-by-color to maximize vector
//! length. A [`Permutation`] stores the *new → old* map (a gather order);
//! its [`inverse`](Permutation::inverse) is the scatter map.

use crate::error::SparseError;

/// A bijection on `0..n`, stored as `order[new_index] = old_index`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    order: Vec<usize>,
}

impl Permutation {
    /// Identity permutation of length `n`.
    pub fn identity(n: usize) -> Self {
        Permutation {
            order: (0..n).collect(),
        }
    }

    /// Build from a new→old order, validating bijectivity.
    ///
    /// # Errors
    /// [`SparseError::InvalidPermutation`] if any index repeats or is out of
    /// range.
    pub fn from_new_to_old(order: Vec<usize>) -> Result<Self, SparseError> {
        let n = order.len();
        let mut seen = vec![false; n];
        for &o in &order {
            if o >= n || seen[o] {
                return Err(SparseError::InvalidPermutation { len: n, culprit: o });
            }
            seen[o] = true;
        }
        Ok(Permutation { order })
    }

    /// Build from an old→new map (scatter form), validating bijectivity.
    ///
    /// # Errors
    /// [`SparseError::InvalidPermutation`] on non-bijective input.
    pub fn from_old_to_new(map: Vec<usize>) -> Result<Self, SparseError> {
        let n = map.len();
        let mut order = vec![usize::MAX; n];
        for (old, &new) in map.iter().enumerate() {
            if new >= n || order[new] != usize::MAX {
                return Err(SparseError::InvalidPermutation {
                    len: n,
                    culprit: new,
                });
            }
            order[new] = old;
        }
        Ok(Permutation { order })
    }

    /// Length of the permuted index set.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when the permutation is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Old index corresponding to `new`.
    #[inline]
    pub fn new_to_old(&self, new: usize) -> usize {
        self.order[new]
    }

    /// New index corresponding to `old` (O(1) via [`Permutation::inverse`]
    /// if called repeatedly — this form is O(n) worst-case only when used
    /// once; here it is a direct lookup because we precompute nothing).
    #[inline]
    pub fn old_to_new(&self, old: usize) -> usize {
        // Callers that need many lookups should use `inverse()` once.
        self.order
            .iter()
            .position(|&o| o == old)
            .expect("old index out of range")
    }

    /// The inverse permutation (`inverse.new_to_old == self.old_to_new`).
    pub fn inverse(&self) -> InversePermutation {
        let mut inv = vec![0usize; self.order.len()];
        for (new, &old) in self.order.iter().enumerate() {
            inv[old] = new;
        }
        InversePermutation { map: inv }
    }

    /// Gather a vector: `out[new] = x[order[new]]`.
    ///
    /// # Panics
    /// Panics if `x.len() != len()`.
    pub fn gather(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.order.len(), "gather: length mismatch");
        self.order.iter().map(|&o| x[o]).collect()
    }

    /// Scatter a permuted vector back: `out[order[new]] = x[new]`.
    ///
    /// # Panics
    /// Panics if `x.len() != len()`.
    pub fn scatter(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.order.len(), "scatter: length mismatch");
        let mut out = vec![0.0; x.len()];
        for (new, &old) in self.order.iter().enumerate() {
            out[old] = x[new];
        }
        out
    }

    /// Raw new→old order.
    pub fn as_slice(&self) -> &[usize] {
        &self.order
    }
}

/// Precomputed old→new lookup produced by [`Permutation::inverse`].
#[derive(Debug, Clone)]
pub struct InversePermutation {
    map: Vec<usize>,
}

impl InversePermutation {
    /// New index for `old`.
    #[inline]
    pub fn old_to_new(&self, old: usize) -> usize {
        self.map[old]
    }

    /// Raw old→new map.
    pub fn as_slice(&self) -> &[usize] {
        &self.map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_round_trip() {
        let p = Permutation::identity(4);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(p.gather(&x), x.to_vec());
        assert_eq!(p.scatter(&x), x.to_vec());
    }

    #[test]
    fn rejects_duplicate_indices() {
        assert!(Permutation::from_new_to_old(vec![0, 0, 1]).is_err());
        assert!(Permutation::from_old_to_new(vec![2, 2, 0]).is_err());
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(Permutation::from_new_to_old(vec![0, 3]).is_err());
    }

    #[test]
    fn gather_scatter_inverse() {
        let p = Permutation::from_new_to_old(vec![2, 0, 3, 1]).unwrap();
        let x = [10.0, 11.0, 12.0, 13.0];
        let g = p.gather(&x);
        assert_eq!(g, vec![12.0, 10.0, 13.0, 11.0]);
        assert_eq!(p.scatter(&g), x.to_vec());
    }

    #[test]
    fn inverse_agrees_with_old_to_new() {
        let p = Permutation::from_new_to_old(vec![2, 0, 1]).unwrap();
        let inv = p.inverse();
        for old in 0..3 {
            assert_eq!(inv.old_to_new(old), p.old_to_new(old));
        }
    }

    #[test]
    fn from_old_to_new_matches_manual_inverse() {
        let p = Permutation::from_old_to_new(vec![1, 2, 0]).unwrap();
        // old 0 -> new 1, old 1 -> new 2, old 2 -> new 0
        assert_eq!(p.new_to_old(0), 2);
        assert_eq!(p.new_to_old(1), 0);
        assert_eq!(p.new_to_old(2), 1);
    }

    #[test]
    fn empty_permutation() {
        let p = Permutation::identity(0);
        assert!(p.is_empty());
        assert_eq!(p.gather(&[]), Vec::<f64>::new());
    }
}
