//! Error types shared by the linear-algebra substrate.

use std::fmt;

/// Errors produced by matrix construction and factorization routines.
///
/// The variants are deliberately specific: the 1983 algorithms have hard
/// structural preconditions (square, symmetric, positive definite, nonzero
/// diagonal) and the library reports *which* one failed rather than panicking
/// deep inside a kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// A triplet or index referenced a row/column outside the matrix shape.
    IndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Number of valid indices on that axis.
        bound: usize,
        /// Axis name, `"row"` or `"col"`.
        axis: &'static str,
    },
    /// Operation requires a square matrix.
    NotSquare {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// Two operands have incompatible shapes.
    ShapeMismatch {
        /// Shape of the left operand.
        left: (usize, usize),
        /// Shape of the right operand.
        right: (usize, usize),
    },
    /// Operation requires a symmetric matrix; first asymmetric pair found.
    NotSymmetric {
        /// Row of the asymmetric entry.
        row: usize,
        /// Column of the asymmetric entry.
        col: usize,
    },
    /// Cholesky (or a diagonal solve) met a nonpositive/zero pivot, so the
    /// matrix is not positive definite (or has a zero diagonal entry).
    NotPositiveDefinite {
        /// Pivot index where the factorization broke down.
        pivot: usize,
        /// Value of the offending pivot.
        value: f64,
    },
    /// A zero (or numerically negligible) diagonal entry where one is needed.
    ZeroDiagonal {
        /// Row with the missing/zero diagonal.
        row: usize,
    },
    /// A permutation vector was not a bijection on `0..n`.
    InvalidPermutation {
        /// Length of the permutation.
        len: usize,
        /// First index observed twice (or out of range).
        culprit: usize,
    },
    /// An iterative process exhausted its iteration budget.
    DidNotConverge {
        /// Iterations performed.
        iterations: usize,
        /// Residual measure when the budget ran out.
        residual: f64,
    },
    /// A partition did not cover `0..n` with contiguous, disjoint ranges.
    InvalidPartition {
        /// Human-readable description of the defect.
        reason: String,
    },
    /// A NaN or infinity surfaced where the solver needs finite data — in
    /// the inputs (`phase` = `"rhs"` / `"initial-guess"`, `iteration` = 0)
    /// or in a reduction scalar mid-solve after the recovery budget was
    /// exhausted. The fused reduction kernels are the detectors: a
    /// non-finite element poisons its dot product, so the scalars are
    /// checked instead of the vectors.
    NonFinite {
        /// Where the non-finite value was detected (a phase name such as
        /// `"rhs"`, `"spmv-reduction"`, `"msolve-reduction"`).
        phase: &'static str,
        /// Iteration at which detection happened (0 = before iterating).
        iteration: usize,
    },
    /// A stopping tolerance was nonpositive, NaN or infinite — the solve
    /// could never terminate meaningfully, so it is rejected up front.
    InvalidTolerance {
        /// The offending tolerance.
        value: f64,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds { index, bound, axis } => {
                write!(f, "{axis} index {index} out of bounds ({bound})")
            }
            SparseError::NotSquare { rows, cols } => {
                write!(f, "matrix is {rows}x{cols}, expected square")
            }
            SparseError::ShapeMismatch { left, right } => write!(
                f,
                "shape mismatch: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            SparseError::NotSymmetric { row, col } => {
                write!(f, "matrix not symmetric at ({row}, {col})")
            }
            SparseError::NotPositiveDefinite { pivot, value } => {
                write!(f, "not positive definite: pivot {pivot} = {value:e}")
            }
            SparseError::ZeroDiagonal { row } => {
                write!(f, "zero diagonal entry in row {row}")
            }
            SparseError::InvalidPermutation { len, culprit } => {
                write!(f, "invalid permutation of length {len} (index {culprit})")
            }
            SparseError::DidNotConverge {
                iterations,
                residual,
            } => write!(
                f,
                "iteration did not converge after {iterations} steps (residual {residual:e})"
            ),
            SparseError::InvalidPartition { reason } => {
                write!(f, "invalid partition: {reason}")
            }
            SparseError::NonFinite { phase, iteration } => {
                write!(
                    f,
                    "non-finite value detected in {phase} at iteration {iteration}"
                )
            }
            SparseError::InvalidTolerance { value } => {
                write!(
                    f,
                    "invalid tolerance {value:e} (must be finite and positive)"
                )
            }
        }
    }
}

impl std::error::Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = SparseError::IndexOutOfBounds {
            index: 9,
            bound: 4,
            axis: "row",
        };
        assert!(e.to_string().contains("row index 9"));
        let e = SparseError::NotPositiveDefinite {
            pivot: 3,
            value: -1.0,
        };
        assert!(e.to_string().contains("pivot 3"));
        let e = SparseError::InvalidPartition {
            reason: "gap at 5".into(),
        };
        assert!(e.to_string().contains("gap at 5"));
        let e = SparseError::NonFinite {
            phase: "msolve-reduction",
            iteration: 7,
        };
        assert!(e.to_string().contains("msolve-reduction"));
        assert!(e.to_string().contains("iteration 7"));
        let e = SparseError::InvalidTolerance { value: -1.0 };
        assert!(e.to_string().contains("tolerance"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            SparseError::ZeroDiagonal { row: 1 },
            SparseError::ZeroDiagonal { row: 1 }
        );
        assert_ne!(
            SparseError::ZeroDiagonal { row: 1 },
            SparseError::ZeroDiagonal { row: 2 }
        );
    }
}
