//! Error types shared by the linear-algebra substrate.

use std::fmt;

/// Errors produced by matrix construction and factorization routines.
///
/// The variants are deliberately specific: the 1983 algorithms have hard
/// structural preconditions (square, symmetric, positive definite, nonzero
/// diagonal) and the library reports *which* one failed rather than panicking
/// deep inside a kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// A triplet or index referenced a row/column outside the matrix shape.
    IndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Number of valid indices on that axis.
        bound: usize,
        /// Axis name, `"row"` or `"col"`.
        axis: &'static str,
    },
    /// Operation requires a square matrix.
    NotSquare {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// Two operands have incompatible shapes.
    ShapeMismatch {
        /// Shape of the left operand.
        left: (usize, usize),
        /// Shape of the right operand.
        right: (usize, usize),
    },
    /// Operation requires a symmetric matrix; first asymmetric pair found.
    NotSymmetric {
        /// Row of the asymmetric entry.
        row: usize,
        /// Column of the asymmetric entry.
        col: usize,
    },
    /// Cholesky (or a diagonal solve) met a nonpositive/zero pivot, so the
    /// matrix is not positive definite (or has a zero diagonal entry).
    NotPositiveDefinite {
        /// Pivot index where the factorization broke down.
        pivot: usize,
        /// Value of the offending pivot.
        value: f64,
    },
    /// A zero (or numerically negligible) diagonal entry where one is needed.
    ZeroDiagonal {
        /// Row with the missing/zero diagonal.
        row: usize,
    },
    /// A permutation vector was not a bijection on `0..n`.
    InvalidPermutation {
        /// Length of the permutation.
        len: usize,
        /// First index observed twice (or out of range).
        culprit: usize,
    },
    /// An iterative process exhausted its iteration budget.
    DidNotConverge {
        /// Iterations performed.
        iterations: usize,
        /// Residual measure when the budget ran out.
        residual: f64,
    },
    /// A partition did not cover `0..n` with contiguous, disjoint ranges.
    InvalidPartition {
        /// Human-readable description of the defect.
        reason: String,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds { index, bound, axis } => {
                write!(f, "{axis} index {index} out of bounds ({bound})")
            }
            SparseError::NotSquare { rows, cols } => {
                write!(f, "matrix is {rows}x{cols}, expected square")
            }
            SparseError::ShapeMismatch { left, right } => write!(
                f,
                "shape mismatch: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            SparseError::NotSymmetric { row, col } => {
                write!(f, "matrix not symmetric at ({row}, {col})")
            }
            SparseError::NotPositiveDefinite { pivot, value } => {
                write!(f, "not positive definite: pivot {pivot} = {value:e}")
            }
            SparseError::ZeroDiagonal { row } => {
                write!(f, "zero diagonal entry in row {row}")
            }
            SparseError::InvalidPermutation { len, culprit } => {
                write!(f, "invalid permutation of length {len} (index {culprit})")
            }
            SparseError::DidNotConverge {
                iterations,
                residual,
            } => write!(
                f,
                "iteration did not converge after {iterations} steps (residual {residual:e})"
            ),
            SparseError::InvalidPartition { reason } => {
                write!(f, "invalid partition: {reason}")
            }
        }
    }
}

impl std::error::Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = SparseError::IndexOutOfBounds {
            index: 9,
            bound: 4,
            axis: "row",
        };
        assert!(e.to_string().contains("row index 9"));
        let e = SparseError::NotPositiveDefinite {
            pivot: 3,
            value: -1.0,
        };
        assert!(e.to_string().contains("pivot 3"));
        let e = SparseError::InvalidPartition {
            reason: "gap at 5".into(),
        };
        assert!(e.to_string().contains("gap at 5"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            SparseError::ZeroDiagonal { row: 1 },
            SparseError::ZeroDiagonal { row: 1 }
        );
        assert_ne!(
            SparseError::ZeroDiagonal { row: 1 },
            SparseError::ZeroDiagonal { row: 2 }
        );
    }
}
